//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched. This shim keeps the workspace's `harness = false` benchmarks
//! compiling and running: it measures wall-clock time per iteration with a
//! calibrated batch loop and prints `group/bench  median  (throughput)` lines.
//! It performs no statistical analysis and writes no reports.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared data volume per iteration, used to print derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running enough iterations per sample to get a stable
    /// wall-clock reading. In `--test` smoke mode `f` runs exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let start = Instant::now();
            std_black_box(f());
            self.elapsed.push(start.elapsed());
            return;
        }
        // Calibrate: how many iterations fit in ~5 ms?
        let start = Instant::now();
        std_black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(f());
            }
            self.elapsed.push(start.elapsed() / per_sample);
        }
    }

    /// Like the real crate's `iter_custom`: `f` receives an iteration count
    /// and returns the measured duration for that many iterations. Used when
    /// the workload must time an inner region itself (e.g. excluding thread
    /// spawn). In `--test` smoke mode `f` runs exactly once.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let samples = if self.test_mode { 1 } else { self.samples };
        for _ in 0..samples {
            self.elapsed.push(f(1));
        }
    }

    fn median(&mut self) -> Duration {
        if self.elapsed.is_empty() {
            return Duration::ZERO;
        }
        self.elapsed.sort_unstable();
        self.elapsed[self.elapsed.len() / 2]
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration data volume for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            elapsed: Vec::new(),
        };
        f(&mut b);
        self.report(&id, b.median());
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            elapsed: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id, b.median());
        self
    }

    fn report(&mut self, id: &BenchmarkId, median: Duration) {
        let mut line = format!("{}/{:<40} {:>12.3?}", self.name, id.id, median);
        if let Some(t) = self.throughput {
            let secs = median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>10.1} MiB/s", n as f64 / secs / (1 << 20) as f64));
                }
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>10.0} elem/s", n as f64 / secs));
                }
            }
        }
        if self.criterion.test_mode {
            line.push_str("  (test mode: 1 run, timing not meaningful)");
        }
        println!("{line}");
        self.criterion.results.push((format!("{}/{}", self.name, id.id), median));
    }

    /// End the group (printing happened per-benchmark).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
///
/// `Criterion::default()` honours the real crate's `--test` flag (as passed
/// by `cargo bench -- --test`): every benchmark body runs exactly once as a
/// smoke test, with no calibration loop.
pub struct Criterion {
    test_mode: bool,
    results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test"), results: Vec::new() }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, criterion: self }
    }

    /// Force smoke-test mode on or off (overriding the `--test` flag).
    pub fn test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    /// Whether this run is a `--test` smoke run.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Median durations recorded so far, as `(group/id, median)` pairs, in
    /// execution order. (Shim extension: the real crate persists results to
    /// disk instead; our benches use this to emit machine-readable reports.)
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Record an externally measured result under `group/id`, printing the
    /// same report line `bench_function` would. (Shim extension: benches
    /// that interleave samples across several variants — to cancel
    /// measurement-block drift — time the variants themselves and feed the
    /// medians in here.)
    pub fn record(
        &mut self,
        group: impl Into<String>,
        id: impl Into<BenchmarkId>,
        median: Duration,
        throughput: Option<Throughput>,
    ) {
        let mut g = self.benchmark_group(group);
        if let Some(t) = throughput {
            g.throughput(t);
        }
        let id = id.into();
        g.report(&id, median);
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut ran = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| ran += 1);
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_each_bench_exactly_once() {
        let mut c = Criterion::default().test_mode(true);
        let mut runs = 0usize;
        let mut g = c.benchmark_group("smoke");
        g.sample_size(50).bench_function("counted", |b| {
            b.iter(|| runs += 1);
        });
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                runs += 1;
                Duration::from_micros(1)
            });
        });
        g.finish();
        assert_eq!(runs, 2);
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[1].1, Duration::from_micros(1));
    }

    #[test]
    fn results_record_group_and_id() {
        let mut c = Criterion::default().test_mode(true);
        c.benchmark_group("g").bench_function("x", |b| b.iter(|| 1));
        assert_eq!(c.results()[0].0, "g/x");
    }

    #[test]
    fn record_reports_external_measurements() {
        let mut c = Criterion::default().test_mode(true);
        c.record("ext", "case", Duration::from_micros(3), Some(Throughput::Bytes(4096)));
        assert_eq!(c.results(), &[("ext/case".to_string(), Duration::from_micros(3))]);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("lit").id, "lit");
    }
}
