//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length bounds —
/// proptest's `prop::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::new(9, 0);
        for _ in 0..100 {
            assert_eq!(vec(any::<u8>(), 6).generate(&mut rng).len(), 6);
            let v = vec(any::<u64>(), 4..8).generate(&mut rng);
            assert!((4..8).contains(&v.len()));
            let nested = vec(vec(any::<u8>(), 0..64), 6).generate(&mut rng);
            assert_eq!(nested.len(), 6);
            assert!(nested.iter().all(|inner| inner.len() < 64));
        }
    }
}
