//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the real crate cannot be
//! fetched. This shim implements exactly the surface the workspace's property
//! tests use: the [`proptest!`] macro, range and `any` strategies,
//! `prop::collection::vec`, and the `prop_assert*` macros.
//!
//! Generation is fully deterministic: each test function derives its RNG seed
//! from its own name, so a failing case reproduces identically on every run
//! (there is no shrinking — the failing inputs are printed instead).

pub mod collection;

/// Number of generated cases per property, unless overridden with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
pub const DEFAULT_CASES: u32 = 256;

/// Per-property configuration (subset: case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

/// A failed property case; produced by the `prop_assert*` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Construct a failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property seeded with `seed`.
    pub fn new(seed: u64, case: u64) -> Self {
        TestRng { state: seed ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test's name: its per-run-stable RNG seed.
pub fn rng_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A value generator. The shim generates eagerly — there is no shrink tree.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (self.start as f64 + unit * (self.end - self.start) as f64) as f32
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` — proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Commonly used items, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
    /// Mirror of the `prop` module alias exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines `#[test]` functions that run their body over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0usize..10, bytes in prop::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::rng_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::TestRng::new(seed, case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {case}: {e}\ninputs: {}",
                        stringify!($name),
                        concat!($(stringify!($arg), " "),+),
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Fallible assertion: returns `Err(TestCaseError)` from the enclosing
/// `Result`-valued scope instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Fallible inequality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = crate::TestRng::new(42, 7);
        let mut b = crate::TestRng::new(42, 7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1, 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(1u8..=100), &mut rng);
            assert!((1..=100).contains(&w));
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(
            n in 1usize..5,
            v in prop::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() < 10);
        }
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        let r: Result<(), TestCaseError> = (|| {
            prop_assert_eq!(1, 2, "context {}", "here");
            Ok(())
        })();
        let e = r.unwrap_err();
        assert!(e.to_string().contains("1 != 2"));
        assert!(e.to_string().contains("context here"));
    }
}
