//! # ddr — Automated Dynamic Data Redistribution (reproduction)
//!
//! Facade crate for the full reproduction stack of T. Marrinan et al.,
//! *Automated Dynamic Data Redistribution* (2017). The primary contribution
//! lives in [`core`] (the three-call DDR API); everything else is the
//! substrate the paper's evaluation runs on:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | `Descriptor` / `setup_data_mapping` / `reorganize` — the DDR library |
//! | [`check`] | static plan linter front end + example-layout catalog (`lint_examples`) |
//! | [`minimpi`] | in-process MPI-like runtime (ranks, collectives, `alltoallw` + subarrays) |
//! | [`netsim`] | calibrated Cooley cluster cost model for paper-scale projection |
//! | [`dtiff`] | baseline TIFF codec (use case 1's image stacks) |
//! | [`jimage`] | colormaps, PPM, baseline JPEG codec (use case 2's output) |
//! | [`lbm`] | distributed D2Q9 Lattice-Boltzmann solver (use case 2's simulation) |
//! | [`volren`] | brick-decomposed CPU volume renderer (use case 1's consumer) |
//! | [`intransit`] | M-to-N streaming + DDR repartitioning between rank groups |
//! | [`trace`] | per-rank tracing/metrics plane (`DDR_TRACE`, Chrome/Perfetto JSON) |
//!
//! See `examples/quickstart.rs` for the paper's E1 walkthrough and
//! DESIGN.md / EXPERIMENTS.md for the experiment-by-experiment index.

pub use ddr_core as core;
pub use ddr_lbm as lbm;
pub use ddr_netsim as netsim;
pub use ddrcheck as check;
pub use ddrtrace as trace;
pub use dtiff;
pub use intransit;
pub use jimage;
pub use minimpi;
pub use volren;
