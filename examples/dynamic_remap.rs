//! Dynamic data: one mapping, many redistributions — and what changing the
//! wire strategy does.
//!
//! A 3-D field evolves over 50 time steps on 6 ranks that own z-slabs; a
//! consumer layout of near-cubic bricks needs the data every step. The
//! mapping is set up **once**; `reorganize` runs per step (the paper's
//! §III-C "when dealing with dynamic data, DDR_ReorganizeData can be called
//! each time processes own new data without needing to initialize the
//! library or set up the data mapping again"). The same workload is then
//! run with the sparse point-to-point strategy the paper proposes as future
//! work, and with a deliberately sparse mapping where it shines.
//!
//! Both mappings are linted with `ddrcheck` before any rank starts and the
//! universes run with correctness checking on; any error exits non-zero
//! with the diagnostic.
//!
//! Run with: `cargo run --release --example dynamic_remap`

use ddr::check::{enforce, lint_mapping, render_report};
use ddr::core::decompose::{brick, slab};
use ddr::core::{Block, DataKind, DdrError, Descriptor, Layout, Strategy};
use ddr::minimpi::Universe;
use std::process::ExitCode;
use std::time::Instant;

const NPROCS: usize = 6;
const DOMAIN: [usize; 3] = [64, 64, 48];
const STEPS: usize = 50;

fn field(c: [usize; 3], step: usize) -> f32 {
    ((c[0] * 7 + c[1] * 13 + c[2] * 29) % 101) as f32 + step as f32 * 1000.0
}

/// Consumer layout: near-cubic bricks (dense mapping) or each rank's
/// neighbor slab (sparse mapping). Split x and y only for the bricks, so
/// every brick spans the full z range and must gather pieces from every
/// slab owner — a genuinely dense mapping.
fn need_block(domain: &Block, sparse: bool, r: usize) -> Block {
    if sparse {
        slab(domain, 2, NPROCS, (r + 1) % NPROCS).unwrap()
    } else {
        brick(domain, [3, 2, 1], r).unwrap()
    }
}

fn layouts(domain: &Block, sparse: bool) -> Vec<Layout> {
    (0..NPROCS)
        .map(|r| Layout {
            owned: vec![slab(domain, 2, NPROCS, r).unwrap()],
            need: need_block(domain, sparse, r),
        })
        .collect()
}

fn run(strategy: Strategy, sparse: bool) -> Result<(f64, usize, usize), String> {
    let domain = Block::d3([0, 0, 0], DOMAIN).unwrap();
    let t0 = Instant::now();
    let outcomes = Universe::builder().check(true).run(NPROCS, move |comm| {
        let r = comm.rank();
        let owned = vec![slab(&domain, 2, NPROCS, r).unwrap()];
        let need = need_block(&domain, sparse, r);
        let desc = Descriptor::for_type::<f32>(NPROCS, DataKind::D3)?;
        // Mapping once…
        let plan = desc.setup_data_mapping(comm, &owned, need)?;
        let mut out = vec![0f32; need.count() as usize];
        // …reorganize every step with fresh data.
        for step in 0..STEPS {
            let data: Vec<f32> = owned[0].coords().map(|c| field(c, step)).collect();
            plan.reorganize_with(comm, &[&data], &mut out, strategy)?;
            // Spot-check one element.
            let first = need.coords().next().unwrap();
            if out[0] != field(first, step) {
                return Err(DdrError::BufferMismatch {
                    detail: format!("rank {r} step {step}: wrong first element"),
                });
            }
        }
        Ok((plan.num_rounds(), plan.neighbor_count()))
    });
    let dt = t0.elapsed().as_secs_f64();
    let mut meta = Vec::with_capacity(outcomes.len());
    for (rank, o) in outcomes.into_iter().enumerate() {
        meta.push(o.map_err(|e| format!("rank {rank}: {e}"))?);
    }
    Ok((dt, meta[0].0, meta.iter().map(|m| m.1).max().unwrap()))
}

fn main() -> ExitCode {
    println!(
        "dynamic remap: {STEPS} steps of a {}x{}x{} field on {NPROCS} ranks\n",
        DOMAIN[0], DOMAIN[1], DOMAIN[2]
    );

    // Lint both mappings before running anything.
    let domain = Block::d3([0, 0, 0], DOMAIN).unwrap();
    let desc = Descriptor::for_type::<f32>(NPROCS, DataKind::D3).expect("descriptor");
    for (label, sparse) in [("dense", false), ("sparse", true)] {
        let diags = lint_mapping(&desc, &layouts(&domain, sparse));
        println!("{}", render_report(&format!("ddrcheck {label} mapping"), &diags));
        if let Err(diags) = enforce(&diags) {
            eprintln!("dynamic_remap: {label} mapping rejected ({} findings)", diags.len());
            return ExitCode::FAILURE;
        }
    }
    println!();

    println!("{:<34} {:>10} {:>8} {:>14}", "configuration", "time", "rounds", "max neighbors");
    for (label, strategy, sparse) in [
        ("slabs -> bricks, alltoallw", Strategy::Alltoallw, false),
        ("slabs -> bricks, point-to-point", Strategy::PointToPoint, false),
        ("slabs -> shifted slabs, alltoallw", Strategy::Alltoallw, true),
        ("slabs -> shifted slabs, p2p", Strategy::PointToPoint, true),
    ] {
        match run(strategy, sparse) {
            Ok((dt, rounds, neighbors)) => {
                println!("{label:<34} {:>8.1}ms {rounds:>8} {neighbors:>14}", dt * 1e3);
            }
            Err(e) => {
                eprintln!("dynamic_remap: {label} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "\nThe sparse consumer layout touches at most a couple of peers, where the\n\
         paper's proposed direct send/receive optimization avoids the all-to-all\n\
         coordination cost; the dense brick layout talks to most ranks either way."
    );
    ExitCode::SUCCESS
}
