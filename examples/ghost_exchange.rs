//! Ghost-zone staging with the generalized multi-block API.
//!
//! The published DDR library restricts each rank to a *single* continuous
//! needed block; its future work calls for "more data patterns". This
//! example uses the `setup_multi_mapping` extension to stage a stencil
//! computation: each rank's needed data is its own slab **plus** one-row
//! halos from both neighbors — three blocks, declared directly, with DDR
//! computing who sends what.
//!
//! A 5-point Laplacian is then applied using the halos and verified against
//! a serial computation of the whole domain.
//!
//! Run with: `cargo run --example ghost_exchange`

use ddr::core::decompose::slab;
use ddr::core::{Block, DataKind, DdrError, Descriptor, ValidationPolicy};
use ddr::minimpi::Universe;
use std::process::ExitCode;

const NX: usize = 64;
const NY: usize = 48;
const NPROCS: usize = 6;

fn field(x: usize, y: usize) -> f64 {
    (x as f64 * 0.3).sin() * (y as f64 * 0.2).cos() * 100.0
}

fn laplacian(get: impl Fn(usize, i64) -> f64, x: usize, y: i64) -> f64 {
    let left = if x > 0 { get(x - 1, y) } else { get(x, y) };
    let right = if x + 1 < NX { get(x + 1, y) } else { get(x, y) };
    left + right + get(x, y - 1) + get(x, y + 1) - 4.0 * get(x, y)
}

fn main() -> ExitCode {
    let domain = Block::d2([0, 0], [NX, NY]).unwrap();

    // Serial reference.
    let serial: Vec<f64> = (0..NY as i64)
        .flat_map(|y| {
            (0..NX).map(move |x| {
                let get = |x: usize, y: i64| {
                    let yc = y.clamp(0, NY as i64 - 1) as usize;
                    field(x, yc)
                };
                laplacian(get, x, y)
            })
        })
        .collect();

    // Correctness checking on: a mismatched collective or send/recv cycle in
    // the staging exchange fails fast with a structured report.
    let outcomes = Universe::builder().check(true).run(NPROCS, |comm| {
        let r = comm.rank();
        let my_slab = slab(&domain, 1, NPROCS, r).unwrap();
        let owned = vec![my_slab];

        // Need: my slab + halo rows that exist.
        let mut needs = vec![my_slab];
        let y0 = my_slab.offset[1];
        let y1 = y0 + my_slab.dims[1];
        if y0 > 0 {
            needs.push(Block::d2([0, y0 - 1], [NX, 1]).unwrap());
        }
        if y1 < NY {
            needs.push(Block::d2([0, y1], [NX, 1]).unwrap());
        }

        let desc = Descriptor::for_type::<f64>(NPROCS, DataKind::D2)?;
        let plan = desc.setup_multi_mapping(comm, &owned, &needs, ValidationPolicy::Strict)?;

        let data: Vec<f64> = my_slab.coords().map(|c| field(c[0], c[1])).collect();
        let mut bufs: Vec<Vec<f64>> = needs.iter().map(|b| vec![0.0; b.count() as usize]).collect();
        {
            let mut refs: Vec<&mut [f64]> = bufs.iter_mut().map(|v| v.as_mut_slice()).collect();
            plan.reorganize(comm, &[&data], &mut refs)?;
        }

        // Stencil over the slab using the received halos.
        let rows = my_slab.dims[1];
        let below = (y0 > 0).then(|| bufs[1].clone());
        let above = if y1 < NY { Some(bufs[if y0 > 0 { 2 } else { 1 }].clone()) } else { None };
        let slab_data = &bufs[0];
        let get = |x: usize, ly: i64| -> f64 {
            if ly < 0 {
                match &below {
                    Some(h) => h[x],
                    None => slab_data[x], // clamped at global edge
                }
            } else if ly >= rows as i64 {
                match &above {
                    Some(h) => h[x],
                    None => slab_data[(rows - 1) * NX + x],
                }
            } else {
                slab_data[ly as usize * NX + x]
            }
        };
        let out: Vec<f64> = (0..rows as i64)
            .flat_map(|ly| (0..NX).map(move |x| (x, ly)))
            .map(|(x, ly)| laplacian(get, x, ly))
            .collect();
        Ok::<_, DdrError>((y0, rows, out, plan.num_rounds(), plan.total_sent_bytes()))
    });

    let mut results = Vec::with_capacity(outcomes.len());
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("ghost_exchange: rank {rank} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut stitched = vec![0f64; NX * NY];
    for (y0, rows, out, rounds, sent) in &results {
        stitched[y0 * NX..(y0 + rows) * NX].copy_from_slice(out);
        println!("rank slab rows {y0}..{}: {rounds} round(s), {sent} bytes shipped", y0 + rows);
    }
    let max_err = stitched.iter().zip(&serial).map(|(a, b)| (a - b).abs()).fold(0f64, f64::max);
    println!("\nmax |distributed - serial| = {max_err:.3e}");
    if stitched != serial {
        eprintln!("ghost_exchange: stencil diverges from the serial reference");
        return ExitCode::FAILURE;
    }
    println!("OK: ghost-zone staging through DDR multi-need is exact.");
    ExitCode::SUCCESS
}
