//! Use case 2: in-transit streaming of a CFD simulation into a parallel
//! visualization application (paper §IV-B, Figures 4 and 5, Table IV).
//!
//! Runs a D2Q9 Lattice-Boltzmann wind tunnel with a barrier on M simulation
//! ranks; every `OUTPUT_EVERY` steps each simulation rank streams its slice
//! of the vorticity field to its analysis rank (M→N fan-in). The N analysis
//! ranks use DDR to repartition the slices into near-square rectangles,
//! apply the blue-white-red colormap, and save JPEG frames — comparing
//! output size against what raw float dumps would have cost.
//!
//! Run with: `cargo run --release --example lbm_in_transit`
//! Outputs: `target/lbm_in_transit/frame_*.jpg`
//!
//! Set `DDR_FAULT_SEED=<n>` to inject a deterministic fault: one streamed
//! frame (chosen by the seed) is dropped in flight. The analysis side then
//! demonstrates degraded-mode streaming — it skips ahead after the per-frame
//! deadline, keeps rendering, and reports the skip in its stream stats.

use ddr::core::Block;
use ddr::lbm::{barrier_line, Config, DistributedLbm};
use ddr::minimpi::{FaultPlan, Universe};
use intransit::{
    analysis_block, consumer_sources, producer_targets, send_frame, split_resources, FrameReceiver,
    FrameRecvConfig, FrameStats, Repartitioner, Role, FRAME_TAG,
};
use jimage::{jpeg, Colormap, RgbImage};
use std::time::Duration;

const M: usize = 10; // simulation ranks (Figure 4 uses 10 -> 4)
const N: usize = 4; // analysis ranks
const NX: usize = 640;
const NY: usize = 256;
const STEPS: usize = 1000;
const OUTPUT_EVERY: usize = 100;

fn main() {
    let out_dir = std::path::PathBuf::from("target/lbm_in_transit");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    println!("M-to-N mapping (Figure 4): {M} simulation ranks -> {N} analysis ranks");
    for c in 0..N {
        println!(
            "  analysis rank {c} receives from simulation ranks {:?}",
            consumer_sources(M, N, c)
        );
    }
    let (gx, gy) = ddr::core::decompose::near_square_grid(N);
    println!("analysis layout (Figure 5): {gx}x{gy} near-square grid over {NX}x{NY}\n");

    // DDR_FAULT_SEED drops one frame in flight, deterministically.
    let mut builder = Universe::builder();
    if let Ok(seed) = std::env::var("DDR_FAULT_SEED").map(|s| s.parse::<u64>().unwrap_or(0)) {
        let victim = (seed % M as u64) as usize;
        let consumer = M + producer_targets(M, N)[victim];
        let nth = seed % (STEPS / OUTPUT_EVERY) as u64;
        println!(
            "fault injection (seed {seed}): dropping frame #{nth} from simulation rank \
             {victim} to analysis rank {}\n",
            consumer - M
        );
        builder = builder.fault_plan(FaultPlan::new(seed).drop_message(
            victim,
            consumer,
            Some(FRAME_TAG),
            nth,
        ));
    }

    let cfg = Config::wind_tunnel(NX, NY);
    let out_dir2 = out_dir.clone();
    let results = builder.run(M + N, move |world| {
        let barrier = barrier_line(NX / 4, NY * 2 / 5, NY * 3 / 5);
        let (role, group) = split_resources(world, M).unwrap();
        match role {
            Role::Simulation => {
                let mut sim = DistributedLbm::new(cfg, &group, &barrier);
                let consumer = M + producer_targets(M, N)[group.rank()];
                for step in 1..=STEPS {
                    sim.step(&group).unwrap();
                    if step % OUTPUT_EVERY == 0 {
                        let (y0, rows) = sim.slab();
                        let vort = sim.vorticity(&group).unwrap();
                        let block = Block::d2([0, y0], [NX, rows]).unwrap();
                        send_frame(world, consumer, step as u64, block, vort).unwrap();
                    }
                }
                (0usize, 0usize, FrameStats::default())
            }
            Role::Analysis => {
                let c = group.rank();
                let need = analysis_block(NX, NY, N, c).unwrap();
                // Degraded mode: a step with a lost frame still redistributes
                // and renders — undelivered cells stay at zero.
                let mut rep = Repartitioner::degraded(need);
                // The deadline must comfortably exceed the simulation's
                // inter-output time, or healthy frames would be skipped.
                let mut rx = FrameReceiver::new(
                    consumer_sources(M, N, c),
                    FrameRecvConfig {
                        deadline: Duration::from_secs(2),
                        ..FrameRecvConfig::default()
                    },
                );
                let cmap = Colormap::blue_white_red();
                let mut jpeg_bytes = 0usize;
                let mut raw_bytes = 0usize;
                for step in 1..=STEPS {
                    if step % OUTPUT_EVERY == 0 {
                        let frames = rx.recv_step(world, step as u64).unwrap();
                        let field = rep.redistribute(&group, &frames).unwrap();
                        raw_bytes += field.len() * 4;
                        let img = RgbImage::from_scalar_field(
                            need.dims[0],
                            need.dims[1],
                            &field,
                            -0.08,
                            0.08,
                            &cmap,
                        );
                        let bytes = jpeg::encode(&img, 75).unwrap();
                        jpeg_bytes += bytes.len();
                        let path = out_dir2.join(format!("frame_{step:05}_tile{c}.jpg"));
                        std::fs::write(path, bytes).unwrap();
                    }
                }
                (raw_bytes, jpeg_bytes, *rx.stats())
            }
        }
    });

    let raw: usize = results.iter().map(|(r, _, _)| r).sum();
    let jpg: usize = results.iter().map(|(_, j, _)| j).sum();
    let mut stats = FrameStats::default();
    for (_, _, s) in &results {
        stats.merge(s);
    }
    println!("saved {} frames x {N} tiles to {}", STEPS / OUTPUT_EVERY, out_dir.display());
    println!("stream stats: {stats}");
    println!(
        "raw vorticity would be {raw} bytes; JPEG tiles are {jpg} bytes — {:.2}% data reduction (Table IV effect)",
        100.0 * (1.0 - jpg as f64 / raw as f64)
    );
    assert!(jpg * 10 < raw, "expected at least 10x reduction");
}
