//! Use case 2: in-transit streaming of a CFD simulation into a parallel
//! visualization application (paper §IV-B, Figures 4 and 5, Table IV).
//!
//! Runs a D2Q9 Lattice-Boltzmann wind tunnel with a barrier on M simulation
//! ranks; every `OUTPUT_EVERY` steps each simulation rank streams its slice
//! of the vorticity field to its analysis rank (M→N fan-in). The N analysis
//! ranks use DDR to repartition the slices into near-square rectangles,
//! apply the blue-white-red colormap, and save JPEG frames — comparing
//! output size against what raw float dumps would have cost.
//!
//! Run with: `cargo run --release --example lbm_in_transit`
//! Outputs: `target/lbm_in_transit/frame_*.jpg`
//!
//! Set `DDR_FAULT_SEED=<n>` to inject a deterministic fault: one streamed
//! frame (chosen by the seed) is dropped in flight. The analysis side then
//! demonstrates degraded-mode streaming — it skips ahead after the per-frame
//! deadline, keeps rendering, and reports the skip in its stream stats.

use ddr::check::{has_errors, lint_mapping, render_report};
use ddr::core::{Block, DataKind, Descriptor, Layout};
use ddr::lbm::{barrier_line, split_rows, Config, DistributedLbm};
use ddr::minimpi::{FaultPlan, Universe};
use intransit::{
    analysis_block, consumer_sources, producer_targets, send_frame, split_resources, FrameReceiver,
    FrameRecvConfig, FrameStats, Repartitioner, Role, FRAME_TAG,
};
use jimage::{jpeg, Colormap, RgbImage};
use std::process::ExitCode;
use std::time::Duration;

const M: usize = 10; // simulation ranks (Figure 4 uses 10 -> 4)
const N: usize = 4; // analysis ranks
const NX: usize = 640;
const NY: usize = 256;
const STEPS: usize = 1000;
const OUTPUT_EVERY: usize = 100;

/// The analysis-side redistribution this example will perform, as static
/// layouts: analysis rank `c` owns the y-slabs its simulation sources
/// stream and needs one near-square tile.
fn analysis_layouts() -> Vec<Layout> {
    (0..N)
        .map(|c| {
            let owned = consumer_sources(M, N, c)
                .into_iter()
                .map(|s| {
                    let (y0, rows) = split_rows(NY, M, s);
                    Block::d2([0, y0], [NX, rows]).unwrap()
                })
                .collect();
            Layout { owned, need: analysis_block(NX, NY, N, c).unwrap() }
        })
        .collect()
}

fn main() -> ExitCode {
    let out_dir = std::path::PathBuf::from("target/lbm_in_transit");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    // Lint the analysis repartitioning before launching 14 rank threads.
    let desc = Descriptor::for_type::<f32>(N, DataKind::D2).expect("descriptor");
    let diags = lint_mapping(&desc, &analysis_layouts());
    println!("{}\n", render_report("ddrcheck analysis mapping", &diags));
    if has_errors(&diags) {
        eprintln!("lbm_in_transit: analysis mapping rejected by the plan linter");
        return ExitCode::FAILURE;
    }

    println!("M-to-N mapping (Figure 4): {M} simulation ranks -> {N} analysis ranks");
    for c in 0..N {
        println!(
            "  analysis rank {c} receives from simulation ranks {:?}",
            consumer_sources(M, N, c)
        );
    }
    let (gx, gy) = ddr::core::decompose::near_square_grid(N);
    println!("analysis layout (Figure 5): {gx}x{gy} near-square grid over {NX}x{NY}\n");

    // DDR_FAULT_SEED drops one frame in flight, deterministically.
    // Checking on: collective divergence or a send/recv cycle across the
    // 14 ranks fails fast with a structured report instead of hanging.
    let mut builder = Universe::builder().check(true);
    if let Some(seed) = ddr::minimpi::env::u64_var("DDR_FAULT_SEED") {
        let victim = (seed % M as u64) as usize;
        let consumer = M + producer_targets(M, N)[victim];
        let nth = seed % (STEPS / OUTPUT_EVERY) as u64;
        println!(
            "fault injection (seed {seed}): dropping frame #{nth} from simulation rank \
             {victim} to analysis rank {}\n",
            consumer - M
        );
        builder = builder.fault_plan(FaultPlan::new(seed).drop_message(
            victim,
            consumer,
            Some(FRAME_TAG),
            nth,
        ));
    }

    let cfg = Config::wind_tunnel(NX, NY);
    let out_dir2 = out_dir.clone();
    let outcomes = builder.run(M + N, move |world| -> Result<_, String> {
        let err = |e: &dyn std::fmt::Display| e.to_string();
        let barrier = barrier_line(NX / 4, NY * 2 / 5, NY * 3 / 5);
        let (role, group) = split_resources(world, M).map_err(|e| err(&e))?;
        match role {
            Role::Simulation => {
                let mut sim = DistributedLbm::new(cfg, &group, &barrier);
                let consumer = M + producer_targets(M, N)[group.rank()];
                for step in 1..=STEPS {
                    sim.step(&group).map_err(|e| err(&e))?;
                    if step % OUTPUT_EVERY == 0 {
                        let (y0, rows) = sim.slab();
                        let vort = sim.vorticity(&group).map_err(|e| err(&e))?;
                        let block = Block::d2([0, y0], [NX, rows]).map_err(|e| err(&e))?;
                        send_frame(world, consumer, step as u64, block, vort)
                            .map_err(|e| err(&e))?;
                    }
                }
                Ok((0usize, 0usize, FrameStats::default()))
            }
            Role::Analysis => {
                let c = group.rank();
                let need = analysis_block(NX, NY, N, c).map_err(|e| err(&e))?;
                // Degraded mode: a step with a lost frame still redistributes
                // and renders — undelivered cells stay at zero.
                let mut rep = Repartitioner::degraded(need);
                // The deadline must comfortably exceed the simulation's
                // inter-output time, or healthy frames would be skipped.
                let mut rx = FrameReceiver::new(
                    consumer_sources(M, N, c),
                    FrameRecvConfig {
                        deadline: Duration::from_secs(2),
                        ..FrameRecvConfig::default()
                    },
                );
                let cmap = Colormap::blue_white_red();
                let mut jpeg_bytes = 0usize;
                let mut raw_bytes = 0usize;
                for step in 1..=STEPS {
                    if step % OUTPUT_EVERY == 0 {
                        let frames = rx.recv_step(world, step as u64).map_err(|e| err(&e))?;
                        let field = rep.redistribute(&group, &frames).map_err(|e| err(&e))?;
                        raw_bytes += field.len() * 4;
                        let img = RgbImage::from_scalar_field(
                            need.dims[0],
                            need.dims[1],
                            &field,
                            -0.08,
                            0.08,
                            &cmap,
                        );
                        let bytes = jpeg::encode(&img, 75).map_err(|e| err(&e))?;
                        jpeg_bytes += bytes.len();
                        let path = out_dir2.join(format!("frame_{step:05}_tile{c}.jpg"));
                        std::fs::write(path, bytes).map_err(|e| err(&e))?;
                    }
                }
                Ok((raw_bytes, jpeg_bytes, *rx.stats()))
            }
        }
    });

    let mut results = Vec::with_capacity(outcomes.len());
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("lbm_in_transit: rank {rank} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let raw: usize = results.iter().map(|(r, _, _)| r).sum();
    let jpg: usize = results.iter().map(|(_, j, _)| j).sum();
    let mut stats = FrameStats::default();
    for (_, _, s) in &results {
        stats.merge(s);
    }
    println!("saved {} frames x {N} tiles to {}", STEPS / OUTPUT_EVERY, out_dir.display());
    println!("stream stats: {stats}");
    println!(
        "raw vorticity would be {raw} bytes; JPEG tiles are {jpg} bytes — {:.2}% data reduction (Table IV effect)",
        100.0 * (1.0 - jpg as f64 / raw as f64)
    );
    if jpg * 10 >= raw {
        eprintln!("lbm_in_transit: expected at least 10x data reduction");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
