//! Use case 1: parallel visualization of a 3-D medical image stack
//! (paper §IV-A, Figure 2).
//!
//! Generates a synthetic CT phantom ("primate tooth") as a TIFF stack on
//! disk, loads it on 8 in-process ranks three ways — without DDR, with DDR
//! round-robin, and with DDR consecutive — times each, then renders the
//! volume by brick-decomposed direct volume rendering and composites the
//! final image.
//!
//! Both DDR load mappings are linted with `ddrcheck` up front, the
//! universes run with correctness checking on, and any error exits
//! non-zero with its diagnostic.
//!
//! Run with: `cargo run --release --example tiff_stack_dvr`
//! Outputs: `target/tiff_stack_dvr/tooth.ppm` and `tooth.jpg`

use ddr::check::{has_errors, lint_mapping, render_report};
use ddr::core::{DataKind, Descriptor};
use ddr::minimpi::Universe;
use ddr_bench::loader::{load_stack, write_phantom_stack};
use ddr_bench::tiffcase::{layouts, Method};
use std::process::ExitCode;
use std::time::Instant;

const VOL: [usize; 3] = [96, 96, 96];
const NPROCS: usize = 8;

fn main() -> ExitCode {
    let out_dir = std::path::PathBuf::from("target/tiff_stack_dvr");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let stack_dir = out_dir.join("stack");

    // Lint both DDR image-assignment mappings before touching the disk.
    let desc = Descriptor::new(NPROCS, DataKind::D3, 2).expect("descriptor");
    for method in [Method::RoundRobin, Method::Consecutive] {
        let ls = layouts(VOL, NPROCS, method).expect("DDR method has layouts");
        let diags = lint_mapping(&desc, &ls);
        println!("{}", render_report(&format!("ddrcheck {}", method.label()), &diags));
        if has_errors(&diags) {
            eprintln!("tiff_stack_dvr: {} mapping rejected by the plan linter", method.label());
            return ExitCode::FAILURE;
        }
    }

    println!("\nwriting synthetic {}x{}x{} 16-bit TIFF stack…", VOL[0], VOL[1], VOL[2]);
    write_phantom_stack(&stack_dir, VOL).expect("write stack");

    // Load three ways and time them (the Table II comparison in miniature).
    println!("\nloading with {NPROCS} ranks (bricks: 2x2x2):");
    for method in [Method::NoDdr, Method::RoundRobin, Method::Consecutive] {
        let dir = stack_dir.clone();
        let t0 = Instant::now();
        let outcomes = Universe::builder().check(true).run(NPROCS, move |comm| {
            load_stack(comm, &dir, VOL, method).map(|r| r.2).map_err(|e| e.to_string())
        });
        let dt = t0.elapsed();
        let mut results = Vec::with_capacity(outcomes.len());
        for (rank, o) in outcomes.into_iter().enumerate() {
            match o {
                Ok(s) => results.push(s),
                Err(e) => {
                    eprintln!("tiff_stack_dvr: {} rank {rank} failed: {e}", method.label());
                    return ExitCode::FAILURE;
                }
            }
        }
        let reads: usize = results.iter().map(|s| s.images_read).sum();
        let sent: u64 = results.iter().map(|s| s.bytes_sent).sum();
        println!(
            "  {:<18} {:>8.1} ms   {:>4} image reads   {:>9} bytes redistributed",
            method.label(),
            dt.as_secs_f64() * 1e3,
            reads,
            sent
        );
    }

    // Fully distributed DVR: each rank loads (DDR), renders its brick, and
    // the partial images are composited over the communicator at rank 0 —
    // the same load → render → composite pipeline the paper's multi-GPU
    // renderer runs.
    println!("\nrendering and compositing over the communicator…");
    let dir = stack_dir.clone();
    let outcomes = Universe::builder().check(true).run(NPROCS, move |comm| {
        let (block, data, _) =
            load_stack(comm, &dir, VOL, Method::Consecutive).map_err(|e| e.to_string())?;
        let tf = volren::TransferFunction::tooth();
        let brick = volren::render_brick(&data, block.dims, block.offset, &tf);
        volren::composite_gather(comm, 0, VOL[0], VOL[1], &brick).map_err(|e| e.to_string())
    });
    let mut images = Vec::with_capacity(outcomes.len());
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(img) => images.push(img),
            Err(e) => {
                eprintln!("tiff_stack_dvr: render rank {rank} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let image = images.into_iter().flatten().next().expect("rank 0 composited");
    let rgb = image.to_rgb([0, 0, 0]);

    let ppm_path = out_dir.join("tooth.ppm");
    jimage::pnm::write_ppm(&ppm_path, &rgb).expect("write ppm");
    let jpg = jimage::jpeg::encode(&rgb, 90).expect("encode jpeg");
    let jpg_path = out_dir.join("tooth.jpg");
    std::fs::write(&jpg_path, &jpg).expect("write jpeg");

    println!("wrote {} and {}", ppm_path.display(), jpg_path.display());
    println!(
        "raw image {} bytes, jpeg {} bytes ({:.1}x smaller)",
        rgb.data.len(),
        jpg.len(),
        rgb.data.len() as f64 / jpg.len() as f64
    );

    // Sanity: the tooth must actually be visible.
    let center = rgb.get(VOL[0] / 2, VOL[1] / 2);
    if !center.iter().any(|&c| c > 40) {
        eprintln!("tiff_stack_dvr: center pixel is black: {center:?}");
        return ExitCode::FAILURE;
    }
    println!("OK: composited DVR image contains the phantom.");
    ExitCode::SUCCESS
}
