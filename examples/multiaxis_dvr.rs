//! Shaded multi-axis volume rendering of the CT phantom.
//!
//! Renders the synthetic tooth along all three orthographic axes, unshaded
//! and with gradient-based diffuse lighting, writing six JPEGs. Shows the
//! rendering substrate beyond the single fixed view the pipeline tests use.
//!
//! Run with: `cargo run --release --example multiaxis_dvr`
//! Outputs: `target/multiaxis_dvr/tooth_{x,y,z}{,_shaded}.jpg`

use volren::{
    phantom_tooth, render_brick_shaded, render_volume_along, Axis, Lighting, TransferFunction,
};

const DIMS: [usize; 3] = [96, 96, 112];

fn main() {
    let out_dir = std::path::PathBuf::from("target/multiaxis_dvr");
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    println!("generating {}x{}x{} phantom…", DIMS[0], DIMS[1], DIMS[2]);
    let vol = phantom_tooth(DIMS);
    let tf = TransferFunction::tooth();
    let light = Lighting::default();

    for (axis, name) in [(Axis::X, "x"), (Axis::Y, "y"), (Axis::Z, "z")] {
        let flat = render_volume_along(&vol, DIMS, &tf, axis).to_rgb([0, 0, 0]);
        let shaded =
            render_brick_shaded(&vol, DIMS, [0, 0, 0], &tf, axis, light).image.to_rgb([0, 0, 0]);
        for (img, suffix) in [(&flat, ""), (&shaded, "_shaded")] {
            let path = out_dir.join(format!("tooth_{name}{suffix}.jpg"));
            let bytes = jimage::jpeg::encode(img, 90).expect("encode");
            std::fs::write(&path, &bytes).expect("write");
            println!("  {} ({}x{}, {} bytes)", path.display(), img.width, img.height, bytes.len());
        }
        // Shading must not brighten anything and must change the image.
        assert_ne!(flat.data, shaded.data);
    }
    println!("OK: six views written.");
}
