//! Quickstart: the paper's running example **E1** (Figure 1, Table I,
//! Algorithm 1).
//!
//! Four ranks operate on an 8×8 grid. Before redistribution each rank owns
//! two separate 8×1 rows ({rank, rank+4}); afterwards each rank holds one
//! continuous 4×4 quadrant. The example prints the Table I parameter values,
//! performs the redistribution with the three DDR calls, and shows the data
//! movement of Figure 1.
//!
//! Run with: `cargo run --example quickstart`

use ddr::core::papi::{ddr_new_data_descriptor, ddr_reorganize_data, ddr_setup_data_mapping};
use ddr::core::DataKind;
use ddr::minimpi::Universe;

fn main() {
    println!("E1: 4 ranks, 8x8 domain, rows {{r, r+4}} -> 4x4 quadrants\n");
    println!("Table I parameter values (P1 rank, P3 #chunks, P4/P5 owned dims/offsets,");
    println!("P6/P7 needed dims/offset):\n");

    let results = Universe::run(4, |comm| {
        let rank = comm.rank();

        // Algorithm 1, line 1: create the data descriptor.
        let desc = ddr_new_data_descriptor(4, DataKind::D2, std::mem::size_of::<f32>())
            .expect("descriptor");

        // Lines 2-8: describe what this rank owns and what it needs.
        let chunks_own = 2;
        let dims_own = [8, 1, 8, 1];
        let offsets_own = [0, rank, 0, rank + 4];
        let right = rank % 2;
        let bottom = rank / 2;
        let dims_need = [4, 4];
        let offsets_need = [4 * right, 4 * bottom];

        // Line 9: set up the data mapping (collective).
        let plan = ddr_setup_data_mapping(
            comm,
            rank,
            4,
            chunks_own,
            &dims_own,
            &offsets_own,
            &dims_need,
            &offsets_need,
            &desc,
        )
        .expect("mapping");

        // The global grid holds value y*8 + x at column x, row y.
        let row = |y: usize| -> Vec<f32> { (0..8).map(|x| (y * 8 + x) as f32).collect() };
        let data_own = [row(rank), row(rank + 4)];
        let refs: Vec<&[f32]> = data_own.iter().map(|v| v.as_slice()).collect();
        let mut data_need = vec![0f32; 16];

        // Line 10: exchange the data (collective, reusable per time step).
        ddr_reorganize_data(comm, 4, &refs, &mut data_need, &plan).expect("reorganize");

        (rank, offsets_need, plan.num_rounds(), plan.total_sent_bytes(), data_need)
    });

    for (rank, need_off, rounds, sent, _) in &results {
        println!(
            "Rank {rank}: P1={rank} P2=4 P3=2 P4={{[8,1],[8,1]}} P5={{[0,{rank}],[0,{}]}} \
             P6=[4,4] P7=[{},{}]   ({rounds} rounds, {sent} bytes sent)",
            rank + 4,
            need_off[0],
            need_off[1]
        );
    }

    println!("\nQuadrants after redistribution (each 4x4, values are global y*8+x):\n");
    for (rank, _, _, _, quad) in &results {
        println!("Rank {rank}:");
        for y in 0..4 {
            let row: Vec<String> =
                (0..4).map(|x| format!("{:>2}", quad[y * 4 + x] as usize)).collect();
            println!("   {}", row.join(" "));
        }
    }

    // Verify against Figure 1's right-hand grid.
    for (rank, need_off, _, _, quad) in &results {
        for y in 0..4 {
            for x in 0..4 {
                let expect = ((need_off[1] + y) * 8 + need_off[0] + x) as f32;
                assert_eq!(quad[y * 4 + x], expect, "rank {rank} at ({x},{y})");
            }
        }
    }
    println!("\nOK: every rank holds exactly its quadrant of the domain.");
}
