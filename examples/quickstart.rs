//! Quickstart: the paper's running example **E1** (Figure 1, Table I,
//! Algorithm 1).
//!
//! Four ranks operate on an 8×8 grid. Before redistribution each rank owns
//! two separate 8×1 rows ({rank, rank+4}); afterwards each rank holds one
//! continuous 4×4 quadrant. The example prints the Table I parameter values,
//! performs the redistribution with the three DDR calls, and shows the data
//! movement of Figure 1.
//!
//! The mapping is linted with `ddrcheck` before any rank starts, and the
//! universe runs with correctness checking on; if either reports an error
//! the example prints the diagnostic and exits non-zero.
//!
//! Run with: `cargo run --example quickstart`

use ddr::check::{has_errors, lint_mapping, render_report};
use ddr::core::papi::{ddr_new_data_descriptor, ddr_reorganize_data, ddr_setup_data_mapping};
use ddr::core::{Block, DataKind, DdrError, Descriptor, Layout};
use ddr::minimpi::Universe;
use std::process::ExitCode;

fn e1_layouts() -> Vec<Layout> {
    (0..4usize)
        .map(|r| Layout {
            owned: vec![Block::d2([0, r], [8, 1]).unwrap(), Block::d2([0, r + 4], [8, 1]).unwrap()],
            need: Block::d2([4 * (r % 2), 4 * (r / 2)], [4, 4]).unwrap(),
        })
        .collect()
}

type RankResult = (usize, [usize; 2], usize, u64, Vec<f32>);

fn rank_body(comm: &ddr::minimpi::Comm) -> Result<RankResult, DdrError> {
    let rank = comm.rank();

    // Algorithm 1, line 1: create the data descriptor.
    let desc = ddr_new_data_descriptor(4, DataKind::D2, std::mem::size_of::<f32>())?;

    // Lines 2-8: describe what this rank owns and what it needs.
    let chunks_own = 2;
    let dims_own = [8, 1, 8, 1];
    let offsets_own = [0, rank, 0, rank + 4];
    let right = rank % 2;
    let bottom = rank / 2;
    let dims_need = [4, 4];
    let offsets_need = [4 * right, 4 * bottom];

    // Line 9: set up the data mapping (collective).
    let plan = ddr_setup_data_mapping(
        comm,
        rank,
        4,
        chunks_own,
        &dims_own,
        &offsets_own,
        &dims_need,
        &offsets_need,
        &desc,
    )?;

    // The global grid holds value y*8 + x at column x, row y.
    let row = |y: usize| -> Vec<f32> { (0..8).map(|x| (y * 8 + x) as f32).collect() };
    let data_own = [row(rank), row(rank + 4)];
    let refs: Vec<&[f32]> = data_own.iter().map(|v| v.as_slice()).collect();
    let mut data_need = vec![0f32; 16];

    // Line 10: exchange the data (collective, reusable per time step).
    ddr_reorganize_data(comm, 4, &refs, &mut data_need, &plan)?;

    Ok((rank, offsets_need, plan.num_rounds(), plan.total_sent_bytes(), data_need))
}

fn main() -> ExitCode {
    println!("E1: 4 ranks, 8x8 domain, rows {{r, r+4}} -> 4x4 quadrants\n");

    // Static analysis first: lint the mapping before any rank exists. An
    // error-severity finding means the plan must not run.
    let desc = Descriptor::for_type::<f32>(4, DataKind::D2).expect("descriptor");
    let diags = lint_mapping(&desc, &e1_layouts());
    println!("{}\n", render_report("ddrcheck e1 mapping", &diags));
    if has_errors(&diags) {
        eprintln!("quickstart: mapping rejected by the plan linter");
        return ExitCode::FAILURE;
    }

    println!("Table I parameter values (P1 rank, P3 #chunks, P4/P5 owned dims/offsets,");
    println!("P6/P7 needed dims/offset):\n");

    // Runtime checking on: collective matching + deadlock detection.
    let outcomes = Universe::builder().check(true).run(4, rank_body);
    let mut results = Vec::with_capacity(outcomes.len());
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("quickstart: rank {rank} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for (rank, need_off, rounds, sent, _) in &results {
        println!(
            "Rank {rank}: P1={rank} P2=4 P3=2 P4={{[8,1],[8,1]}} P5={{[0,{rank}],[0,{}]}} \
             P6=[4,4] P7=[{},{}]   ({rounds} rounds, {sent} bytes sent)",
            rank + 4,
            need_off[0],
            need_off[1]
        );
    }

    println!("\nQuadrants after redistribution (each 4x4, values are global y*8+x):\n");
    for (rank, _, _, _, quad) in &results {
        println!("Rank {rank}:");
        for y in 0..4 {
            let row: Vec<String> =
                (0..4).map(|x| format!("{:>2}", quad[y * 4 + x] as usize)).collect();
            println!("   {}", row.join(" "));
        }
    }

    // Verify against Figure 1's right-hand grid.
    for (rank, need_off, _, _, quad) in &results {
        for y in 0..4 {
            for x in 0..4 {
                let expect = ((need_off[1] + y) * 8 + need_off[0] + x) as f32;
                if quad[y * 4 + x] != expect {
                    eprintln!("quickstart: rank {rank} holds wrong data at ({x},{y})");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("\nOK: every rank holds exactly its quadrant of the domain.");
    ExitCode::SUCCESS
}
