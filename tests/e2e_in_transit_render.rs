//! Cross-crate end-to-end test of use case 2 through the facade crate:
//! distributed LBM → M-to-N streaming → DDR repartition → colormap → JPEG,
//! checking both numerical fidelity and that the saved image depicts the
//! physics (vortex street downstream of the barrier).

use ddr::core::Block;
use ddr::lbm::{barrier_line, Config, DistributedLbm, Lattice};
use ddr::minimpi::Universe;
use intransit::{
    analysis_block, consumer_sources, producer_targets, recv_frames, send_frame, split_resources,
    Repartitioner, Role,
};
use jimage::{jpeg, Colormap, RgbImage};

const M: usize = 5;
const N: usize = 3;
const NX: usize = 96;
const NY: usize = 48;
const STEPS: usize = 400;

#[test]
fn streamed_render_equals_local_render() {
    let cfg = Config::wind_tunnel(NX, NY);

    // Reference: serial simulation rendered directly.
    let barrier = barrier_line(NX / 4, NY / 3, 2 * NY / 3);
    let mut lat = Lattice::new(cfg, 0, NY, &barrier);
    for _ in 0..STEPS {
        lat.step_serial();
    }
    let ref_field = lat.vorticity(None, None);
    let ref_img =
        RgbImage::from_scalar_field(NX, NY, &ref_field, -0.1, 0.1, &Colormap::blue_white_red());

    // Streamed: M sim ranks -> N analysis ranks, stitched back together.
    let tiles = Universe::run(M + N, |world| {
        let barrier = barrier_line(NX / 4, NY / 3, 2 * NY / 3);
        let (role, group) = split_resources(world, M).unwrap();
        match role {
            Role::Simulation => {
                let mut sim = DistributedLbm::new(cfg, &group, &barrier);
                for _ in 0..STEPS {
                    sim.step(&group).unwrap();
                }
                let (y0, rows) = sim.slab();
                let vort = sim.vorticity(&group).unwrap();
                let block = Block::d2([0, y0], [NX, rows]).unwrap();
                let dest = M + producer_targets(M, N)[group.rank()];
                send_frame(world, dest, STEPS as u64, block, vort).unwrap();
                None
            }
            Role::Analysis => {
                let c = group.rank();
                let need = analysis_block(NX, NY, N, c).unwrap();
                let mut rep = Repartitioner::new(need);
                let frames =
                    recv_frames(world, &consumer_sources(M, N, c), Some(STEPS as u64)).unwrap();
                let field = rep.redistribute(&group, &frames).unwrap();
                Some((need, field))
            }
        }
    });

    let mut stitched = vec![0f32; NX * NY];
    for t in tiles.into_iter().flatten() {
        let (need, field) = t;
        for (v, co) in field.iter().zip(need.coords()) {
            stitched[co[1] * NX + co[0]] = *v;
        }
    }
    assert_eq!(stitched, ref_field, "streamed field differs from serial");

    let streamed_img =
        RgbImage::from_scalar_field(NX, NY, &stitched, -0.1, 0.1, &Colormap::blue_white_red());
    assert_eq!(streamed_img, ref_img);

    // The physics must be visible after JPEG: both rotation senses occur
    // downstream of the barrier (a shedding vortex street), so the decoded
    // image contains reddish and bluish pixels right of the obstacle.
    let decoded = jpeg::decode(&jpeg::encode(&streamed_img, 85).unwrap()).unwrap();
    let mut has_red = false;
    let mut has_blue = false;
    for y in 0..NY {
        for x in NX / 4..NX {
            let [r, _, b] = decoded.get(x, y);
            if r > 200 && b < 160 {
                has_red = true;
            }
            if b > 200 && r < 160 {
                has_blue = true;
            }
        }
    }
    assert!(has_red && has_blue, "vortex street not visible (red {has_red}, blue {has_blue})");
}
