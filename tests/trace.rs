//! End-to-end tests of the tracing plane: a traced redistribution must emit
//! valid, well-formed Chrome trace JSON, and tracing-off must cost nothing
//! measurable.

use ddr::core::{decompose, DataKind, Descriptor, Strategy, ValidationPolicy};
use ddr::minimpi::Universe;
use ddr::trace::json::{self, Value};
use std::sync::Mutex;
use std::time::Instant;

/// The tracing plane is process-global (one capture window at a time), so
/// tests in this binary must not capture concurrently.
static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

const NPROCS: usize = 4;

/// One slab→slab redistribution of a `dim x dim` u64 grid across 4 ranks.
fn redistribute_once(builder: minimpi::UniverseBuilder, dim: usize, iters: usize) {
    builder.run(NPROCS, move |comm| {
        let r = comm.rank();
        let desc = Descriptor::for_type::<u64>(NPROCS, DataKind::D2).unwrap();
        let domain = ddr::core::Block::d2([0, 0], [dim, dim]).unwrap();
        let owned = [decompose::slab(&domain, 1, NPROCS, r).unwrap()];
        let need = decompose::slab(&domain, 0, NPROCS, r).unwrap();
        let plan =
            desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Strict).unwrap();
        let data: Vec<u64> = (0..owned[0].count()).collect();
        let mut out = vec![0u64; need.count() as usize];
        for _ in 0..iters {
            let (report, _) =
                plan.reorganize_with_stats(comm, &[&data], &mut out, Strategy::Alltoallw).unwrap();
            assert!(report.is_complete());
        }
    });
}

#[test]
fn traced_run_emits_valid_chrome_json_with_all_ranks() {
    let _serial = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join("ddr-trace-golden-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let _ = std::fs::remove_file(&path);

    redistribute_once(Universe::builder().trace(&path), 64, 2);

    let src = std::fs::read_to_string(&path).expect("trace file must exist");
    let doc = json::parse(&src).expect("trace must be valid JSON");
    let events =
        doc.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array present");

    // Every rank contributes a named track...
    let mut rank_tracks = std::collections::BTreeSet::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("M") {
            if let Some(name) = e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()) {
                if let Some(r) = name.strip_prefix("rank-") {
                    rank_tracks.insert(r.parse::<usize>().unwrap());
                }
            }
        }
    }
    assert_eq!(rank_tracks, (0..NPROCS).collect(), "expected one named track per rank");

    // ...the expected phases appear as complete events...
    let span_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in ["rank_body", "setup_mapping", "reorganize", "round", "alltoallw"] {
        assert!(span_names.contains(expected), "missing span {expected:?} in {span_names:?}");
    }

    // ...spans nest: each rank's phases lie within its rank_body envelope.
    let span_of = |e: &Value| -> Option<(u32, f64, f64, String)> {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            return None;
        }
        let tid = e.get("tid").and_then(|t| t.as_f64())? as u32;
        let ts = e.get("ts").and_then(|t| t.as_f64())?;
        let dur = e.get("dur").and_then(|d| d.as_f64())?;
        let name = e.get("name").and_then(|n| n.as_str())?.to_string();
        Some((tid, ts, dur, name))
    };
    let spans: Vec<_> = events.iter().filter_map(span_of).collect();
    for rank in 0..NPROCS as u32 {
        let body = spans
            .iter()
            .find(|(tid, _, _, name)| *tid == rank && name == "rank_body")
            .expect("each rank records rank_body");
        for (tid, ts, dur, name) in &spans {
            if *tid == rank && name != "rank_body" {
                assert!(
                    *ts >= body.1 && ts + dur <= body.1 + body.2 + 1e-3,
                    "rank {rank}: span {name} [{ts}, {}] escapes rank_body [{}, {}]",
                    ts + dur,
                    body.1,
                    body.1 + body.2
                );
            }
        }
    }

    // The unified metrics registry made it into the file.
    let metrics = doc.get("metrics").and_then(|m| m.as_object()).expect("metrics object");
    assert!(
        metrics.keys().any(|k| k.starts_with("redist.")),
        "expected redist.* metrics, got {:?}",
        metrics.keys().collect::<Vec<_>>()
    );
    assert!(
        metrics.keys().any(|k| k.starts_with("minimpi.")),
        "expected minimpi.* metrics, got {:?}",
        metrics.keys().collect::<Vec<_>>()
    );
}

/// With tracing off, every instrumentation site costs one relaxed atomic
/// load. Measure that cost directly and bound a generous estimate of sites
/// hit per redistribution against 1% of the measured redistribution time —
/// a guard that keeps failing if someone makes the disabled path allocate,
/// lock, or write to the ring.
#[test]
fn tracing_off_adds_less_than_one_percent() {
    let _serial = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!ddr::trace::enabled(), "tracing must be off for the overhead guard");

    // Per-site cost while disabled: span creation + drop and an instant.
    let measure_per_site = || {
        const OPS: u32 = 200_000;
        let start = Instant::now();
        for i in 0..OPS {
            let g = ddr::trace::span_arg("bench", "disabled", "i", i as i64);
            std::hint::black_box(&g);
            drop(g);
            ddr::trace::instant("bench", "disabled");
        }
        start.elapsed().as_secs_f64() / (2.0 * OPS as f64)
    };

    // The exact number of instrumentation sites this workload hits: run it
    // once traced and count the events (no guessing).
    ddr::trace::capture::start();
    redistribute_once(Universe::builder().zerocopy(false), 256, 8);
    let sites = ddr::trace::capture::stop().events.len() as f64;
    assert!(sites > 0.0, "traced run must record events");

    // One staged redistribution of a 256x256 u64 grid (512 KiB per slab,
    // ~4 MiB of traffic over the 8-iteration loop), median of 5, untraced.
    let measure = || {
        let start = Instant::now();
        redistribute_once(Universe::builder().zerocopy(false), 256, 8);
        start.elapsed().as_secs_f64()
    };
    measure(); // warm up thread spawn, pool, allocator
    let median_redistribution = || {
        let mut samples: Vec<f64> = (0..5).map(|_| measure()).collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };

    // The documented bound is <1% in optimized builds; debug builds pay an
    // order of magnitude more per atomic load (nothing inlines), so the
    // guard loosens there while still catching a disabled path that
    // allocates, locks, or writes the ring (all of which cost far more).
    // Both sides are wall-clock microbenchmarks, so a loaded CI runner can
    // jitter one attempt past the bound: re-measure a few times and fail
    // only if every attempt blows the budget — a real regression (an
    // allocation, a lock, a ring write on the disabled path) costs orders
    // of magnitude more and fails all of them.
    let budget = if cfg!(debug_assertions) { 0.10 } else { 0.01 };
    const ATTEMPTS: usize = 3;
    let mut worst = (f64::INFINITY, 0.0, 0.0); // (per_site, overhead, median)
    for _ in 0..ATTEMPTS {
        let per_site = measure_per_site();
        let median = median_redistribution();
        let overhead = per_site * sites;
        if overhead < median * budget {
            return;
        }
        worst = (per_site, overhead, median);
    }
    let (per_site, overhead, median) = worst;
    panic!(
        "disabled instrumentation too expensive in all {ATTEMPTS} attempts: \
         {sites} sites x {:.1} ns = {:.4} ms vs {:.0}% of redistribution ({:.4} ms)",
        per_site * 1e9,
        overhead * 1e3,
        budget * 100.0,
        median * budget * 1e3
    );
}

/// The same guard for the concurrency checker: with checking off the checker
/// is simply absent (`Option::None`), so every hook — send stamping, type
/// verification, delivery notes, scheduler points, and the public
/// [`minimpi::Comm::check_write`] annotation API — reduces to one
/// discriminant test. Measure that disabled per-call cost directly and bound
/// a generous estimate of hooks hit per redistribution against the same
/// budget as the tracing guard.
#[test]
fn checking_off_adds_less_than_one_percent() {
    let _serial = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Per-hook cost while disabled, measured through the public annotation
    // API on a check-off universe: check_write without a checker takes the
    // same `None` branch every internal hook compiles to.
    let measure_per_hook = || {
        Universe::run(1, |comm| {
            assert!(comm.check_counters().is_none(), "checking must be off for this guard");
            const OPS: u32 = 200_000;
            let buf = [0u8; 64];
            let start = Instant::now();
            for _ in 0..OPS {
                std::hint::black_box(comm.check_write(&buf)).unwrap();
            }
            start.elapsed().as_secs_f64() / OPS as f64
        })[0]
    };

    // Hooks hit per redistribution: each traced event sits near a handful of
    // check guards, so count the events once and over-provision eight
    // guards per event.
    ddr::trace::capture::start();
    redistribute_once(Universe::builder().zerocopy(false), 256, 8);
    let hooks = 8.0 * ddr::trace::capture::stop().events.len() as f64;
    assert!(hooks > 0.0, "traced run must record events");

    let measure = || {
        let start = Instant::now();
        redistribute_once(Universe::builder().zerocopy(false), 256, 8);
        start.elapsed().as_secs_f64()
    };
    measure(); // warm up thread spawn, pool, allocator
    let median_redistribution = || {
        let mut samples: Vec<f64> = (0..5).map(|_| measure()).collect();
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };

    // Same budget and retry policy as the tracing guard: wall-clock
    // microbenchmarks jitter on loaded runners, but a disabled path that
    // grows a lock, an allocation, or a clock update costs orders of
    // magnitude more than the budget and fails every attempt.
    let budget = if cfg!(debug_assertions) { 0.10 } else { 0.01 };
    const ATTEMPTS: usize = 3;
    let mut worst = (f64::INFINITY, 0.0, 0.0); // (per_hook, overhead, median)
    for _ in 0..ATTEMPTS {
        let per_hook = measure_per_hook();
        let median = median_redistribution();
        let overhead = per_hook * hooks;
        if overhead < median * budget {
            return;
        }
        worst = (per_hook, overhead, median);
    }
    let (per_hook, overhead, median) = worst;
    panic!(
        "disabled checking too expensive in all {ATTEMPTS} attempts: \
         {hooks} hooks x {:.1} ns = {:.4} ms vs {:.0}% of redistribution ({:.4} ms)",
        per_hook * 1e9,
        overhead * 1e3,
        budget * 100.0,
        median * budget * 1e3
    );
}
