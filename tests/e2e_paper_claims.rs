//! Tests pinning the quantitative claims of the paper that this
//! reproduction derives exactly (not modelled): Table III's communication
//! schedule, the E1 example, and the qualitative claims of Tables II/IV.

use ddr_bench::tiffcase::{
    images_read_per_rank, project, schedule, Method, PAPER_ELEM, PAPER_SCALES, PAPER_VOLUME,
};
use ddr_netsim::ClusterSpec;

#[test]
fn table3_round_counts_are_exact() {
    // Rounds = ceil(4096 images / P) for round-robin, 1 for consecutive.
    let expected = [(27usize, 152usize), (64, 64), (125, 33), (216, 19)];
    for (p, rr_rounds) in expected {
        assert_eq!(schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin).rounds, rr_rounds);
        assert_eq!(schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive).rounds, 1);
    }
}

#[test]
fn table3_round_robin_data_size_is_flat_about_32mb() {
    // "the data size per process per round remains constant" — one image
    // minus what stays local, ~31-32 MB at every scale.
    for &p in &PAPER_SCALES {
        let s = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin);
        assert!(
            (s.mean_mb_per_rank_per_round - 32.0).abs() < 2.0,
            "at {p}: {}",
            s.mean_mb_per_rank_per_round
        );
    }
}

#[test]
fn table3_consecutive_data_size_shrinks_with_scale() {
    // 4315 MB at 27 ranks down to ~590 MB at 216 — a 7.3x drop.
    let m27 =
        schedule(PAPER_VOLUME, PAPER_ELEM, 27, Method::Consecutive).mean_mb_per_rank_per_round;
    let m216 =
        schedule(PAPER_VOLUME, PAPER_ELEM, 216, Method::Consecutive).mean_mb_per_rank_per_round;
    assert!(m27 > 4000.0 && m27 < 4700.0, "{m27}");
    assert!(m216 > 550.0 && m216 < 680.0, "{m216}");
    assert!((m27 / m216 - 7.3).abs() < 0.7);
}

#[test]
fn table2_headline_speedup_reproduced() {
    // "nearly a 25X I/O speed-up" at 216 ranks.
    let cluster = ClusterSpec::cooley();
    let base = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::NoDdr, &cluster).total();
    let best = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::Consecutive, &cluster).total();
    let speedup = base / best;
    assert!(speedup > 15.0, "speedup only {speedup:.1}x");
}

#[test]
fn table2_crossover_between_round_robin_and_consecutive() {
    // "At small scale, the round-robin method outperforms the consecutive
    // method … this trend reverses at larger scales."
    let cluster = ClusterSpec::cooley();
    let rr = |p| project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, &cluster).total();
    let cons = |p| project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, &cluster).total();
    assert!(rr(27) < cons(27));
    assert!(cons(216) < rr(216));
}

#[test]
fn ddr_eliminates_redundant_reads_at_every_scale() {
    // Without DDR the total number of image decodes is c^2 times larger
    // (every image is decoded by one full xy-layer of bricks).
    for &p in &PAPER_SCALES {
        let c = (p as f64).cbrt().round() as usize;
        let no_ddr: usize =
            (0..p).map(|r| images_read_per_rank(PAPER_VOLUME, p, Method::NoDdr, r)).sum();
        let ddr: usize =
            (0..p).map(|r| images_read_per_rank(PAPER_VOLUME, p, Method::Consecutive, r)).sum();
        assert_eq!(ddr, 4096);
        assert_eq!(no_ddr, c * c * 4096, "no-ddr reads at {p}");
    }
}

#[test]
fn no_ddr_strong_scales_poorly() {
    // Figure 3: the No-DDR curve is nearly flat (165-283 s) while DDR drops
    // by ~7x over the same range.
    let cluster = ClusterSpec::cooley();
    let nd = |p| project(PAPER_VOLUME, PAPER_ELEM, p, Method::NoDdr, &cluster).total();
    let cons = |p| project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, &cluster).total();
    let no_ddr_ratio = nd(27) / nd(216);
    let ddr_ratio = cons(27) / cons(216);
    assert!(no_ddr_ratio < 2.0, "no-ddr scaled {no_ddr_ratio:.1}x over 8x ranks");
    assert!(ddr_ratio > 4.0, "ddr scaled only {ddr_ratio:.1}x over 8x ranks");
}
