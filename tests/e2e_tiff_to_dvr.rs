//! Cross-crate end-to-end test of use case 1: a TIFF stack on disk is
//! loaded with DDR on real rank threads, redistributed into bricks, each
//! brick is volume-rendered, and the composite must equal a single-pass
//! render of the original volume.

use ddr::minimpi::Universe;
use ddr_bench::loader::{load_stack, write_phantom_stack};
use ddr_bench::tiffcase::Method;
use volren::{composite, render_brick, render_volume, TransferFunction};

const VOL: [usize; 3] = [32, 32, 24];

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ddr_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn stack_to_composited_dvr_matches_serial_render() {
    let dir = tmpdir("dvr");
    write_phantom_stack(&dir, VOL).unwrap();
    let tf = TransferFunction::tooth();

    // Serial reference: decode the stack directly and render in one pass.
    let mut reference_vol = Vec::with_capacity(VOL[0] * VOL[1] * VOL[2]);
    for z in 0..VOL[2] {
        let img = ddr::dtiff::read_stack_slice(&dir, z).unwrap();
        for i in 0..img.data.len() {
            reference_vol.push((img.data.get_f64(i) / 65535.0) as f32);
        }
    }
    let reference = render_volume(&reference_vol, VOL, &tf);

    for (nprocs, method) in
        [(8usize, Method::Consecutive), (6, Method::RoundRobin), (4, Method::NoDdr)]
    {
        let dir2 = dir.clone();
        let tf_ref = &tf;
        let bricks = Universe::run(nprocs, move |comm| {
            let (block, data, _) = load_stack(comm, &dir2, VOL, method).unwrap();
            render_brick(&data, block.dims, block.offset, tf_ref)
        });
        let image = composite(VOL[0], VOL[1], bricks);
        let max_diff =
            image.data.iter().zip(&reference.data).map(|(a, b)| (a - b).abs()).fold(0f32, f32::max);
        assert!(max_diff < 1e-4, "{method:?} on {nprocs} ranks: composite differs by {max_diff}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dvr_output_survives_jpeg_roundtrip() {
    // The full output path: composite -> RGB -> JPEG -> decode, with the
    // phantom still recognizable (center bright, corners dark).
    let data = volren::phantom_tooth(VOL);
    let tf = TransferFunction::tooth();
    let rgb = render_volume(&data, VOL, &tf).to_rgb([0, 0, 0]);
    let jpeg = ddr::jimage::jpeg::encode(&rgb, 85).unwrap();
    assert!(jpeg.len() < rgb.data.len() / 2);
    let back = ddr::jimage::jpeg::decode(&jpeg).unwrap();
    let center = back.get(VOL[0] / 2, VOL[1] / 2);
    let corner = back.get(0, 0);
    assert!(center.iter().any(|&c| c > 40), "center {center:?}");
    assert!(corner.iter().all(|&c| c < 40), "corner {corner:?}");
}
