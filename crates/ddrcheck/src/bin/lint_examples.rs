//! CI gate: lint every catalogued example layout and fail on errors.
//!
//! Run with: `cargo run --release -p ddrcheck --bin lint_examples`
//!
//! Prints one report per catalog entry and exits non-zero if any entry has
//! an error-severity finding, so a decomposition regression in an example
//! fails the build instead of shipping a plan with holes or overlaps.

use ddrcheck::{examples, has_errors, lint_mapping, render_report, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cases = examples::catalog();
    println!("ddrcheck: linting {} example scenario(s)\n", cases.len());

    let mut failed = 0usize;
    let mut warned = 0usize;
    for case in &cases {
        let diags = lint_mapping(&case.descriptor(), &case.layouts());
        println!("{}", render_report(&case.name, &diags));
        if has_errors(&diags) {
            failed += 1;
        } else if diags.iter().any(|d| d.severity == Severity::Warning) {
            warned += 1;
        }
    }

    println!(
        "\n{} scenario(s): {} clean, {} with warnings, {} with errors",
        cases.len(),
        cases.len() - failed - warned,
        warned,
        failed
    );
    if failed > 0 {
        eprintln!("ddrcheck: FAILED — {failed} scenario(s) have error-severity findings");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
