//! CI gate: lint every catalogued example layout and fail on errors.
//!
//! Run with: `cargo run --release -p ddrcheck --bin lint_examples`
//!
//! Prints one report per catalog entry and exits non-zero if any entry has
//! an error-severity finding, so a decomposition regression in an example
//! fails the build instead of shipping a plan with holes or overlaps.
//!
//! Each entry is also checked against the peak-staging predictor
//! ([`ddrcheck::lint_staging`]): the bound comes from
//! `DDR_LINT_STAGING_BOUND` (bytes, default 64 MiB) and findings are
//! warnings — they show up in the report without failing the gate. When
//! `DDR_MEM_BUDGET` is set, the memory-governor predictor
//! ([`ddrcheck::lint_memory`]) runs too, forecasting whether a pipelined
//! execution fits the budget (window overflows are warnings; a transfer no
//! budget could ever admit is an error and fails the gate).

use ddrcheck::{
    examples, has_errors, lint_mapping, lint_memory, lint_staging, render_report, Severity,
};
use std::process::ExitCode;

/// Staging-footprint bound for the catalog: `DDR_LINT_STAGING_BOUND`
/// (bytes), default 64 MiB.
fn staging_bound() -> u64 {
    std::env::var("DDR_LINT_STAGING_BOUND")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64 * 1024 * 1024)
}

/// Memory-governor budget to forecast against: `DDR_MEM_BUDGET` (bytes),
/// 0 (skip the pass) when unset — mirroring the runtime default.
fn mem_budget() -> u64 {
    std::env::var("DDR_MEM_BUDGET").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn main() -> ExitCode {
    let cases = examples::catalog();
    let bound = staging_bound();
    let budget = mem_budget();
    println!("ddrcheck: linting {} example scenario(s) (staging bound {bound} B)\n", cases.len());

    let mut failed = 0usize;
    let mut warned = 0usize;
    for case in &cases {
        let layouts = case.layouts();
        let desc = case.descriptor();
        let mut diags = lint_mapping(&desc, &layouts);
        if !has_errors(&diags) {
            let plans: Vec<_> = (0..layouts.len())
                .map(|r| {
                    ddr_core::compute_local_plan(r, &layouts, &desc)
                        .expect("lint_mapping passed, so plans must compute")
                })
                .collect();
            diags.extend(lint_staging(&plans, bound));
            diags.extend(lint_memory(&plans, ddr_core::pipeline_depth(), budget));
        }
        println!("{}", render_report(&case.name, &diags));
        if has_errors(&diags) {
            failed += 1;
        } else if diags.iter().any(|d| d.severity == Severity::Warning) {
            warned += 1;
        }
    }

    println!(
        "\n{} scenario(s): {} clean, {} with warnings, {} with errors",
        cases.len(),
        cases.len() - failed - warned,
        warned,
        failed
    );
    if failed > 0 {
        eprintln!("ddrcheck: FAILED — {failed} scenario(s) have error-severity findings");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
