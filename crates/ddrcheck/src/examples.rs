//! Catalog of the redistribution layouts used by the repository's runnable
//! examples, reconstructed from the same [`ddr_core::decompose`] helpers the
//! examples themselves use.
//!
//! The `lint_examples` binary lints every entry; CI runs it so a change to
//! an example's decomposition that introduces a coverage hole, ownership
//! overlap, or byte asymmetry fails the build before anyone runs the
//! example. `examples/multiaxis_dvr.rs` is absent by design (it performs no
//! DDR mapping), and `examples/ghost_exchange.rs` uses the multi-need API
//! whose overlapping needs are outside the single-need linter's model.

use ddr_core::decompose::{
    brick, near_cubic_grid, near_square_grid, round_robin_items, slab, split_axis,
};
use ddr_core::{Block, DataKind, Descriptor, Layout};

/// One example's redistribution scenario: everything needed to recompute
/// and lint its plans offline.
pub struct ExampleCase {
    /// Catalog name, `<example file>/<variant>`.
    pub name: String,
    /// Number of ranks participating in the mapping.
    pub nprocs: usize,
    /// Dimensionality of the data.
    pub kind: DataKind,
    /// Bytes per element.
    pub elem_size: usize,
    /// Per-rank declared layouts, index = rank.
    pub layouts: Vec<Layout>,
}

impl ExampleCase {
    /// The descriptor every rank of this example would construct.
    pub fn descriptor(&self) -> Descriptor {
        Descriptor::new(self.nprocs, self.kind, self.elem_size)
            .expect("catalog descriptor is well-formed")
    }

    /// The declared layouts (index = rank).
    pub fn layouts(&self) -> Vec<Layout> {
        self.layouts.clone()
    }
}

/// `examples/quickstart.rs` — the paper's E1: 4 ranks each own rows
/// `{r, r+4}` of an 8×8 f32 grid and need one 4×4 quadrant (Figure 1).
fn quickstart() -> ExampleCase {
    let layouts = (0..4usize)
        .map(|r| Layout {
            owned: vec![Block::d2([0, r], [8, 1]).unwrap(), Block::d2([0, r + 4], [8, 1]).unwrap()],
            need: Block::d2([4 * (r % 2), 4 * (r / 2)], [4, 4]).unwrap(),
        })
        .collect();
    ExampleCase {
        name: "quickstart/e1".into(),
        nprocs: 4,
        kind: DataKind::D2,
        elem_size: 4,
        layouts,
    }
}

/// `examples/dynamic_remap.rs` — 6 ranks over a 64×64×48 f32 volume; owned
/// is a z-slab, need is either a dense brick of the 3×2×1 grid or (the
/// sparse variant) the next rank's z-slab.
fn dynamic_remap(sparse: bool) -> ExampleCase {
    const NPROCS: usize = 6;
    let domain = Block::d3([0, 0, 0], [64, 64, 48]).unwrap();
    let layouts = (0..NPROCS)
        .map(|r| Layout {
            owned: vec![slab(&domain, 2, NPROCS, r).unwrap()],
            need: if sparse {
                slab(&domain, 2, NPROCS, (r + 1) % NPROCS).unwrap()
            } else {
                brick(&domain, [3, 2, 1], r).unwrap()
            },
        })
        .collect();
    ExampleCase {
        name: format!("dynamic_remap/{}", if sparse { "sparse" } else { "dense" }),
        nprocs: NPROCS,
        kind: DataKind::D3,
        elem_size: 4,
        layouts,
    }
}

/// `examples/lbm_in_transit.rs` — the analysis side of the 10→4 fan-in:
/// analysis rank `c` owns the y-slabs its simulation sources streamed
/// (one frame per source, so one chunk each) and needs one brick of the
/// near-square grid over the 640×256 vorticity field.
fn lbm_in_transit() -> ExampleCase {
    const M: usize = 10;
    const N: usize = 4;
    const NX: usize = 640;
    const NY: usize = 256;
    let (cols, rows) = near_square_grid(N);
    let domain = Block::d2([0, 0], [NX, NY]).unwrap();
    let layouts = (0..N)
        .map(|c| {
            // consumer_sources(M, N, c): the contiguous run of simulation
            // ranks that stream to analysis rank c.
            let base = M / N;
            let extra = M % N;
            let start = c * base + c.min(extra);
            let count = base + usize::from(c < extra);
            let owned = (start..start + count)
                .map(|s| {
                    let (y0, nrows) = split_axis(NY, M, s);
                    Block::d2([0, y0], [NX, nrows]).unwrap()
                })
                .collect();
            Layout { owned, need: brick(&domain, [cols, rows, 1], c).unwrap() }
        })
        .collect();
    ExampleCase {
        name: "lbm_in_transit/analysis".into(),
        nprocs: N,
        kind: DataKind::D2,
        elem_size: 4,
        layouts,
    }
}

/// `examples/tiff_stack_dvr.rs` — 8 ranks load a 96³ 16-bit volume from a
/// TIFF stack: owned is the per-image z-plane assignment (round-robin keeps
/// every image a separate chunk; consecutive groups each rank's run into
/// one slab), need is this rank's rendering brick of the near-cubic grid.
fn tiff_stack_dvr(round_robin: bool) -> ExampleCase {
    const NPROCS: usize = 8;
    const VOL: [usize; 3] = [96, 96, 96];
    let domain = Block::d3([0, 0, 0], VOL).unwrap();
    let counts = near_cubic_grid(NPROCS);
    let image = |z: usize| Block::d3([0, 0, z], [VOL[0], VOL[1], 1]);
    let layouts = (0..NPROCS)
        .map(|r| {
            let owned = if round_robin {
                round_robin_items(VOL[2], NPROCS, r, image).unwrap()
            } else {
                let (z0, n) = split_axis(VOL[2], NPROCS, r);
                vec![Block::d3([0, 0, z0], [VOL[0], VOL[1], n]).unwrap()]
            };
            Layout { owned, need: brick(&domain, counts, r).unwrap() }
        })
        .collect();
    ExampleCase {
        name: format!("tiff_stack_dvr/{}", if round_robin { "round_robin" } else { "consecutive" }),
        nprocs: NPROCS,
        kind: DataKind::D3,
        elem_size: 2,
        layouts,
    }
}

/// Every catalogued example scenario, in the order the examples appear in
/// the repository's README.
pub fn catalog() -> Vec<ExampleCase> {
    vec![
        quickstart(),
        dynamic_remap(false),
        dynamic_remap(true),
        lbm_in_transit(),
        tiff_stack_dvr(true),
        tiff_stack_dvr(false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enforce, lint_mapping};

    #[test]
    fn every_catalog_entry_lints_clean() {
        for case in catalog() {
            let diags = lint_mapping(&case.descriptor(), &case.layouts());
            assert!(
                enforce(&diags).is_ok(),
                "{} has lint errors:\n{}",
                case.name,
                crate::render_report(&case.name, &diags)
            );
        }
    }

    #[test]
    fn catalog_names_are_unique_and_layout_counts_match() {
        let cases = catalog();
        let mut names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len(), "duplicate catalog names");
        for case in &cases {
            assert_eq!(case.layouts.len(), case.nprocs, "{}", case.name);
        }
    }

    #[test]
    fn round_robin_case_has_one_chunk_per_image() {
        let case = tiff_stack_dvr(true);
        // 96 images over 8 ranks: 12 chunks each, hence 12 rounds.
        assert!(case.layouts.iter().all(|l| l.owned.len() == 12));
        let plan = ddr_core::compute_local_plan(0, &case.layouts, &case.descriptor()).unwrap();
        assert_eq!(plan.num_rounds(), 12);
    }
}
