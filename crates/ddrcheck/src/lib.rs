//! # ddrcheck — static analysis for DDR redistribution plans
//!
//! A thin front end over the plan linter in [`ddr_core::lint`]. The linter
//! itself lives in ddr-core so that [`ddr_core::ValidationPolicy::Audit`]
//! can run it inline during `setup_data_mapping`; this crate packages the
//! same checks for *offline* use:
//!
//! * the full lint API re-exported ([`lint_plan`], [`lint_layouts`],
//!   [`lint_plans`], [`lint_mapping`], [`LintDiagnostic`], …),
//! * [`render_report`] / [`enforce`] for turning diagnostics into a
//!   human-readable report and a pass/fail verdict,
//! * an [`examples`] catalog reproducing the layouts of every runnable
//!   example in the repository,
//! * the `lint_examples` binary, which lints the whole catalog (including
//!   the [`lint_staging`] peak-staging prediction against
//!   `DDR_LINT_STAGING_BOUND`) and exits non-zero on any error-severity
//!   finding — the CI gate that keeps the shipped examples honest, and
//! * the [`explore`] module: a deterministic schedule-exploration driver
//!   that sweeps minimpi scheduler seeds over a closure and reports the
//!   first seed that makes it fail, with a `DDR_SCHED_SEED` replay line.
//!
//! ```
//! use ddrcheck::{enforce, lint_mapping, render_report};
//!
//! for case in ddrcheck::examples::catalog() {
//!     let diags = lint_mapping(&case.descriptor(), &case.layouts());
//!     println!("{}", render_report(&case.name, &diags));
//!     enforce(&diags).expect("shipped example must lint clean");
//! }
//! ```

#![warn(missing_docs)]

pub mod examples;
pub mod explore;

pub use ddr_core::{
    has_errors, lint_layouts, lint_mapping, lint_memory, lint_plan, lint_plans, lint_staging,
    LintCode, LintDiagnostic, Severity,
};
pub use explore::{explore, render_explore_report, ExploreFailure, ExploreReport};

use std::fmt::Write as _;

/// Render a lint report for one named subject: a one-line verdict followed
/// by each diagnostic on its own indented line. Clean subjects render as a
/// single `ok` line.
pub fn render_report(name: &str, diags: &[LintDiagnostic]) -> String {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    let mut out = String::new();
    if diags.is_empty() {
        let _ = write!(out, "{name}: ok");
    } else {
        let _ = write!(out, "{name}: {errors} error(s), {warnings} warning(s)");
        for d in diags {
            let _ = write!(out, "\n  {d}");
        }
    }
    out
}

/// Pass/fail verdict: `Err` with every finding (warnings included, for a
/// complete report) when any diagnostic has error severity, `Ok` otherwise.
pub fn enforce(diags: &[LintDiagnostic]) -> Result<(), Vec<LintDiagnostic>> {
    if has_errors(diags) {
        Err(diags.to_vec())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: LintCode, severity: Severity, rank: Option<usize>) -> LintDiagnostic {
        LintDiagnostic {
            code,
            severity,
            rank,
            round: None,
            message: "synthetic finding".into(),
            hint: "none".into(),
        }
    }

    #[test]
    fn clean_report_is_one_line() {
        assert_eq!(render_report("quickstart", &[]), "quickstart: ok");
    }

    #[test]
    fn enforce_passes_warnings_and_fails_errors() {
        let warn = diag(LintCode::ByteAsymmetry, Severity::Warning, None);
        let err = diag(LintCode::CoverageHole, Severity::Error, None);
        assert!(enforce(std::slice::from_ref(&warn)).is_ok());
        let rejected = enforce(&[warn, err]).unwrap_err();
        assert_eq!(rejected.len(), 2);
    }

    #[test]
    fn report_lists_each_finding() {
        let diags = vec![
            diag(LintCode::CoverageHole, Severity::Error, Some(2)),
            diag(LintCode::ByteAsymmetry, Severity::Warning, None),
        ];
        let report = render_report("case", &diags);
        assert!(report.starts_with("case: 1 error(s), 1 warning(s)"));
        assert!(report.contains("coverage-hole"));
        assert!(report.contains("byte-asymmetry"));
    }
}
