//! Deterministic schedule exploration: run a closure under a sweep of
//! scheduler seeds and report the first seed that makes it fail.
//!
//! minimpi's seeded scheduler (see [`minimpi::UniverseBuilder::sched_seed`])
//! perturbs every wait/poll point as a pure function of `(seed, rank, op
//! count)`, so one seed is one reproducible schedule. The explorer sweeps
//! seeds `1..=budget`, catches panics and errors, and stops at the first
//! violation — printing the seed so the exact failing schedule can be
//! replayed with `DDR_SCHED_SEED=<seed>` (or `.sched_seed(seed)`).
//!
//! Schedules are pruned sleep-set-style: each universe run folds the
//! per-rank delivery orders it observed into a seed-independent fingerprint
//! ([`minimpi::take_last_fingerprint`]). Two seeds with the same fingerprint
//! delivered every message in the same order to every rank — running the
//! second one cannot observe anything new — so after
//! [`STALE_SEEDS_BEFORE_STOP`] consecutive already-seen fingerprints the
//! sweep stops early.
//!
//! ```no_run
//! use minimpi::Universe;
//!
//! let report = ddrcheck::explore::explore(64, |seed| {
//!     let out = Universe::builder().check(true).sched_seed(seed).run(2, |comm| {
//!         comm.barrier().map_err(|e| e.to_string())
//!     });
//!     out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ())
//! });
//! assert!(report.passed(), "{}", ddrcheck::explore::render_explore_report("barrier", &report));
//! ```

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Consecutive seeds whose schedule fingerprint was already seen before the
/// sweep stops early. High enough that a couple of coincidentally equivalent
/// schedules don't end the sweep, low enough that a test whose schedule
/// space is exhausted (e.g. two ranks with one message) doesn't burn the
/// whole budget re-running it.
pub const STALE_SEEDS_BEFORE_STOP: u64 = 8;

/// First failure found by a sweep: which seed, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreFailure {
    /// The scheduler seed that produced the violation. Replay with
    /// `DDR_SCHED_SEED=<seed>` or `UniverseBuilder::sched_seed(seed)`.
    pub seed: u64,
    /// The error message (or panic payload) of the failing run.
    pub message: String,
}

/// Outcome of a seed sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreReport {
    /// Seeds actually run (≤ the budget when pruning stopped the sweep
    /// early or a failure ended it).
    pub seeds_run: u64,
    /// Distinct schedule fingerprints observed (0 when the closure never
    /// ran a seeded universe, so no fingerprints were published).
    pub distinct_schedules: u64,
    /// The first violating seed, if any.
    pub failure: Option<ExploreFailure>,
}

impl ExploreReport {
    /// True when every explored schedule ran clean.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Seed budget for explorer-driven suites: `DDR_SCHED_SEEDS`, default 64.
pub fn default_seed_budget() -> u64 {
    std::env::var("DDR_SCHED_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Run `f` under seeds `1..=seeds` and report the first failure.
///
/// The closure receives the seed and must thread it into every universe it
/// launches (`Universe::builder().sched_seed(seed)`); it reports a violation
/// by returning `Err` or panicking — both are caught and recorded with the
/// seed. Each seed's count is also added to the `check.schedules_explored`
/// metric (visible in `ddr-trace report` when tracing is on).
pub fn explore(seeds: u64, f: impl Fn(u64) -> Result<(), String>) -> ExploreReport {
    let mut fingerprints: HashSet<u64> = HashSet::new();
    let mut stale = 0u64;
    let mut seeds_run = 0u64;
    let mut failure = None;
    for seed in 1..=seeds {
        // Drop a stale fingerprint from an earlier (non-explorer) run so it
        // cannot be misattributed to this seed.
        let _ = minimpi::take_last_fingerprint();
        seeds_run += 1;
        ddrtrace::metrics::add("check", "schedules_explored", 1);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(seed)));
        let err = match outcome {
            Ok(Ok(())) => None,
            Ok(Err(msg)) => Some(msg),
            Err(payload) => Some(
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "panicked with a non-string payload".into()),
            ),
        };
        if let Some(message) = err {
            failure = Some(ExploreFailure { seed, message });
            break;
        }
        match minimpi::take_last_fingerprint() {
            // No fingerprint published: the closure ran no seeded universe,
            // so there is no equivalence signal to prune on — keep sweeping.
            None => stale = 0,
            Some(fp) => {
                if fingerprints.insert(fp) {
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= STALE_SEEDS_BEFORE_STOP {
                        break;
                    }
                }
            }
        }
    }
    ExploreReport { seeds_run, distinct_schedules: fingerprints.len() as u64, failure }
}

/// Render a sweep's outcome for humans: one line for a clean sweep, and for
/// a failure the seed, the replay instruction, and the violation.
pub fn render_explore_report(name: &str, report: &ExploreReport) -> String {
    match &report.failure {
        None => format!(
            "{name}: ok — {} seed(s), {} distinct schedule(s)",
            report.seeds_run, report.distinct_schedules
        ),
        Some(f) => format!(
            "{name}: FAILED at seed {} (after {} seed(s), {} distinct schedule(s))\n  \
             replay with DDR_SCHED_SEED={}\n  {}",
            f.seed, report.seeds_run, report.distinct_schedules, f.seed, f.message
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_closure_passes_all_seeds() {
        let report = explore(5, |_seed| Ok(()));
        assert!(report.passed());
        assert_eq!(report.seeds_run, 5);
        assert_eq!(report.distinct_schedules, 0);
    }

    #[test]
    fn first_failing_seed_is_reported_and_stops_the_sweep() {
        let report = explore(64, |seed| if seed == 3 { Err("boom".into()) } else { Ok(()) });
        let failure = report.failure.clone().unwrap();
        assert_eq!(failure.seed, 3);
        assert_eq!(failure.message, "boom");
        assert_eq!(report.seeds_run, 3);
        let rendered = render_explore_report("case", &report);
        assert!(rendered.contains("DDR_SCHED_SEED=3"), "got: {rendered}");
    }

    #[test]
    fn panics_are_caught_with_their_message() {
        let report = explore(8, |seed| {
            if seed == 2 {
                panic!("planted panic at seed {seed}");
            }
            Ok(())
        });
        let failure = report.failure.unwrap();
        assert_eq!(failure.seed, 2);
        assert!(failure.message.contains("planted panic"), "got: {}", failure.message);
    }

    #[test]
    fn budget_env_parses_with_default() {
        // Only exercise the default path: mutating the environment would
        // race parallel tests.
        assert!(default_seed_budget() >= 1);
    }
}
