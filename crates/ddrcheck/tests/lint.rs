//! End-to-end lint behaviour through the public API: the `Audit` policy
//! inside a running universe, and offline cross-plan analysis of the kind
//! `setup_data_mapping` can never see (plans computed from divergent views).

use ddr_core::{
    compute_local_plan, Block, DataKind, DdrError, Descriptor, Layout, ValidationPolicy,
};
use ddrcheck::{enforce, has_errors, lint_layouts, lint_plans, LintCode, Severity};
use minimpi::Universe;

/// The paper's E1 layouts: rank r owns rows {r, r+4} of 8x8, needs a 4x4
/// quadrant.
fn e1_layout(r: usize) -> (Vec<Block>, Block) {
    let owned = vec![Block::d2([0, r], [8, 1]).unwrap(), Block::d2([0, r + 4], [8, 1]).unwrap()];
    let need = Block::d2([4 * (r % 2), 4 * (r / 2)], [4, 4]).unwrap();
    (owned, need)
}

fn e1_layouts() -> Vec<Layout> {
    (0..4).map(e1_layout).map(|(owned, need)| Layout { owned, need }).collect()
}

#[test]
fn audit_policy_passes_a_clean_mapping_and_data_still_moves() {
    let quadrants = Universe::run(4, |comm| {
        let r = comm.rank();
        let desc = Descriptor::for_type::<f32>(4, DataKind::D2).unwrap();
        let (owned, need) = e1_layout(r);
        let plan =
            desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Audit).unwrap();
        let row = |y: usize| (0..8).map(|x| (y * 8 + x) as f32).collect::<Vec<_>>();
        let data = [row(r), row(r + 4)];
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0f32; 16];
        plan.reorganize(comm, &refs, &mut out).unwrap();
        out
    });
    assert_eq!(quadrants[3][0], 36.0); // global (4,4)
}

#[test]
fn audit_policy_rejects_overlapping_ownership_before_any_exchange() {
    let results = Universe::run(2, |comm| {
        let desc = Descriptor::for_type::<f32>(2, DataKind::D1).unwrap();
        // Both ranks claim elements 4..6.
        let owned = [Block::d1(comm.rank() * 4, 6).unwrap()];
        let need = Block::d1(comm.rank() * 4, 4).unwrap();
        let err =
            desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Audit).unwrap_err();
        let ops_after_setup = comm.op_count();
        (err, ops_after_setup)
    });
    for (err, _) in &results {
        assert!(matches!(err, DdrError::OwnershipOverlap { .. }), "got {err}");
    }
    // Setup performs exactly one collective (the layout allgather) before
    // validation rejects — no redistribution traffic ever starts.
    assert!(results.iter().all(|(_, ops)| *ops == results[0].1));
}

#[test]
fn lint_layouts_reports_every_overlap_not_just_the_first() {
    // Two independent overlapping pairs; validate() stops at one, the
    // linter must report both.
    let layouts = vec![
        Layout { owned: vec![Block::d1(0, 6).unwrap()], need: Block::d1(0, 4).unwrap() },
        Layout { owned: vec![Block::d1(4, 6).unwrap()], need: Block::d1(4, 4).unwrap() },
        Layout { owned: vec![Block::d1(10, 6).unwrap()], need: Block::d1(8, 4).unwrap() },
        Layout { owned: vec![Block::d1(14, 6).unwrap()], need: Block::d1(12, 4).unwrap() },
    ];
    let diags = lint_layouts(&layouts);
    let overlaps = diags.iter().filter(|d| d.code == LintCode::OwnershipOverlap).count();
    assert_eq!(overlaps, 2, "both overlapping pairs reported: {diags:?}");
    assert!(enforce(&diags).is_err());
}

#[test]
fn cross_rank_elem_size_divergence_is_detected_offline() {
    // Rank 1 computed its plan believing elements are f64 while everyone
    // else assumed f32 — individually both plans are consistent, only the
    // cross-plan check can see the disagreement.
    let layouts = e1_layouts();
    let desc4 = Descriptor::new(4, DataKind::D2, 4).unwrap();
    let desc8 = Descriptor::new(4, DataKind::D2, 8).unwrap();
    let plans: Vec<_> = (0..4)
        .map(|r| compute_local_plan(r, &layouts, if r == 1 { &desc8 } else { &desc4 }).unwrap())
        .collect();
    let diags = lint_plans(&plans);
    assert!(has_errors(&diags));
    assert!(diags.iter().any(|d| d.code == LintCode::ElemSizeMismatch && d.rank == Some(1)));
    // The byte accounting diverges too: rank 1 moves twice the bytes.
    assert!(diags.iter().any(|d| d.code == LintCode::ByteAsymmetry));
}

#[test]
fn divergent_layout_views_cause_byte_asymmetry() {
    // Rank 0's plan was computed from a stale view in which rank 1 needs
    // the left half — rank 1's actual plan expects the right half. Every
    // plan is self-consistent; only the pairwise byte check catches it.
    let desc = Descriptor::new(2, DataKind::D1, 4).unwrap();
    let stale = vec![
        Layout { owned: vec![Block::d1(0, 4).unwrap()], need: Block::d1(0, 4).unwrap() },
        Layout { owned: vec![Block::d1(4, 4).unwrap()], need: Block::d1(0, 4).unwrap() },
    ];
    let actual = vec![
        Layout { owned: vec![Block::d1(0, 4).unwrap()], need: Block::d1(0, 4).unwrap() },
        Layout { owned: vec![Block::d1(4, 4).unwrap()], need: Block::d1(4, 4).unwrap() },
    ];
    let plans = vec![
        compute_local_plan(0, &stale, &desc).unwrap(),
        compute_local_plan(1, &actual, &desc).unwrap(),
    ];
    let diags = lint_plans(&plans);
    assert!(
        diags.iter().any(|d| d.code == LintCode::ByteAsymmetry && d.severity == Severity::Error),
        "stale-view asymmetry must be an error: {diags:?}"
    );
}

#[test]
fn plan_rejected_error_renders_every_finding() {
    // Exercise DdrError::PlanRejected through Display: a mapping whose
    // layouts hide a coverage hole behind the paper's contract.
    let mut layouts = e1_layouts();
    layouts[2].owned.pop(); // row 6 now unowned
    let diags = lint_layouts(&layouts);
    assert!(has_errors(&diags));
    let err = DdrError::PlanRejected(diags);
    let msg = err.to_string();
    assert!(msg.contains("plan rejected by linter"), "{msg}");
    assert!(msg.contains("coverage-hole"), "{msg}");
}
