//! Schedule exploration end-to-end: the explorer must *find* planted
//! concurrency bugs (a real data race, a dropped-ACK protocol bug) with a
//! replayable seed, and must pass clean workloads across the whole seed
//! budget without false positives.
//!
//! The failing-seed assertions re-run the closure with the reported seed and
//! require the violation to reproduce — the property that makes the
//! `DDR_SCHED_SEED=<seed>` replay line in the report trustworthy.

use ddrcheck::explore::{default_seed_budget, explore, render_explore_report};
use minimpi::{Comm, Datatype, Error, FaultPlan, Universe};
use std::time::Duration;

/// A planted race, driven through the public access-annotation API: both
/// ranks declare a write to the same shared buffer with no message between
/// them, so the two writes are causally unordered on *every* schedule and
/// the checker must convict whichever rank annotates second.
#[test]
fn explorer_finds_planted_shared_buffer_race() {
    let buf: &'static [u8] = Box::leak(vec![0u8; 64].into_boxed_slice());
    let run = |seed: u64| {
        let out = Universe::builder()
            .check(true)
            .sched_seed(seed)
            .run(2, move |comm| comm.check_write(buf).map_err(|e| e.to_string()));
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ())
    };
    let report = explore(default_seed_budget(), run);
    let failure = report.failure.clone().expect("the unsynchronized writes must be convicted");
    assert!(failure.message.contains("data race"), "got: {}", failure.message);
    // The printed seed must replay to the same violation.
    assert!(run(failure.seed).is_err(), "seed {} did not replay the race", failure.seed);
}

/// The fixed variant of the same program: a message from the first writer to
/// the second orders the two accesses (the clock piggybacked on the envelope
/// joins into the receiver), so every explored schedule must run clean — the
/// checker tracks causality, not wall-clock luck.
#[test]
fn message_ordered_accesses_stay_clean_across_schedules() {
    let buf: &'static [u8] = Box::leak(vec![0u8; 64].into_boxed_slice());
    let report = explore(default_seed_budget(), |seed| {
        let out = Universe::builder().check(true).sched_seed(seed).run(2, move |comm| {
            if comm.rank() == 0 {
                comm.check_write(buf)?;
                comm.send_bytes(1, 9, &[1])?;
            } else {
                comm.recv_bytes(0, 9)?;
                comm.check_write(buf)?;
            }
            Ok::<_, Error>(())
        });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
    });
    assert!(report.passed(), "{}", render_explore_report("ordered accesses", &report));
}

/// A dropped-verdict-ACK protocol bug, modelled on the alltoallw verdict
/// phase: rank 1 collects one fragment each from ranks 0 and 2 with
/// any-source receives and must ACK rank 0, but the buggy version only ACKs
/// when rank 0's fragment happens to be processed *first*. Which fragment an
/// any-source receive takes first is exactly what the seeded scheduler
/// rotates, so the sweep must drive the protocol into the forgotten-ACK
/// order and catch rank 0 timing out.
fn verdict_ack_protocol(comm: &Comm, buggy: bool) -> Result<(), Error> {
    const FRAG: u32 = 7;
    const ACK: u32 = 8;
    // Sync the ranks, then give both fragments time to land in rank 1's
    // mailbox before it starts taking: the schedule decision under test is
    // the *take order* of two ready messages, not raw thread-start skew.
    comm.barrier()?;
    match comm.rank() {
        0 => {
            comm.send_bytes(1, FRAG, &[0xA0; 16])?;
            comm.set_timeout(Duration::from_secs(2));
            comm.recv_bytes(1, ACK).map(|_| ())
        }
        2 => comm.send_bytes(1, FRAG, &[0xC2; 16]),
        _ => {
            std::thread::sleep(Duration::from_millis(2));
            let (first, _) = comm.recv_bytes_any(FRAG)?;
            let (_second, _) = comm.recv_bytes_any(FRAG)?;
            // Bug: the ACK is only issued from the first-fragment handler;
            // when rank 2's fragment is taken first, rank 0's goes
            // unacknowledged. The fix ACKs regardless of processing order.
            if first.src == 0 || !buggy {
                comm.send_bytes(0, ACK, &[1])?;
            }
            Ok(())
        }
    }
}

fn run_verdict_protocol(seed: u64, buggy: bool) -> Result<(), String> {
    let out = Universe::builder()
        .check(true)
        .sched_seed(seed)
        .run(3, move |comm| verdict_ack_protocol(comm, buggy));
    out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
}

#[test]
fn explorer_finds_dropped_verdict_ack() {
    let report = explore(default_seed_budget(), |seed| run_verdict_protocol(seed, true));
    let failure = report
        .failure
        .clone()
        .expect("some schedule must take rank 2's fragment first and expose the dropped ACK");
    // Rank 0 either times out waiting for the ACK or sees rank 1 depart.
    assert!(
        failure.message.contains("timed out") || failure.message.contains("dead"),
        "got: {}",
        failure.message
    );
    // The take order is a pure function of the seed, so the replay must
    // reproduce the dropped ACK — this is the debugging workflow the report's
    // DDR_SCHED_SEED line promises.
    assert!(
        run_verdict_protocol(failure.seed, true).is_err(),
        "seed {} did not replay the dropped ACK",
        failure.seed
    );
}

#[test]
fn fixed_verdict_ack_is_clean_across_schedules() {
    let report = explore(default_seed_budget(), |seed| run_verdict_protocol(seed, false));
    assert!(report.passed(), "{}", render_explore_report("fixed verdict ACK", &report));
    assert!(report.distinct_schedules >= 2, "the sweep should reach both take orders");
}

/// Bidirectional 2-rank alltoallw shipping `len` seeded bytes each way.
fn exchange(comm: &Comm, len: usize) -> minimpi::Result<Vec<u8>> {
    let me = comm.rank();
    let other = 1 - me;
    let send: Vec<u8> = (0..len).map(|i| (me as u8) ^ (i as u8).wrapping_mul(31)).collect();
    let mut recv = vec![0u8; len];
    let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
    let mut send_types = [Datatype::Empty, Datatype::Empty];
    let mut recv_types = [Datatype::Empty, Datatype::Empty];
    send_types[other] = contig;
    recv_types[other] = contig;
    comm.alltoallw(&send, &send_types, &mut recv, &recv_types)?;
    Ok(recv)
}

/// The full redistribution path — zero-copy loans, checking, clocks on every
/// fragment — must survive the whole seed sweep without a false race,
/// deadlock, leak, or type mismatch. 4 ranks, all-pairs exchange.
#[test]
fn alltoallw_under_check_is_clean_across_schedules() {
    let report = explore(default_seed_budget(), |seed| {
        let n = 4usize;
        let len = 512usize;
        let out = Universe::builder()
            .check(true)
            .zerocopy(true)
            .zerocopy_threshold(0)
            .sched_seed(seed)
            .timeout(Duration::from_secs(20))
            .run(n, move |comm| {
                let me = comm.rank();
                let send: Vec<u8> = (0..n * len).map(|i| (me as u8) ^ (i as u8)).collect();
                let mut recv = vec![0u8; n * len];
                let seg = |r: usize| Datatype::Contiguous { len_bytes: len, offset: r * len };
                let send_types: Vec<Datatype> = (0..n).map(seg).collect();
                let recv_types: Vec<Datatype> = (0..n).map(seg).collect();
                let mut mine = send.clone();
                comm.alltoallw(&send, &send_types, &mut recv, &recv_types)?;
                // Self-segment must round-trip; peers' segments must carry
                // their rank stamp.
                mine.clear();
                for (r, chunk) in recv.chunks(len).enumerate() {
                    for (i, b) in chunk.iter().enumerate() {
                        let expect = (r as u8) ^ ((r * len + i) as u8);
                        if *b != expect {
                            return Err(Error::Internal {
                                detail: format!("rank {me}: bad byte from rank {r} at {i}"),
                            });
                        }
                    }
                }
                Ok::<_, Error>(())
            });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
    });
    assert!(report.passed(), "{}", render_explore_report("alltoallw", &report));
}

/// The pipelining bug class the nonblocking API makes possible: a sender
/// posts `ialltoallw` and reuses the posted buffer for the "next frame"
/// before waiting on the request. The zero-copy loan minted at post time is
/// still live, nothing orders the write against the receiver's copy, and the
/// happens-before checker must convict — with a seed that replays.
#[test]
fn explorer_finds_reuse_buffer_before_wait_race() {
    let len = 2048usize;
    let buf: &'static [u8] = Box::leak(vec![0x5Au8; len].into_boxed_slice());
    let run = move |seed: u64| {
        let out = Universe::builder()
            .check(true)
            .zerocopy(true)
            .zerocopy_threshold(0)
            .sched_seed(seed)
            .timeout(Duration::from_secs(20))
            .run(2, move |comm| {
                let other = 1 - comm.rank();
                let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
                let mut send_types = [Datatype::Empty, Datatype::Empty];
                let mut recv_types = [Datatype::Empty, Datatype::Empty];
                send_types[other] = contig;
                recv_types[other] = contig;
                let mut recv = vec![0u8; len];
                if comm.rank() == 0 {
                    let req = comm.ialltoallw(buf, &send_types, &recv_types)?;
                    // Planted bug: the posted send buffer is recycled for the
                    // next frame while the request is still in flight. The
                    // fix is to `wait` (or `test` to completion) first.
                    comm.check_write(buf)?;
                    req.wait(&mut recv)?;
                } else {
                    // The peer's claim may convict the same race from the
                    // other side, and once rank 0 is convicted it departs
                    // mid-exchange — both are acceptable here; the planted
                    // bug is on rank 0.
                    let send = vec![0xC3u8; len];
                    if let Err(Error::DataRace(_)) =
                        comm.alltoallw(&send, &send_types, &mut recv, &recv_types)
                    {
                        return Ok(());
                    }
                }
                Ok::<_, Error>(())
            });
        out.into_iter().next().unwrap().map(|_| ()).map_err(|e| e.to_string())
    };
    let report = explore(default_seed_budget(), run);
    let failure = report.failure.clone().expect("reusing a posted buffer before wait must convict");
    assert!(failure.message.contains("data race"), "got: {}", failure.message);
    assert!(run(failure.seed).is_err(), "seed {} did not replay the race", failure.seed);
}

/// The full pipelined redistribution path end to end: a genuinely
/// multi-round plan (3 chunks per rank → 3 rounds) driven at depth 4, so
/// every round's `ialltoallw` is posted before the first is waited, with
/// zero-copy loans, collective fingerprints across concurrently outstanding
/// sequence numbers, and vector clocks all live. Every explored schedule
/// must deliver exact bytes and run clean.
#[test]
fn pipelined_reorganize_under_check_is_clean_across_schedules() {
    use ddr_core::{decompose, Block, DataKind, Descriptor, Strategy, ValidationPolicy};
    fn cell_value(c: [usize; 3]) -> u64 {
        (c[0] as u64) | ((c[1] as u64) << 20) | ((c[2] as u64) << 40)
    }
    let report = explore(default_seed_budget(), |seed| {
        let n = 3usize;
        let out = Universe::builder()
            .check(true)
            .zerocopy(true)
            .zerocopy_threshold(0)
            .sched_seed(seed)
            .timeout(Duration::from_secs(20))
            .run(n, move |comm| {
                let r = comm.rank();
                let domain = Block::d2([0, 0], [12, 12]).unwrap();
                // Rank r owns column slabs r, r+3, r+6 of nine; needs a row
                // slab — every round has cross-rank traffic.
                let owned: Vec<Block> =
                    (0..3).map(|k| decompose::slab(&domain, 1, 9, r + 3 * k).unwrap()).collect();
                let need = decompose::slab(&domain, 0, n, r).unwrap();
                let desc = Descriptor::for_type::<u64>(n, DataKind::D2).unwrap();
                let plan = desc
                    .setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Strict)
                    .map_err(|e| e.to_string())?;
                let data: Vec<Vec<u64>> =
                    owned.iter().map(|b| b.coords().map(cell_value).collect()).collect();
                let refs: Vec<&[u64]> = data.iter().map(|v| v.as_slice()).collect();
                let mut got = vec![u64::MAX; need.count() as usize];
                let (report, _) = plan
                    .reorganize_with_stats_depth(comm, &refs, &mut got, Strategy::Alltoallw, 4)
                    .map_err(|e| e.to_string())?;
                if !report.is_complete() {
                    return Err(format!("rank {r}: incomplete exchange on seed {seed}"));
                }
                let want: Vec<u64> = need.coords().map(cell_value).collect();
                if got != want {
                    return Err(format!("rank {r}: pipelined bytes diverge on seed {seed}"));
                }
                Ok(())
            });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ())
    });
    // No distinct-schedule floor here: the exchange's receives are all
    // source-ordered, so the delivery fingerprint is schedule-invariant —
    // the sweep varies *timing* (post/wait overlap) rather than take order.
    assert!(report.passed(), "{}", render_explore_report("pipelined reorganize", &report));
}

/// Corruption recovery (detect → NACK → retransmit) with checking *and*
/// schedule perturbation stacked on top: the retransmit verdict phase has
/// its own polls and control messages, all perturbed, and must still settle
/// byte-identical on every explored schedule.
#[test]
fn corrupt_retransmit_recovery_is_clean_across_schedules() {
    let report = explore(default_seed_budget(), |seed| {
        let len = 1024usize;
        let out = Universe::builder()
            .check(true)
            .sched_seed(seed)
            .timeout(Duration::from_secs(20))
            .fault_plan(FaultPlan::new(7).corrupt_message(0, 1, None, 0))
            .run(2, move |comm| {
                let got = exchange(comm, len)?;
                let other = 1 - comm.rank();
                let want: Vec<u8> =
                    (0..len).map(|i| (other as u8) ^ (i as u8).wrapping_mul(31)).collect();
                if got != want {
                    return Err(Error::Internal {
                        detail: format!("rank {}: recovered bytes differ", comm.rank()),
                    });
                }
                Ok::<_, Error>(())
            });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
    });
    assert!(report.passed(), "{}", render_explore_report("retransmit recovery", &report));
}

/// The credit handshake under schedule perturbation: a ring of sends
/// through 1-message windows, each deposit parking and resuming through the
/// gate's sched point, must deliver exact bytes on every explored schedule
/// with the checker armed — no false deadlock convictions and no watchdog
/// false positives from credit-parked senders, whatever order the scheduler
/// wakes them in.
#[test]
fn credit_handshake_is_clean_across_schedules() {
    let report = explore(default_seed_budget(), |seed| {
        let n = 3usize;
        let out = Universe::builder()
            .check(true)
            .flow_control(1, 256)
            .sched_seed(seed)
            .timeout(Duration::from_secs(10))
            .run(n, move |comm| {
                let me = comm.rank();
                let next = (me + 1) % n;
                let prev = (me + n - 1) % n;
                // send/recv interleaved: each recv hands the upstream peer
                // its credit back, so the ring always has a granter — but
                // the second send of every iteration races the downstream
                // drain and parks on losing schedules.
                for i in 0..4u8 {
                    comm.send_bytes(next, 5, &[(me as u8) ^ i; 96])?;
                    let m = comm.recv_bytes(prev, 5)?;
                    if m != vec![(prev as u8) ^ i; 96] {
                        return Err(Error::Internal {
                            detail: format!("rank {me}: bad credit-gated delivery {i}"),
                        });
                    }
                }
                Ok::<_, Error>(())
            });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
    });
    assert!(report.passed(), "{}", render_explore_report("credit handshake", &report));
}

/// A planted flow-control protocol bug: both ranks post two sends into
/// 1-message windows before either receives, so both park on the credit
/// gate with nobody left to grant credits. The sweep must convict this as a
/// *structured* failure — a credit-wait timeout or a deadlock report, never
/// a hang — and the reported seed must replay it.
#[test]
fn explorer_convicts_head_of_line_credit_deadlock() {
    let run = |seed: u64| {
        let out = Universe::builder()
            .check(true)
            .flow_control(1, 1 << 20)
            .sched_seed(seed)
            .timeout(Duration::from_millis(300))
            .run(2, move |comm| {
                let other = 1 - comm.rank();
                comm.send_bytes(other, 3, &[1u8; 32])?;
                // Bug under test: this send needs a credit only the peer's
                // recv can grant, and the peer is parked the same way.
                comm.send_bytes(other, 3, &[2u8; 32])?;
                comm.recv_bytes(other, 3)?;
                comm.recv_bytes(other, 3)?;
                Ok::<_, Error>(())
            });
        out.into_iter().collect::<Result<Vec<_>, _>>().map(|_| ()).map_err(|e| e.to_string())
    };
    let report = explore(default_seed_budget(), run);
    let failure =
        report.failure.clone().expect("send-send-recv through 1-credit windows must deadlock");
    assert!(
        failure.message.contains("timed out") || failure.message.contains("deadlock"),
        "the conviction must be structured, got: {}",
        failure.message
    );
    assert!(run(failure.seed).is_err(), "seed {} did not replay the credit deadlock", failure.seed);
}
