//! Cluster presets and rank placement.

use crate::fs::FsModel;
use crate::net::NetModel;

/// How ranks are laid onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Ranks 0..k on node 0, k..2k on node 1, … (the usual MPI default).
    #[default]
    Block,
    /// Rank r on node r mod nnodes.
    RoundRobin,
}

/// A modelled cluster: interconnect + filesystem + node geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of compute nodes available.
    pub nodes: usize,
    /// Ranks placed per node (Cooley: 12 cores/node).
    pub procs_per_node: usize,
    /// Interconnect model.
    pub net: NetModel,
    /// Filesystem model.
    pub fs: FsModel,
    /// Rank placement policy.
    pub placement: Placement,
}

impl ClusterSpec {
    /// Argonne **Cooley** (the paper's testbed), with model constants
    /// calibrated against the paper's own measurements:
    ///
    /// * **Filesystem.** Table II's No-DDR column implies an effective
    ///   per-client read+decode rate of 162 MB/s at 27 clients falling to
    ///   139 MB/s at 216 (each client reads `4096/c` full 32 MiB images).
    ///   Splitting that into a GPFS stream rate and a 400 MB/s TIFF decode
    ///   rate gives a base client bandwidth of ≈283 MB/s degrading with
    ///   client count over a scale of ≈655 clients.
    /// * **Network.** Subtracting the modelled read+decode time from the DDR
    ///   columns of Table II leaves the redistribution time. With the
    ///   paper's GPU-driven placement of 2 ranks/node (one per GPU), fitting
    ///   the consecutive points (1 round of up to 4.3 GB/rank — Table III)
    ///   gives a contention half-volume of ≈0.65 GB per node-round, and
    ///   fitting the round-robin points (19–152 rounds of ~31 MB/rank)
    ///   gives a per-collective overhead of ≈5 ms + 1.2 ms·P — consistent
    ///   with `MPI_Alltoallw` touching one datatype per peer per call.
    pub fn cooley() -> Self {
        ClusterSpec {
            nodes: 126,
            procs_per_node: 2, // one rank per GPU, as the DVR use case runs
            net: NetModel {
                link_bandwidth: 7e9, // 56 Gbps FDR
                contention_half_volume: 0.65e9,
                alpha_base: 0.005,
                alpha_per_rank: 1.2e-3,
                mem_bandwidth: 30e9,
            },
            fs: FsModel {
                base_client_bandwidth: 283e6,
                degradation_clients: 655.0,
                aggregate_bandwidth: 90e9,
                open_latency: 1e-3,
                decode_bandwidth: 400e6,
            },
            placement: Placement::Block,
        }
    }

    /// Rank→node map for `nprocs` ranks under this spec's placement.
    ///
    /// # Panics
    /// Panics if the cluster cannot host `nprocs` ranks.
    pub fn node_map(&self, nprocs: usize) -> Vec<usize> {
        assert!(
            nprocs <= self.nodes * self.procs_per_node,
            "cluster of {}x{} cannot host {nprocs} ranks",
            self.nodes,
            self.procs_per_node
        );
        let used_nodes = nprocs.div_ceil(self.procs_per_node);
        (0..nprocs)
            .map(|r| match self.placement {
                Placement::Block => r / self.procs_per_node,
                Placement::RoundRobin => r % used_nodes,
            })
            .collect()
    }

    /// Number of nodes actually occupied by `nprocs` ranks.
    pub fn nodes_used(&self, nprocs: usize) -> usize {
        nprocs.div_ceil(self.procs_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cooley_geometry() {
        let c = ClusterSpec::cooley();
        assert_eq!(c.nodes, 126);
        assert_eq!(c.nodes_used(27), 14);
        assert_eq!(c.nodes_used(216), 108);
    }

    #[test]
    fn block_placement_packs_nodes() {
        let c = ClusterSpec::cooley();
        let map = c.node_map(27);
        assert_eq!(map[0], 0);
        assert_eq!(map[1], 0);
        assert_eq!(map[2], 1);
        assert_eq!(map[26], 13);
    }

    #[test]
    fn round_robin_placement_spreads() {
        let mut c = ClusterSpec::cooley();
        c.placement = Placement::RoundRobin;
        let map = c.node_map(27); // 14 nodes used
        assert_eq!(map[0], 0);
        assert_eq!(map[1], 1);
        assert_eq!(map[13], 13);
        assert_eq!(map[14], 0);
    }

    #[test]
    #[should_panic]
    fn oversubscription_panics() {
        ClusterSpec::cooley().node_map(126 * 2 + 1);
    }

    #[test]
    fn calibration_reproduces_no_ddr_magnitudes() {
        // No-DDR at 27 ranks: each of 27 clients reads 4096/3 = 1365.33
        // images of 32 MiB. Paper: 283.0 s. Model should land within 10%.
        let c = ClusterSpec::cooley();
        let img_bytes = 4096.0 * 2048.0 * 4.0;
        let images = 4096.0 / 3.0;
        let t = c.fs.read_decode_time(27, images * img_bytes, images);
        assert!((t - 283.0).abs() < 30.0, "modelled {t}");
        // And at 216 ranks (4096/6 images each): paper 165.3 s.
        let images = 4096.0 / 6.0;
        let t = c.fs.read_decode_time(216, images * img_bytes, images);
        assert!((t - 165.3).abs() < 20.0, "modelled {t}");
    }
}
