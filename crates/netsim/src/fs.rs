//! Shared parallel-filesystem model.

/// First-order model of a shared parallel filesystem (GPFS-like) plus the
/// CPU-side decode work of turning file bytes into pixels.
///
/// The per-client streaming rate degrades gently with the number of
/// concurrent clients (`base_rate / (1 + clients / degradation_clients)`) and
/// is additionally capped by `aggregate_bandwidth / clients`. Decode runs at
/// `decode_bandwidth` per client, serialized after the read of each file (as
/// in the paper's loader, which reads and then decodes each TIFF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsModel {
    /// Per-client streaming read bandwidth with a single client, bytes/s.
    pub base_client_bandwidth: f64,
    /// Client count at which per-client bandwidth halves.
    pub degradation_clients: f64,
    /// Filesystem-wide bandwidth cap, bytes/s.
    pub aggregate_bandwidth: f64,
    /// Open + first-byte latency per file, seconds.
    pub open_latency: f64,
    /// Per-client decode (decompress/extract) rate, bytes/s.
    pub decode_bandwidth: f64,
}

impl FsModel {
    /// Effective streaming rate seen by each of `clients` concurrent readers.
    pub fn effective_client_rate(&self, clients: usize) -> f64 {
        assert!(clients > 0, "effective_client_rate needs at least one client");
        let degraded =
            self.base_client_bandwidth / (1.0 + clients as f64 / self.degradation_clients);
        degraded.min(self.aggregate_bandwidth / clients as f64)
    }

    /// Wall-clock seconds for each of `clients` readers to read
    /// `bytes_per_client` spread over `files_per_client` files and then
    /// decode them. All clients proceed concurrently; the slowest (equal
    /// here) client defines the time.
    pub fn read_decode_time(
        &self,
        clients: usize,
        bytes_per_client: f64,
        files_per_client: f64,
    ) -> f64 {
        let rate = self.effective_client_rate(clients);
        files_per_client * self.open_latency
            + bytes_per_client / rate
            + bytes_per_client / self.decode_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsModel {
        FsModel {
            base_client_bandwidth: 283e6,
            degradation_clients: 655.0,
            aggregate_bandwidth: 100e9,
            open_latency: 1e-3,
            decode_bandwidth: 400e6,
        }
    }

    #[test]
    fn per_client_rate_degrades_with_clients() {
        let f = fs();
        let r1 = f.effective_client_rate(1);
        let r27 = f.effective_client_rate(27);
        let r216 = f.effective_client_rate(216);
        assert!(r1 > r27 && r27 > r216);
        // Calibration sanity: ~272 MB/s at 27 clients, ~213 at 216.
        assert!((r27 / 1e6 - 272.0).abs() < 5.0, "{r27}");
        assert!((r216 / 1e6 - 213.0).abs() < 5.0, "{r216}");
    }

    #[test]
    fn aggregate_cap_kicks_in_for_many_clients() {
        let mut f = fs();
        f.aggregate_bandwidth = 1e9;
        // 100 clients share 1 GB/s → at most 10 MB/s each.
        assert!(f.effective_client_rate(100) <= 1e7 + 1.0);
    }

    #[test]
    fn read_decode_time_combines_terms() {
        let f = fs();
        // 1 client, one 283 MB file: 1 s read + ~0.71 s decode + 1 ms open.
        let t = f.read_decode_time(1, 283e6, 1.0);
        let rate = f.effective_client_rate(1);
        assert!((t - (1e-3 + 283e6 / rate + 283e6 / 400e6)).abs() < 1e-9);
    }

    #[test]
    fn more_files_cost_more_opens() {
        let f = fs();
        let few = f.read_decode_time(8, 1e9, 10.0);
        let many = f.read_decode_time(8, 1e9, 1000.0);
        assert!((many - few - 990.0 * 1e-3).abs() < 1e-9);
    }
}
