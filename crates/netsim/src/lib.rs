//! # ddr-netsim — analytic cluster cost models
//!
//! The paper evaluates DDR on Argonne's **Cooley** visualization cluster
//! (126 nodes, 12 cores/node, one FDR InfiniBand 56 Gbps link per node,
//! shared GPFS filesystem). Reproducing Table II and Figure 3 at paper scale
//! (a 128 GB TIFF stack on up to 216 ranks) is not possible on one machine,
//! so this crate provides first-order analytic models of the two resources
//! that drive those results:
//!
//! * [`FsModel`] — a shared parallel filesystem: per-client bandwidth with a
//!   contention term, aggregate cap, per-file open latency, and a CPU-side
//!   decode rate (TIFF decompression/extraction),
//! * [`NetModel`] — per-node NIC bandwidth with a volume-dependent
//!   contention factor plus a per-collective software overhead, evaluated
//!   over exact per-rank-pair byte matrices produced by `ddr-core`'s
//!   `GlobalStats` mapping.
//!
//! The models are deliberately simple (LogGP-flavored); their constants are
//! calibrated in [`ClusterSpec::cooley`] against the paper's published
//! measurements, and the calibration derivation is documented on that
//! function. The *exact* quantities (bytes per rank per round, number of
//! rounds — Table III) come from the real DDR mapping, not from a model.

#![warn(missing_docs)]

mod cluster;
pub mod flowsim;
mod fs;
mod net;

pub use cluster::{ClusterSpec, Placement};
pub use fs::FsModel;
pub use net::NetModel;
