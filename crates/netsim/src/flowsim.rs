//! Flow-level network simulation: an independent estimate of `alltoallw`
//! round times to cross-check the analytic [`crate::NetModel`].
//!
//! Each node owns a full-duplex link (separate egress and ingress
//! capacity). A round is a set of flows (node → node, bytes); rates follow
//! **max-min fair progressive filling** — the classic fluid model of a
//! congestion-controlled fabric — recomputed at every flow completion.
//!
//! Compared to the analytic model this captures *which* flows share *which*
//! links over time instead of a single per-node aggregate with a fitted
//! contention factor. It has no tuned parameters beyond the link bandwidth,
//! so it brackets the analytic estimate from below (ideal fair sharing, no
//! switch-level contention).

/// One flow of a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Bytes to move.
    pub bytes: f64,
}

/// Completion time (seconds) of `flows` over `nnodes` full-duplex links of
/// `bandwidth` bytes/s per direction, under max-min fair sharing.
///
/// Flows with `src == dst` are ignored (intra-node traffic does not use the
/// link). Complexity: `O(completions × links × flows)` — fine for the round
/// sizes DDR produces (thousands of flows).
pub fn completion_time(nnodes: usize, flows: &[Flow], bandwidth: f64) -> f64 {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    let mut remaining: Vec<(usize, usize, f64)> = flows
        .iter()
        .filter(|f| f.src != f.dst && f.bytes > 0.0)
        .map(|f| {
            assert!(f.src < nnodes && f.dst < nnodes, "flow endpoint outside node range");
            (f.src, f.dst, f.bytes)
        })
        .collect();

    let mut t = 0.0f64;
    while !remaining.is_empty() {
        let rates = max_min_rates(nnodes, &remaining, bandwidth);
        // Advance to the earliest completion at these rates.
        let dt = remaining
            .iter()
            .zip(&rates)
            .map(|(&(_, _, b), &r)| b / r)
            .fold(f64::INFINITY, f64::min);
        t += dt;
        let mut next = Vec::with_capacity(remaining.len());
        for (&(s, d, b), &r) in remaining.iter().zip(&rates) {
            let left = b - r * dt;
            if left > 1e-6 {
                next.push((s, d, left));
            }
        }
        remaining = next;
    }
    t
}

/// Max-min fair rates: iteratively saturate the most-constrained link and
/// freeze its flows at the fair share.
fn max_min_rates(nnodes: usize, flows: &[(usize, usize, f64)], bandwidth: f64) -> Vec<f64> {
    let nlinks = 2 * nnodes; // egress then ingress
    let mut cap = vec![bandwidth; nlinks];
    let mut rates = vec![0.0f64; flows.len()];
    let mut fixed = vec![false; flows.len()];
    let mut unfixed_left = flows.len();

    while unfixed_left > 0 {
        // Count unfixed flows per link.
        let mut counts = vec![0usize; nlinks];
        for (i, &(s, d, _)) in flows.iter().enumerate() {
            if !fixed[i] {
                counts[s] += 1;
                counts[nnodes + d] += 1;
            }
        }
        // Most-constrained link: minimal fair share among links in use.
        let mut best_share = f64::INFINITY;
        let mut best_link = usize::MAX;
        for l in 0..nlinks {
            if counts[l] > 0 {
                let share = cap[l] / counts[l] as f64;
                if share < best_share {
                    best_share = share;
                    best_link = l;
                }
            }
        }
        if best_link == usize::MAX {
            break; // no unfixed flow uses any link (unreachable)
        }
        // Freeze every unfixed flow crossing that link.
        for (i, &(s, d, _)) in flows.iter().enumerate() {
            if !fixed[i] && (s == best_link || nnodes + d == best_link) {
                fixed[i] = true;
                unfixed_left -= 1;
                rates[i] = best_share;
                cap[s] -= best_share;
                cap[nnodes + d] -= best_share;
            }
        }
        // Numerical floor.
        for c in cap.iter_mut() {
            if *c < 0.0 {
                *c = 0.0;
            }
        }
    }
    rates
}

/// Flow-simulated time of one `alltoallw` round: per-node-pair flows from
/// the exact rank-pair byte matrix plus the model's software overhead and
/// intra-node memory time.
pub fn alltoallw_round_time(
    net: &crate::NetModel,
    nprocs: usize,
    pair_bytes: &[u64],
    node_of: &[usize],
) -> f64 {
    assert_eq!(pair_bytes.len(), nprocs * nprocs);
    assert_eq!(node_of.len(), nprocs);
    let nnodes = node_of.iter().copied().max().map_or(1, |m| m + 1);
    // Merge rank pairs into node pairs (one congestion-controlled stream
    // per node pair).
    let mut by_pair = std::collections::HashMap::<(usize, usize), f64>::new();
    let mut intra = vec![0f64; nnodes];
    for s in 0..nprocs {
        for d in 0..nprocs {
            let b = pair_bytes[s * nprocs + d] as f64;
            if b == 0.0 {
                continue;
            }
            let (ns, nd) = (node_of[s], node_of[d]);
            if ns == nd {
                intra[ns] += b;
            } else {
                *by_pair.entry((ns, nd)).or_default() += b;
            }
        }
    }
    let flows: Vec<Flow> =
        by_pair.into_iter().map(|((src, dst), bytes)| Flow { src, dst, bytes }).collect();
    let link_time = completion_time(nnodes, &flows, net.link_bandwidth);
    let mem_time = intra.iter().map(|&v| v / net.mem_bandwidth).fold(0f64, f64::max);
    net.alpha(nprocs) + link_time + mem_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_runs_at_line_rate() {
        let t = completion_time(2, &[Flow { src: 0, dst: 1, bytes: 1e9 }], 1e9);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_an_egress_link() {
        let flows = [Flow { src: 0, dst: 1, bytes: 1e9 }, Flow { src: 0, dst: 2, bytes: 1e9 }];
        // Both limited by node 0's egress: each runs at 0.5 GB/s → 2 s.
        let t = completion_time(3, &flows, 1e9);
        assert!((t - 2.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn incast_limited_by_receiver_ingress() {
        let flows: Vec<Flow> = (1..5).map(|s| Flow { src: s, dst: 0, bytes: 1e9 }).collect();
        let t = completion_time(5, &flows, 1e9);
        assert!((t - 4.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        // Two flows share node 0's egress; after the short one drains, the
        // long one gets the full link: 0.5 GB for 1 s at 0.5 GB/s, then
        // 1.5 GB at 1 GB/s: total 2.5 s.
        let flows = [Flow { src: 0, dst: 1, bytes: 0.5e9 }, Flow { src: 0, dst: 2, bytes: 2e9 }];
        let t = completion_time(3, &flows, 1e9);
        assert!((t - 2.5).abs() < 1e-6, "{t}");
    }

    #[test]
    fn disjoint_flows_run_concurrently() {
        let flows = [Flow { src: 0, dst: 1, bytes: 1e9 }, Flow { src: 2, dst: 3, bytes: 1e9 }];
        let t = completion_time(4, &flows, 1e9);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intra_node_flows_are_free_on_the_link() {
        let t = completion_time(2, &[Flow { src: 1, dst: 1, bytes: 1e12 }], 1e9);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn flowsim_bounds_the_analytic_model_from_below() {
        // For the same round, ideal max-min sharing can't be slower than the
        // analytic estimate with its contention penalty (equal alpha/mem).
        let net = crate::NetModel {
            link_bandwidth: 7e9,
            contention_half_volume: 0.65e9,
            alpha_base: 0.0,
            alpha_per_rank: 0.0,
            mem_bandwidth: 30e9,
        };
        // 4 ranks on 2 nodes, all-to-all of 1 GB per pair.
        let nprocs = 4;
        let node_of = [0usize, 0, 1, 1];
        let mut pair = vec![0u64; 16];
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    pair[s * 4 + d] = 1_000_000_000;
                }
            }
        }
        let flow = alltoallw_round_time(&net, nprocs, &pair, &node_of);
        let analytic = net.alltoallw_round_time(nprocs, &pair, &node_of);
        assert!(flow <= analytic + 1e-9, "flow {flow} vs analytic {analytic}");
        assert!(flow > 0.0);
    }
}
