//! Interconnect model: per-node NIC with volume-dependent contention.

/// First-order model of a fat-tree/CLOS interconnect where each node owns a
/// single full-duplex link (Cooley: one FDR InfiniBand 56 Gbps link per
/// node, shared by all ranks on the node — the contention source the paper's
/// §IV-A analysis centers on).
///
/// An `alltoallw` round costs
///
/// ```text
/// T = alpha(P) + max_node max(out_n, in_n) / rate(V_n) + max_node intra_n / mem_bw
/// rate(V)  = link_bandwidth / (1 + V / contention_half_volume)
/// alpha(P) = alpha_base + alpha_per_rank * P
/// ```
///
/// where `out_n`/`in_n` are the bytes node `n` ships to / receives from
/// *other* nodes in the round, `V_n = max(out_n, in_n)`, and `intra_n` is
/// traffic between ranks of the same node (moved through shared memory).
/// The contention term captures the paper's observation that one huge round
/// "creates network contention on the single 56 Gbps link", while many
/// ~32 MB rounds "allow for full utilization of the network bandwidth".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Peak per-node link bandwidth, bytes/s (one direction).
    pub link_bandwidth: f64,
    /// Node-volume (bytes) at which the effective link rate halves.
    pub contention_half_volume: f64,
    /// Fixed software overhead per collective call, seconds.
    pub alpha_base: f64,
    /// Additional overhead per participating rank (alltoallw builds one
    /// datatype/message slot per peer), seconds.
    pub alpha_per_rank: f64,
    /// Intra-node (shared-memory) copy bandwidth, bytes/s per node.
    pub mem_bandwidth: f64,
}

impl NetModel {
    /// Effective per-link rate when a node moves `volume` bytes in one round.
    pub fn effective_rate(&self, volume: f64) -> f64 {
        self.link_bandwidth / (1.0 + volume / self.contention_half_volume)
    }

    /// Collective software overhead for `nprocs` participants.
    pub fn alpha(&self, nprocs: usize) -> f64 {
        self.alpha_base + self.alpha_per_rank * nprocs as f64
    }

    /// Time for one `alltoallw` round given the exact rank-pair byte matrix
    /// (`pair_bytes[s * nprocs + d]`, diagonal zero) and a rank→node map.
    pub fn alltoallw_round_time(
        &self,
        nprocs: usize,
        pair_bytes: &[u64],
        node_of: &[usize],
    ) -> f64 {
        assert_eq!(pair_bytes.len(), nprocs * nprocs, "pair matrix must be nprocs^2");
        assert_eq!(node_of.len(), nprocs, "node map must cover all ranks");
        let nnodes = node_of.iter().copied().max().map_or(1, |m| m + 1);
        let mut out = vec![0f64; nnodes];
        let mut inn = vec![0f64; nnodes];
        let mut intra = vec![0f64; nnodes];
        for s in 0..nprocs {
            for d in 0..nprocs {
                let b = pair_bytes[s * nprocs + d] as f64;
                if b == 0.0 {
                    continue;
                }
                if node_of[s] == node_of[d] {
                    intra[node_of[s]] += b;
                } else {
                    out[node_of[s]] += b;
                    inn[node_of[d]] += b;
                }
            }
        }
        let mut link_time = 0f64;
        for n in 0..nnodes {
            let v = out[n].max(inn[n]);
            if v > 0.0 {
                link_time = link_time.max(v / self.effective_rate(v));
            }
        }
        let mem_time = intra.iter().map(|&v| v / self.mem_bandwidth).fold(0f64, f64::max);
        self.alpha(nprocs) + link_time + mem_time
    }

    /// Time for a whole redistribution: sum of its rounds.
    pub fn redistribution_time<'a>(
        &self,
        nprocs: usize,
        rounds: impl IntoIterator<Item = &'a [u64]>,
        node_of: &[usize],
    ) -> f64 {
        rounds.into_iter().map(|m| self.alltoallw_round_time(nprocs, m, node_of)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetModel {
        NetModel {
            link_bandwidth: 7e9,
            contention_half_volume: 20e9,
            alpha_base: 0.010,
            alpha_per_rank: 0.001,
            mem_bandwidth: 30e9,
        }
    }

    #[test]
    fn effective_rate_halves_at_half_volume() {
        let n = net();
        assert!((n.effective_rate(20e9) - 3.5e9).abs() < 1.0);
        assert!(n.effective_rate(0.0) >= 7e9 - 1.0);
    }

    #[test]
    fn alpha_grows_linearly_with_ranks() {
        let n = net();
        assert!((n.alpha(2) - 0.012).abs() < 1e-12);
        assert!((n.alpha(256) - 0.266).abs() < 1e-12);
    }

    #[test]
    fn intra_node_traffic_avoids_the_link() {
        let n = net();
        // 2 ranks, same node, 1 GB exchanged: only memory time + alpha.
        let pair = vec![0, 1_000_000_000, 1_000_000_000, 0];
        let t_same = n.alltoallw_round_time(2, &pair, &[0, 0]);
        let t_diff = n.alltoallw_round_time(2, &pair, &[0, 1]);
        assert!(t_same < t_diff);
        let expected_mem = 2e9 / 30e9 + n.alpha(2);
        assert!((t_same - expected_mem).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_node_dominates() {
        let n = net();
        // Rank 0 on node 0 sends 1 GB to each of ranks 1, 2 (nodes 1, 2):
        // node 0's outgoing 2 GB is the bottleneck.
        let mut pair = vec![0u64; 9];
        pair[1] = 1_000_000_000;
        pair[2] = 1_000_000_000;
        let t = n.alltoallw_round_time(3, &pair, &[0, 1, 2]);
        let v = 2e9;
        assert!((t - (n.alpha(3) + v / n.effective_rate(v))).abs() < 1e-9);
    }

    #[test]
    fn big_single_round_slower_than_many_small_rounds_per_byte() {
        // The contention effect: the same volume in one round is slower (per
        // byte) than split over many rounds, until alpha dominates.
        let n = net();
        let one_round = vec![0, 40_000_000_000u64, 0, 0];
        let t_one = n.alltoallw_round_time(2, &one_round, &[0, 1]);
        let small = vec![0, 400_000_000u64, 0, 0];
        let t_hundred: f64 = (0..100).map(|_| n.alltoallw_round_time(2, &small, &[0, 1])).sum();
        assert!(t_hundred < t_one, "{t_hundred} vs {t_one}");
    }

    #[test]
    fn redistribution_time_sums_rounds() {
        let n = net();
        let r1 = vec![0, 1_000u64, 0, 0];
        let r2 = vec![0, 0, 2_000u64, 0];
        let total = n.redistribution_time(2, [r1.as_slice(), r2.as_slice()], &[0, 1]);
        let t1 = n.alltoallw_round_time(2, &r1, &[0, 1]);
        let t2 = n.alltoallw_round_time(2, &r2, &[0, 1]);
        assert!((total - (t1 + t2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn wrong_matrix_size_panics() {
        net().alltoallw_round_time(3, &[0; 4], &[0, 0, 0]);
    }
}
