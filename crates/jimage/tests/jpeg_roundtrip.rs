//! JPEG codec integration tests: our decoder validates our encoder across
//! content types, sizes, qualities, and subsampling modes, plus robustness
//! against corrupted streams.

use jimage::jpeg::{self, Subsampling};
use jimage::{Colormap, ImageError, RgbImage};

/// Smooth synthetic "CFD frame": two interacting sinusoidal vortices through
/// the paper's blue-white-red colormap.
fn vortex_frame(w: usize, h: usize) -> RgbImage {
    let cmap = Colormap::blue_white_red();
    let field: Vec<f32> = (0..w * h)
        .map(|i| {
            let x = (i % w) as f32 / w as f32;
            let y = (i / w) as f32 / h as f32;
            ((x * 12.0).sin() * (y * 8.0).cos()) * (1.0 - y)
        })
        .collect();
    RgbImage::from_scalar_field(w, h, &field, -1.0, 1.0, &cmap)
}

/// Noisy high-frequency content (worst case for DCT coding).
fn noise_frame(w: usize, h: usize) -> RgbImage {
    let mut state = 0x243F6A8885A308D3u64;
    let mut data = Vec::with_capacity(3 * w * h);
    for _ in 0..3 * w * h {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        data.push((state >> 56) as u8);
    }
    RgbImage::new(w, h, data).unwrap()
}

#[test]
fn smooth_frame_roundtrips_with_low_distortion() {
    let img = vortex_frame(160, 120);
    for sub in [Subsampling::S444, Subsampling::S420] {
        let bytes = jpeg::encode_with(&img, 90, sub).unwrap();
        let back = jpeg::decode(&bytes).unwrap();
        assert_eq!((back.width, back.height), (160, 120));
        let mad = img.mean_abs_diff(&back);
        assert!(mad < 4.0, "mean abs diff {mad} too high for {sub:?}");
    }
}

#[test]
fn compression_ratio_on_colormapped_field_is_high() {
    // The Table IV effect: a smooth colormapped field compresses far below
    // its raw size at quality 75.
    let img = vortex_frame(512, 256);
    let raw = img.data.len();
    let bytes = jpeg::encode(&img, 75).unwrap();
    let ratio = raw as f64 / bytes.len() as f64;
    assert!(ratio > 20.0, "only {ratio:.1}x compression");
}

#[test]
fn noise_still_roundtrips_within_quantization_error() {
    let img = noise_frame(64, 64);
    let bytes = jpeg::encode_with(&img, 95, Subsampling::S444).unwrap();
    let back = jpeg::decode(&bytes).unwrap();
    // Noise is badly approximated but must stay bounded and well-formed.
    let mad = img.mean_abs_diff(&back);
    assert!(mad < 40.0, "mean abs diff {mad}");
}

#[test]
fn odd_dimensions_are_padded_and_cropped_correctly() {
    for (w, h) in [(1usize, 1usize), (7, 5), (17, 9), (8, 8), (16, 16), (15, 31), (33, 1)] {
        for sub in [Subsampling::S444, Subsampling::S420] {
            let img = vortex_frame(w, h);
            let bytes = jpeg::encode_with(&img, 85, sub).unwrap();
            let back = jpeg::decode(&bytes).unwrap();
            assert_eq!((back.width, back.height), (w, h), "{w}x{h} {sub:?}");
        }
    }
}

#[test]
fn solid_color_is_reproduced_almost_exactly() {
    for rgb in [[255, 0, 0], [0, 255, 0], [12, 200, 100], [128, 128, 128]] {
        let img = RgbImage::filled(32, 32, rgb);
        let bytes = jpeg::encode(&img, 90).unwrap();
        let back = jpeg::decode(&bytes).unwrap();
        let mad = img.mean_abs_diff(&back);
        assert!(mad < 3.0, "solid {rgb:?}: mad {mad}");
    }
}

#[test]
fn quality_controls_distortion_monotonically() {
    let img = vortex_frame(128, 128);
    let mut prev_mad = f64::INFINITY;
    for q in [20u8, 50, 80, 95] {
        let back = jpeg::decode(&jpeg::encode(&img, q).unwrap()).unwrap();
        let mad = img.mean_abs_diff(&back);
        assert!(mad <= prev_mad + 0.5, "q{q}: {mad} vs {prev_mad}");
        prev_mad = mad;
    }
    assert!(prev_mad < 3.0);
}

#[test]
fn decoder_rejects_corruption() {
    assert!(matches!(jpeg::decode(b"not a jpeg"), Err(ImageError::Malformed(_))));
    assert!(jpeg::decode(&[0xFF, 0xD8, 0xFF, 0xD9]).is_err()); // SOI+EOI only

    let good = jpeg::encode(&vortex_frame(32, 32), 75).unwrap();
    // Truncations at various points must error, not panic.
    for cut in [3, 10, 50, good.len() / 2, good.len() - 3] {
        assert!(jpeg::decode(&good[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn decoder_rejects_progressive_sof() {
    let mut bytes = jpeg::encode(&vortex_frame(16, 16), 75).unwrap();
    // Rewrite SOF0 (FFC0) into SOF2 (FFC2 — progressive).
    for i in 0..bytes.len() - 1 {
        if bytes[i] == 0xFF && bytes[i + 1] == 0xC0 {
            bytes[i + 1] = 0xC2;
            break;
        }
    }
    assert!(matches!(jpeg::decode(&bytes), Err(ImageError::Unsupported(_))));
}

#[test]
fn chroma_subsampling_shrinks_files() {
    let img = vortex_frame(256, 256);
    let s444 = jpeg::encode_with(&img, 75, Subsampling::S444).unwrap().len();
    let s420 = jpeg::encode_with(&img, 75, Subsampling::S420).unwrap().len();
    assert!(s420 < s444, "{s420} vs {s444}");
}

#[test]
fn decoded_colors_match_colormap_semantics() {
    // A frame that is strongly blue on the left, red on the right: the
    // decoded image must preserve that structure.
    let w = 64;
    let field: Vec<f32> = (0..w * w).map(|i| if (i % w) < w / 2 { -1.0f32 } else { 1.0 }).collect();
    let img = RgbImage::from_scalar_field(w, w, &field, -1.0, 1.0, &Colormap::blue_white_red());
    let back = jpeg::decode(&jpeg::encode(&img, 90).unwrap()).unwrap();
    let left = back.get(8, 32);
    let right = back.get(56, 32);
    assert!(left[2] > 180 && left[0] < 100, "left {left:?} should be blue");
    assert!(right[0] > 180 && right[2] < 100, "right {right:?} should be red");
}

#[test]
fn grayscale_roundtrip() {
    // A smooth ramp with structure; decoded image must be near-identical
    // gray (r == g == b) at every pixel.
    let (w, h) = (100usize, 60usize);
    let gray: Vec<u8> = (0..w * h)
        .map(|i| {
            let x = (i % w) as f32 / w as f32;
            let y = (i / w) as f32 / h as f32;
            (127.0 + 120.0 * (x * 9.0).sin() * (y * 5.0).cos()) as u8
        })
        .collect();
    let bytes = jpeg::encode_gray(&gray, w, h, 90).unwrap();
    let back = jpeg::decode(&bytes).unwrap();
    assert_eq!((back.width, back.height), (w, h));
    let mut total_err = 0u64;
    for y in 0..h {
        for x in 0..w {
            let [r, g, b] = back.get(x, y);
            assert_eq!(r, g);
            assert_eq!(g, b);
            total_err += (r as i32 - gray[y * w + x] as i32).unsigned_abs() as u64;
        }
    }
    let mad = total_err as f64 / (w * h) as f64;
    assert!(mad < 4.0, "grayscale mad {mad}");
}

#[test]
fn grayscale_is_smaller_than_color() {
    let (w, h) = (128usize, 128usize);
    let gray: Vec<u8> = (0..w * h).map(|i| ((i * 7) % 251) as u8).collect();
    let g_bytes = jpeg::encode_gray(&gray, w, h, 75).unwrap().len();
    let rgb: Vec<u8> = gray.iter().flat_map(|&v| [v, v, v]).collect();
    let img = RgbImage::new(w, h, rgb).unwrap();
    let c_bytes = jpeg::encode(&img, 75).unwrap().len();
    assert!(g_bytes < c_bytes, "{g_bytes} vs {c_bytes}");
}

#[test]
fn grayscale_odd_sizes() {
    for (w, h) in [(1usize, 1usize), (9, 7), (8, 8), (17, 3)] {
        let gray: Vec<u8> = (0..w * h).map(|i| (i * 31 % 256) as u8).collect();
        let back = jpeg::decode(&jpeg::encode_gray(&gray, w, h, 85).unwrap()).unwrap();
        assert_eq!((back.width, back.height), (w, h));
    }
}
