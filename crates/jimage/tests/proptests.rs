//! Property tests for the JPEG codec: arbitrary sizes, qualities and
//! content must roundtrip without panics and with bounded distortion.

use jimage::jpeg::{self, Subsampling};
use jimage::RgbImage;
use proptest::prelude::*;

fn arb_image(w: usize, h: usize, seed: u64, smooth: bool) -> RgbImage {
    let mut s = seed | 1;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 56) as u8
    };
    let data: Vec<u8> = if smooth {
        (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .flat_map(|(x, y)| {
                let v = ((x * 255) / w.max(1)) as u8;
                let u = ((y * 255) / h.max(1)) as u8;
                [v, u, v ^ u]
            })
            .collect()
    } else {
        (0..3 * w * h).map(|_| next()).collect()
    };
    RgbImage::new(w, h, data).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_size_quality_subsampling_roundtrips(
        w in 1usize..70,
        h in 1usize..70,
        quality in 1u8..=100,
        seed in any::<u64>(),
        smooth in any::<bool>(),
        s420 in any::<bool>(),
    ) {
        let img = arb_image(w, h, seed, smooth);
        let sub = if s420 { Subsampling::S420 } else { Subsampling::S444 };
        let bytes = jpeg::encode_with(&img, quality, sub).unwrap();
        let back = jpeg::decode(&bytes).unwrap();
        prop_assert_eq!((back.width, back.height), (w, h));
        // Distortion is bounded by construction: 8-bit channels.
        let mad = img.mean_abs_diff(&back);
        prop_assert!(mad <= 128.0, "mad {}", mad);
        // High quality on smooth content must be tight.
        if smooth && quality >= 90 && w >= 16 && h >= 16 {
            prop_assert!(mad < 8.0, "q{} smooth mad {}", quality, mad);
        }
    }

    #[test]
    fn grayscale_any_size_roundtrips(
        w in 1usize..70,
        h in 1usize..70,
        quality in 1u8..=100,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let gray: Vec<u8> = (0..w * h)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 56) as u8
            })
            .collect();
        let bytes = jpeg::encode_gray(&gray, w, h, quality).unwrap();
        let back = jpeg::decode(&bytes).unwrap();
        prop_assert_eq!((back.width, back.height), (w, h));
    }

    #[test]
    fn corrupted_streams_never_panic(
        seed in any::<u64>(),
        flip_at_ppm in 0.0f64..1.0,
        flip_bits in any::<u8>(),
    ) {
        let img = arb_image(24, 24, seed, true);
        let mut bytes = jpeg::encode(&img, 75).unwrap();
        let idx = 2 + ((bytes.len() - 4) as f64 * flip_at_ppm) as usize;
        bytes[idx] ^= flip_bits | 1;
        // Either decodes to *something* well-formed or errors — no panic.
        if let Ok(img) = jpeg::decode(&bytes) {
            prop_assert!(img.width > 0 && img.height > 0);
        }
    }

    #[test]
    fn ppm_roundtrips_any_content(
        w in 1usize..64,
        h in 1usize..64,
        seed in any::<u64>(),
    ) {
        let img = arb_image(w, h, seed, false);
        let enc = jimage::pnm::encode_ppm(&img);
        prop_assert_eq!(jimage::pnm::decode_ppm(&enc).unwrap(), img);
    }
}
