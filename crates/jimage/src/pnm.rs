//! PPM (P6) and PGM (P5) binary I/O — loss-free image dumps for debugging
//! and for the raw-output side of the Table IV comparison.

use crate::error::{ImageError, Result};
use crate::rgb::RgbImage;
use std::io::Write;
use std::path::Path;

/// Encode an RGB image as binary PPM (P6).
pub fn encode_ppm(img: &RgbImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(img.data.len() + 32);
    write!(out, "P6\n{} {}\n255\n", img.width, img.height).expect("vec write");
    out.extend_from_slice(&img.data);
    out
}

/// Write an RGB image to a `.ppm` file.
pub fn write_ppm(path: &Path, img: &RgbImage) -> Result<()> {
    std::fs::write(path, encode_ppm(img))?;
    Ok(())
}

/// Encode an 8-bit grayscale buffer as binary PGM (P5).
pub fn encode_pgm(width: usize, height: usize, gray: &[u8]) -> Result<Vec<u8>> {
    if gray.len() != width * height {
        return Err(ImageError::DimensionMismatch { expected: width * height, got: gray.len() });
    }
    let mut out = Vec::with_capacity(gray.len() + 32);
    write!(out, "P5\n{width} {height}\n255\n").expect("vec write");
    out.extend_from_slice(gray);
    Ok(out)
}

/// Decode a binary PPM (P6) stream.
pub fn decode_ppm(bytes: &[u8]) -> Result<RgbImage> {
    let (header, rest) = parse_header(bytes, b"P6")?;
    let expected = 3 * header.0 * header.1;
    if rest.len() < expected {
        return Err(ImageError::Malformed(format!(
            "P6 payload has {} bytes, expected {expected}",
            rest.len()
        )));
    }
    RgbImage::new(header.0, header.1, rest[..expected].to_vec())
}

/// Parse a PNM header: magic, whitespace/comments, width, height, maxval.
/// Returns ((width, height), payload).
fn parse_header<'a>(bytes: &'a [u8], magic: &[u8]) -> Result<((usize, usize), &'a [u8])> {
    if bytes.len() < 2 || &bytes[0..2] != magic {
        return Err(ImageError::Malformed("bad PNM magic".into()));
    }
    let mut pos = 2;
    let mut fields = [0usize; 3];
    for field in fields.iter_mut() {
        // Skip whitespace and comments.
        loop {
            match bytes.get(pos) {
                Some(b'#') => {
                    while bytes.get(pos).is_some_and(|&b| b != b'\n') {
                        pos += 1;
                    }
                }
                Some(b) if b.is_ascii_whitespace() => pos += 1,
                Some(_) => break,
                None => return Err(ImageError::Malformed("truncated PNM header".into())),
            }
        }
        let start = pos;
        while bytes.get(pos).is_some_and(|b| b.is_ascii_digit()) {
            pos += 1;
        }
        if start == pos {
            return Err(ImageError::Malformed("expected integer in PNM header".into()));
        }
        *field = std::str::from_utf8(&bytes[start..pos])
            .expect("digits are utf8")
            .parse()
            .map_err(|_| ImageError::Malformed("PNM header integer overflow".into()))?;
    }
    if fields[2] != 255 {
        return Err(ImageError::Unsupported(format!("PNM maxval {}", fields[2])));
    }
    // Exactly one whitespace byte separates header and payload.
    if !bytes.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
        return Err(ImageError::Malformed("missing PNM header terminator".into()));
    }
    Ok(((fields[0], fields[1]), &bytes[pos + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppm_roundtrip() {
        let img = RgbImage::new(3, 2, (0u8..18).collect()).unwrap();
        let enc = encode_ppm(&img);
        assert!(enc.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(decode_ppm(&enc).unwrap(), img);
    }

    #[test]
    fn ppm_with_comments() {
        let payload: Vec<u8> = (0..12).collect();
        let mut bytes = b"P6\n# a comment\n2 2\n# another\n255\n".to_vec();
        bytes.extend_from_slice(&payload);
        let img = decode_ppm(&bytes).unwrap();
        assert_eq!((img.width, img.height), (2, 2));
        assert_eq!(img.data, payload);
    }

    #[test]
    fn ppm_rejects_bad_inputs() {
        assert!(decode_ppm(b"P5\n1 1\n255\nxxx").is_err());
        assert!(decode_ppm(b"P6\n2 2\n255\n\x00").is_err()); // short payload
        assert!(decode_ppm(b"P6\n2 2\n65535\n").is_err()); // 16-bit maxval
        assert!(decode_ppm(b"P6\n2\n").is_err());
    }

    #[test]
    fn pgm_encoding() {
        let enc = encode_pgm(2, 2, &[1, 2, 3, 4]).unwrap();
        assert!(enc.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&enc[enc.len() - 4..], &[1, 2, 3, 4]);
        assert!(encode_pgm(2, 2, &[0; 5]).is_err());
    }
}
