//! Scalar-to-color maps.

/// A piecewise-linear colormap over `t ∈ [0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Colormap {
    /// Control points: `(t, rgb)`, strictly increasing in `t`, covering 0..1.
    stops: Vec<(f32, [u8; 3])>,
}

impl Colormap {
    /// Build a colormap from control points. Points are sorted by `t`;
    /// the first and last stop are used for out-of-range values.
    ///
    /// # Panics
    /// Panics if fewer than two stops are given.
    pub fn from_stops(mut stops: Vec<(f32, [u8; 3])>) -> Self {
        assert!(stops.len() >= 2, "a colormap needs at least two stops");
        stops.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("stop positions must be finite"));
        Colormap { stops }
    }

    /// The paper's **blue-white-red** diverging map used for vorticity
    /// ("rendered using a blue-white-red colormap"): negative rotation blue,
    /// zero white, positive red.
    pub fn blue_white_red() -> Self {
        Colormap::from_stops(vec![(0.0, [0, 0, 255]), (0.5, [255, 255, 255]), (1.0, [255, 0, 0])])
    }

    /// Linear grayscale ramp.
    pub fn grayscale() -> Self {
        Colormap::from_stops(vec![(0.0, [0, 0, 0]), (1.0, [255, 255, 255])])
    }

    /// Warm bone/amber transfer ramp approximating the primate-tooth
    /// rendering of the paper's Figure 2 (dark transparent background through
    /// amber dentine to bright enamel).
    pub fn tooth() -> Self {
        Colormap::from_stops(vec![
            (0.0, [0, 0, 0]),
            (0.35, [96, 48, 24]),
            (0.65, [208, 144, 64]),
            (0.85, [240, 212, 160]),
            (1.0, [255, 252, 240]),
        ])
    }

    /// Map a normalized scalar to a color (clamping outside `[0, 1]`).
    pub fn map(&self, t: f32) -> [u8; 3] {
        let t = if t.is_nan() { 0.0 } else { t };
        let first = self.stops.first().expect("nonempty");
        let last = self.stops.last().expect("nonempty");
        if t <= first.0 {
            return first.1;
        }
        if t >= last.0 {
            return last.1;
        }
        let hi = self.stops.iter().position(|&(s, _)| s >= t).expect("t within range");
        let (t0, c0) = self.stops[hi - 1];
        let (t1, c1) = self.stops[hi];
        let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        let mut out = [0u8; 3];
        for ch in 0..3 {
            let v = c0[ch] as f32 + f * (c1[ch] as f32 - c0[ch] as f32);
            out[ch] = v.round().clamp(0.0, 255.0) as u8;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_white_red_endpoints_and_center() {
        let c = Colormap::blue_white_red();
        assert_eq!(c.map(0.0), [0, 0, 255]);
        assert_eq!(c.map(0.5), [255, 255, 255]);
        assert_eq!(c.map(1.0), [255, 0, 0]);
    }

    #[test]
    fn interpolation_is_linear() {
        let c = Colormap::blue_white_red();
        assert_eq!(c.map(0.25), [128, 128, 255]);
        assert_eq!(c.map(0.75), [255, 128, 128]);
    }

    #[test]
    fn clamps_out_of_range_and_nan() {
        let c = Colormap::grayscale();
        assert_eq!(c.map(-3.0), [0, 0, 0]);
        assert_eq!(c.map(42.0), [255, 255, 255]);
        assert_eq!(c.map(f32::NAN), [0, 0, 0]);
    }

    #[test]
    fn unsorted_stops_are_sorted() {
        let c = Colormap::from_stops(vec![(1.0, [255, 0, 0]), (0.0, [0, 0, 0])]);
        assert_eq!(c.map(0.0), [0, 0, 0]);
        assert_eq!(c.map(1.0), [255, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn single_stop_panics() {
        Colormap::from_stops(vec![(0.0, [0, 0, 0])]);
    }

    #[test]
    fn tooth_map_is_monotonically_brightening() {
        let c = Colormap::tooth();
        let lum =
            |rgb: [u8; 3]| 0.299 * rgb[0] as f32 + 0.587 * rgb[1] as f32 + 0.114 * rgb[2] as f32;
        let mut prev = -1.0;
        for i in 0..=20 {
            let l = lum(c.map(i as f32 / 20.0));
            assert!(l >= prev, "luminance must not decrease");
            prev = l;
        }
    }
}
