//! Image crate errors.

use std::fmt;

/// Errors produced by image construction and codecs.
#[derive(Debug)]
pub enum ImageError {
    /// Buffer length does not match the stated dimensions.
    DimensionMismatch {
        /// Expected number of values.
        expected: usize,
        /// Values actually provided.
        got: usize,
    },
    /// Not a JPEG/PNM stream, or a corrupted one.
    Malformed(String),
    /// Structurally valid input using a feature outside the baseline subset.
    Unsupported(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::DimensionMismatch { expected, got } => {
                write!(f, "buffer holds {got} values, dimensions imply {expected}")
            }
            ImageError::Malformed(s) => write!(f, "malformed image data: {s}"),
            ImageError::Unsupported(s) => write!(f, "unsupported image feature: {s}"),
            ImageError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(e: std::io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ImageError>;
