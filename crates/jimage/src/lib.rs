//! # jimage — image buffers, colormaps, and a baseline JPEG codec
//!
//! The paper's second use case renders 2-D CFD fields through a
//! blue-white-red colormap and stores the frames "as a compressed JPEG
//! image" instead of raw floats, reporting ≥ 99.38 % output-size reduction
//! (Table IV). This crate supplies that substrate from scratch:
//!
//! * [`RgbImage`] — 8-bit RGB buffers,
//! * [`Colormap`] — the paper's blue-white-red diverging map plus grayscale
//!   and a warm "tooth" transfer ramp for volume rendering,
//! * [`pnm`] — PPM/PGM for loss-free debugging output,
//! * [`jpeg`] — a baseline JFIF **encoder and decoder** (sequential DCT,
//!   Huffman, 4:4:4 or 4:2:0 chroma subsampling) with the standard Annex-K
//!   quantization/Huffman tables and IJG-style quality scaling.
//!
//! ```
//! use jimage::{Colormap, RgbImage, jpeg};
//! // Render a small field through the paper's colormap and compress it.
//! let field: Vec<f32> = (0..64 * 64).map(|i| (i % 64) as f32 / 63.0 - 0.5).collect();
//! let img = RgbImage::from_scalar_field(64, 64, &field, -0.5, 0.5, &Colormap::blue_white_red());
//! let bytes = jpeg::encode(&img, 75).unwrap();
//! let back = jpeg::decode(&bytes).unwrap();
//! assert_eq!((back.width, back.height), (64, 64));
//! assert!(bytes.len() < 64 * 64 * 3 / 4); // at least 4x smaller than raw RGB
//! ```

#![warn(missing_docs)]

mod colormap;
mod error;
pub mod jpeg;
pub mod pnm;
mod rgb;

pub use colormap::Colormap;
pub use error::{ImageError, Result};
pub use rgb::RgbImage;
