//! Baseline sequential JPEG encoder.

use super::bits::BitWriter;
use super::dct::fdct_8x8;
use super::tables::{
    build_codes, scale_quant_table, HuffSpec, AC_CHROMA, AC_LUMA, BASE_CHROMA_QUANT,
    BASE_LUMA_QUANT, DC_CHROMA, DC_LUMA, ZIGZAG,
};
use super::Subsampling;
use crate::error::Result;
use crate::rgb::RgbImage;

/// One padded component plane, level-shifted to be centered on zero.
struct Plane {
    w: usize,
    data: Vec<f32>,
}

impl Plane {
    fn block(&self, bx: usize, by: usize) -> [f32; 64] {
        let mut out = [0f32; 64];
        for y in 0..8 {
            let row = (by * 8 + y) * self.w + bx * 8;
            out[y * 8..y * 8 + 8].copy_from_slice(&self.data[row..row + 8]);
        }
        out
    }
}

/// Number of magnitude bits of `v` (JPEG "category"/SSSS).
fn category(v: i32) -> u8 {
    (32 - v.unsigned_abs().leading_zeros()) as u8
}

/// Low `cat` bits encoding `v` per the JPEG magnitude convention.
fn magnitude_bits(v: i32, cat: u8) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + (1 << cat) - 1) as u32
    }
}

struct BlockEncoder {
    dc_codes: [(u16, u8); 256],
    ac_codes: [(u16, u8); 256],
    quant: [u16; 64],
    dc_pred: i32,
}

impl BlockEncoder {
    fn new(dc: &HuffSpec, ac: &HuffSpec, quant: [u16; 64]) -> Self {
        BlockEncoder {
            dc_codes: build_codes(&dc.bits, dc.values),
            ac_codes: build_codes(&ac.bits, ac.values),
            quant,
            dc_pred: 0,
        }
    }

    fn encode(&mut self, mut block: [f32; 64], w: &mut BitWriter) {
        fdct_8x8(&mut block);
        let mut q = [0i32; 64];
        for (i, (&f, &d)) in block.iter().zip(self.quant.iter()).enumerate() {
            q[i] = (f / d as f32).round() as i32;
        }
        // DC difference.
        let dc = q[0];
        let diff = dc - self.dc_pred;
        self.dc_pred = dc;
        let cat = category(diff);
        let (code, len) = self.dc_codes[cat as usize];
        w.put(code as u32, len);
        if cat > 0 {
            w.put(magnitude_bits(diff, cat), cat);
        }
        // AC run-length coding over the zigzag scan.
        let mut run = 0u32;
        for &nat in &ZIGZAG[1..] {
            let v = q[nat];
            if v == 0 {
                run += 1;
                continue;
            }
            while run >= 16 {
                let (code, len) = self.ac_codes[0xF0]; // ZRL
                w.put(code as u32, len);
                run -= 16;
            }
            let cat = category(v);
            let symbol = ((run as u8) << 4) | cat;
            let (code, len) = self.ac_codes[symbol as usize];
            debug_assert!(len > 0, "missing AC code for symbol {symbol:#x}");
            w.put(code as u32, len);
            w.put(magnitude_bits(v, cat), cat);
            run = 0;
        }
        if run > 0 {
            let (code, len) = self.ac_codes[0x00]; // EOB
            w.put(code as u32, len);
        }
    }
}

fn push_marker(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.push(0xFF);
    out.push(marker);
    let len = (payload.len() + 2) as u16;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(payload);
}

fn dqt_payload(id: u8, quant: &[u16; 64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(65);
    p.push(id); // 8-bit precision, table id
    for &nat in &ZIGZAG {
        p.push(quant[nat] as u8);
    }
    p
}

fn dht_payload(class_id: u8, spec: &HuffSpec) -> Vec<u8> {
    let mut p = Vec::with_capacity(17 + spec.values.len());
    p.push(class_id);
    p.extend_from_slice(&spec.bits);
    p.extend_from_slice(spec.values);
    p
}

/// Build the three padded, level-shifted YCbCr planes. The full-resolution
/// image is padded by edge replication to MCU multiples; chroma is then
/// box-filtered down by the sampling factors.
fn build_planes(img: &RgbImage, sub: Subsampling) -> (Plane, Plane, Plane, usize, usize) {
    let (hs, vs) = match sub {
        Subsampling::S444 => (1usize, 1usize),
        Subsampling::S420 => (2, 2),
    };
    let mcu_w = 8 * hs;
    let mcu_h = 8 * vs;
    let mcux = img.width.div_ceil(mcu_w).max(1);
    let mcuy = img.height.div_ceil(mcu_h).max(1);
    let w1 = mcux * mcu_w;
    let h1 = mcuy * mcu_h;

    let mut y = vec![0f32; w1 * h1];
    let mut cb = vec![0f32; w1 * h1];
    let mut cr = vec![0f32; w1 * h1];
    for yy in 0..h1 {
        let sy = yy.min(img.height - 1);
        for xx in 0..w1 {
            let sx = xx.min(img.width - 1);
            let [r, g, b] = img.get(sx, sy);
            let (r, g, b) = (r as f32, g as f32, b as f32);
            let i = yy * w1 + xx;
            y[i] = 0.299 * r + 0.587 * g + 0.114 * b - 128.0;
            cb[i] = -0.168_736 * r - 0.331_264 * g + 0.5 * b;
            cr[i] = 0.5 * r - 0.418_688 * g - 0.081_312 * b;
        }
    }
    let y_plane = Plane { w: w1, data: y };
    let (cw, ch) = (w1 / hs, h1 / vs);
    let downsample = |src: &[f32]| -> Plane {
        if hs == 1 && vs == 1 {
            return Plane { w: w1, data: src.to_vec() };
        }
        let mut out = vec![0f32; cw * ch];
        for oy in 0..ch {
            for ox in 0..cw {
                let mut acc = 0f32;
                for dy in 0..vs {
                    for dx in 0..hs {
                        acc += src[(oy * vs + dy) * w1 + ox * hs + dx];
                    }
                }
                out[oy * cw + ox] = acc / (hs * vs) as f32;
            }
        }
        Plane { w: cw, data: out }
    };
    let cb_plane = downsample(&cb);
    let cr_plane = downsample(&cr);
    (y_plane, cb_plane, cr_plane, mcux, mcuy)
}

/// Encode an RGB image as a baseline JFIF JPEG at the given quality (1-100).
pub fn encode_with(img: &RgbImage, quality: u8, sub: Subsampling) -> Result<Vec<u8>> {
    assert!(img.width > 0 && img.height > 0, "cannot encode an empty image");
    assert!(
        img.width <= u16::MAX as usize && img.height <= u16::MAX as usize,
        "JPEG dimensions are limited to 65535"
    );
    let lq = scale_quant_table(&BASE_LUMA_QUANT, quality);
    let cq = scale_quant_table(&BASE_CHROMA_QUANT, quality);
    let (hs, vs) = match sub {
        Subsampling::S444 => (1u8, 1u8),
        Subsampling::S420 => (2, 2),
    };

    let mut out = Vec::with_capacity(img.data.len() / 8 + 1024);
    out.extend_from_slice(&[0xFF, 0xD8]); // SOI
    push_marker(&mut out, 0xE0, &[b'J', b'F', b'I', b'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0]);
    push_marker(&mut out, 0xDB, &dqt_payload(0, &lq));
    push_marker(&mut out, 0xDB, &dqt_payload(1, &cq));
    let (w, h) = (img.width as u16, img.height as u16);
    push_marker(
        &mut out,
        0xC0, // SOF0: baseline DCT
        &[
            8,
            (h >> 8) as u8,
            h as u8,
            (w >> 8) as u8,
            w as u8,
            3,
            1,
            (hs << 4) | vs,
            0,
            2,
            0x11,
            1,
            3,
            0x11,
            1,
        ],
    );
    push_marker(&mut out, 0xC4, &dht_payload(0x00, &DC_LUMA));
    push_marker(&mut out, 0xC4, &dht_payload(0x10, &AC_LUMA));
    push_marker(&mut out, 0xC4, &dht_payload(0x01, &DC_CHROMA));
    push_marker(&mut out, 0xC4, &dht_payload(0x11, &AC_CHROMA));
    push_marker(&mut out, 0xDA, &[3, 1, 0x00, 2, 0x11, 3, 0x11, 0, 63, 0]);

    let (yp, cbp, crp, mcux, mcuy) = build_planes(img, sub);
    let mut enc_y = BlockEncoder::new(&DC_LUMA, &AC_LUMA, lq);
    let mut enc_cb = BlockEncoder::new(&DC_CHROMA, &AC_CHROMA, cq);
    let mut enc_cr = BlockEncoder::new(&DC_CHROMA, &AC_CHROMA, cq);
    let mut w = BitWriter::new(out);
    for my in 0..mcuy {
        for mx in 0..mcux {
            for bv in 0..vs as usize {
                for bh in 0..hs as usize {
                    enc_y.encode(yp.block(mx * hs as usize + bh, my * vs as usize + bv), &mut w);
                }
            }
            enc_cb.encode(cbp.block(mx, my), &mut w);
            enc_cr.encode(crp.block(mx, my), &mut w);
        }
    }
    let mut out = w.finish();
    out.extend_from_slice(&[0xFF, 0xD9]); // EOI
    Ok(out)
}

/// Encode an 8-bit grayscale image as a single-component baseline JPEG —
/// the natural output format for DVR of grayscale CT data.
pub fn encode_gray(gray: &[u8], width: usize, height: usize, quality: u8) -> Result<Vec<u8>> {
    assert!(width > 0 && height > 0, "cannot encode an empty image");
    assert_eq!(gray.len(), width * height, "buffer must match dimensions");
    assert!(
        width <= u16::MAX as usize && height <= u16::MAX as usize,
        "JPEG dimensions are limited to 65535"
    );
    let lq = scale_quant_table(&BASE_LUMA_QUANT, quality);

    let mut out = Vec::with_capacity(gray.len() / 8 + 512);
    out.extend_from_slice(&[0xFF, 0xD8]);
    push_marker(&mut out, 0xE0, &[b'J', b'F', b'I', b'F', 0, 1, 1, 0, 0, 1, 0, 1, 0, 0]);
    push_marker(&mut out, 0xDB, &dqt_payload(0, &lq));
    let (w, h) = (width as u16, height as u16);
    push_marker(
        &mut out,
        0xC0,
        &[8, (h >> 8) as u8, h as u8, (w >> 8) as u8, w as u8, 1, 1, 0x11, 0],
    );
    push_marker(&mut out, 0xC4, &dht_payload(0x00, &DC_LUMA));
    push_marker(&mut out, 0xC4, &dht_payload(0x10, &AC_LUMA));
    push_marker(&mut out, 0xDA, &[1, 1, 0x00, 0, 63, 0]);

    // Pad to 8-pixel multiples by edge replication, level-shifted.
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let w1 = bw * 8;
    let plane: Vec<f32> = (0..bh * 8)
        .flat_map(|y| {
            let sy = y.min(height - 1);
            (0..w1).map(move |x| (x, sy))
        })
        .map(|(x, sy)| gray[sy * width + x.min(width - 1)] as f32 - 128.0)
        .collect();
    let plane = Plane { w: w1, data: plane };

    let mut enc = BlockEncoder::new(&DC_LUMA, &AC_LUMA, lq);
    let mut writer = BitWriter::new(out);
    for by in 0..bh {
        for bx in 0..bw {
            enc.encode(plane.block(bx, by), &mut writer);
        }
    }
    let mut out = writer.finish();
    out.extend_from_slice(&[0xFF, 0xD9]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_matches_bit_length() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(255), 8);
        assert_eq!(category(-256), 9);
        assert_eq!(category(1023), 10);
    }

    #[test]
    fn magnitude_bits_convention() {
        // v = 5 (cat 3) -> 101; v = -5 -> 010 (one's complement of 5).
        assert_eq!(magnitude_bits(5, 3), 0b101);
        assert_eq!(magnitude_bits(-5, 3), 0b010);
        assert_eq!(magnitude_bits(-1, 1), 0);
        assert_eq!(magnitude_bits(1, 1), 1);
    }

    #[test]
    fn stream_is_framed_by_soi_and_eoi() {
        let img = RgbImage::filled(10, 10, [128, 64, 32]);
        let bytes = encode_with(&img, 75, Subsampling::S420).unwrap();
        assert_eq!(&bytes[0..2], &[0xFF, 0xD8]);
        assert_eq!(&bytes[bytes.len() - 2..], &[0xFF, 0xD9]);
    }

    #[test]
    fn flat_image_compresses_massively() {
        let img = RgbImage::filled(256, 256, [200, 100, 50]);
        let bytes = encode_with(&img, 75, Subsampling::S420).unwrap();
        // 192 KiB of raw RGB collapses to well under 2 KiB.
        assert!(bytes.len() < 2048, "{} bytes", bytes.len());
    }

    #[test]
    fn higher_quality_means_more_bytes() {
        let mut img = RgbImage::filled(64, 64, [0, 0, 0]);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, [((x * y) % 256) as u8, (x * 4) as u8, (y * 4) as u8]);
            }
        }
        let q10 = encode_with(&img, 10, Subsampling::S420).unwrap().len();
        let q50 = encode_with(&img, 50, Subsampling::S420).unwrap().len();
        let q95 = encode_with(&img, 95, Subsampling::S420).unwrap().len();
        assert!(q10 < q50 && q50 < q95, "{q10} {q50} {q95}");
    }

    #[test]
    fn s444_carries_more_chroma_than_s420() {
        let mut img = RgbImage::filled(64, 64, [0, 0, 0]);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, [(x * 4) as u8, 0, (y * 4) as u8]);
            }
        }
        let s420 = encode_with(&img, 75, Subsampling::S420).unwrap().len();
        let s444 = encode_with(&img, 75, Subsampling::S444).unwrap().len();
        assert!(s444 > s420, "{s444} vs {s420}");
    }
}
