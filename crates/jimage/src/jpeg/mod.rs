//! Baseline JFIF JPEG codec (sequential DCT, Huffman entropy coding).
//!
//! The encoder implements the standard pipeline — YCbCr conversion,
//! optional 4:2:0 chroma subsampling, 8×8 FDCT, quality-scaled Annex-K
//! quantization, zigzag run-length + canonical Huffman coding, byte
//! stuffing — and the decoder reverses it, reading the quantization and
//! Huffman tables from the stream itself.
//!
//! This is the compression substrate behind the paper's Table IV: rendered
//! CFD frames are stored as JPEG instead of raw floats, cutting output size
//! by ≥ 99.38 %.

mod bits;
mod dct;
mod decoder;
mod encoder;
mod tables;

pub use decoder::decode;
pub use encoder::{encode_gray, encode_with};

pub use dct::{fdct_8x8, idct_8x8};

/// Chroma subsampling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Subsampling {
    /// Full-resolution chroma (one Y, Cb, Cr block per MCU).
    S444,
    /// 2×2-subsampled chroma (four Y blocks per MCU) — the common default
    /// and the better match for the paper's compression ratios.
    #[default]
    S420,
}

/// Encode an RGB image as a baseline JPEG at `quality` (1–100) with 4:2:0
/// chroma subsampling.
pub fn encode(img: &crate::RgbImage, quality: u8) -> crate::Result<Vec<u8>> {
    encode_with(img, quality, Subsampling::S420)
}
