//! Entropy-coded bit I/O with JPEG byte stuffing.

use crate::error::{ImageError, Result};

/// MSB-first bit writer that stuffs a `0x00` after every `0xFF` data byte,
/// as the JPEG entropy-coded segment requires.
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Start writing into an existing buffer (headers already emitted).
    pub fn new(out: Vec<u8>) -> Self {
        BitWriter { out, acc: 0, nbits: 0 }
    }

    /// Append the `len` low bits of `value`, MSB first.
    pub fn put(&mut self, value: u32, len: u8) {
        debug_assert!(len <= 24, "put supports at most 24 bits at a time");
        debug_assert!(len as u32 == 32 || value >> len == 0, "value wider than len");
        self.acc = (self.acc << len) | value;
        self.nbits += len as u32;
        while self.nbits >= 8 {
            self.nbits -= 8;
            let byte = (self.acc >> self.nbits) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00);
            }
        }
        self.acc &= (1 << self.nbits) - 1;
    }

    /// Pad the final partial byte with 1-bits (per T.81) and return the
    /// buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits as u8;
            self.put((1u32 << pad) - 1, pad);
        }
        self.out
    }
}

/// MSB-first bit reader over an entropy-coded segment, removing byte
/// stuffing and stopping at any marker.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read starting at `pos` within `data` (just after an SOS header).
    pub fn new(data: &'a [u8], pos: usize) -> Self {
        BitReader { data, pos, acc: 0, nbits: 0 }
    }

    fn refill(&mut self) -> Result<()> {
        let &b = self
            .data
            .get(self.pos)
            .ok_or_else(|| ImageError::Malformed("entropy data ran out".into()))?;
        if b == 0xFF {
            match self.data.get(self.pos + 1) {
                Some(0x00) => {
                    self.pos += 2; // stuffed FF
                }
                _ => {
                    return Err(ImageError::Malformed(
                        "marker encountered inside entropy data".into(),
                    ))
                }
            }
        } else {
            self.pos += 1;
        }
        self.acc = (self.acc << 8) | b as u32;
        self.nbits += 8;
        Ok(())
    }

    /// Read one bit.
    pub fn bit(&mut self) -> Result<u32> {
        if self.nbits == 0 {
            self.refill()?;
        }
        self.nbits -= 1;
        Ok((self.acc >> self.nbits) & 1)
    }

    /// Read `len` bits MSB-first.
    pub fn bits(&mut self, len: u8) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..len {
            v = (v << 1) | self.bit()?;
        }
        Ok(v)
    }

    /// Decode the JPEG `EXTEND` of a `len`-bit magnitude into a signed value.
    pub fn receive_extend(&mut self, len: u8) -> Result<i32> {
        if len == 0 {
            return Ok(0);
        }
        let v = self.bits(len)? as i32;
        Ok(if v < (1 << (len - 1)) { v - (1 << len) + 1 } else { v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BitWriter::new(Vec::new());
        w.put(0b101, 3);
        w.put(0b0011, 4);
        w.put(0xABCD, 16);
        w.put(1, 1);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes, 0);
        assert_eq!(r.bits(3).unwrap(), 0b101);
        assert_eq!(r.bits(4).unwrap(), 0b0011);
        assert_eq!(r.bits(16).unwrap(), 0xABCD);
        assert_eq!(r.bit().unwrap(), 1);
    }

    #[test]
    fn ff_bytes_are_stuffed_and_unstuffed() {
        let mut w = BitWriter::new(Vec::new());
        w.put(0xFF, 8);
        w.put(0xFF, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00, 0xFF, 0x00]);
        let mut r = BitReader::new(&bytes, 0);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
        assert_eq!(r.bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn padding_fills_with_ones() {
        let mut w = BitWriter::new(Vec::new());
        w.put(0, 1);
        assert_eq!(w.finish(), vec![0b0111_1111]);
    }

    #[test]
    fn reader_stops_at_markers() {
        let data = [0x12, 0xFF, 0xD9]; // EOI after one byte
        let mut r = BitReader::new(&data, 0);
        assert_eq!(r.bits(8).unwrap(), 0x12);
        assert!(r.bit().is_err());
    }

    #[test]
    fn receive_extend_signs() {
        // Category 3: raw 0..3 map to -7..-4, raw 4..7 map to 4..7.
        let mut w = BitWriter::new(Vec::new());
        w.put(0b000, 3);
        w.put(0b111, 3);
        w.put(0b100, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes, 0);
        assert_eq!(r.receive_extend(3).unwrap(), -7);
        assert_eq!(r.receive_extend(3).unwrap(), 7);
        assert_eq!(r.receive_extend(3).unwrap(), 4);
        // Category 0 consumes nothing.
        assert_eq!(r.receive_extend(0).unwrap(), 0);
    }
}
