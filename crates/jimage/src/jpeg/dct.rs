//! 8×8 forward and inverse DCT (orthonormal, matching T.81's definition).

use std::sync::OnceLock;

/// Orthonormal 1-D DCT-II basis: `M[u][n] = c(u) · cos((2n+1)uπ/16)` with
/// `c(0) = 1/√8`, `c(u>0) = 1/2`. The 2-D transform `M·f·Mᵀ` then equals the
/// JPEG FDCT `¼·C(u)C(v)·ΣΣ…` exactly.
fn basis() -> &'static [[f32; 8]; 8] {
    static M: OnceLock<[[f32; 8]; 8]> = OnceLock::new();
    M.get_or_init(|| {
        let mut m = [[0f32; 8]; 8];
        for (u, row) in m.iter_mut().enumerate() {
            let c = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 };
            for (n, v) in row.iter_mut().enumerate() {
                *v = (c * ((2 * n + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        m
    })
}

/// Forward DCT of an 8×8 block, in place (row-major).
pub fn fdct_8x8(block: &mut [f32; 64]) {
    let m = basis();
    let mut tmp = [0f32; 64];
    // Rows: tmp = f · Mᵀ  (transform along x).
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0f32;
            for x in 0..8 {
                acc += block[y * 8 + x] * m[u][x];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Columns: out = M · tmp (transform along y).
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0f32;
            for y in 0..8 {
                acc += tmp[y * 8 + u] * m[v][y];
            }
            block[v * 8 + u] = acc;
        }
    }
}

/// Inverse DCT of an 8×8 block, in place (row-major).
pub fn idct_8x8(block: &mut [f32; 64]) {
    let m = basis();
    let mut tmp = [0f32; 64];
    // Columns: tmp = Mᵀ · F.
    for y in 0..8 {
        for u in 0..8 {
            let mut acc = 0f32;
            for v in 0..8 {
                acc += m[v][y] * block[v * 8 + u];
            }
            tmp[y * 8 + u] = acc;
        }
    }
    // Rows: out = tmp · M.
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0f32;
            for u in 0..8 {
                acc += tmp[y * 8 + u] * m[u][x];
            }
            block[y * 8 + x] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_block_concentrates_in_dc() {
        let mut b = [100f32; 64];
        fdct_8x8(&mut b);
        // DC of a constant 100 block: 8 * 100 = 800 (orthonormal scaling).
        assert!((b[0] - 800.0).abs() < 1e-3, "dc = {}", b[0]);
        for (i, &v) in b.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-3, "ac[{i}] = {v}");
        }
    }

    #[test]
    fn fdct_idct_roundtrip() {
        let mut b = [0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 37 + 11) % 255) as f32 - 128.0;
        }
        let orig = b;
        fdct_8x8(&mut b);
        idct_8x8(&mut b);
        for (a, o) in b.iter().zip(orig.iter()) {
            assert!((a - o).abs() < 1e-2, "{a} vs {o}");
        }
    }

    #[test]
    fn transform_is_orthonormal() {
        // Parseval: energy preserved.
        let mut b = [0f32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i as f32).sin() * 100.0;
        }
        let e0: f32 = b.iter().map(|v| v * v).sum();
        fdct_8x8(&mut b);
        let e1: f32 = b.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() / e0 < 1e-4);
    }

    #[test]
    fn horizontal_cosine_maps_to_single_coefficient() {
        // f(x,y) = cos((2x+1)·3π/16) should produce only coefficient (u=3,v=0).
        let mut b = [0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                b[y * 8 + x] = ((2 * x + 1) as f32 * 3.0 * std::f32::consts::PI / 16.0).cos();
            }
        }
        fdct_8x8(&mut b);
        for v in 0..8 {
            for u in 0..8 {
                let c = b[v * 8 + u];
                if (u, v) == (3, 0) {
                    assert!(c.abs() > 1.0);
                } else {
                    assert!(c.abs() < 1e-3, "({u},{v}) = {c}");
                }
            }
        }
    }
}
