//! Baseline sequential JPEG decoder.

use super::bits::BitReader;
use super::dct::idct_8x8;
use super::tables::ZIGZAG;
use crate::error::{ImageError, Result};
use crate::rgb::RgbImage;

/// Huffman decoding table in the canonical mincode/maxcode/valptr form.
struct HuffDecoder {
    mincode: [i32; 17],
    maxcode: [i32; 17],
    valptr: [usize; 17],
    values: Vec<u8>,
}

impl HuffDecoder {
    fn new(bits: &[u8; 16], values: Vec<u8>) -> Self {
        let mut mincode = [0i32; 17];
        let mut maxcode = [-1i32; 17];
        let mut valptr = [0usize; 17];
        let mut code = 0i32;
        let mut k = 0usize;
        for len in 1..=16usize {
            let n = bits[len - 1] as usize;
            if n > 0 {
                valptr[len] = k;
                mincode[len] = code;
                code += n as i32;
                maxcode[len] = code - 1;
                k += n;
            }
            code <<= 1;
        }
        HuffDecoder { mincode, maxcode, valptr, values }
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u8> {
        let mut code = 0i32;
        for len in 1..=16usize {
            code = (code << 1) | r.bit()? as i32;
            if self.maxcode[len] >= 0 && code <= self.maxcode[len] && code >= self.mincode[len] {
                let idx = self.valptr[len] + (code - self.mincode[len]) as usize;
                return self
                    .values
                    .get(idx)
                    .copied()
                    .ok_or_else(|| ImageError::Malformed("huffman value index".into()));
            }
        }
        Err(ImageError::Malformed("invalid huffman code (>16 bits)".into()))
    }
}

#[derive(Clone, Copy)]
struct Component {
    id: u8,
    h: usize,
    v: usize,
    tq: usize,
    dc_table: usize,
    ac_table: usize,
}

/// Parsed decoder state.
struct Decoder {
    width: usize,
    height: usize,
    comps: Vec<Component>,
    quant: [Option<[u16; 64]>; 4],
    dc: [Option<HuffDecoder>; 4],
    ac: [Option<HuffDecoder>; 4],
    restart_interval: usize,
}

fn be16(data: &[u8], pos: usize) -> Result<usize> {
    data.get(pos..pos + 2)
        .map(|b| ((b[0] as usize) << 8) | b[1] as usize)
        .ok_or_else(|| ImageError::Malformed("truncated segment".into()))
}

/// Payload of a marker segment whose 2-byte length field sits at `pos`.
fn segment(data: &[u8], pos: usize, len: usize) -> Result<&[u8]> {
    if len < 2 {
        return Err(ImageError::Malformed("segment length < 2".into()));
    }
    data.get(pos + 2..pos + len)
        .ok_or_else(|| ImageError::Malformed("truncated segment payload".into()))
}

/// Decode a baseline JFIF JPEG (grayscale or YCbCr, sampling factors 1-2).
pub fn decode(bytes: &[u8]) -> Result<RgbImage> {
    if bytes.len() < 4 || bytes[0] != 0xFF || bytes[1] != 0xD8 {
        return Err(ImageError::Malformed("missing SOI marker".into()));
    }
    let mut d = Decoder {
        width: 0,
        height: 0,
        comps: Vec::new(),
        quant: [None; 4],
        dc: [None, None, None, None],
        ac: [None, None, None, None],
        restart_interval: 0,
    };
    let mut pos = 2usize;
    loop {
        // Find the next marker.
        while bytes.get(pos) == Some(&0xFF) && bytes.get(pos + 1) == Some(&0xFF) {
            pos += 1;
        }
        let marker = match (bytes.get(pos), bytes.get(pos + 1)) {
            (Some(&0xFF), Some(&m)) => m,
            _ => return Err(ImageError::Malformed("expected marker".into())),
        };
        pos += 2;
        match marker {
            0xD9 => return Err(ImageError::Malformed("EOI before scan data".into())),
            0x01 | 0xD0..=0xD7 => continue, // standalone markers
            0xC0 => {
                let len = be16(bytes, pos)?;
                parse_sof0(&mut d, segment(bytes, pos, len)?)?;
                pos += len;
            }
            0xC1 | 0xC2 | 0xC3 | 0xC5..=0xC7 | 0xC9..=0xCB | 0xCD..=0xCF => {
                return Err(ImageError::Unsupported(format!(
                    "non-baseline SOF marker 0xFF{marker:02X}"
                )));
            }
            0xC4 => {
                let len = be16(bytes, pos)?;
                parse_dht(&mut d, segment(bytes, pos, len)?)?;
                pos += len;
            }
            0xDB => {
                let len = be16(bytes, pos)?;
                parse_dqt(&mut d, segment(bytes, pos, len)?)?;
                pos += len;
            }
            0xDD => {
                let len = be16(bytes, pos)?;
                d.restart_interval = be16(bytes, pos + 2)?;
                if d.restart_interval != 0 {
                    return Err(ImageError::Unsupported("restart intervals".into()));
                }
                pos += len;
            }
            0xDA => {
                let len = be16(bytes, pos)?;
                parse_sos(&mut d, segment(bytes, pos, len)?)?;
                return decode_scan(&d, bytes, pos + len);
            }
            _ => {
                // APPn, COM, anything else with a length: skip.
                let len = be16(bytes, pos)?;
                pos += len;
            }
        }
    }
}

fn parse_sof0(d: &mut Decoder, seg: &[u8]) -> Result<()> {
    if seg.len() < 6 {
        return Err(ImageError::Malformed("short SOF0".into()));
    }
    if seg[0] != 8 {
        return Err(ImageError::Unsupported(format!("{}-bit precision", seg[0])));
    }
    d.height = ((seg[1] as usize) << 8) | seg[2] as usize;
    d.width = ((seg[3] as usize) << 8) | seg[4] as usize;
    if d.width == 0 || d.height == 0 {
        return Err(ImageError::Malformed("zero dimension in SOF0".into()));
    }
    let n = seg[5] as usize;
    if n != 1 && n != 3 {
        return Err(ImageError::Unsupported(format!("{n}-component scan")));
    }
    if seg.len() < 6 + 3 * n {
        return Err(ImageError::Malformed("short SOF0 component list".into()));
    }
    d.comps = (0..n)
        .map(|i| {
            let b = &seg[6 + 3 * i..9 + 3 * i];
            Component {
                id: b[0],
                h: (b[1] >> 4) as usize,
                v: (b[1] & 0xF) as usize,
                tq: b[2] as usize,
                dc_table: 0,
                ac_table: 0,
            }
        })
        .collect();
    for c in &d.comps {
        if !(1..=2).contains(&c.h) || !(1..=2).contains(&c.v) || c.tq > 3 {
            return Err(ImageError::Unsupported(format!(
                "sampling {}x{} / quant table {}",
                c.h, c.v, c.tq
            )));
        }
    }
    Ok(())
}

fn parse_dqt(d: &mut Decoder, mut seg: &[u8]) -> Result<()> {
    while !seg.is_empty() {
        let pq = seg[0] >> 4;
        let tq = (seg[0] & 0xF) as usize;
        if pq != 0 {
            return Err(ImageError::Unsupported("16-bit quantization tables".into()));
        }
        if tq > 3 || seg.len() < 65 {
            return Err(ImageError::Malformed("bad DQT".into()));
        }
        let mut table = [0u16; 64];
        for (zz, &q) in seg[1..65].iter().enumerate() {
            table[ZIGZAG[zz]] = q as u16;
        }
        d.quant[tq] = Some(table);
        seg = &seg[65..];
    }
    Ok(())
}

fn parse_dht(d: &mut Decoder, mut seg: &[u8]) -> Result<()> {
    while !seg.is_empty() {
        if seg.len() < 17 {
            return Err(ImageError::Malformed("short DHT".into()));
        }
        let class = seg[0] >> 4;
        let id = (seg[0] & 0xF) as usize;
        if class > 1 || id > 3 {
            return Err(ImageError::Malformed("bad DHT class/id".into()));
        }
        let mut bits = [0u8; 16];
        bits.copy_from_slice(&seg[1..17]);
        let n: usize = bits.iter().map(|&b| b as usize).sum();
        if seg.len() < 17 + n {
            return Err(ImageError::Malformed("short DHT values".into()));
        }
        let values = seg[17..17 + n].to_vec();
        let table = HuffDecoder::new(&bits, values);
        if class == 0 {
            d.dc[id] = Some(table);
        } else {
            d.ac[id] = Some(table);
        }
        seg = &seg[17 + n..];
    }
    Ok(())
}

fn parse_sos(d: &mut Decoder, seg: &[u8]) -> Result<()> {
    if seg.is_empty() || seg[0] as usize != d.comps.len() {
        return Err(ImageError::Malformed("SOS component count mismatch".into()));
    }
    let n = seg[0] as usize;
    if seg.len() < 1 + 2 * n + 3 {
        return Err(ImageError::Malformed("short SOS".into()));
    }
    for i in 0..n {
        let cid = seg[1 + 2 * i];
        let tables = seg[2 + 2 * i];
        let comp = d
            .comps
            .iter_mut()
            .find(|c| c.id == cid)
            .ok_or_else(|| ImageError::Malformed(format!("SOS references component {cid}")))?;
        comp.dc_table = (tables >> 4) as usize;
        comp.ac_table = (tables & 0xF) as usize;
    }
    Ok(())
}

fn decode_scan(d: &Decoder, bytes: &[u8], pos: usize) -> Result<RgbImage> {
    let hmax = d.comps.iter().map(|c| c.h).max().expect("components parsed");
    let vmax = d.comps.iter().map(|c| c.v).max().expect("components parsed");
    let mcux = d.width.div_ceil(8 * hmax);
    let mcuy = d.height.div_ceil(8 * vmax);

    // Per-component pixel planes at their native (subsampled) resolution.
    let mut planes: Vec<Vec<u8>> =
        d.comps.iter().map(|c| vec![0u8; (mcux * c.h * 8) * (mcuy * c.v * 8)]).collect();
    let mut dc_pred = vec![0i32; d.comps.len()];
    let mut r = BitReader::new(bytes, pos);

    for my in 0..mcuy {
        for mx in 0..mcux {
            for (ci, comp) in d.comps.iter().enumerate() {
                let quant = d.quant[comp.tq]
                    .as_ref()
                    .ok_or_else(|| ImageError::Malformed("missing quant table".into()))?;
                let dc_tab = d.dc[comp.dc_table]
                    .as_ref()
                    .ok_or_else(|| ImageError::Malformed("missing DC table".into()))?;
                let ac_tab = d.ac[comp.ac_table]
                    .as_ref()
                    .ok_or_else(|| ImageError::Malformed("missing AC table".into()))?;
                for bv in 0..comp.v {
                    for bh in 0..comp.h {
                        let block = decode_block(&mut r, dc_tab, ac_tab, quant, &mut dc_pred[ci])?;
                        // Deposit into the component plane.
                        let plane_w = mcux * comp.h * 8;
                        let px = (mx * comp.h + bh) * 8;
                        let py = (my * comp.v + bv) * 8;
                        let plane = &mut planes[ci];
                        for y in 0..8 {
                            for x in 0..8 {
                                plane[(py + y) * plane_w + px + x] = block[y * 8 + x];
                            }
                        }
                    }
                }
            }
        }
    }

    // Upsample to full padded resolution and convert to RGB.
    let w1 = mcux * hmax * 8;
    let mut out = vec![0u8; 3 * d.width * d.height];
    let sample = |ci: usize, x: usize, y: usize| -> f32 {
        let c = &d.comps[ci];
        let plane_w = mcux * c.h * 8;
        let sx = x * c.h / hmax;
        let sy = y * c.v / vmax;
        planes[ci][sy * plane_w + sx] as f32
    };
    let _ = w1;
    for y in 0..d.height {
        for x in 0..d.width {
            let (r8, g8, b8);
            if d.comps.len() == 1 {
                let v = sample(0, x, y);
                r8 = v;
                g8 = v;
                b8 = v;
            } else {
                let yv = sample(0, x, y);
                let cb = sample(1, x, y) - 128.0;
                let cr = sample(2, x, y) - 128.0;
                r8 = yv + 1.402 * cr;
                g8 = yv - 0.344_136 * cb - 0.714_136 * cr;
                b8 = yv + 1.772 * cb;
            }
            let i = 3 * (y * d.width + x);
            out[i] = r8.round().clamp(0.0, 255.0) as u8;
            out[i + 1] = g8.round().clamp(0.0, 255.0) as u8;
            out[i + 2] = b8.round().clamp(0.0, 255.0) as u8;
        }
    }
    RgbImage::new(d.width, d.height, out)
}

fn decode_block(
    r: &mut BitReader<'_>,
    dc_tab: &HuffDecoder,
    ac_tab: &HuffDecoder,
    quant: &[u16; 64],
    dc_pred: &mut i32,
) -> Result<[u8; 64]> {
    let mut coef = [0f32; 64];
    // DC.
    let cat = dc_tab.decode(r)?;
    if cat > 11 {
        return Err(ImageError::Malformed(format!("DC category {cat}")));
    }
    let diff = r.receive_extend(cat)?;
    *dc_pred += diff;
    coef[0] = (*dc_pred * quant[0] as i32) as f32;
    // AC.
    let mut k = 1usize;
    while k < 64 {
        let rs = ac_tab.decode(r)?;
        let run = (rs >> 4) as usize;
        let size = rs & 0xF;
        if size == 0 {
            if run == 15 {
                k += 16; // ZRL
                continue;
            }
            break; // EOB
        }
        k += run;
        if k >= 64 {
            return Err(ImageError::Malformed("AC run past end of block".into()));
        }
        let v = r.receive_extend(size)?;
        let nat = ZIGZAG[k];
        coef[nat] = (v * quant[nat] as i32) as f32;
        k += 1;
    }
    idct_8x8(&mut coef);
    let mut out = [0u8; 64];
    for (o, &c) in out.iter_mut().zip(coef.iter()) {
        *o = (c + 128.0).round().clamp(0.0, 255.0) as u8;
    }
    Ok(out)
}
