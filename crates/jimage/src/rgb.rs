//! 8-bit RGB image buffers.

use crate::colormap::Colormap;
use crate::error::{ImageError, Result};

/// An 8-bit RGB image, rows top-to-bottom, pixels left-to-right,
/// channels interleaved (`R G B R G B …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved channel data of length `3 * width * height`.
    pub data: Vec<u8>,
}

impl RgbImage {
    /// Create an image from existing interleaved data.
    pub fn new(width: usize, height: usize, data: Vec<u8>) -> Result<Self> {
        let expected = 3 * width * height;
        if data.len() != expected {
            return Err(ImageError::DimensionMismatch { expected, got: data.len() });
        }
        Ok(RgbImage { width, height, data })
    }

    /// Solid-color image.
    pub fn filled(width: usize, height: usize, rgb: [u8; 3]) -> Self {
        let mut data = Vec::with_capacity(3 * width * height);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        RgbImage { width, height, data }
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when the coordinate is out of bounds.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        let i = 3 * (y * self.width + x);
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Set pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics when the coordinate is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        let i = 3 * (y * self.width + x);
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Render a scalar field through a colormap: values are normalized from
    /// `[vmin, vmax]` to `[0, 1]` (clamped) and mapped to colors — the
    /// paper's visualization step ("apply a colormap in order to create an
    /// image").
    pub fn from_scalar_field(
        width: usize,
        height: usize,
        field: &[f32],
        vmin: f32,
        vmax: f32,
        cmap: &Colormap,
    ) -> Self {
        assert_eq!(field.len(), width * height, "field length must match dimensions");
        let span = if vmax > vmin { vmax - vmin } else { 1.0 };
        let mut data = Vec::with_capacity(3 * field.len());
        for &v in field {
            let t = ((v - vmin) / span).clamp(0.0, 1.0);
            data.extend_from_slice(&cmap.map(t));
        }
        RgbImage { width, height, data }
    }

    /// Mean absolute per-channel difference to another image of the same
    /// size — a cheap distortion metric for codec tests.
    pub fn mean_abs_diff(&self, other: &RgbImage) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "images must have identical dimensions"
        );
        let total: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        total as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = RgbImage::filled(4, 3, [10, 20, 30]);
        assert_eq!(img.get(3, 2), [10, 20, 30]);
        img.set(1, 1, [1, 2, 3]);
        assert_eq!(img.get(1, 1), [1, 2, 3]);
        assert_eq!(img.get(1, 0), [10, 20, 30]);
    }

    #[test]
    fn new_rejects_wrong_length() {
        assert!(matches!(
            RgbImage::new(2, 2, vec![0; 11]),
            Err(ImageError::DimensionMismatch { expected: 12, got: 11 })
        ));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        RgbImage::filled(2, 2, [0; 3]).get(2, 0);
    }

    #[test]
    fn scalar_field_clamps_and_maps_extremes() {
        let cmap = Colormap::blue_white_red();
        let img = RgbImage::from_scalar_field(3, 1, &[-10.0, 0.0, 10.0], -1.0, 1.0, &cmap);
        assert_eq!(img.get(0, 0), cmap.map(0.0)); // clamped low -> blue end
        assert_eq!(img.get(1, 0), cmap.map(0.5)); // middle -> white
        assert_eq!(img.get(2, 0), cmap.map(1.0)); // clamped high -> red end
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let img = RgbImage::filled(8, 8, [5, 6, 7]);
        assert_eq!(img.mean_abs_diff(&img.clone()), 0.0);
        let other = RgbImage::filled(8, 8, [6, 6, 7]);
        let d = img.mean_abs_diff(&other);
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }
}
