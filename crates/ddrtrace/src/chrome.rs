//! Chrome trace-event JSON serialization.
//!
//! The output is the classic `{"traceEvents": [...]}` object format, which
//! both `chrome://tracing` and Perfetto (<https://ui.perfetto.dev>) load
//! directly. Every thread becomes one track: a `"M"` (metadata) event names
//! it, spans are `"X"` (complete) events, instants `"i"`, counters `"C"`.
//! Timestamps are microseconds with nanosecond fractions, relative to the
//! capture epoch. Two extra top-level keys carry data the format has no slot
//! for: `"metrics"` (the unified metrics registry) and `"dropped"` (events
//! lost to ring overflow).

use crate::{EventKind, Trace, TraceEvent};
use std::fmt::Write;

/// All events share one process track; threads are distinguished by tid.
const PID: u32 = 1;

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_event(out: &mut String, e: &TraceEvent) {
    let ph = match e.kind {
        EventKind::Span => "X",
        EventKind::Instant => "i",
        EventKind::Counter => "C",
    };
    let _ = write!(
        out,
        "    {{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{}",
        e.track,
        e.cat,
        e.name,
        micros(e.ts_ns)
    );
    match e.kind {
        EventKind::Span => {
            let _ = write!(out, ",\"dur\":{}", micros(e.dur_ns));
            if !e.arg_key.is_empty() {
                let _ = write!(out, ",\"args\":{{\"{}\":{}}}", e.arg_key, e.arg);
            }
        }
        EventKind::Instant => {
            // Thread-scoped instant.
            out.push_str(",\"s\":\"t\"");
            if !e.arg_key.is_empty() {
                let _ = write!(out, ",\"args\":{{\"{}\":{}}}", e.arg_key, e.arg);
            }
        }
        EventKind::Counter => {
            let _ = write!(out, ",\"args\":{{\"value\":{}}}", e.arg);
        }
    }
    out.push('}');
}

/// Serialize a [`Trace`] as Chrome trace-event JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.events.len() * 120);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(out, "  \"dropped\": {},", trace.dropped);
    out.push_str("  \"metrics\": {");
    for (i, (key, value)) in trace.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape(key, &mut out);
        let _ = write!(out, "\": {value}");
    }
    if !trace.metrics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"traceEvents\": [\n");
    let mut first = true;
    for (track, name) in &trace.tracks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "    {{\"ph\":\"M\",\"pid\":{PID},\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\""
        );
        escape(name, &mut out);
        out.push_str("\"}}");
    }
    for e in &trace.events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_event(&mut out, e);
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    ts_ns: 1500,
                    dur_ns: 2500,
                    kind: EventKind::Span,
                    cat: "redist",
                    name: "pack",
                    track: 0,
                    arg_key: "round",
                    arg: 2,
                },
                TraceEvent {
                    ts_ns: 4200,
                    dur_ns: 0,
                    kind: EventKind::Instant,
                    cat: "intransit",
                    name: "frame_skip",
                    track: 1,
                    arg_key: "",
                    arg: 0,
                },
                TraceEvent {
                    ts_ns: 5000,
                    dur_ns: 0,
                    kind: EventKind::Counter,
                    cat: "counter",
                    name: "pool_free_bytes",
                    track: 1,
                    arg_key: "value",
                    arg: 65536,
                },
            ],
            tracks: vec![(0, "rank-0".into()), (1, "rank-1".into())],
            dropped: 0,
            metrics: vec![("minimpi.transport.zerocopy_msgs".into(), 12)],
        }
    }

    #[test]
    fn output_parses_and_preserves_structure() {
        let json = to_chrome_json(&sample_trace());
        let v = crate::json::parse(&json).expect("chrome output must be valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 2 metadata + 3 data events.
        assert_eq!(events.len(), 5);
        let span = events.iter().find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"));
        let span = span.unwrap();
        assert_eq!(span.get("name").and_then(|n| n.as_str()), Some("pack"));
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(1.5));
        assert_eq!(span.get("dur").and_then(|t| t.as_f64()), Some(2.5));
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("minimpi.transport.zerocopy_msgs"))
                .and_then(|x| x.as_f64()),
            Some(12.0)
        );
    }

    #[test]
    fn thread_names_are_escaped() {
        let mut t = sample_trace();
        t.tracks[0].1 = "weird \"name\"\n".into();
        let json = to_chrome_json(&t);
        assert!(crate::json::parse(&json).is_ok());
    }
}
