//! A minimal dependency-free JSON parser.
//!
//! Just enough JSON for the `ddr-trace` report binary and the golden trace
//! tests to load what [`crate::chrome`] writes (and what the bench emits):
//! objects, arrays, strings with the common escapes, f64 numbers, booleans,
//! null. Not a validator of pathological inputs — errors carry a byte offset
//! for debugging, nothing more.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. BTreeMap: deterministic iteration for tests.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our output;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (possibly multi-byte).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().ok_or_else(|| "empty".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}, "f": []}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("f").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a": "#).is_err());
        assert!(parse(r#"["unterminated"#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A\t""#).unwrap().as_str(), Some("A\t"));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
