//! # ddrtrace — the stack's phase-level tracing and metrics plane
//!
//! The paper's whole evaluation (Tables II–IV) is a *per-phase* timing story:
//! mapping vs packing vs `MPI_Alltoallw` rounds. This crate gives every layer
//! of the reproduction the same vocabulary with near-zero cost when off:
//!
//! * [`span!`] / [`instant!`] / [`counter!`] — record a timed phase, a point
//!   event, or a sampled value on the calling thread. When tracing is
//!   disabled (the default) each expands to **one relaxed atomic load**; the
//!   overhead guard test in the root crate holds this below 1% of a staged
//!   1 MiB redistribution.
//! * Per-thread **event rings** — bounded, lock-free single-writer buffers.
//!   A rank thread appends events with no locks and no allocation (after the
//!   first event); the collector reads them only after capture stops.
//! * [`capture`] — start/stop the global capture window and collect a
//!   [`Trace`]: all rings merged, timestamps resolved against the capture
//!   epoch, plus the [`metrics`] registry snapshot.
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) with one track per rank.
//! * [`summary::Summary`] — the per-phase aggregation table (count / total /
//!   mean / max per `category/name`).
//! * [`json`] — a dependency-free JSON parser used by the `ddr-trace` report
//!   binary and the golden trace tests.
//!
//! ## Ring safety model
//!
//! Each ring has exactly one writer (the thread that created it, via a
//! thread-local) and is only read in [`capture::stop`] after tracing is
//! disabled. The writer publishes each slot with a release store of the new
//! length; the reader acquires the length and reads only `0..len`. A writer
//! that raced the disable flag can at worst be mid-append: the reader then
//! sees either the old length (slot invisible) or the new one (slot fully
//! written before the release store). Rings are reset only in
//! [`capture::start`]; a writer that raced the reset (loaded `enabled()`
//! before the disable and republished a stale length afterwards) cannot
//! corrupt the new window, because every event is stamped with the capture
//! generation at append time and [`capture::stop`] skips slots from older
//! generations.
//!
//! The registry keeps one [`Arc<Ring>`] per thread that ever recorded; the
//! thread-local holds the other reference. When a thread exits its
//! thread-local drops, and the next [`capture::start`]/[`capture::stop`]
//! prunes rings with no remaining writer (after draining them), so repeated
//! captures across short-lived rank threads do not grow memory without
//! bound.

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod summary;

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events one thread can buffer between capture start and stop. At ~72 bytes
/// per event a full ring costs ~2.3 MiB; overflow increments a drop counter
/// instead of blocking or reallocating. Rings of exited threads are
/// reclaimed by the capture start/stop prune, so this bounds memory per
/// *live* thread, not per thread ever traced.
const RING_CAPACITY: usize = 1 << 15;

/// Track ids below this are reserved for explicitly registered tracks
/// (ranks); auto-assigned tracks (main thread, copy workers) start here.
/// [`set_track`] pushes the auto allocator above any pinned id, so pinning
/// past this base is safe too — but launchers that pin one track per rank
/// should keep rank counts below it (see `minimpi::Universe::run`).
pub const AUTO_TRACK_BASE: u32 = 1 << 10;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capture-window generation, bumped by every [`capture::start`]. Writers
/// stamp it into each event; the collector drops events from older windows,
/// so a writer racing a ring reset cannot republish stale slots into the new
/// trace.
static CAPTURE_GEN: AtomicU64 = AtomicU64::new(0);

/// Is a capture window currently open? One relaxed load — this is the entire
/// cost of every disabled `span!`/`instant!`/`counter!` site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// What a single buffered event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed phase (Chrome `"X"` complete event).
    Span,
    /// A point-in-time marker (Chrome `"i"` instant event).
    Instant,
    /// A sampled value (Chrome `"C"` counter event).
    Counter,
}

/// One buffered event. `ts` is an [`Instant`] resolved against the capture
/// epoch at collection time; names are `&'static str` so recording never
/// allocates.
#[derive(Clone, Copy)]
struct Event {
    ts: Instant,
    dur_ns: u64,
    kind: EventKind,
    cat: &'static str,
    name: &'static str,
    /// Optional argument (`("", 0)` = none). For counters the value lives
    /// here.
    arg_key: &'static str,
    arg: i64,
    /// Capture generation at append time; the collector skips events from
    /// older windows (stamped by [`Ring::push`], never by callers).
    gen: u64,
}

/// A resolved event in a collected [`Trace`]: timestamps are nanoseconds
/// since the capture epoch, and the originating thread's track is attached.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Nanoseconds since capture start.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for instants/counters).
    pub dur_ns: u64,
    /// Event flavor.
    pub kind: EventKind,
    /// Category (phase family), e.g. `"redist"`, `"coll"`, `"mpi"`.
    pub cat: &'static str,
    /// Event name, e.g. `"pack"`, `"alltoallw"`.
    pub name: &'static str,
    /// Track (thread) id: rank number for rank threads.
    pub track: u32,
    /// Optional argument key (`""` = none).
    pub arg_key: &'static str,
    /// Argument / counter value.
    pub arg: i64,
}

struct Slot(UnsafeCell<MaybeUninit<Event>>);

// SAFETY: a Slot is written only by the ring's single owning thread (below
// the published length) and read only by the collector after the length's
// release store made the write visible — see the module-level safety model.
unsafe impl Sync for Slot {}

struct Ring {
    slots: Box<[Slot]>,
    /// Published event count; release-stored by the writer after each slot
    /// write, acquire-loaded by the collector.
    len: AtomicUsize,
    dropped: AtomicU64,
    track: AtomicU32,
    name: Mutex<String>,
}

impl Ring {
    fn new(track: u32, name: String) -> Ring {
        let mut slots = Vec::with_capacity(RING_CAPACITY);
        slots.resize_with(RING_CAPACITY, || Slot(UnsafeCell::new(MaybeUninit::uninit())));
        Ring {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            track: AtomicU32::new(track),
            name: Mutex::new(name),
        }
    }

    /// Single-writer append; drops (and counts) on overflow.
    fn push(&self, mut ev: Event) {
        let i = self.len.load(Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.gen = CAPTURE_GEN.load(Ordering::Relaxed);
        // SAFETY: only the owning thread writes this ring, `i` is below the
        // published length of nothing yet (the slot is unobservable until
        // the release store below), and `i < slots.len()` was checked.
        unsafe { (*self.slots[i].0.get()).write(ev) };
        self.len.store(i + 1, Ordering::Release);
    }

    /// Collector-side read of every published event from the current capture
    /// generation. Slots stamped with an older generation are stale entries a
    /// racing writer republished across a [`capture::start`] reset; skipping
    /// them keeps the previous window's garbage out of this trace.
    fn drain(&self, epoch: Instant, out: &mut Vec<TraceEvent>) -> usize {
        let n = self.len.load(Ordering::Acquire);
        let track = self.track.load(Ordering::Relaxed);
        let gen = CAPTURE_GEN.load(Ordering::Relaxed);
        let mut drained = 0;
        for slot in &self.slots[..n] {
            // SAFETY: slots below the acquire-loaded length were fully
            // written before their release store; the single writer never
            // rewrites a published slot within one capture.
            let ev = unsafe { (*slot.0.get()).assume_init() };
            if ev.gen != gen {
                continue;
            }
            drained += 1;
            out.push(TraceEvent {
                ts_ns: ev.ts.saturating_duration_since(epoch).as_nanos() as u64,
                dur_ns: ev.dur_ns,
                kind: ev.kind,
                cat: ev.cat,
                name: ev.name,
                track,
                arg_key: ev.arg_key,
                arg: ev.arg,
            });
        }
        drained
    }

    fn reset(&self) {
        self.len.store(0, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

struct Registry {
    rings: Mutex<Vec<Arc<Ring>>>,
    next_auto_track: AtomicU32,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        next_auto_track: AtomicU32::new(AUTO_TRACK_BASE),
    })
}

thread_local! {
    static RING: UnsafeCell<Option<Arc<Ring>>> = const { UnsafeCell::new(None) };
}

/// The calling thread's ring, created and registered on first use.
fn my_ring(f: impl FnOnce(&Ring)) {
    RING.with(|cell| {
        // SAFETY: the thread-local cell is only touched from its own thread
        // and `f` never re-enters `my_ring`.
        let slot = unsafe { &mut *cell.get() };
        let ring = slot.get_or_insert_with(|| {
            let reg = registry();
            let track = reg.next_auto_track.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current().name().unwrap_or("thread").to_string();
            let ring = Arc::new(Ring::new(track, name));
            reg.rings.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Name the calling thread's track and pin its id (ranks use their rank
/// number, so Perfetto orders the tracks naturally). No-op while tracing is
/// off, so idle runs never allocate rings.
pub fn set_track(track: u32, name: &str) {
    if !enabled() {
        return;
    }
    // Keep future auto-assigned tracks above every pinned id, so a job
    // pinning ids at or past AUTO_TRACK_BASE cannot collide with helper
    // threads registered later.
    registry().next_auto_track.fetch_max(track.saturating_add(1), Ordering::Relaxed);
    my_ring(|ring| {
        ring.track.store(track, Ordering::Relaxed);
        *ring.name.lock().unwrap_or_else(|e| e.into_inner()) = name.to_string();
    });
}

/// RAII guard for a timed phase: records a complete span (start → drop) on
/// the creating thread's ring. Construct through [`span!`].
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    start: Instant,
    cat: &'static str,
    name: &'static str,
    arg_key: &'static str,
    arg: i64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            // Re-check: capture may have stopped while the span was open.
            if enabled() {
                my_ring(|ring| {
                    ring.push(Event {
                        ts: s.start,
                        dur_ns: s.start.elapsed().as_nanos() as u64,
                        kind: EventKind::Span,
                        cat: s.cat,
                        name: s.name,
                        arg_key: s.arg_key,
                        arg: s.arg,
                        gen: 0,
                    })
                });
            }
        }
    }
}

/// Open a span; prefer the [`span!`] macro.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_arg(cat, name, "", 0)
}

/// Open a span carrying one integer argument; prefer the [`span!`] macro.
#[inline]
pub fn span_arg(
    cat: &'static str,
    name: &'static str,
    arg_key: &'static str,
    arg: i64,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    SpanGuard { inner: Some(SpanInner { start: Instant::now(), cat, name, arg_key, arg }) }
}

/// Record a point event; prefer the [`instant!`] macro.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    instant_arg(cat, name, "", 0)
}

/// Record a point event with one integer argument.
#[inline]
pub fn instant_arg(cat: &'static str, name: &'static str, arg_key: &'static str, arg: i64) {
    if !enabled() {
        return;
    }
    my_ring(|ring| {
        ring.push(Event {
            ts: Instant::now(),
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name,
            arg_key,
            arg,
            gen: 0,
        })
    });
}

/// Sample a counter value; prefer the [`counter!`] macro.
#[inline]
pub fn counter(name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    my_ring(|ring| {
        ring.push(Event {
            ts: Instant::now(),
            dur_ns: 0,
            kind: EventKind::Counter,
            cat: "counter",
            name,
            arg_key: "value",
            arg: value,
            gen: 0,
        })
    });
}

/// Open a timed span for the enclosing scope:
/// `let _s = ddrtrace::span!("redist", "pack");` or with an argument,
/// `let _s = ddrtrace::span!("redist", "round", "round" => r as i64);`.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::span($cat, $name)
    };
    ($cat:expr, $name:expr, $k:expr => $v:expr) => {
        $crate::span_arg($cat, $name, $k, $v as i64)
    };
}

/// Record a point event: `ddrtrace::instant!("intransit", "frame_skip");` or
/// `ddrtrace::instant!("intransit", "frame_skip", "step" => step as i64);`.
#[macro_export]
macro_rules! instant {
    ($cat:expr, $name:expr) => {
        $crate::instant($cat, $name)
    };
    ($cat:expr, $name:expr, $k:expr => $v:expr) => {
        $crate::instant_arg($cat, $name, $k, $v as i64)
    };
}

/// Sample a counter: `ddrtrace::counter!("pool_free_bytes", n as i64);`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $v:expr) => {
        $crate::counter($name, $v as i64)
    };
}

/// A collected capture: resolved events from every thread, the track names,
/// the drop count, and the metrics registry snapshot.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All events, sorted by `(track, ts_ns)`.
    pub events: Vec<TraceEvent>,
    /// `(track id, name)` for every thread that recorded anything (or
    /// registered a track) during the capture.
    pub tracks: Vec<(u32, String)>,
    /// Events lost to ring overflow across all threads.
    pub dropped: u64,
    /// Snapshot of the [`metrics`] registry at capture stop.
    pub metrics: Vec<(String, u64)>,
}

impl Trace {
    /// Per-phase aggregation of this trace's spans.
    pub fn summary(&self) -> summary::Summary {
        summary::Summary::from_events(&self.events)
    }

    /// Serialize as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Write the Chrome trace-event JSON to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// Starting, stopping, and collecting the global capture window.
pub mod capture {
    use super::*;

    static EPOCH: Mutex<Option<Instant>> = Mutex::new(None);

    /// Open a capture window: prune rings whose writer thread has exited,
    /// reset the survivors and the metrics registry, stamp the epoch, bump
    /// the capture generation, and enable recording. A straggling writer
    /// from the previous window cannot pollute this one: its republished
    /// slots carry the old generation and the collector skips them.
    pub fn start() {
        ENABLED.store(false, Ordering::SeqCst);
        {
            let mut rings = registry().rings.lock().unwrap_or_else(|e| e.into_inner());
            prune_dead(&mut rings);
            for ring in rings.iter() {
                ring.reset();
            }
        }
        metrics::reset();
        *EPOCH.lock().unwrap_or_else(|e| e.into_inner()) = Some(Instant::now());
        CAPTURE_GEN.fetch_add(1, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Drop rings whose owning thread has exited. The thread-local held the
    /// only other strong reference, so a count of 1 means no writer can ever
    /// touch the ring again — safe to reclaim, and necessary so repeated
    /// captures across short-lived rank threads do not grow the registry
    /// (and its ~2 MiB rings) without bound.
    fn prune_dead(rings: &mut Vec<Arc<Ring>>) {
        rings.retain(|r| Arc::strong_count(r) > 1);
    }

    /// Is a capture window currently open?
    pub fn active() -> bool {
        enabled()
    }

    /// Close the capture window and collect everything recorded since
    /// [`start`]. Safe to call when no capture is active (returns an empty
    /// trace). Rings are drained before dead ones are pruned, so threads
    /// that exited during the capture (rank threads join before their
    /// universe returns) still contribute their events.
    pub fn stop() -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        let epoch =
            EPOCH.lock().unwrap_or_else(|e| e.into_inner()).take().unwrap_or_else(Instant::now);
        let mut events = Vec::new();
        let mut tracks = Vec::new();
        let mut dropped = 0;
        {
            let mut rings = registry().rings.lock().unwrap_or_else(|e| e.into_inner());
            for ring in rings.iter() {
                let drained = ring.drain(epoch, &mut events);
                dropped += ring.dropped.load(Ordering::Relaxed);
                if drained > 0 {
                    tracks.push((
                        ring.track.load(Ordering::Relaxed),
                        ring.name.lock().unwrap_or_else(|e| e.into_inner()).clone(),
                    ));
                }
            }
            prune_dead(&mut rings);
        }
        tracks.sort();
        tracks.dedup_by(|a, b| a.0 == b.0);
        events.sort_by_key(|e| (e.track, e.ts_ns));
        Trace { events, tracks, dropped, metrics: metrics::snapshot() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Captures share process-global state; serialize the tests touching it.
    static CAPTURE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_macros_record_nothing() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        {
            let _s = span!("t", "noop");
            instant!("t", "noop");
            counter!("noop", 1);
        }
        // No capture is open: nothing to observe, and nothing allocated.
    }

    #[test]
    fn span_instant_counter_roundtrip() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        set_track(7, "test-track");
        {
            let _outer = span!("t", "outer");
            {
                let _inner = span!("t", "inner", "round" => 3);
            }
            instant!("t", "marker", "step" => 9);
            counter!("gauge", 42);
        }
        metrics::add("test", "bytes", 128);
        let trace = capture::stop();
        assert!(!enabled());
        assert_eq!(trace.dropped, 0);
        let spans: Vec<_> = trace.events.iter().filter(|e| e.kind == EventKind::Span).collect();
        assert_eq!(spans.len(), 2);
        // Drop order publishes inner before outer; both on track 7.
        assert!(spans.iter().all(|e| e.track == 7));
        let outer = spans.iter().find(|e| e.name == "outer").unwrap();
        let inner = spans.iter().find(|e| e.name == "inner").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
        assert_eq!(inner.arg_key, "round");
        assert_eq!(inner.arg, 3);
        let marker = trace.events.iter().find(|e| e.name == "marker").unwrap();
        assert_eq!((marker.kind, marker.arg), (EventKind::Instant, 9));
        let gauge = trace.events.iter().find(|e| e.name == "gauge").unwrap();
        assert_eq!((gauge.kind, gauge.arg), (EventKind::Counter, 42));
        assert_eq!(trace.tracks.iter().find(|t| t.0 == 7).unwrap().1, "test-track");
        assert!(trace.metrics.iter().any(|(k, v)| k == "test.bytes" && *v == 128));
    }

    #[test]
    fn restarting_a_capture_discards_the_previous_window() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        instant!("t", "first_window");
        capture::start();
        instant!("t", "second_window");
        let trace = capture::stop();
        assert!(trace.events.iter().all(|e| e.name != "first_window"));
        assert!(trace.events.iter().any(|e| e.name == "second_window"));
    }

    #[test]
    fn rings_of_exited_threads_are_drained_then_pruned() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        let baseline = registry().rings.lock().unwrap_or_else(|e| e.into_inner()).len();
        for i in 0..4u32 {
            std::thread::spawn(move || {
                set_track(100 + i, &format!("worker-{i}"));
                instant!("t", "from_worker");
            })
            .join()
            .unwrap();
        }
        assert_eq!(
            registry().rings.lock().unwrap_or_else(|e| e.into_inner()).len(),
            baseline + 4,
            "each worker registers one ring"
        );
        let trace = capture::stop();
        // Exited writers' events survive the stop that reclaims their rings…
        assert_eq!(trace.events.iter().filter(|e| e.name == "from_worker").count(), 4);
        // …and the rings themselves do not accumulate across captures.
        assert_eq!(
            registry().rings.lock().unwrap_or_else(|e| e.into_inner()).len(),
            baseline,
            "dead rings must be pruned once drained"
        );
    }

    #[test]
    fn republished_stale_slots_are_skipped_by_generation() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        instant!("t", "stale_a");
        instant!("t", "stale_b");
        capture::stop();
        capture::start();
        // Simulate a writer that raced the start() reset: it loaded a
        // pre-reset length and republishes the previous window's slots by
        // storing it back before appending its own event.
        my_ring(|ring| ring.len.store(2, Ordering::Release));
        instant!("t", "fresh");
        let trace = capture::stop();
        assert!(
            trace.events.iter().all(|e| e.name != "stale_a" && e.name != "stale_b"),
            "stale slots from the previous generation leaked into the trace"
        );
        assert!(trace.events.iter().any(|e| e.name == "fresh"));
    }

    #[test]
    fn auto_tracks_allocate_above_pinned_ids() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        let high = AUTO_TRACK_BASE + 500;
        std::thread::spawn(move || set_track(high, "pinned-high")).join().unwrap();
        std::thread::spawn(|| instant!("t", "auto_after_pin")).join().unwrap();
        let trace = capture::stop();
        let auto = trace.events.iter().find(|e| e.name == "auto_after_pin").unwrap();
        assert!(
            auto.track > high,
            "auto track {} must not collide with or fall below pinned id {high}",
            auto.track
        );
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = CAPTURE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        capture::start();
        for _ in 0..(RING_CAPACITY + 100) {
            instant!("t", "flood");
        }
        let trace = capture::stop();
        assert!(trace.dropped >= 100, "dropped {}", trace.dropped);
        assert!(trace.events.iter().filter(|e| e.name == "flood").count() <= RING_CAPACITY);
    }
}
