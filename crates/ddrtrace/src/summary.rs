//! Per-phase aggregation of a collected trace — the reproduction's analogue
//! of the paper's per-phase timing tables (mapping vs packing vs exchange
//! rounds).

use crate::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregated timing of one phase (`category/name`) across all tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// `category/name`, e.g. `"redist/pack"`.
    pub phase: String,
    /// Number of spans recorded.
    pub count: u64,
    /// Summed duration over all spans, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Number of distinct tracks (ranks) that recorded this phase.
    pub tracks: u64,
}

impl PhaseRow {
    /// Mean span duration in nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The per-phase summary table of one capture, plus instant-event counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// One row per span phase, ordered by total time descending.
    pub rows: Vec<PhaseRow>,
    /// `(category/name, occurrences)` for instant events.
    pub instants: Vec<(String, u64)>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl Summary {
    /// Aggregate resolved events into per-phase rows.
    pub fn from_events(events: &[TraceEvent]) -> Summary {
        let mut spans: BTreeMap<String, (u64, u64, u64, std::collections::BTreeSet<u32>)> =
            BTreeMap::new();
        let mut instants: BTreeMap<String, u64> = BTreeMap::new();
        for e in events {
            let key = format!("{}/{}", e.cat, e.name);
            match e.kind {
                EventKind::Span => {
                    let entry = spans.entry(key).or_default();
                    entry.0 += 1;
                    entry.1 += e.dur_ns;
                    entry.2 = entry.2.max(e.dur_ns);
                    entry.3.insert(e.track);
                }
                EventKind::Instant => *instants.entry(key).or_default() += 1,
                EventKind::Counter => {}
            }
        }
        let mut rows: Vec<PhaseRow> = spans
            .into_iter()
            .map(|(phase, (count, total_ns, max_ns, tracks))| PhaseRow {
                phase,
                count,
                total_ns,
                max_ns,
                tracks: tracks.len() as u64,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.phase.cmp(&b.phase)));
        Summary { rows, instants: instants.into_iter().collect() }
    }

    /// Look up one phase's row by its `category/name` key.
    pub fn row(&self, phase: &str) -> Option<&PhaseRow> {
        self.rows.iter().find(|r| r.phase == phase)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>7}",
            "phase", "count", "total", "mean", "max", "tracks"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>7}",
                r.phase,
                r.count,
                fmt_ns(r.total_ns),
                fmt_ns(r.mean_ns()),
                fmt_ns(r.max_ns),
                r.tracks
            )?;
        }
        if !self.instants.is_empty() {
            writeln!(f, "{:<28} {:>8}", "events", "count")?;
            for (name, count) in &self.instants {
                writeln!(f, "{name:<28} {count:>8}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(cat: &'static str, name: &'static str, track: u32, dur: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: 0,
            dur_ns: dur,
            kind: EventKind::Span,
            cat,
            name,
            track,
            arg_key: "",
            arg: 0,
        }
    }

    #[test]
    fn aggregates_by_phase_and_orders_by_total() {
        let events = vec![
            span("redist", "pack", 0, 100),
            span("redist", "pack", 1, 300),
            span("redist", "unpack", 0, 150),
            TraceEvent {
                ts_ns: 5,
                dur_ns: 0,
                kind: EventKind::Instant,
                cat: "intransit",
                name: "frame_skip",
                track: 0,
                arg_key: "",
                arg: 0,
            },
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.rows[0].phase, "redist/pack");
        assert_eq!(s.rows[0].count, 2);
        assert_eq!(s.rows[0].total_ns, 400);
        assert_eq!(s.rows[0].mean_ns(), 200);
        assert_eq!(s.rows[0].max_ns, 300);
        assert_eq!(s.rows[0].tracks, 2);
        assert_eq!(s.row("redist/unpack").unwrap().total_ns, 150);
        assert_eq!(s.instants, vec![("intransit/frame_skip".to_string(), 1)]);
        let table = s.to_string();
        assert!(table.contains("redist/pack") && table.contains("frame_skip"), "{table}");
    }
}
