//! Unified metrics registry.
//!
//! One process-global table of monotonically accumulated `u64` values keyed
//! by `"scope.name"` (e.g. `"minimpi.transport.zerocopy_msgs"`). The redist
//! stats, transport counters and buffer-pool stats that used to live in three
//! unrelated structs all land here at the end of a traced run, so the trace
//! file and the `ddr-trace` report show one coherent table.
//!
//! Like the event rings, the registry is only written while tracing is
//! enabled; `capture::start` resets it so each capture window reports its own
//! totals.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::sync::OnceLock;

fn table() -> &'static Mutex<BTreeMap<String, u64>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, u64>> {
    table().lock().unwrap_or_else(|e| e.into_inner())
}

/// Add `v` to the metric `scope.name`. No-op while tracing is disabled.
pub fn add(scope: &str, name: &str, v: u64) {
    if !crate::enabled() {
        return;
    }
    let mut t = lock();
    let e = t.entry(format!("{scope}.{name}")).or_insert(0);
    *e = e.saturating_add(v);
}

/// Overwrite the metric `scope.name` with `v` (for gauges like pool sizes).
/// No-op while tracing is disabled.
pub fn set(scope: &str, name: &str, v: u64) {
    if !crate::enabled() {
        return;
    }
    lock().insert(format!("{scope}.{name}"), v);
}

/// Clear every metric. Called by `capture::start`.
pub fn reset() {
    lock().clear();
}

/// Snapshot the table, sorted by key.
pub fn snapshot() -> Vec<(String, u64)> {
    lock().iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Render `(key, value)` pairs as an aligned two-column table.
pub fn render(metrics: &[(String, u64)]) -> String {
    let width = metrics.iter().map(|(k, _)| k.len()).max().unwrap_or(6).max(6);
    let mut out = format!("{:<width$} {:>14}\n", "metric", "value");
    for (k, v) in metrics {
        out.push_str(&format!("{k:<width$} {v:>14}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let m = vec![("a.b".to_string(), 1u64), ("minimpi.pool.trims".to_string(), 42)];
        let s = render(&m);
        assert!(s.contains("minimpi.pool.trims"), "{s}");
        assert!(s.lines().count() == 3, "{s}");
    }

    // add/set/reset/snapshot are exercised end-to-end by the capture tests in
    // lib.rs, which serialize on CAPTURE_LOCK; direct tests here would race
    // those on the global table.
}
