//! `ddr-trace` — offline report over a captured trace file.
//!
//! Usage: `ddr-trace <trace.json>`
//!
//! Reads a Chrome trace-event JSON file written by this crate (or by the
//! redistribute bench), rebuilds the per-phase summary table and prints it
//! together with the unified metrics registry. Exits non-zero if the file is
//! missing or not valid trace JSON, so CI can use it as a format check.

use ddrtrace::json::{self, Value};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Row {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    tracks: std::collections::BTreeSet<u64>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn report(doc: &Value) -> Result<String, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("no \"traceEvents\" array — not a trace file")?;

    let mut spans: BTreeMap<String, Row> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut track_names: BTreeMap<u64, String> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64;
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let cat = e.get("cat").and_then(|c| c.as_str()).unwrap_or("?");
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str())
                {
                    track_names.insert(tid, n.to_string());
                }
            }
            "X" => {
                let dur_us = e.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0);
                let dur_ns = (dur_us * 1000.0) as u64;
                let row = spans.entry(format!("{cat}/{name}")).or_insert(Row {
                    count: 0,
                    total_ns: 0,
                    max_ns: 0,
                    tracks: Default::default(),
                });
                row.count += 1;
                row.total_ns += dur_ns;
                row.max_ns = row.max_ns.max(dur_ns);
                row.tracks.insert(tid);
            }
            "i" => *instants.entry(format!("{cat}/{name}")).or_insert(0) += 1,
            _ => {}
        }
    }

    let mut rows: Vec<(String, Row)> = spans.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));

    let mut out = String::new();
    out.push_str(&format!("tracks: {}\n", track_names.len()));
    for (tid, name) in &track_names {
        out.push_str(&format!("  tid {tid}: {name}\n"));
    }
    if let Some(d) = doc.get("dropped").and_then(|d| d.as_f64()) {
        if d > 0.0 {
            out.push_str(&format!("WARNING: {d} events dropped (ring overflow)\n"));
        }
    }
    out.push_str(&format!(
        "\n{:<28} {:>8} {:>10} {:>10} {:>10} {:>7}\n",
        "phase", "count", "total", "mean", "max", "tracks"
    ));
    for (phase, r) in &rows {
        let mean = r.total_ns.checked_div(r.count).unwrap_or(0);
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>7}\n",
            phase,
            r.count,
            fmt_ns(r.total_ns),
            fmt_ns(mean),
            fmt_ns(r.max_ns),
            r.tracks.len()
        ));
    }
    if !instants.is_empty() {
        out.push_str(&format!("\n{:<28} {:>8}\n", "events", "count"));
        for (name, count) in &instants {
            out.push_str(&format!("{name:<28} {count:>8}\n"));
        }
    }
    if let Some(metrics) = doc.get("metrics").and_then(|m| m.as_object()) {
        if !metrics.is_empty() {
            let pairs: Vec<(String, u64)> = metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0) as u64))
                .collect();
            out.push('\n');
            out.push_str(&ddrtrace::metrics::render(&pairs));
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: ddr-trace <trace.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ddr-trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match json::parse(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ddr-trace: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match report(&doc) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ddr-trace: {e}");
            ExitCode::FAILURE
        }
    }
}
