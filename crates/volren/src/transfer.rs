//! Transfer functions: scalar value → color and opacity.

use jimage::Colormap;

/// A DVR transfer function: a colormap for chromaticity plus a
/// piecewise-linear opacity ramp over the normalized scalar range.
#[derive(Debug, Clone)]
pub struct TransferFunction {
    cmap: Colormap,
    /// `(scalar, alpha)` control points, sorted by scalar.
    opacity: Vec<(f32, f32)>,
}

impl TransferFunction {
    /// Build from a colormap and opacity control points.
    ///
    /// # Panics
    /// Panics with fewer than two opacity stops.
    pub fn new(cmap: Colormap, mut opacity: Vec<(f32, f32)>) -> Self {
        assert!(opacity.len() >= 2, "need at least two opacity stops");
        opacity.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite stops"));
        TransferFunction { cmap, opacity }
    }

    /// The tooth preset of Figure 2: air fully transparent, soft tissue
    /// faint, dentine and enamel increasingly opaque and warm.
    pub fn tooth() -> Self {
        TransferFunction::new(
            Colormap::tooth(),
            vec![(0.0, 0.0), (0.25, 0.0), (0.45, 0.02), (0.7, 0.25), (1.0, 0.9)],
        )
    }

    /// Opacity at a normalized scalar (clamped).
    pub fn alpha(&self, s: f32) -> f32 {
        let s = if s.is_nan() { 0.0 } else { s };
        let first = self.opacity.first().expect("nonempty");
        let last = self.opacity.last().expect("nonempty");
        if s <= first.0 {
            return first.1;
        }
        if s >= last.0 {
            return last.1;
        }
        let hi = self.opacity.iter().position(|&(p, _)| p >= s).expect("in range");
        let (p0, a0) = self.opacity[hi - 1];
        let (p1, a1) = self.opacity[hi];
        let f = if p1 > p0 { (s - p0) / (p1 - p0) } else { 0.0 };
        a0 + f * (a1 - a0)
    }

    /// Classify a scalar into linear-light RGB (0..1) and opacity.
    pub fn classify(&self, s: f32) -> ([f32; 3], f32) {
        let rgb8 = self.cmap.map(s);
        let rgb = [rgb8[0] as f32 / 255.0, rgb8[1] as f32 / 255.0, rgb8[2] as f32 / 255.0];
        (rgb, self.alpha(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opacity_interpolates_and_clamps() {
        let tf =
            TransferFunction::new(Colormap::grayscale(), vec![(0.0, 0.0), (0.5, 0.0), (1.0, 1.0)]);
        assert_eq!(tf.alpha(-1.0), 0.0);
        assert_eq!(tf.alpha(0.25), 0.0);
        assert!((tf.alpha(0.75) - 0.5).abs() < 1e-6);
        assert_eq!(tf.alpha(2.0), 1.0);
        assert_eq!(tf.alpha(f32::NAN), 0.0);
    }

    #[test]
    fn tooth_preset_hides_air_shows_enamel() {
        let tf = TransferFunction::tooth();
        assert_eq!(tf.alpha(0.05), 0.0);
        assert!(tf.alpha(0.95) > 0.5);
        let (rgb, a) = tf.classify(0.9);
        assert!(a > 0.3);
        assert!(rgb[0] > 0.8, "enamel should be bright: {rgb:?}");
    }

    #[test]
    #[should_panic]
    fn one_stop_rejected() {
        TransferFunction::new(Colormap::grayscale(), vec![(0.0, 0.0)]);
    }
}
