//! Premultiplied float RGBA accumulation images.

use jimage::RgbImage;

/// A float RGBA image with premultiplied alpha, used as the accumulation
/// target of front-to-back ray casting and brick compositing.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbaImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Interleaved premultiplied `[r, g, b, a]`, row-major.
    pub data: Vec<f32>,
}

impl RgbaImage {
    /// Fully transparent image.
    pub fn transparent(width: usize, height: usize) -> Self {
        RgbaImage { width, height, data: vec![0.0; 4 * width * height] }
    }

    /// Pixel accessor.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> [f32; 4] {
        assert!(x < self.width && y < self.height);
        let i = 4 * (y * self.width + x);
        [self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]]
    }

    /// Composite `src` *under* the already-accumulated content of `self`
    /// (front-to-back `over`): `dst += (1 - dst.a) * src`.
    ///
    /// `self` holds everything in front of `src`; both must be equal size.
    pub fn under(&mut self, src: &RgbaImage) {
        assert_eq!((self.width, self.height), (src.width, src.height), "size mismatch");
        for (d, s) in self.data.chunks_exact_mut(4).zip(src.data.chunks_exact(4)) {
            let transmittance = 1.0 - d[3];
            for c in 0..4 {
                d[c] += transmittance * s[c];
            }
        }
    }

    /// Accumulate one classified sample at a pixel (front-to-back).
    #[inline]
    pub fn shade(&mut self, x: usize, y: usize, rgb: [f32; 3], alpha: f32) {
        let i = 4 * (y * self.width + x);
        let t = 1.0 - self.data[i + 3];
        if t <= 0.0 {
            return;
        }
        self.data[i] += t * alpha * rgb[0];
        self.data[i + 1] += t * alpha * rgb[1];
        self.data[i + 2] += t * alpha * rgb[2];
        self.data[i + 3] += t * alpha;
    }

    /// Flatten onto an opaque background into an 8-bit RGB image.
    pub fn to_rgb(&self, background: [u8; 3]) -> RgbImage {
        let mut out = Vec::with_capacity(3 * self.width * self.height);
        for px in self.data.chunks_exact(4) {
            let t = 1.0 - px[3];
            for c in 0..3 {
                let v = px[c] + t * (background[c] as f32 / 255.0);
                out.push((v * 255.0).round().clamp(0.0, 255.0) as u8);
            }
        }
        RgbImage::new(self.width, self.height, out).expect("dimensions match by construction")
    }

    /// Maximum accumulated alpha over all pixels.
    pub fn max_alpha(&self) -> f32 {
        self.data.chunks_exact(4).map(|p| p[3]).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_accumulates_front_to_back() {
        let mut img = RgbaImage::transparent(1, 1);
        img.shade(0, 0, [1.0, 0.0, 0.0], 0.5);
        img.shade(0, 0, [0.0, 1.0, 0.0], 1.0);
        let px = img.get(0, 0);
        // Front red at 0.5 alpha, then opaque green behind: 0.5 red + 0.5 green.
        assert!((px[0] - 0.5).abs() < 1e-6);
        assert!((px[1] - 0.5).abs() < 1e-6);
        assert!((px[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn under_matches_incremental_shading() {
        // Shading samples a,b,c in order == shading a, then `under` of (b,c).
        let samples =
            [([0.9f32, 0.1, 0.2], 0.3f32), ([0.2, 0.8, 0.1], 0.6), ([0.1, 0.2, 0.9], 0.8)];
        let mut reference = RgbaImage::transparent(1, 1);
        for (rgb, a) in samples {
            reference.shade(0, 0, rgb, a);
        }
        let mut front = RgbaImage::transparent(1, 1);
        front.shade(0, 0, samples[0].0, samples[0].1);
        let mut back = RgbaImage::transparent(1, 1);
        back.shade(0, 0, samples[1].0, samples[1].1);
        back.shade(0, 0, samples[2].0, samples[2].1);
        front.under(&back);
        for c in 0..4 {
            assert!((front.get(0, 0)[c] - reference.get(0, 0)[c]).abs() < 1e-6);
        }
    }

    #[test]
    fn saturated_pixel_stops_accumulating() {
        let mut img = RgbaImage::transparent(1, 1);
        img.shade(0, 0, [1.0, 1.0, 1.0], 1.0);
        let before = img.get(0, 0);
        img.shade(0, 0, [1.0, 1.0, 1.0], 1.0);
        assert_eq!(before, img.get(0, 0));
    }

    #[test]
    fn to_rgb_blends_background() {
        let mut img = RgbaImage::transparent(1, 1);
        img.shade(0, 0, [1.0, 0.0, 0.0], 0.5);
        let rgb = img.to_rgb([0, 0, 255]);
        let px = rgb.get(0, 0);
        assert_eq!(px[0], 128); // 0.5 red
        assert_eq!(px[2], 128); // 0.5 of blue background
    }

    #[test]
    fn transparent_image_shows_background() {
        let img = RgbaImage::transparent(2, 2);
        let rgb = img.to_rgb([10, 20, 30]);
        assert_eq!(rgb.get(1, 1), [10, 20, 30]);
        assert_eq!(img.max_alpha(), 0.0);
    }
}
