//! Synthetic CT phantom: a stand-in for the paper's primate-tooth scan.

/// Generate a tooth-like volume of normalized scalars in `[0, 1]`, stored
/// x-fastest (matching the DDR memory convention).
///
/// The phantom is a crown-and-root shape built from radial shells:
/// background air (~0), a soft outer halo, a dentine body (~0.6), an enamel
/// cap (~0.9) on the upper third, and a low-density pulp chamber, with a
/// gentle deterministic ripple so slices are not rotationally uniform.
pub fn phantom_tooth(dims: [usize; 3]) -> Vec<f32> {
    let [nx, ny, nz] = dims;
    assert!(nx > 1 && ny > 1 && nz > 1, "phantom needs at least 2 voxels per axis");
    let mut out = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        let w = z as f32 / (nz - 1) as f32; // 0 = root tip, 1 = crown top
                                            // Tooth radius profile: narrow root widening into a bulbous crown.
        let radius = 0.16 + 0.24 * w.powf(1.5) + 0.05 * (w * 9.0).sin().abs();
        for y in 0..ny {
            let fy = y as f32 / (ny - 1) as f32 - 0.5;
            for x in 0..nx {
                let fx = x as f32 / (nx - 1) as f32 - 0.5;
                // Slightly elliptical cross-section with a ripple.
                let ang = fy.atan2(fx);
                let r = (fx * fx + 1.3 * fy * fy).sqrt() * (1.0 + 0.06 * (3.0 * ang).cos());
                let v = if r > radius {
                    // Air with a faint soft-tissue halo near the surface.
                    (0.15 * (1.0 - (r - radius) / 0.05)).max(0.0)
                } else if w > 0.62 && r > radius * 0.55 {
                    // Enamel cap on the crown.
                    0.9 + 0.08 * (1.0 - r / radius)
                } else if r < radius * 0.28 && w > 0.25 && w < 0.85 {
                    // Pulp chamber.
                    0.25
                } else {
                    // Dentine with slight radial density gradient.
                    0.55 + 0.1 * (1.0 - r / radius)
                };
                out.push(v.clamp(0.0, 1.0));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_normalized() {
        let v = phantom_tooth([16, 16, 16]);
        assert_eq!(v.len(), 4096);
        assert!(v.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn corners_are_air_center_is_tissue() {
        let dims = [32, 32, 32];
        let v = phantom_tooth(dims);
        let at = |x: usize, y: usize, z: usize| v[x + 32 * (y + 32 * z)];
        assert!(at(0, 0, 16) < 0.2, "corner should be air");
        assert!(at(16, 16, 16) > 0.2, "center should be tissue");
    }

    #[test]
    fn crown_contains_enamel() {
        let dims = [32, 32, 32];
        let v = phantom_tooth(dims);
        let crown_slice = &v[32 * 32 * 28..32 * 32 * 29];
        assert!(crown_slice.iter().any(|&s| s > 0.85), "no enamel found in crown");
    }

    #[test]
    fn deterministic() {
        assert_eq!(phantom_tooth([8, 8, 8]), phantom_tooth([8, 8, 8]));
    }
}
