//! # volren — brick-decomposed CPU direct volume rendering
//!
//! The paper's first use case feeds redistributed TIFF-stack data into
//! distributed **direct volume rendering** (DVR): "the entire volume is
//! broken into equally sized boxes that are as close to cubes as possible",
//! each GPU renders its brick, and the results are composited. The paper
//! used GPU rendering on Cooley; this crate substitutes a CPU ray-caster
//! that consumes the same brick layout and produces the same kind of image,
//! preserving the property DDR exists for — every rank needs exactly one
//! axis-aligned sub-box of the volume.
//!
//! Rendering is orthographic along +z with voxel-center sampling and
//! front-to-back `over` compositing, which makes the brick decomposition
//! exact: compositing per-brick partial images in z order reproduces the
//! single-pass reference image.
//!
//! * [`phantom_tooth`] — synthetic CT phantom standing in for the paper's
//!   primate-tooth scan (Figure 2),
//! * [`TransferFunction`] — scalar → color/opacity classification,
//! * [`render_brick`] — ray-cast one brick into a partial RGBA image,
//! * [`composite`] — combine brick images into the final picture,
//! * [`RgbaImage`] — premultiplied float RGBA accumulation buffers.

#![warn(missing_docs)]

mod dist;
mod image;
mod phantom;
mod render;
mod transfer;

pub use dist::composite_gather;
pub use image::RgbaImage;
pub use phantom::phantom_tooth;
pub use render::{
    composite, render_brick, render_brick_along, render_brick_shaded, render_volume,
    render_volume_along, Axis, BrickImage, Lighting,
};
pub use transfer::TransferFunction;
