//! Distributed compositing: combine per-rank brick images over a
//! communicator, as the paper's multi-GPU renderer does after each rank
//! draws its brick.

use crate::image::RgbaImage;
use crate::render::{composite, BrickImage};
use minimpi::{Comm, Result};

/// Wire encoding of a brick image: 5 u32 header + f32 pixels.
fn encode(brick: &BrickImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + brick.image.data.len() * 4);
    for v in [
        brick.x0 as u32,
        brick.y0 as u32,
        brick.z0 as u32,
        brick.image.width as u32,
        brick.image.height as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(minimpi::bytes_of(&brick.image.data));
    out
}

fn decode(bytes: &[u8]) -> Option<BrickImage> {
    if bytes.len() < 20 {
        return None;
    }
    let u = |i: usize| u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap()) as usize;
    let (x0, y0, z0, w, h) = (u(0), u(1), u(2), u(3), u(4));
    let payload = &bytes[20..];
    if payload.len() != 4 * 4 * w * h {
        return None;
    }
    let data: Vec<f32> =
        payload.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    Some(BrickImage { x0, y0, z0, image: RgbaImage { width: w, height: h, data } })
}

/// Collective: gather every rank's brick image at `root` and composite them
/// into the final `width × height` picture. Returns `Some(image)` on the
/// root, `None` elsewhere.
///
/// This is serial ("direct-send") compositing — appropriate for the paper's
/// scale, where per-rank footprints are small; the brick z-order sort inside
/// [`composite`] provides the correct `over` ordering.
pub fn composite_gather(
    comm: &Comm,
    root: usize,
    width: usize,
    height: usize,
    brick: &BrickImage,
) -> Result<Option<RgbaImage>> {
    let gathered = comm.gather_bytes(root, &encode(brick))?;
    match gathered {
        None => Ok(None),
        Some(parts) => {
            let bricks: Vec<BrickImage> = parts
                .iter()
                .map(|p| {
                    decode(p).ok_or(minimpi::Error::SizeMismatch { expected: 20, got: p.len() })
                })
                .collect::<Result<_>>()?;
            Ok(Some(composite(width, height, bricks)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::phantom_tooth;
    use crate::render::{render_brick, render_volume};
    use crate::transfer::TransferFunction;
    use minimpi::Universe;

    #[test]
    fn wire_roundtrip() {
        let tf = TransferFunction::tooth();
        let vol = phantom_tooth([8, 8, 8]);
        let brick = render_brick(&vol, [8, 8, 8], [2, 4, 6], &tf);
        let back = decode(&encode(&brick)).unwrap();
        assert_eq!(back.x0, 2);
        assert_eq!(back.y0, 4);
        assert_eq!(back.z0, 6);
        assert_eq!(back.image, brick.image);
        assert!(decode(&[0u8; 7]).is_none());
        assert!(decode(&encode(&brick)[..30]).is_none());
    }

    #[test]
    fn distributed_composite_equals_serial_render() {
        let dims = [16usize, 16, 16];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let reference = render_volume(&vol, dims, &tf);

        // 4 ranks each render one z-quarter and composite at rank 2.
        let vol_ref = &vol;
        let tf_ref = &tf;
        let out = Universe::run(4, move |comm| {
            let r = comm.rank();
            let quarter = 16 * 16 * 4;
            let slab = &vol_ref[r * quarter..(r + 1) * quarter];
            let brick = render_brick(slab, [16, 16, 4], [0, 0, r * 4], tf_ref);
            composite_gather(comm, 2, 16, 16, &brick).unwrap()
        });
        for (r, res) in out.iter().enumerate() {
            assert_eq!(res.is_some(), r == 2);
        }
        let composed = out[2].as_ref().unwrap();
        let max_diff = composed
            .data
            .iter()
            .zip(&reference.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(max_diff < 1e-5, "diff {max_diff}");
    }
}
