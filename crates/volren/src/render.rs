//! Ray casting and brick compositing.

use crate::image::RgbaImage;
use crate::transfer::TransferFunction;

/// Orthographic viewing axis. Rays march along the chosen axis from its low
/// coordinate side; the image plane is spanned by the other two axes in
/// `(fastest, slower)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Axis {
    /// View along +x: image plane is (y, z).
    X,
    /// View along +y: image plane is (x, z).
    Y,
    /// View along +z: image plane is (x, y) — the default and the paper's
    /// stacked-slice orientation.
    #[default]
    Z,
}

impl Axis {
    /// The (image-u, image-v, march) axis indices.
    fn layout(self) -> (usize, usize, usize) {
        match self {
            Axis::X => (1, 2, 0),
            Axis::Y => (0, 2, 1),
            Axis::Z => (0, 1, 2),
        }
    }
}

/// A rendered brick: the partial image of one sub-box of the volume, plus
/// where it sits in image space and along the viewing axis.
#[derive(Debug, Clone)]
pub struct BrickImage {
    /// Image-space x of the brick footprint (volume x).
    pub x0: usize,
    /// Image-space y of the brick footprint (volume y).
    pub y0: usize,
    /// Brick start along the viewing axis (volume z); compositing order key.
    pub z0: usize,
    /// Partial image covering exactly the brick footprint.
    pub image: RgbaImage,
}

/// Ray-cast one brick (orthographic along +z, viewer at −z, voxel-center
/// sampling). `data` holds the brick's voxels x-fastest with extents `dims`;
/// `offset` places the brick in the global volume.
pub fn render_brick(
    data: &[f32],
    dims: [usize; 3],
    offset: [usize; 3],
    tf: &TransferFunction,
) -> BrickImage {
    render_brick_along(data, dims, offset, tf, Axis::Z)
}

/// Ray-cast one brick along an arbitrary viewing [`Axis`].
pub fn render_brick_along(
    data: &[f32],
    dims: [usize; 3],
    offset: [usize; 3],
    tf: &TransferFunction,
    axis: Axis,
) -> BrickImage {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "brick buffer does not match dims");
    let (ua, va, ma) = axis.layout();
    let (uw, vh, md) = (dims[ua], dims[va], dims[ma]);
    let mut image = RgbaImage::transparent(uw, vh);
    let mut coord = [0usize; 3];
    for v in 0..vh {
        for u in 0..uw {
            // Front-to-back along the march axis within the brick.
            for m in 0..md {
                coord[ua] = u;
                coord[va] = v;
                coord[ma] = m;
                let s = data[coord[0] + dims[0] * (coord[1] + dims[1] * coord[2])];
                let (rgb, alpha) = tf.classify(s);
                if alpha > 0.0 {
                    image.shade(u, v, rgb, alpha);
                }
            }
        }
    }
    BrickImage { x0: offset[ua], y0: offset[va], z0: offset[ma], image }
}

/// Render a whole volume in one pass — the serial reference image.
pub fn render_volume(data: &[f32], dims: [usize; 3], tf: &TransferFunction) -> RgbaImage {
    render_brick(data, dims, [0, 0, 0], tf).image
}

/// Render a whole volume along an arbitrary viewing axis.
pub fn render_volume_along(
    data: &[f32],
    dims: [usize; 3],
    tf: &TransferFunction,
    axis: Axis,
) -> RgbaImage {
    render_brick_along(data, dims, [0, 0, 0], tf, axis).image
}

/// Lighting model for shaded rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lighting {
    /// Direction *towards* the light (normalized internally).
    pub direction: [f32; 3],
    /// Ambient floor in `[0, 1]`; diffuse fills the rest.
    pub ambient: f32,
}

impl Default for Lighting {
    fn default() -> Self {
        Lighting { direction: [0.4, -0.6, -0.7], ambient: 0.35 }
    }
}

/// Ray-cast one brick with gradient-based diffuse shading (central
/// differences inside the brick, one-sided at its faces).
///
/// Shading reads neighboring voxels, so at internal brick faces the
/// one-sided gradient differs slightly from what a whole-volume render
/// computes there — composited shaded bricks approximate (rather than
/// bit-match) the single-pass shaded image. The unshaded path
/// ([`render_brick_along`]) remains exact.
pub fn render_brick_shaded(
    data: &[f32],
    dims: [usize; 3],
    offset: [usize; 3],
    tf: &TransferFunction,
    axis: Axis,
    light: Lighting,
) -> BrickImage {
    assert_eq!(data.len(), dims[0] * dims[1] * dims[2], "brick buffer does not match dims");
    let norm = {
        let d = light.direction;
        let len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt().max(1e-12);
        [d[0] / len, d[1] / len, d[2] / len]
    };
    let at = |c: [usize; 3]| data[c[0] + dims[0] * (c[1] + dims[1] * c[2])];
    let gradient = |c: [usize; 3]| -> [f32; 3] {
        let mut g = [0f32; 3];
        for (d, gd) in g.iter_mut().enumerate() {
            let lo = c[d].saturating_sub(1);
            let hi = (c[d] + 1).min(dims[d] - 1);
            let mut a = c;
            a[d] = hi;
            let mut b = c;
            b[d] = lo;
            *gd = (at(a) - at(b)) / (hi - lo).max(1) as f32;
        }
        g
    };

    let (ua, va, ma) = axis.layout();
    let mut image = RgbaImage::transparent(dims[ua], dims[va]);
    let mut coord = [0usize; 3];
    for v in 0..dims[va] {
        for u in 0..dims[ua] {
            for m in 0..dims[ma] {
                coord[ua] = u;
                coord[va] = v;
                coord[ma] = m;
                let (rgb, alpha) = tf.classify(at(coord));
                if alpha <= 0.0 {
                    continue;
                }
                let g = gradient(coord);
                let glen = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
                // Surface normal points against the gradient (bright
                // material on dark background).
                let diffuse = if glen > 1e-6 {
                    ((-g[0] * norm[0] - g[1] * norm[1] - g[2] * norm[2]) / glen).max(0.0)
                } else {
                    1.0 // homogeneous interior: fully lit
                };
                let shade = light.ambient + (1.0 - light.ambient) * diffuse;
                image.shade(u, v, [rgb[0] * shade, rgb[1] * shade, rgb[2] * shade], alpha);
            }
        }
    }
    BrickImage { x0: offset[ua], y0: offset[va], z0: offset[ma], image }
}

/// Composite brick images into the full picture of a `width × height`
/// viewport. Bricks are ordered front-to-back (ascending `z0`) per
/// footprint; the result equals [`render_volume`] when the bricks tile the
/// volume.
pub fn composite(width: usize, height: usize, mut bricks: Vec<BrickImage>) -> RgbaImage {
    bricks.sort_by_key(|b| b.z0);
    let mut out = RgbaImage::transparent(width, height);
    for brick in &bricks {
        let bw = brick.image.width;
        let bh = brick.image.height;
        assert!(
            brick.x0 + bw <= width && brick.y0 + bh <= height,
            "brick footprint escapes the viewport"
        );
        for y in 0..bh {
            for x in 0..bw {
                let src = brick.image.get(x, y);
                let i = 4 * ((brick.y0 + y) * width + brick.x0 + x);
                let t = 1.0 - out.data[i + 3];
                if t <= 0.0 {
                    continue;
                }
                for (c, &v) in src.iter().enumerate() {
                    out.data[i + c] += t * v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantom::phantom_tooth;
    use crate::transfer::TransferFunction;

    fn max_pixel_diff(a: &RgbaImage, b: &RgbaImage) -> f32 {
        a.data.iter().zip(&b.data).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
    }

    #[test]
    fn single_brick_composite_is_identity() {
        let dims = [16, 12, 8];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let reference = render_volume(&vol, dims, &tf);
        let brick = render_brick(&vol, dims, [0, 0, 0], &tf);
        let composed = composite(16, 12, vec![brick]);
        assert_eq!(max_pixel_diff(&reference, &composed), 0.0);
    }

    #[test]
    fn z_split_bricks_reproduce_reference() {
        // Split the volume into two z-halves; compositing must match the
        // one-pass render (same per-pixel over ordering, grouping tolerance).
        let dims = [16, 16, 16];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let reference = render_volume(&vol, dims, &tf);

        let half = 16 * 16 * 8;
        let front = render_brick(&vol[..half], [16, 16, 8], [0, 0, 0], &tf);
        let back = render_brick(&vol[half..], [16, 16, 8], [0, 0, 8], &tf);
        // Deliberately submit out of order to test sorting.
        let composed = composite(16, 16, vec![back, front]);
        assert!(max_pixel_diff(&reference, &composed) < 1e-5);
    }

    #[test]
    fn xy_split_bricks_tile_footprints() {
        let dims = [16, 16, 4];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let reference = render_volume(&vol, dims, &tf);
        // Extract the left and right x-halves into separate brick buffers.
        let extract = |x0: usize| -> Vec<f32> {
            let mut out = Vec::with_capacity(8 * 16 * 4);
            for z in 0..4 {
                for y in 0..16 {
                    for x in 0..8 {
                        out.push(vol[(x0 + x) + 16 * (y + 16 * z)]);
                    }
                }
            }
            out
        };
        let left = render_brick(&extract(0), [8, 16, 4], [0, 0, 0], &tf);
        let right = render_brick(&extract(8), [8, 16, 4], [8, 0, 0], &tf);
        let composed = composite(16, 16, vec![left, right]);
        assert!(max_pixel_diff(&reference, &composed) < 1e-6);
    }

    #[test]
    fn tooth_render_is_nonempty_and_centered() {
        let dims = [32, 32, 32];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let img = render_volume(&vol, dims, &tf);
        assert!(img.max_alpha() > 0.5, "render produced nothing");
        // Center pixel hits the tooth; corner pixel is air.
        assert!(img.get(16, 16)[3] > 0.3);
        assert!(img.get(0, 0)[3] < 0.2);
    }

    #[test]
    fn axis_views_differ_but_all_show_the_phantom() {
        let dims = [24, 28, 32];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let z = render_volume_along(&vol, dims, &tf, Axis::Z);
        let x = render_volume_along(&vol, dims, &tf, Axis::X);
        let y = render_volume_along(&vol, dims, &tf, Axis::Y);
        assert_eq!((z.width, z.height), (24, 28));
        assert_eq!((x.width, x.height), (28, 32));
        assert_eq!((y.width, y.height), (24, 32));
        for img in [&z, &x, &y] {
            assert!(img.max_alpha() > 0.5);
        }
    }

    #[test]
    fn brick_split_reproduces_reference_on_each_axis() {
        let dims = [16, 16, 16];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let reference = render_volume_along(&vol, dims, &tf, axis);
            // Split along the march axis into two halves and composite.
            let (_, _, ma) = axis.layout();
            let mut half_dims = dims;
            half_dims[ma] = 8;
            let extract = |m0: usize| -> Vec<f32> {
                let mut out = Vec::new();
                for z in 0..half_dims[2] {
                    for y in 0..half_dims[1] {
                        for x in 0..half_dims[0] {
                            let mut c = [x, y, z];
                            c[ma] += m0;
                            out.push(vol[c[0] + 16 * (c[1] + 16 * c[2])]);
                        }
                    }
                }
                out
            };
            let mut off_back = [0usize; 3];
            off_back[ma] = 8;
            let front = render_brick_along(&extract(0), half_dims, [0, 0, 0], &tf, axis);
            let back = render_brick_along(&extract(8), half_dims, off_back, &tf, axis);
            let composed = composite(reference.width, reference.height, vec![back, front]);
            let d = reference
                .data
                .iter()
                .zip(&composed.data)
                .map(|(a, b)| (a - b).abs())
                .fold(0f32, f32::max);
            assert!(d < 1e-5, "{axis:?}: {d}");
        }
    }

    #[test]
    fn shading_darkens_unlit_faces() {
        let dims = [24, 24, 24];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let flat = render_volume(&vol, dims, &tf);
        let shaded =
            render_brick_shaded(&vol, dims, [0, 0, 0], &tf, Axis::Z, Lighting::default()).image;
        // Shading only ever attenuates (shade factor <= 1), and must darken
        // at least some surface pixels.
        let mut any_darker = false;
        for (s, f) in shaded.data.chunks_exact(4).zip(flat.data.chunks_exact(4)) {
            assert!(s[0] <= f[0] + 1e-5 && s[1] <= f[1] + 1e-5 && s[2] <= f[2] + 1e-5);
            if s[0] + 1e-3 < f[0] {
                any_darker = true;
            }
        }
        assert!(any_darker, "shading had no visible effect");
        // Alpha is unaffected by shading.
        for (s, f) in shaded.data.chunks_exact(4).zip(flat.data.chunks_exact(4)) {
            assert!((s[3] - f[3]).abs() < 1e-5);
        }
    }

    #[test]
    fn light_direction_changes_the_image() {
        let dims = [24, 24, 24];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let a = render_brick_shaded(
            &vol,
            dims,
            [0, 0, 0],
            &tf,
            Axis::Z,
            Lighting { direction: [1.0, 0.0, 0.0], ambient: 0.2 },
        )
        .image;
        let b = render_brick_shaded(
            &vol,
            dims,
            [0, 0, 0],
            &tf,
            Axis::Z,
            Lighting { direction: [-1.0, 0.0, 0.0], ambient: 0.2 },
        )
        .image;
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn shaded_bricks_composite_close_to_single_pass() {
        let dims = [16, 16, 16];
        let vol = phantom_tooth(dims);
        let tf = TransferFunction::tooth();
        let light = Lighting::default();
        let reference = render_brick_shaded(&vol, dims, [0, 0, 0], &tf, Axis::Z, light).image;
        let half = 16 * 16 * 8;
        let front = render_brick_shaded(&vol[..half], [16, 16, 8], [0, 0, 0], &tf, Axis::Z, light);
        let back = render_brick_shaded(&vol[half..], [16, 16, 8], [0, 0, 8], &tf, Axis::Z, light);
        let composed = composite(16, 16, vec![front, back]);
        // One-sided gradients at the internal face make this approximate.
        let mean: f32 =
            reference.data.iter().zip(&composed.data).map(|(a, b)| (a - b).abs()).sum::<f32>()
                / reference.data.len() as f32;
        assert!(mean < 0.02, "mean diff {mean}");
    }

    #[test]
    #[should_panic]
    fn escaping_brick_panics() {
        let tf = TransferFunction::tooth();
        let brick = render_brick(&vec![0.5; 8 * 8 * 2], [8, 8, 2], [4, 0, 0], &tf);
        let _ = composite(8, 8, vec![brick]);
    }
}
