//! Codec microbenchmarks: TIFF decode (the cost DDR's loader amortizes) and
//! JPEG encode (the in-transit analysis output path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dtiff::{Endian, PixelData, TiffImage};
use jimage::{jpeg, Colormap, RgbImage};
use std::hint::black_box;

fn bench_tiff(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiff");
    g.sample_size(20);
    let (w, h) = (1024u32, 512u32);
    let data: Vec<u32> =
        (0..(w * h) as usize).map(|i| (i as u32).wrapping_mul(2654435761)).collect();
    let img = TiffImage::new(w, h, PixelData::U32(data)).unwrap();
    let bytes = img.encode(Endian::Little).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_1024x512_u32", |b| {
        b.iter(|| black_box(img.encode(Endian::Little).unwrap().len()));
    });
    g.bench_function("decode_1024x512_u32", |b| {
        b.iter(|| black_box(TiffImage::decode(black_box(&bytes)).unwrap().width));
    });
    g.finish();
}

fn bench_jpeg(c: &mut Criterion) {
    let mut g = c.benchmark_group("jpeg");
    g.sample_size(20);
    let (w, h) = (512usize, 512usize);
    let cmap = Colormap::blue_white_red();
    let field: Vec<f32> = (0..w * h)
        .map(|i| {
            let x = (i % w) as f32 / w as f32;
            let y = (i / w) as f32 / h as f32;
            (x * 14.0).sin() * (y * 10.0).cos()
        })
        .collect();
    let img = RgbImage::from_scalar_field(w, h, &field, -1.0, 1.0, &cmap);
    g.throughput(Throughput::Bytes((w * h * 3) as u64));
    for q in [50u8, 75, 95] {
        g.bench_with_input(BenchmarkId::new("encode_512x512_q", q), &q, |b, &q| {
            b.iter(|| black_box(jpeg::encode(black_box(&img), q).unwrap().len()));
        });
    }
    let bytes = jpeg::encode(&img, 75).unwrap();
    g.bench_function("decode_512x512_q75", |b| {
        b.iter(|| black_box(jpeg::decode(black_box(&bytes)).unwrap().width));
    });
    g.finish();
}

fn bench_colormap(c: &mut Criterion) {
    let mut g = c.benchmark_group("colormap");
    let field: Vec<f32> = (0..512 * 512).map(|i| (i as f32 * 0.001).sin()).collect();
    let cmap = Colormap::blue_white_red();
    g.throughput(Throughput::Elements(field.len() as u64));
    g.bench_function("map_512x512_field", |b| {
        b.iter(|| {
            black_box(RgbImage::from_scalar_field(512, 512, black_box(&field), -1.0, 1.0, &cmap))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_tiff, bench_jpeg, bench_colormap);
criterion_main!(benches);
