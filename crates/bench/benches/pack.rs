//! Subarray pack/unpack bandwidth — the per-byte cost under every DDR
//! transfer, across rectangle shapes (row-contiguous copies vs thin strided
//! columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minimpi::Subarray;
use std::hint::black_box;

fn bench_pack_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_pack");
    let full = [512usize, 512, 1];
    let src: Vec<u8> = (0..full[0] * full[1] * 4).map(|i| i as u8).collect();
    // (label, subsizes): same byte volume, different row lengths.
    let cases = [
        ("wide_rows_512x32", [512usize, 32, 1]),
        ("square_128x128", [128, 128, 1]),
        ("thin_columns_32x512", [32, 512, 1]),
    ];
    for (label, sub) in cases {
        let s = Subarray::new(2, full, sub, [0, 0, 0], 4).unwrap();
        g.throughput(Throughput::Bytes(s.packed_len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &s, |b, s| {
            let mut out = Vec::with_capacity(s.packed_len());
            b.iter(|| {
                out.clear();
                s.pack_into(black_box(&src), &mut out).unwrap();
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_unpack");
    let full = [512usize, 512, 1];
    let s = Subarray::new(2, full, [128, 128, 1], [64, 64, 0], 4).unwrap();
    let src = vec![0xA5u8; full[0] * full[1] * 4];
    let packed = s.pack(&src).unwrap();
    let mut dst = vec![0u8; full[0] * full[1] * 4];
    g.throughput(Throughput::Bytes(s.packed_len() as u64));
    g.bench_function("square_128x128", |b| {
        b.iter(|| {
            s.unpack(black_box(&packed), &mut dst).unwrap();
            black_box(dst[0])
        });
    });
    g.finish();
}

/// Pathological-stride shapes — the kernel dispatcher's worst cases, where
/// runs are too short to amortize per-run overhead and the lane gather (or
/// scalar fallback) carries the whole selection:
/// * column-major extraction: a single column of a wide row-major array, one
///   4-byte element per run, maximal stride;
/// * inner-dim stride of one element: every other element of each row, so no
///   two runs ever merge;
/// * 3-D pencil: a 1×1×N line through a cube, one element per plane.
fn bench_pack_pathological(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_pack_pathological");
    let full2 = [1024usize, 1024, 1];
    let src2: Vec<u8> = (0..full2[0] * full2[1] * 4).map(|i| i as u8).collect();
    let column = Subarray::new(2, full2, [1, 1024, 1], [512, 0, 0], 4).unwrap();
    let full_strided = [1024usize, 512, 1];
    let strided = Subarray::new(2, full_strided, [1, 512, 1], [1, 0, 0], 4).unwrap();
    let full3 = [128usize, 128, 128];
    let src3 = vec![0x5Au8; full3[0] * full3[1] * full3[2] * 4];
    let pencil = Subarray::new(3, full3, [1, 1, 128], [64, 64, 0], 4).unwrap();
    let cases: [(&str, &Subarray, &[u8]); 3] = [
        ("column_major_1x1024_of_1024x1024", &column, &src2),
        (
            "inner_stride_1elem_of_1024x512",
            &strided,
            &src2[..full_strided[0] * full_strided[1] * 4],
        ),
        ("pencil_1x1x128_of_128x128x128", &pencil, &src3),
    ];
    for (label, s, src) in cases {
        g.throughput(Throughput::Bytes(s.packed_len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), s, |b, s| {
            let mut out = Vec::with_capacity(s.packed_len());
            b.iter(|| {
                out.clear();
                s.pack_into(black_box(src), &mut out).unwrap();
                black_box(out.len())
            });
        });
        // The inverse scatter over the same geometry.
        let packed = s.pack(src).unwrap();
        let mut dst = vec![0u8; src.len()];
        g.bench_function(format!("unpack_{label}"), |b| {
            b.iter(|| {
                s.unpack(black_box(&packed), &mut dst).unwrap();
                black_box(dst[0])
            });
        });
    }
    g.finish();
}

fn bench_pack_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_pack_3d");
    let full = [128usize, 128, 64];
    let src = vec![1u8; full[0] * full[1] * full[2] * 4];
    let s = Subarray::new(3, full, [64, 64, 32], [32, 32, 16], 4).unwrap();
    g.throughput(Throughput::Bytes(s.packed_len() as u64));
    g.bench_function("brick_64x64x32_of_128x128x64", |b| {
        let mut out = Vec::with_capacity(s.packed_len());
        b.iter(|| {
            out.clear();
            s.pack_into(black_box(&src), &mut out).unwrap();
            black_box(out.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pack_shapes, bench_unpack, bench_pack_pathological, bench_pack_3d);
criterion_main!(benches);
