//! Subarray pack/unpack bandwidth — the per-byte cost under every DDR
//! transfer, across rectangle shapes (row-contiguous copies vs thin strided
//! columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minimpi::Subarray;
use std::hint::black_box;

fn bench_pack_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_pack");
    let full = [512usize, 512, 1];
    let src: Vec<u8> = (0..full[0] * full[1] * 4).map(|i| i as u8).collect();
    // (label, subsizes): same byte volume, different row lengths.
    let cases = [
        ("wide_rows_512x32", [512usize, 32, 1]),
        ("square_128x128", [128, 128, 1]),
        ("thin_columns_32x512", [32, 512, 1]),
    ];
    for (label, sub) in cases {
        let s = Subarray::new(2, full, sub, [0, 0, 0], 4).unwrap();
        g.throughput(Throughput::Bytes(s.packed_len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &s, |b, s| {
            let mut out = Vec::with_capacity(s.packed_len());
            b.iter(|| {
                out.clear();
                s.pack_into(black_box(&src), &mut out).unwrap();
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_unpack");
    let full = [512usize, 512, 1];
    let s = Subarray::new(2, full, [128, 128, 1], [64, 64, 0], 4).unwrap();
    let src = vec![0xA5u8; full[0] * full[1] * 4];
    let packed = s.pack(&src).unwrap();
    let mut dst = vec![0u8; full[0] * full[1] * 4];
    g.throughput(Throughput::Bytes(s.packed_len() as u64));
    g.bench_function("square_128x128", |b| {
        b.iter(|| {
            s.unpack(black_box(&packed), &mut dst).unwrap();
            black_box(dst[0])
        });
    });
    g.finish();
}

fn bench_pack_3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("subarray_pack_3d");
    let full = [128usize, 128, 64];
    let src = vec![1u8; full[0] * full[1] * full[2] * 4];
    let s = Subarray::new(3, full, [64, 64, 32], [32, 32, 16], 4).unwrap();
    g.throughput(Throughput::Bytes(s.packed_len() as u64));
    g.bench_function("brick_64x64x32_of_128x128x64", |b| {
        let mut out = Vec::with_capacity(s.packed_len());
        b.iter(|| {
            out.clear();
            s.pack_into(black_box(&src), &mut out).unwrap();
            black_box(out.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pack_shapes, bench_unpack, bench_pack_3d);
criterion_main!(benches);
