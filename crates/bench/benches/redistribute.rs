//! Zero-copy vs staged data-movement plane, measured on the same
//! redistribution cases (1-D/2-D/3-D, three sizes each, 4 ranks).
//!
//! Each measurement times only the `reorganize` loop *inside* the universe
//! (between barriers), excluding thread spawn and mapping setup, and takes
//! the slowest rank — the completion time of the collective.
//!
//! Besides the criterion console report, a full run (not `--test` smoke
//! mode) rewrites `BENCH_redistribute.json` at the workspace root; the
//! headline entry is the 2-D in-transit repartition (row slabs → column
//! slabs), the paper's simulation→visualization hand-off pattern. Each case
//! also carries a per-phase span breakdown (pack/send/copy/unpack, mailbox
//! waits, plan rounds) from one traced sample via the `ddrtrace` plane.

use criterion::{BenchmarkId, Criterion, Throughput};
use ddr_core::decompose::{brick, near_cubic_grid, slab};
use ddr_core::{Block, DataKind, Descriptor, ValidationPolicy};
use minimpi::Universe;
use std::hint::black_box;
use std::time::{Duration, Instant};

const NPROCS: usize = 4;

/// One redistribution case: a domain plus the producer→consumer layout rule.
#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    kind: DataKind,
    domain: Block,
    /// Owned chunks per rank; the plan's round count. 1 = the classic
    /// single-round cases, > 1 = the multi-round pipelined family.
    chunks: usize,
    /// Inner `reorganize` repetitions per timed sample (amortizes small cases).
    reps: u32,
}

fn cases() -> Vec<Case> {
    let mut v = Vec::new();
    for (name, len) in [
        ("1d/repartition/64Ki", 1usize << 16),
        ("1d/repartition/1Mi", 1 << 20),
        ("1d/repartition/4Mi", 1 << 22),
    ] {
        v.push(Case {
            name,
            kind: DataKind::D1,
            domain: Block::d1(0, len).unwrap(),
            chunks: 1,
            reps: 0,
        });
    }
    for (name, n) in [
        ("2d/in_transit_repartition/256", 256usize),
        ("2d/in_transit_repartition/1024", 1024),
        ("2d/in_transit_repartition/2048", 2048),
    ] {
        v.push(Case {
            name,
            kind: DataKind::D2,
            domain: Block::d2([0, 0], [n, n]).unwrap(),
            chunks: 1,
            reps: 0,
        });
    }
    for (name, n) in [
        ("3d/slabs_to_bricks/32", 32usize),
        ("3d/slabs_to_bricks/64", 64),
        ("3d/slabs_to_bricks/128", 128),
    ] {
        v.push(Case {
            name,
            kind: DataKind::D3,
            domain: Block::d3([0, 0, 0], [n, n, n]).unwrap(),
            chunks: 1,
            reps: 0,
        });
    }
    // Multi-round family: each rank owns four interleaved column slabs, so
    // the plan has four rounds and the depth-2 pipeline has real overlap to
    // win. These are the cases the `pipelined` / `round_sync` columns and
    // the mailbox-wait-share acceptance gate are measured on.
    for (name, n) in [
        ("2d/pipelined_repartition/512", 512usize),
        ("2d/pipelined_repartition/1024", 1024),
        ("2d/pipelined_repartition/2048", 2048),
    ] {
        v.push(Case {
            name,
            kind: DataKind::D2,
            domain: Block::d2([0, 0], [n, n]).unwrap(),
            chunks: 4,
            reps: 0,
        });
    }
    for c in &mut v {
        let bytes = c.domain.count() * 4;
        // Small cases finish in tens of microseconds; run enough inner reps
        // that scheduler jitter cannot flip which plane "wins" when both run
        // the same code (sub-threshold messages stage on either path).
        c.reps = ((4u64 << 20) / bytes.max(1)).clamp(1, 32) as u32;
    }
    v
}

/// Producer layout (the chunks each rank owns) and consumer layout (the
/// block it needs).
fn layouts(case: &Case, r: usize) -> (Vec<Block>, Block) {
    match case.kind {
        // 1-D: reverse the rank order so every byte crosses ranks.
        DataKind::D1 => (
            vec![slab(&case.domain, 0, NPROCS, r).unwrap()],
            slab(&case.domain, 0, NPROCS, NPROCS - 1 - r).unwrap(),
        ),
        // 2-D single-chunk: row slabs → column slabs, the in-transit
        // repartition. Multi-chunk: rank r owns interleaved column slabs
        // r, r+NPROCS, ... (one per round) and needs a row slab.
        DataKind::D2 => {
            if case.chunks == 1 {
                (
                    vec![slab(&case.domain, 1, NPROCS, r).unwrap()],
                    slab(&case.domain, 0, NPROCS, r).unwrap(),
                )
            } else {
                let owned = (0..case.chunks)
                    .map(|k| slab(&case.domain, 1, NPROCS * case.chunks, r + NPROCS * k).unwrap())
                    .collect();
                (owned, slab(&case.domain, 0, NPROCS, r).unwrap())
            }
        }
        // 3-D: z-slabs → near-cubic bricks.
        DataKind::D3 => (
            vec![slab(&case.domain, 2, NPROCS, r).unwrap()],
            brick(&case.domain, near_cubic_grid(NPROCS), r).unwrap(),
        ),
    }
}

/// Time `reps` reorganizations through the selected plane at the given
/// pipeline depth; returns the slowest rank's per-reorganize time.
fn inner_time(case: &Case, zerocopy: bool, checksum: bool, depth: usize) -> Duration {
    let case = *case;
    let times =
        Universe::builder().zerocopy(zerocopy).checksum(checksum).run(NPROCS, move |comm| {
            let r = comm.rank();
            let (owned, need) = layouts(&case, r);
            let desc = Descriptor::for_type::<f32>(NPROCS, case.kind).unwrap();
            let plan =
                desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Skip).unwrap();
            let data: Vec<Vec<f32>> =
                owned.iter().map(|b| vec![r as f32 + 0.5; b.count() as usize]).collect();
            let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
            let mut out = vec![0f32; need.count() as usize];
            comm.barrier().unwrap();
            let start = Instant::now();
            for _ in 0..case.reps {
                let (report, _) = plan
                    .reorganize_with_stats_depth(
                        comm,
                        &refs,
                        &mut out,
                        ddr_core::Strategy::Alltoallw,
                        depth,
                    )
                    .unwrap();
                assert!(report.is_complete());
            }
            let elapsed = start.elapsed();
            black_box(&out);
            elapsed / case.reps
        });
    times.into_iter().max().unwrap()
}

/// One flow-governor probe of a case: governor high-water, credit-stall
/// share, and the depth the executor settled on.
struct FlowProbe {
    /// Governor high-water mark across the run, bytes.
    peak_staging_bytes: usize,
    /// Sender park time as a share of total rank-time (stalled ms across
    /// all ranks / (wall-clock × NPROCS)).
    credit_stall_share: f64,
    /// `RedistStats::effective_depth` of the last reorganize.
    effective_depth: usize,
    /// Per-reorganize slowest-rank time, like [`inner_time`].
    elapsed: Duration,
}

/// Run a case once through the *staged* plane (zero-copy loans charge the
/// governor nothing, so staged is the plane whose footprint the governor
/// actually meters) under an optional memory budget, and read the flow
/// ledger. `budget == 0` leaves the governor unmetered.
fn flow_probe(case: &Case, budget: usize, depth: usize) -> FlowProbe {
    let case = *case;
    let mut builder = Universe::builder().zerocopy(false).checksum(true);
    if budget > 0 {
        builder = builder.mem_budget(budget);
    }
    let out = builder.run(NPROCS, move |comm| {
        let r = comm.rank();
        let (owned, need) = layouts(&case, r);
        let desc = Descriptor::for_type::<f32>(NPROCS, case.kind).unwrap();
        let plan =
            desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Skip).unwrap();
        let data: Vec<Vec<f32>> =
            owned.iter().map(|b| vec![r as f32 + 0.5; b.count() as usize]).collect();
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0f32; need.count() as usize];
        comm.barrier().unwrap();
        let start = Instant::now();
        let mut eff = 0usize;
        for _ in 0..case.reps {
            let (report, stats) = plan
                .reorganize_with_stats_depth(
                    comm,
                    &refs,
                    &mut out,
                    ddr_core::Strategy::Alltoallw,
                    depth,
                )
                .unwrap();
            assert!(report.is_complete());
            eff = stats.effective_depth;
        }
        let elapsed = start.elapsed();
        black_box(&out);
        // The ledger is universe-global, so any rank's reading is the run's.
        (elapsed, comm.mem_high_water(), comm.flow_counters().stalled_ms, eff)
    });
    let wall = out.iter().map(|s| s.0).max().unwrap();
    let (_, peak, stalled_ms, eff) = out[0];
    FlowProbe {
        peak_staging_bytes: peak,
        credit_stall_share: stalled_ms as f64 / (wall.as_secs_f64() * 1e3 * NPROCS as f64).max(1.0),
        effective_depth: eff,
        elapsed: wall / case.reps,
    }
}

/// The measured planes: zero-copy and staged, each with envelope checksums
/// on (the default) and off (`DDR_CHECKSUM=0`). The `nochecksum` columns
/// exist so the integrity plane's cost is a measured number in the JSON
/// report, not a claim.
const PATHS: [(&str, bool, bool); 4] = [
    ("zerocopy", true, true),
    ("staged", false, true),
    ("zerocopy_nochecksum", true, false),
    ("staged_nochecksum", false, false),
];

/// The pipeline columns, measured on the multi-round cases only: the same
/// zero-copy plane at depth 1 (round-synchronous reference) and depth 2
/// (`DDR_PIPELINE_DEPTH` default — two rounds in flight).
const DEPTH_PATHS: [(&str, usize); 2] = [("round_sync", 1), ("pipelined", 2)];

/// Timed samples per column. Odd, so the median is a real sample.
const SAMPLES: usize = 9;

fn bench_redistribute(c: &mut Criterion) {
    let samples = if c.is_test_mode() { 1 } else { SAMPLES };
    for case in cases() {
        // Every column of a case is sampled round-robin — all columns see
        // sample 1 before any sees sample 2 — instead of running each
        // column's samples as its own block. Machine-state drift between
        // blocks (frequency scaling, page-cache warmth, sibling load) used
        // to dominate the small cases: two columns executing *byte-identical
        // code* measured tens of percent apart. Interleaving puts every
        // column under the same drift, so their medians stay comparable.
        let mut cols: Vec<(&'static str, bool, bool, usize)> =
            PATHS.iter().map(|&(p, z, k)| (p, z, k, 1)).collect();
        if case.chunks > 1 {
            cols.extend(DEPTH_PATHS.iter().map(|&(p, d)| (p, true, true, d)));
        }
        let mut times: Vec<Vec<Duration>> = vec![Vec::with_capacity(samples); cols.len()];
        for _ in 0..samples {
            for (col, &(_, zerocopy, checksum, depth)) in cols.iter().enumerate() {
                times[col].push(inner_time(&case, zerocopy, checksum, depth));
            }
        }
        for (col, &(path, ..)) in cols.iter().enumerate() {
            times[col].sort_unstable();
            let median = times[col][times[col].len() / 2];
            c.record(
                "redistribute",
                BenchmarkId::new(case.name, path),
                median,
                Some(Throughput::Bytes(case.domain.count() * 4)),
            );
        }
    }
}

/// One per-phase summary row: `(phase, count, total_ns, max_ns)`.
type PhaseRow = (String, u64, u64, u64);

/// One traced run of a case through the zero-copy plane: capture the span
/// stream and fold it into [`PhaseRow`]s — the per-phase breakdown the JSON
/// report carries next to the raw timings — plus the number of messages the
/// run actually loaned (zero means every message sat below
/// `DDR_ZC_THRESHOLD` and staged instead).
fn phase_breakdown(case: &Case, depth: usize) -> (Vec<PhaseRow>, u64, Duration) {
    ddrtrace::capture::start();
    let dur = inner_time(case, true, true, depth);
    let trace = ddrtrace::capture::stop();
    let loaned = trace
        .metrics
        .iter()
        .find(|(k, _)| k == "minimpi.transport.zerocopy_msgs")
        .map_or(0, |(_, v)| *v);
    let rows = trace
        .summary()
        .rows
        .iter()
        .map(|r| (r.phase.clone(), r.count, r.total_ns, r.max_ns))
        .collect();
    (rows, loaned, dur)
}

/// A phase's share of the traced run's wall-clock. Span totals accumulate
/// across all ranks and inner reps, so the denominator is the per-reorganize
/// slowest-rank time scaled back up by reps × ranks — comparable between
/// depth-1 and depth-2 runs of the same case.
fn phase_share(rows: &[PhaseRow], needle: &str, dur: Duration, reps: u32) -> f64 {
    let wall = dur.as_nanos() as f64 * reps as f64 * NPROCS as f64;
    let total: u64 = rows.iter().filter(|(p, ..)| p.contains(needle)).map(|(_, _, t, _)| *t).sum();
    total as f64 / wall.max(1.0)
}

/// Exercise the `DDR_PIPELINE_DEPTH`-driven entry point on the multi-round
/// cases until the pipeline auto-fallback gate (`DDR_PIPELINE_AUTO`) has
/// enough samples per arm to decide, and report its verdict: `Some(true)` =
/// it measured pipelining slower here and fell back to depth 1,
/// `Some(false)` = pipelining won, `None` = still undecided.
fn probe_pipeline_auto() -> Option<bool> {
    for case in cases().into_iter().filter(|c| c.chunks > 1) {
        Universe::builder().zerocopy(true).checksum(true).run(NPROCS, move |comm| {
            let r = comm.rank();
            let (owned, need) = layouts(&case, r);
            let desc = Descriptor::for_type::<f32>(NPROCS, case.kind).unwrap();
            let plan =
                desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Skip).unwrap();
            let data: Vec<Vec<f32>> =
                owned.iter().map(|b| vec![r as f32 + 0.5; b.count() as usize]).collect();
            let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
            let mut out = vec![0f32; need.count() as usize];
            for _ in 0..6 {
                let (report, _) = plan
                    .reorganize_with_stats(comm, &refs, &mut out, ddr_core::Strategy::Alltoallw)
                    .unwrap();
                assert!(report.is_complete());
            }
            black_box(&out);
        });
        if ddr_core::pipeline_fallback_engaged().is_some() {
            break;
        }
    }
    ddr_core::pipeline_fallback_engaged()
}

/// Pair up `<case>/zerocopy` and `<case>/staged` results and write the
/// machine-readable report the acceptance gate reads.
fn emit_json(c: &Criterion) {
    let results = c.results();
    let lookup = |name: &str, path: &str| -> Option<Duration> {
        let key = format!("redistribute/{name}/{path}");
        results.iter().find(|(id, _)| *id == key).map(|(_, d)| *d)
    };
    let mut entries = Vec::new();
    for case in cases() {
        let (Some(zc), Some(st)) = (lookup(case.name, "zerocopy"), lookup(case.name, "staged"))
        else {
            continue;
        };
        let (Some(zc_ns), Some(st_ns)) =
            (lookup(case.name, "zerocopy_nochecksum"), lookup(case.name, "staged_nochecksum"))
        else {
            continue;
        };
        let pack_before = minimpi::pack_counters();
        let (phases, loaned, _) = phase_breakdown(&case, 1);
        let pack_after = minimpi::pack_counters();
        let flow = flow_probe(&case, 0, if case.chunks > 1 { 2 } else { 1 });
        // Both measurements are reported as measured, always. When every
        // message of a case sits below the loan threshold (`loaned == 0`)
        // the two planes execute the identical staged code, so their ratio
        // is pure scheduler noise around 1.0 — those cases report
        // `"speedup": null` (and `"identical_path": true`): a ratio of two
        // samples of the same code is not a speedup, and publishing one
        // invited reading noise as regression.
        let speedup = (loaned > 0).then(|| st.as_secs_f64() / zc.as_secs_f64().max(1e-12));
        entries.push((
            case,
            zc,
            st,
            zc_ns,
            st_ns,
            speedup,
            phases,
            loaned,
            pack_before,
            pack_after,
            flow,
        ));
    }
    let auto_fallback = probe_pipeline_auto();
    let auto_fallback_json = match auto_fallback {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    let headline = "2d/in_transit_repartition/2048";
    let mut json = String::from("{\n  \"bench\": \"redistribute\",\n  \"element\": \"f32\",\n");
    json.push_str(&format!("  \"nprocs\": {NPROCS},\n"));
    json.push_str(&format!("  \"pipeline_auto_fallback\": {auto_fallback_json},\n"));
    // Constrained-budget exhibit: re-run the deepest multi-round case on the
    // staged plane with the governor set to 25 % of its just-measured
    // unconstrained high-water — floored at 5/4 of one round's global
    // cross-rank bytes, the analytic minimum below which an alltoallw's
    // senders can all park with no receiver yet draining (the gate then
    // converts the wedge into a structured MemoryPressure rather than
    // degrading). Degradation must be smooth: the run completes
    // (flow_probe asserts completeness), the measured peak stays inside
    // the budget, the executor clamps its depth, and the slowdown is an
    // honest measured ratio — not a crash, not a hang.
    let constrained_case = "2d/pipelined_repartition/2048";
    if let Some((case, .., flow)) = entries.iter().find(|(c, ..)| c.name == constrained_case) {
        let all: Vec<ddr_core::Layout> = (0..NPROCS)
            .map(|r| {
                let (owned, need) = layouts(case, r);
                ddr_core::Layout { owned, need }
            })
            .collect();
        let gs = ddr_core::GlobalStats::compute(&all, 4);
        let round_global_max =
            gs.sent.iter().map(|r| r.iter().sum::<u64>()).max().unwrap_or(0) as usize;
        let budget = (flow.peak_staging_bytes / 4).max(round_global_max + round_global_max / 4);
        let cons = flow_probe(case, budget, 2);
        json.push_str(&format!(
            "  \"constrained_budget\": {{\n    \"case\": \"{constrained_case}\",\n    \
             \"unconstrained_peak_staging_bytes\": {},\n    \
             \"round_global_max_bytes\": {round_global_max},\n    \
             \"mem_budget\": {budget},\n    \
             \"peak_staging_bytes\": {},\n    \
             \"within_budget\": {},\n    \
             \"effective_depth\": {},\n    \
             \"credit_stall_share\": {:.4},\n    \
             \"unconstrained_ns\": {},\n    \
             \"constrained_ns\": {},\n    \
             \"slowdown\": {:.3}\n  }},\n",
            flow.peak_staging_bytes,
            cons.peak_staging_bytes,
            cons.peak_staging_bytes <= budget,
            cons.effective_depth,
            cons.credit_stall_share,
            flow.elapsed.as_nanos(),
            cons.elapsed.as_nanos(),
            cons.elapsed.as_secs_f64() / flow.elapsed.as_secs_f64().max(1e-12),
        ));
    }
    if let Some((_, zc, st, _, _, sp, ..)) = entries.iter().find(|(c, ..)| c.name == headline) {
        let sp_json = sp.map_or("null".to_string(), |s| format!("{s:.3}"));
        json.push_str(&format!(
            "  \"headline\": {{\n    \"case\": \"{headline}\",\n    \"zerocopy_ns\": {},\n    \
             \"staged_ns\": {},\n    \"speedup\": {sp_json}\n  }},\n",
            zc.as_nanos(),
            st.as_nanos(),
        ));
    }
    json.push_str("  \"cases\": [\n");
    for (i, (case, zc, st, zc_ns, st_ns, sp, phases, loaned, pack_before, pack_after, flow)) in
        entries.iter().enumerate()
    {
        // Checksum cost on the staged plane (where every payload byte is
        // hashed at both pack and verify): on/off ratio, > 1.0 = slower.
        let checksum_cost = st.as_secs_f64() / st_ns.as_secs_f64().max(1e-12);
        let sp_json = sp.map_or("null".to_string(), |s| format!("{s:.3}"));
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"bytes\": {}, \"rounds\": {}, \
             \"zerocopy_ns\": {}, \"staged_ns\": {}, \
             \"zerocopy_nochecksum_ns\": {}, \"staged_nochecksum_ns\": {}, \
             \"checksum_cost\": {:.3}, \
             \"peak_staging_bytes\": {}, \"credit_stall_share\": {:.4}, \
             \"speedup\": {sp_json}, \"loaned_msgs\": {loaned}, \"identical_path\": {},\n",
            case.name,
            case.domain.count() * 4,
            case.chunks,
            zc.as_nanos(),
            st.as_nanos(),
            zc_ns.as_nanos(),
            st_ns.as_nanos(),
            checksum_cost,
            flow.peak_staging_bytes,
            flow.credit_stall_share,
            *loaned == 0,
        ));
        // Pack-kernel dispatch deltas across the traced sample: which tier
        // (fused memcpy / lane gather / scalar / pooled fan-out) this case's
        // selections actually ran through.
        json.push_str(&format!(
            "     \"pack\": {{\"fused_runs\": {}, \"vector_bytes\": {}, \
             \"scalar_bytes\": {}, \"pool_dispatches\": {}}},\n",
            pack_after.fused_runs - pack_before.fused_runs,
            pack_after.vector_bytes - pack_before.vector_bytes,
            pack_after.scalar_bytes - pack_before.scalar_bytes,
            pack_after.pool_dispatches - pack_before.pool_dispatches,
        ));
        // Multi-round cases additionally carry the pipelined-vs-round-sync
        // comparison: depth-2 and depth-1 timings from the criterion columns
        // and, from one traced sample per depth, the mailbox-wait share of
        // wall-clock plus the pipeline's own overlap/round-in-flight
        // evidence. All numbers are reported exactly as measured.
        if case.chunks > 1 {
            if let (Some(pl), Some(rs)) =
                (lookup(case.name, "pipelined"), lookup(case.name, "round_sync"))
            {
                let (rows1, _, dur1) = phase_breakdown(case, 1);
                let (rows2, _, dur2) = phase_breakdown(case, 2);
                let overlap_ns: u64 = rows2
                    .iter()
                    .filter(|(p, ..)| p.contains("overlap"))
                    .map(|(_, _, t, _)| *t)
                    .sum();
                json.push_str(&format!(
                    "     \"pipeline\": {{\"round_sync_ns\": {}, \"pipelined_ns\": {}, \
                     \"pipeline_speedup\": {:.3}, \
                     \"auto_fallback\": {auto_fallback_json}, \
                     \"mailbox_wait_share_round_sync\": {:.4}, \
                     \"mailbox_wait_share_pipelined\": {:.4}, \
                     \"overlap_ns\": {overlap_ns}, \
                     \"trace_round_sync_ns\": {}, \"trace_pipelined_ns\": {}}},\n",
                    rs.as_nanos(),
                    pl.as_nanos(),
                    rs.as_secs_f64() / pl.as_secs_f64().max(1e-12),
                    phase_share(&rows1, "mailbox_wait", dur1, case.reps),
                    phase_share(&rows2, "mailbox_wait", dur2, case.reps),
                    dur1.as_nanos(),
                    dur2.as_nanos(),
                ));
            }
        }
        json.push_str("     \"phases\": [\n");
        for (j, (phase, count, total, max)) in phases.iter().enumerate() {
            json.push_str(&format!(
                "       {{\"phase\": \"{phase}\", \"count\": {count}, \"total_ns\": {total}, \
                 \"max_ns\": {max}}}{}\n",
                if j + 1 < phases.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!("     ]}}{}\n", if i + 1 < entries.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_redistribute.json");
    std::fs::write(path, json).expect("write BENCH_redistribute.json");
    println!("wrote {path}");
}

fn main() {
    let mut c = Criterion::default();
    bench_redistribute(&mut c);
    if !c.is_test_mode() {
        emit_json(&c);
    }
}
