//! LBM solver step rate, serial and distributed (halo exchange included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ddr_lbm::{barrier_line, Config, DistributedLbm, Lattice};
use minimpi::Universe;
use std::hint::black_box;

fn bench_serial_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbm_serial");
    g.sample_size(20);
    let cfg = Config::wind_tunnel(256, 128);
    let barrier = barrier_line(64, 48, 80);
    g.throughput(Throughput::Elements((cfg.nx * cfg.ny) as u64));
    g.bench_function("step_256x128", |b| {
        let mut lat = Lattice::new(cfg, 0, cfg.ny, &barrier);
        b.iter(|| {
            lat.step_serial();
            black_box(lat.macroscopic(1, 1).0)
        });
    });
    g.finish();
}

fn bench_distributed_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbm_distributed");
    g.sample_size(10);
    let cfg = Config::wind_tunnel(256, 128);
    for nprocs in [2usize, 4, 8] {
        g.throughput(Throughput::Elements((cfg.nx * cfg.ny * 10) as u64));
        g.bench_with_input(BenchmarkId::new("steps10", nprocs), &nprocs, |b, &n| {
            b.iter(|| {
                let sums = Universe::run(n, |comm| {
                    let barrier = barrier_line(64, 48, 80);
                    let mut sim = DistributedLbm::new(cfg, comm, &barrier);
                    for _ in 0..10 {
                        sim.step(comm).unwrap();
                    }
                    sim.lattice().macroscopic(1, 0).0
                });
                black_box(sums[0])
            });
        });
    }
    g.finish();
}

fn bench_vorticity(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbm_vorticity");
    let cfg = Config::wind_tunnel(256, 128);
    let barrier = barrier_line(64, 48, 80);
    let mut lat = Lattice::new(cfg, 0, cfg.ny, &barrier);
    for _ in 0..50 {
        lat.step_serial();
    }
    g.throughput(Throughput::Elements((cfg.nx * cfg.ny) as u64));
    g.bench_function("extract_256x128", |b| {
        b.iter(|| black_box(lat.vorticity(None, None).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_serial_step, bench_distributed_steps, bench_vorticity);
criterion_main!(benches);
