//! Mapping-setup cost at paper scale: the one-time `DDR_SetupDataMapping`
//! geometry work for the Table II/III configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddr_bench::tiffcase::{layouts, Method, PAPER_ELEM, PAPER_VOLUME};
use ddr_core::{compute_local_plan, DataKind, Descriptor, GlobalStats};
use std::hint::black_box;

fn bench_local_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("compute_local_plan");
    g.sample_size(10);
    for (label, method, nprocs) in [
        ("consecutive_216", Method::Consecutive, 216usize),
        ("round_robin_27", Method::RoundRobin, 27),
        ("round_robin_216", Method::RoundRobin, 216),
    ] {
        let ls = layouts(PAPER_VOLUME, nprocs, method).unwrap();
        let desc = Descriptor::new(nprocs, DataKind::D3, PAPER_ELEM).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &ls, |b, ls| {
            b.iter(|| black_box(compute_local_plan(0, black_box(ls), &desc).unwrap().num_rounds()));
        });
    }
    g.finish();
}

fn bench_global_stats(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_stats");
    g.sample_size(10);
    for (label, method, nprocs) in [
        ("round_robin_27", Method::RoundRobin, 27usize),
        ("round_robin_216", Method::RoundRobin, 216),
        ("consecutive_216", Method::Consecutive, 216),
    ] {
        let ls = layouts(PAPER_VOLUME, nprocs, method).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &ls, |b, ls| {
            b.iter(|| black_box(GlobalStats::compute(black_box(ls), PAPER_ELEM).num_rounds));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_local_plan, bench_global_stats);
criterion_main!(benches);
