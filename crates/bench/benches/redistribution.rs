//! End-to-end redistribution microbenchmarks and the design ablations
//! called out in DESIGN.md:
//!
//! * slices → bricks throughput vs rank count,
//! * **rounds ablation** — the same bytes moved as 1 chunk/rank vs k
//!   chunks/rank (the consecutive vs round-robin trade-off of Table III at
//!   microbenchmark scale),
//! * **wire-strategy ablation** — `alltoallw` vs the paper's proposed
//!   sparse point-to-point sends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddr_core::decompose::{brick, near_cubic_grid, round_robin_items, slab};
use ddr_core::{Block, DataKind, Descriptor, Strategy, ValidationPolicy};
use minimpi::Universe;
use std::hint::black_box;

/// One full cycle: map once, reorganize `reps` times (the dynamic-data
/// pattern). Returns a checksum so the work cannot be optimized away.
fn run_cycle(
    nprocs: usize,
    domain: Block,
    chunks_per_rank: usize,
    reps: usize,
    strategy: Strategy,
) -> u64 {
    let counts = near_cubic_grid(nprocs);
    let sums = Universe::run(nprocs, |comm| {
        let r = comm.rank();
        // Owned: z-slabs, split into `chunks_per_rank` interleaved pieces.
        let owned: Vec<Block> = if chunks_per_rank == 1 {
            vec![slab(&domain, 2, nprocs, r).unwrap()]
        } else {
            let planes = domain.dims[2];
            round_robin_items(planes.min(nprocs * chunks_per_rank), nprocs, r, |z| {
                let zlen = planes / (nprocs * chunks_per_rank).min(planes);
                Block::d3([0, 0, z * zlen], [domain.dims[0], domain.dims[1], zlen])
            })
            .unwrap()
        };
        let need = brick(&domain, counts, r).unwrap();
        let desc = Descriptor::for_type::<f32>(nprocs, DataKind::D3).unwrap();
        let plan =
            desc.setup_data_mapping_with(comm, &owned, need, ValidationPolicy::Skip).unwrap();
        let data: Vec<Vec<f32>> =
            owned.iter().map(|b| vec![comm.rank() as f32; b.count() as usize]).collect();
        let refs: Vec<&[f32]> = data.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0f32; need.count() as usize];
        for _ in 0..reps {
            plan.reorganize_with(comm, &refs, &mut out, strategy).unwrap();
        }
        out.iter().map(|v| *v as u64).sum::<u64>()
    });
    sums.iter().sum()
}

fn bench_rank_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("slices_to_bricks");
    g.sample_size(10);
    let domain = Block::d3([0, 0, 0], [128, 128, 64]).unwrap();
    for nprocs in [2usize, 4, 8] {
        g.throughput(criterion::Throughput::Bytes(domain.count() * 4));
        g.bench_with_input(BenchmarkId::from_parameter(nprocs), &nprocs, |b, &n| {
            b.iter(|| black_box(run_cycle(n, domain, 1, 1, Strategy::Alltoallw)));
        });
    }
    g.finish();
}

fn bench_rounds_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("rounds_ablation");
    g.sample_size(10);
    let domain = Block::d3([0, 0, 0], [96, 96, 64]).unwrap();
    for chunks in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("chunks_per_rank", chunks), &chunks, |b, &k| {
            b.iter(|| black_box(run_cycle(4, domain, k, 1, Strategy::Alltoallw)));
        });
    }
    g.finish();
}

fn bench_strategy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_strategy");
    g.sample_size(10);
    let domain = Block::d3([0, 0, 0], [96, 96, 64]).unwrap();
    for (name, strategy) in [("alltoallw", Strategy::Alltoallw), ("p2p", Strategy::PointToPoint)] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_cycle(6, domain, 1, 1, strategy)));
        });
    }
    g.finish();
}

fn bench_plan_reuse(c: &mut Criterion) {
    // Amortized cost per reorganize when the plan is reused 8 times — the
    // dynamic-data pattern of the in-transit use case.
    let mut g = c.benchmark_group("plan_reuse");
    g.sample_size(10);
    let domain = Block::d3([0, 0, 0], [96, 96, 48]).unwrap();
    g.bench_function("map_once_reorganize_8x", |b| {
        b.iter(|| black_box(run_cycle(4, domain, 1, 8, Strategy::Alltoallw)));
    });
    g.bench_function("map_once_reorganize_1x", |b| {
        b.iter(|| black_box(run_cycle(4, domain, 1, 1, Strategy::Alltoallw)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rank_scaling,
    bench_rounds_ablation,
    bench_strategy_ablation,
    bench_plan_reuse
);
criterion_main!(benches);
