//! # ddr-bench — reproduction harnesses for the paper's tables and figures
//!
//! One binary per experiment (see DESIGN.md's experiment index):
//!
//! * `repro_table2` — TIFF load time, No-DDR vs DDR round-robin vs DDR
//!   consecutive (Table II), with `--figure3` for the strong-scaling series
//!   (Figure 3). Paper-scale numbers come from the calibrated `ddr-netsim`
//!   Cooley model driven by **exact** byte counts from the real DDR mapping;
//!   laptop-scale numbers are measured end-to-end on a real TIFF stack.
//! * `repro_table3` — exact `MPI_Alltoallw` round counts and per-rank
//!   per-round data sizes (Table III), computed from the mapping alone.
//! * `repro_table4` — raw vs JPEG-processed output sizes of the LBM
//!   in-transit pipeline (Table IV): raw sizes analytically exact, JPEG
//!   sizes measured by running the simulation and encoder at each grid's
//!   aspect ratio and scaling.
//!
//! The library half hosts the shared workload code: the TIFF stack loader
//! in its three variants and the layout/statistics builders for the
//! paper-scale projection.

#![warn(missing_docs)]

pub mod loader;
pub mod table;
pub mod tiffcase;
