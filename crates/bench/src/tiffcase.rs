//! The TIFF-stack use case as DDR layouts, at any scale, plus the
//! paper-scale cost projection (Tables II/III, Figure 3).

use ddr_core::decompose::{brick, consecutive_items, near_cubic_grid, round_robin_items};
use ddr_core::{Block, GlobalStats, Layout};
use ddr_netsim::ClusterSpec;

/// How file reading is assigned to ranks (Table II's three columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Every rank reads and decodes every image its brick intersects; no
    /// redistribution (the traditional approach).
    NoDdr,
    /// Rank `r` reads images `r, r+P, r+2P, …` — each image a separate DDR
    /// chunk, many `alltoallw` rounds of constant size.
    RoundRobin,
    /// Rank `r` reads one consecutive run of images — a single DDR chunk,
    /// one large `alltoallw` round.
    Consecutive,
}

impl Method {
    /// Human-readable column label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::NoDdr => "No DDR",
            Method::RoundRobin => "DDR (Round-Robin)",
            Method::Consecutive => "DDR (Consecutive)",
        }
    }
}

/// The paper's synthetic benchmark volume: 4096 slices of 4096×2048 32-bit
/// grayscale — 128 GiB total.
pub const PAPER_VOLUME: [usize; 3] = [4096, 2048, 4096];
/// Bytes per voxel of the benchmark volume.
pub const PAPER_ELEM: usize = 4;
/// The rank counts of Table II (3³, 4³, 5³, 6³).
pub const PAPER_SCALES: [usize; 4] = [27, 64, 125, 216];

/// Block of the volume covered by image (z-slice) `z`.
pub fn image_block(vol: [usize; 3], z: usize) -> ddr_core::Result<Block> {
    Block::d3([0, 0, z], [vol[0], vol[1], 1])
}

/// DDR layouts for loading `vol` on `nprocs` ranks with `method`
/// (`NoDdr` has no redistribution layout — returns `None`).
pub fn layouts(vol: [usize; 3], nprocs: usize, method: Method) -> Option<Vec<Layout>> {
    let domain = Block::d3([0, 0, 0], vol).expect("volume dims are nonzero");
    let counts = near_cubic_grid(nprocs);
    let n_images = vol[2];
    let per_rank = |rank: usize| -> Layout {
        let owned = match method {
            Method::RoundRobin => {
                round_robin_items(n_images, nprocs, rank, |z| image_block(vol, z))
                    .expect("image blocks are valid")
            }
            Method::Consecutive => {
                let (z0, len) = consecutive_items(n_images, nprocs, rank);
                if len == 0 {
                    Vec::new()
                } else {
                    vec![Block::d3([0, 0, z0], [vol[0], vol[1], len]).expect("valid chunk")]
                }
            }
            Method::NoDdr => unreachable!(),
        };
        let need = brick(&domain, counts, rank).expect("brick within domain");
        Layout { owned, need }
    };
    match method {
        Method::NoDdr => None,
        _ => Some((0..nprocs).map(per_rank).collect()),
    }
}

/// Images a rank must read itself. For `NoDdr` this is every image its
/// brick's z-range intersects; for the DDR methods it is `n_images / P`.
pub fn images_read_per_rank(vol: [usize; 3], nprocs: usize, method: Method, rank: usize) -> usize {
    let n_images = vol[2];
    match method {
        Method::NoDdr => {
            let domain = Block::d3([0, 0, 0], vol).expect("valid volume");
            let counts = near_cubic_grid(nprocs);
            let b = brick(&domain, counts, rank).expect("valid brick");
            b.dims[2]
        }
        Method::RoundRobin => (n_images - rank).div_ceil(nprocs),
        Method::Consecutive => consecutive_items(n_images, nprocs, rank).1,
    }
}

/// One projected Table II cell: the modelled load time in seconds, broken
/// into its read+decode and redistribution components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedTime {
    /// Parallel file read + decode component.
    pub read_s: f64,
    /// DDR redistribution component (0 for `NoDdr`).
    pub redistribute_s: f64,
}

impl ProjectedTime {
    /// Total load time.
    pub fn total(&self) -> f64 {
        self.read_s + self.redistribute_s
    }
}

/// Project the load time of `method` at paper scale on the given cluster.
///
/// Read/decode uses the filesystem model with the *exact* per-rank image
/// counts; redistribution uses the network model driven by the exact
/// per-round pair-byte matrices of the real DDR mapping.
pub fn project(
    vol: [usize; 3],
    elem: usize,
    nprocs: usize,
    method: Method,
    cluster: &ClusterSpec,
) -> ProjectedTime {
    let image_bytes = (vol[0] * vol[1] * elem) as f64;
    // The slowest reader bounds the read phase.
    let max_images = (0..nprocs)
        .map(|r| images_read_per_rank(vol, nprocs, method, r))
        .max()
        .expect("at least one rank") as f64;
    let read_s = cluster.fs.read_decode_time(nprocs, max_images * image_bytes, max_images);

    let redistribute_s = match layouts(vol, nprocs, method) {
        None => 0.0,
        Some(layouts) => {
            let stats = GlobalStats::compute(&layouts, elem);
            let node_of = cluster.node_map(nprocs);
            (0..stats.num_rounds)
                .map(|round| {
                    let m = GlobalStats::pair_bytes(&layouts, elem, round);
                    cluster.net.alltoallw_round_time(nprocs, &m, &node_of)
                })
                .sum()
        }
    };
    ProjectedTime { read_s, redistribute_s }
}

/// Like [`project`], but estimate the redistribution with the flow-level
/// simulator ([`ddr_netsim::flowsim`]) instead of the analytic contention
/// model — an independent, parameter-free lower-bound estimate.
pub fn project_flowsim(
    vol: [usize; 3],
    elem: usize,
    nprocs: usize,
    method: Method,
    cluster: &ClusterSpec,
) -> ProjectedTime {
    let base = project(vol, elem, nprocs, method, cluster);
    let redistribute_s = match layouts(vol, nprocs, method) {
        None => 0.0,
        Some(layouts) => {
            let stats = GlobalStats::compute(&layouts, elem);
            let node_of = cluster.node_map(nprocs);
            (0..stats.num_rounds)
                .map(|round| {
                    let m = GlobalStats::pair_bytes(&layouts, elem, round);
                    ddr_netsim::flowsim::alltoallw_round_time(&cluster.net, nprocs, &m, &node_of)
                })
                .sum()
        }
    };
    ProjectedTime { read_s: base.read_s, redistribute_s }
}

/// Table III row: exact communication schedule of one method at one scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleRow {
    /// Number of `alltoallw` rounds.
    pub rounds: usize,
    /// Mean bytes sent per rank per round (over ranks that send), MB.
    pub mean_mb_per_rank_per_round: f64,
    /// Max bytes sent by any rank in any round, MB.
    pub max_mb_per_rank_per_round: f64,
}

/// Compute the exact Table III schedule for a DDR method.
///
/// # Panics
/// Panics for [`Method::NoDdr`], which performs no communication.
pub fn schedule(vol: [usize; 3], elem: usize, nprocs: usize, method: Method) -> ScheduleRow {
    let layouts = layouts(vol, nprocs, method).expect("schedule needs a DDR method");
    let stats = GlobalStats::compute(&layouts, elem);
    ScheduleRow {
        rounds: stats.num_rounds,
        mean_mb_per_rank_per_round: stats.mean_sent_per_rank_per_round() / 1e6,
        max_mb_per_rank_per_round: stats.max_sent_per_rank_per_round() as f64 / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddr_core::{validate, ValidationPolicy};

    #[test]
    fn layouts_are_valid_at_all_paper_scales() {
        // Full Strict validation is O(n²)-ish for round-robin's 4096 chunks,
        // so check the small scale strictly and the rest structurally.
        for method in [Method::RoundRobin, Method::Consecutive] {
            let ls = layouts(PAPER_VOLUME, 27, method).unwrap();
            validate(&ls, ValidationPolicy::Strict).unwrap();
        }
        for &p in &PAPER_SCALES {
            for method in [Method::RoundRobin, Method::Consecutive] {
                let ls = layouts(PAPER_VOLUME, p, method).unwrap();
                let owned: u64 = ls.iter().flat_map(|l| l.owned.iter()).map(|b| b.count()).sum();
                assert_eq!(owned, (4096u64 * 2048 * 4096), "{method:?} at {p}");
            }
        }
    }

    #[test]
    fn paper_round_counts_match_table_3() {
        // Table III: consecutive is always 1 round; round-robin is
        // ceil(4096 / P): 152, 64, 33, 19.
        let expect_rr = [152usize, 64, 33, 19];
        for (&p, &rr) in PAPER_SCALES.iter().zip(expect_rr.iter()) {
            let c = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive);
            assert_eq!(c.rounds, 1, "consecutive at {p}");
            let r = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin);
            assert_eq!(r.rounds, rr, "round-robin at {p}");
        }
    }

    #[test]
    fn paper_data_sizes_match_table_3_within_tolerance() {
        // Table III data sizes (MB/rank/round): consecutive 4315.12,
        // 1920.00, 1006.63, 589.95; round-robin 30.81, 31.50, 31.74, 31.85.
        let expect_cons = [4315.12, 1920.00, 1006.63, 589.95];
        let expect_rr = [30.81, 31.50, 31.74, 31.85];
        for ((&p, &ec), &er) in PAPER_SCALES.iter().zip(&expect_cons).zip(&expect_rr) {
            let c = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive);
            let rel = (c.mean_mb_per_rank_per_round - ec).abs() / ec;
            assert!(
                rel < 0.15,
                "consecutive at {p}: got {} expected {ec}",
                c.mean_mb_per_rank_per_round
            );
            let r = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin);
            let rel = (r.mean_mb_per_rank_per_round - er).abs() / er;
            assert!(
                rel < 0.15,
                "round-robin at {p}: got {} expected {er}",
                r.mean_mb_per_rank_per_round
            );
        }
    }

    #[test]
    fn flowsim_preserves_method_ordering_at_small_scale() {
        // The parameter-free flow simulation must agree with the analytic
        // model on who wins at 27 ranks, and never exceed it.
        let cluster = ClusterSpec::cooley();
        let rr_a = project(PAPER_VOLUME, PAPER_ELEM, 27, Method::RoundRobin, &cluster);
        let rr_f = project_flowsim(PAPER_VOLUME, PAPER_ELEM, 27, Method::RoundRobin, &cluster);
        let c_a = project(PAPER_VOLUME, PAPER_ELEM, 27, Method::Consecutive, &cluster);
        let c_f = project_flowsim(PAPER_VOLUME, PAPER_ELEM, 27, Method::Consecutive, &cluster);
        assert!(rr_f.redistribute_s <= rr_a.redistribute_s + 1e-9);
        assert!(c_f.redistribute_s <= c_a.redistribute_s + 1e-9);
        assert!(rr_f.redistribute_s > 0.0 && c_f.redistribute_s > 0.0);
    }

    #[test]
    fn no_ddr_reads_amplify() {
        // At 27 ranks each brick spans a third of the images: 1366 reads vs
        // 152 with DDR.
        let no_ddr = images_read_per_rank(PAPER_VOLUME, 27, Method::NoDdr, 0);
        let ddr = images_read_per_rank(PAPER_VOLUME, 27, Method::Consecutive, 0);
        assert!(no_ddr > 1300 && no_ddr < 1400, "{no_ddr}");
        assert_eq!(ddr, 152);
    }

    #[test]
    fn projection_reproduces_table_2_shape() {
        let cluster = ClusterSpec::cooley();
        let mut last_no_ddr = f64::INFINITY;
        for &p in &PAPER_SCALES {
            let no_ddr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::NoDdr, &cluster).total();
            let rr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, &cluster).total();
            let cons = project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, &cluster).total();
            // DDR beats No-DDR by a large margin everywhere.
            assert!(rr * 3.0 < no_ddr, "rr {rr} vs no-ddr {no_ddr} at {p}");
            assert!(cons * 3.0 < no_ddr, "cons {cons} vs no-ddr {no_ddr} at {p}");
            // Strong scaling: No-DDR decreases slowly with P.
            assert!(no_ddr < last_no_ddr);
            last_no_ddr = no_ddr;
        }
        // Crossover: round-robin wins at 27 ranks, consecutive at 216.
        let rr27 = project(PAPER_VOLUME, PAPER_ELEM, 27, Method::RoundRobin, &cluster).total();
        let c27 = project(PAPER_VOLUME, PAPER_ELEM, 27, Method::Consecutive, &cluster).total();
        assert!(rr27 < c27, "at 27 ranks round-robin should win: {rr27} vs {c27}");
        let rr216 = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::RoundRobin, &cluster).total();
        let c216 = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::Consecutive, &cluster).total();
        assert!(c216 < rr216, "at 216 ranks consecutive should win: {c216} vs {rr216}");
    }
}
