//! Model-sensitivity ablations for the Table II projection.
//!
//! The paper-scale numbers rest on the `ddr-netsim` cost model; this harness
//! shows how its qualitative conclusions respond to the modelling choices,
//! so a reader can judge which findings are robust:
//!
//! * rank placement: Block (packed nodes) vs RoundRobin (spread) — changes
//!   which traffic is intra-node;
//! * ranks per node: 2 (one per GPU, the paper's run) vs 12 (one per core) —
//!   changes per-link contention;
//! * collective overhead α: scaling the fitted per-rank cost moves the
//!   round-robin/consecutive crossover.

use ddr_bench::table;
use ddr_bench::tiffcase::{project, Method, PAPER_ELEM, PAPER_SCALES, PAPER_VOLUME};
use ddr_netsim::{ClusterSpec, Placement};

fn row(cluster: &ClusterSpec, label: &str) {
    print!("{label:<34}");
    for &p in &PAPER_SCALES {
        let rr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, cluster).total();
        let cons = project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, cluster).total();
        let winner = if rr < cons { "RR" } else { "C " };
        print!("  {rr:>6.1}/{cons:<6.1}{winner}");
    }
    println!();
}

fn header() {
    print!("{:<34}", "configuration (RR/Consec [s])");
    for &p in &PAPER_SCALES {
        print!("  {:>15}", format!("{p} ranks"));
    }
    println!();
    println!("{}", "-".repeat(34 + PAPER_SCALES.len() * 17));
}

fn main() {
    println!("== Table II sensitivity ablations (projection model) ==\n");
    header();

    let base = ClusterSpec::cooley();
    row(&base, "baseline (2/node, block, fit α)");

    let mut spread = base;
    spread.placement = Placement::RoundRobin;
    row(&spread, "round-robin rank placement");

    let mut dense = base;
    dense.procs_per_node = 12;
    row(&dense, "12 ranks/node (core-packed)");

    for scale in [0.5, 2.0] {
        let mut alpha = base;
        alpha.net.alpha_per_rank *= scale;
        alpha.net.alpha_base *= scale;
        row(&alpha, &format!("collective overhead x{scale}"));
    }

    let mut no_contention = base;
    no_contention.net.contention_half_volume = f64::MAX;
    row(&no_contention, "no volume contention");

    println!();
    println!("Robust across all variants: DDR beats No-DDR by an order of magnitude, and");
    println!("consecutive wins at 216 ranks unless the contention term is removed entirely.");
    println!("Sensitive: the exact crossover scale moves with the per-round overhead, which");
    println!("is why the paper sees the tie at 64 ranks and the fitted model slightly earlier.");

    // No-DDR column is placement-independent; print once for context.
    println!("\n{:<14}No-DDR (any placement):", "");
    table::header(&[("Processes", 10), ("No DDR", 12)]);
    for &p in &PAPER_SCALES {
        let t = project(PAPER_VOLUME, PAPER_ELEM, p, Method::NoDdr, &base).total();
        table::row(&[(format!("{p}"), 10), (table::secs(t), 12)]);
    }
}
