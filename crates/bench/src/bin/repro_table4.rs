//! Reproduce **Table IV** (raw vs in-transit-processed output size) of
//! *Automated Dynamic Data Redistribution*.
//!
//! The paper runs a 2-D LBM simulation for 20 000 iterations, saving every
//! 100th step (200 outputs), and compares writing the raw 4-byte vorticity
//! field against streaming it in-transit to an analysis resource that
//! renders a blue-white-red JPEG.
//!
//! Raw sizes are analytically exact (`nx × ny × 4 × 200`). JPEG sizes are
//! **measured** by running the full pipeline — distributed LBM, M→N frame
//! streaming, DDR repartitioning, colormap, JPEG q75 — at a scaled-down
//! grid with the paper's aspect ratio (the paper's largest grid is 204.7 GB
//! of raw output; running it verbatim is a cluster job), and applying the
//! measured bits-per-pixel to the paper's grids.
//!
//! Usage: `repro_table4 [--scale D]` (default D=4: simulate at 1/4 of the
//! smallest paper grid; D=1 runs the smallest grid in full).

use ddr_core::Block;
use ddr_lbm::{barrier_line, Config, DistributedLbm};
use intransit::{
    analysis_block, consumer_sources, producer_targets, recv_frames, send_frame, split_resources,
    Repartitioner, Role,
};
use jimage::{jpeg, Colormap, RgbImage};
use minimpi::Universe;

/// Paper grids: (nx, ny, paper raw, paper processed, paper reduction %).
const PAPER_GRIDS: [(usize, usize, &str, &str, f64); 4] = [
    (3238, 1295, "3.2 GB", "19.9 MB", 99.38),
    (6476, 2590, "12.8 GB", "61.0 MB", 99.52),
    (12952, 5180, "51.2 GB", "217.8 MB", 99.57),
    (25904, 10360, "204.7 GB", "830.9 MB", 99.59),
];
const SAVES: usize = 200;
const SIM_RANKS: usize = 8;
const ANALYSIS_RANKS: usize = 4;

/// Run the full in-transit pipeline at `nx × ny`, saving `frames` outputs
/// every `every` steps. Returns (jpeg bytes per frame, raw bytes per frame).
fn measure_pipeline(nx: usize, ny: usize, frames: usize, every: usize) -> (Vec<usize>, usize) {
    let cfg = Config::wind_tunnel(nx, ny);
    let steps = frames * every;
    let results = Universe::run(SIM_RANKS + ANALYSIS_RANKS, move |world| {
        let barrier = barrier_line(nx / 4, ny * 2 / 5, ny * 3 / 5);
        let (role, group) = split_resources(world, SIM_RANKS).unwrap();
        match role {
            Role::Simulation => {
                let mut sim = DistributedLbm::new(cfg, &group, &barrier);
                let consumer =
                    SIM_RANKS + producer_targets(SIM_RANKS, ANALYSIS_RANKS)[group.rank()];
                for step in 1..=steps {
                    sim.step(&group).unwrap();
                    if step % every == 0 {
                        let (y0, rows) = sim.slab();
                        let vort = sim.vorticity(&group).unwrap();
                        let block = Block::d2([0, y0], [nx, rows]).unwrap();
                        send_frame(world, consumer, step as u64, block, vort).unwrap();
                    }
                }
                Vec::new()
            }
            Role::Analysis => {
                let c = group.rank();
                let need = analysis_block(nx, ny, ANALYSIS_RANKS, c).unwrap();
                let mut rep = Repartitioner::new(need);
                let sources = consumer_sources(SIM_RANKS, ANALYSIS_RANKS, c);
                let cmap = Colormap::blue_white_red();
                let mut sizes = Vec::new();
                for step in 1..=steps {
                    if step % every == 0 {
                        let fr = recv_frames(world, &sources, Some(step as u64)).unwrap();
                        let field = rep.redistribute(&group, &fr).unwrap();
                        // Each analysis rank renders and compresses its tile
                        // (the paper's per-rank image output).
                        let img = RgbImage::from_scalar_field(
                            need.dims[0],
                            need.dims[1],
                            &field,
                            -0.08,
                            0.08,
                            &cmap,
                        );
                        sizes.push(jpeg::encode(&img, 75).unwrap().len());
                    }
                }
                sizes
            }
        }
    });
    // Sum the per-rank tile sizes per frame.
    let per_frame: Vec<usize> =
        (0..frames).map(|f| results.iter().skip(SIM_RANKS).map(|s| s[f]).sum()).collect();
    (per_frame, nx * ny * 4)
}

/// Measure the developed-flow JPEG bits/pixel at one scale divisor.
fn measure_bpp(scale: usize, frames: usize, every: usize) -> f64 {
    let (nx, ny) = (PAPER_GRIDS[0].0 / scale, PAPER_GRIDS[0].1 / scale);
    let (per_frame, raw_per_frame) = measure_pipeline(nx, ny, frames, every);
    // Discard the first third (flow still developing; near-uniform frames
    // compress unrealistically well).
    let developed = &per_frame[frames / 3..];
    let mean_jpeg = developed.iter().sum::<usize>() as f64 / developed.len() as f64;
    let bpp = mean_jpeg * 8.0 / (nx * ny) as f64;
    println!(
        "measured @ {nx}x{ny}: raw {}/frame, jpeg {:.1} KB/frame ({:.3} bits/pixel), reduction {:.2}%",
        ddr_bench::table::human_bytes(raw_per_frame as f64),
        mean_jpeg / 1e3,
        bpp,
        100.0 * (1.0 - mean_jpeg / raw_per_frame as f64)
    );
    bpp
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: usize = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let quick = args.iter().any(|a| a == "--quick");
    let frames = 12;
    let every = 100;
    println!(
        "== Table IV (measured in-transit pipeline, {SIM_RANKS} sim + {ANALYSIS_RANKS} analysis ranks, \
         {frames} frames every {every} steps) ==\n"
    );
    // Measure at two resolutions to capture how bits/pixel falls as the
    // grid grows (the same physical flow spread over more pixels), then
    // project each paper grid with the fitted power law.
    let bpp_lo = measure_bpp(scale * 2, frames, every);
    let (bpp_hi, exponent) = if quick {
        (bpp_lo, 0.0)
    } else {
        let bpp_hi = measure_bpp(scale, frames, every);
        // bpp(pixels) = a * pixels^-k through the two measured points. Small
        // grids are resolution-limited (a fixed number of vortices gets
        // smoother as pixels are added), so the locally fitted falloff is
        // too steep to extrapolate three orders of magnitude; real turbulent
        // flow adds detail at every scale. Cap the exponent conservatively.
        let px = |s: usize| (PAPER_GRIDS[0].0 / s * (PAPER_GRIDS[0].1 / s)) as f64;
        let k = (bpp_lo / bpp_hi).ln() / (px(scale) / px(scale * 2)).ln();
        (bpp_hi, k.clamp(0.0, 0.15))
    };
    let ref_pixels = ((PAPER_GRIDS[0].0 / scale) * (PAPER_GRIDS[0].1 / scale)) as f64;
    println!("\nfitted: bpp(pixels) = {bpp_hi:.3} * (pixels / {ref_pixels:.2e})^-{exponent:.3}\n");

    println!("projection to the paper's grids:\n");
    ddr_bench::table::header(&[
        ("Grid", 15),
        ("Raw (exact)", 12),
        ("Processed", 12),
        ("Reduction", 10),
        ("paper raw", 10),
        ("processed", 10),
        ("red. %", 7),
    ]);
    for &(gx, gy, praw, pproc, pred) in &PAPER_GRIDS {
        let raw = (gx * gy * 4 * SAVES) as f64;
        let bpp = bpp_hi * ((gx * gy) as f64 / ref_pixels).powf(-exponent);
        let processed = bpp / 8.0 * (gx * gy) as f64 * SAVES as f64;
        let reduction = 100.0 * (1.0 - processed / raw);
        ddr_bench::table::row(&[
            (format!("{gx} x {gy}"), 15),
            (ddr_bench::table::human_bytes(raw), 12),
            (ddr_bench::table::human_bytes(processed), 12),
            (format!("{reduction:.2}%"), 10),
            (praw.to_string(), 10),
            (pproc.to_string(), 10),
            (format!("{pred:.2}"), 7),
        ]);
    }
    println!(
        "\n(Paper reports GiB-based sizes; the reduction percentage is scale-free and is\n\
         the comparison that matters. Rerun with --scale 2 or --scale 1 to measure at\n\
         larger grids, or --quick for a single-resolution measurement.)"
    );
}
