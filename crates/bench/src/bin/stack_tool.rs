//! Command-line utility for TIFF volume stacks: generate synthetic phantoms,
//! inspect stacks/files, and extract rendered previews — the small ops
//! toolbox around the use-case-1 data format.
//!
//! ```text
//! stack_tool gen <dir> <nx> <ny> <nz> [--multipage <file>]
//! stack_tool info <dir|file.tif>
//! stack_tool preview <dir> <nx> <ny> <nz> <out.jpg> [--axis x|y|z] [--shaded]
//! ```

use ddr_bench::loader::{write_phantom_multipage, write_phantom_stack};
use dtiff::TiffImage;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  stack_tool gen <dir> <nx> <ny> <nz> [--multipage <file>]\n  \
         stack_tool info <dir|file.tif>\n  \
         stack_tool preview <dir> <nx> <ny> <nz> <out.jpg> [--axis x|y|z] [--shaded]"
    );
    ExitCode::from(2)
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let [dir, nx, ny, nz, rest @ ..] = args else { return usage() };
    let (Ok(nx), Ok(ny), Ok(nz)) = (nx.parse(), ny.parse(), nz.parse()) else {
        return usage();
    };
    let vol = [nx, ny, nz];
    if let Some(i) = rest.iter().position(|a| a == "--multipage") {
        let Some(file) = rest.get(i + 1) else { return usage() };
        if let Err(e) = write_phantom_multipage(Path::new(file), vol) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {nz}-page volume to {file}");
    } else {
        if let Err(e) = write_phantom_stack(Path::new(dir), vol) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {nz} slices of {nx}x{ny} to {dir}/");
    }
    ExitCode::SUCCESS
}

fn describe(img: &TiffImage, label: &str) {
    println!(
        "{label}: {}x{} {:?} ({} bytes of pixels)",
        img.width,
        img.height,
        img.kind(),
        img.data.len() * img.kind().sample_bytes()
    );
}

fn cmd_info(args: &[String]) -> ExitCode {
    let [path] = args else { return usage() };
    let p = Path::new(path);
    if p.is_dir() {
        let mut z = 0usize;
        while let Ok(img) = dtiff::read_stack_slice(p, z) {
            if z == 0 {
                describe(&img, "slice 0");
            }
            z += 1;
        }
        if z == 0 {
            eprintln!("no slices found in {path}");
            return ExitCode::FAILURE;
        }
        println!("stack of {z} slices");
    } else {
        match std::fs::read(p)
            .map_err(dtiff::TiffError::from)
            .and_then(|b| TiffImage::decode_all(&b))
        {
            Ok(pages) => {
                describe(&pages[0], "page 0");
                println!("{} page(s)", pages.len());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_preview(args: &[String]) -> ExitCode {
    let [dir, nx, ny, nz, out, rest @ ..] = args else { return usage() };
    let (Ok(nx), Ok(ny), Ok(nz)) = (nx.parse(), ny.parse(), nz.parse()) else {
        return usage();
    };
    let axis = match rest.iter().position(|a| a == "--axis").and_then(|i| rest.get(i + 1)) {
        Some(a) if a == "x" => volren::Axis::X,
        Some(a) if a == "y" => volren::Axis::Y,
        None => volren::Axis::Z,
        Some(a) if a == "z" => volren::Axis::Z,
        Some(_) => return usage(),
    };
    let shaded = rest.iter().any(|a| a == "--shaded");

    let vol: [usize; 3] = [nx, ny, nz];
    let mut data = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        let img = match dtiff::read_stack_slice(Path::new(dir), z) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("error reading slice {z}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scale = match img.kind() {
            dtiff::PixelKind::U8 => 255.0,
            dtiff::PixelKind::U16 => 65535.0,
            dtiff::PixelKind::U32 => u32::MAX as f64,
            dtiff::PixelKind::F32 => 1.0,
        };
        data.extend((0..img.data.len()).map(|i| (img.data.get_f64(i) / scale) as f32));
    }
    let tf = volren::TransferFunction::tooth();
    let image = if shaded {
        volren::render_brick_shaded(&data, vol, [0, 0, 0], &tf, axis, volren::Lighting::default())
            .image
    } else {
        volren::render_volume_along(&data, vol, &tf, axis)
    };
    let rgb = image.to_rgb([0, 0, 0]);
    match jimage::jpeg::encode(&rgb, 90).map(|b| std::fs::write(out, b)) {
        Ok(Ok(())) => {
            println!("wrote {out} ({}x{})", rgb.width, rgb.height);
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("failed to write {out}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "gen" => cmd_gen(rest),
        Some((cmd, rest)) if cmd == "info" => cmd_info(rest),
        Some((cmd, rest)) if cmd == "preview" => cmd_preview(rest),
        _ => usage(),
    }
}
