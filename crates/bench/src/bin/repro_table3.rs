//! Reproduce **Table III** (communication scheduling of `MPI_Alltoallw`)
//! of *Automated Dynamic Data Redistribution*.
//!
//! These numbers are **exact**: they come from the geometric DDR mapping of
//! the paper's 4096-image benchmark stack onto near-cubic bricks, with no
//! timing model involved — the number of rounds is the maximum chunk count
//! over ranks, and the data size is the mean bytes a rank ships per round.

use ddr_bench::table;
use ddr_bench::tiffcase::{schedule, Method, PAPER_ELEM, PAPER_SCALES, PAPER_VOLUME};

/// Paper's Table III values: (procs, consec rounds, consec MB, rr rounds, rr MB).
const PAPER_TABLE3: [(usize, usize, f64, usize, f64); 4] = [
    (27, 1, 4315.12, 152, 30.81),
    (64, 1, 1920.00, 64, 31.50),
    (125, 1, 1006.63, 33, 31.74),
    (216, 1, 589.95, 19, 31.85),
];

fn main() {
    println!("== Table III (exact communication schedule from the DDR mapping) ==\n");
    table::header(&[
        ("Processes", 10),
        ("Consec rounds", 13),
        ("MB/rank/round", 14),
        ("RR rounds", 10),
        ("MB/rank/round", 14),
        ("paper C-MB", 11),
        ("paper RR-MB", 12),
    ]);
    for (i, &p) in PAPER_SCALES.iter().enumerate() {
        let cons = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive);
        let rr = schedule(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin);
        let (_, pcr, pcm, prr, prm) = PAPER_TABLE3[i];
        assert_eq!(cons.rounds, pcr, "consecutive round count must match the paper");
        assert_eq!(rr.rounds, prr, "round-robin round count must match the paper");
        let root = (p as f64).cbrt().round() as usize;
        table::row(&[
            (format!("{root}^3 ({p})"), 10),
            (format!("{}", cons.rounds), 13),
            (format!("{:.2}", cons.mean_mb_per_rank_per_round), 14),
            (format!("{}", rr.rounds), 10),
            (format!("{:.2}", rr.mean_mb_per_rank_per_round), 14),
            (format!("{pcm:.2}"), 11),
            (format!("{prm:.2}"), 12),
        ]);
    }
    println!(
        "\nRound counts match the paper exactly; data sizes are computed from the mapping\n\
         (mean over sending ranks, decimal MB). Deviations from the paper's values stem\n\
         from brick rounding when 4096 images do not divide evenly by the grid."
    );
}
