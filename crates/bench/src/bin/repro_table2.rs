//! Reproduce **Table II** (TIFF load time) and **Figure 3** (strong
//! scaling) of *Automated Dynamic Data Redistribution*.
//!
//! Two parts:
//!
//! 1. **Paper-scale projection** — the 128 GB synthetic stack
//!    (4096 × 2048 × 4096 × 32-bit) on 27/64/125/216 ranks of the
//!    calibrated Cooley model. Byte counts and round structure are exact
//!    (from the real DDR mapping); read and network times come from the
//!    `ddr-netsim` cost model.
//! 2. **Measured laptop scale** — a real TIFF stack is written to a temp
//!    directory and loaded end-to-end (decode + DDR redistribution over
//!    in-process ranks) with all three methods, wall-clock timed.
//!
//! Usage: `repro_table2 [--figure3] [--no-measured] [--reps N]`

use ddr_bench::loader::{load_stack, write_phantom_stack};
use ddr_bench::table;
use ddr_bench::tiffcase::{project, Method, PAPER_ELEM, PAPER_SCALES, PAPER_VOLUME};
use ddr_netsim::ClusterSpec;
use minimpi::Universe;
use std::time::Instant;

/// Paper's Table II values for side-by-side comparison (seconds).
const PAPER_TABLE2: [(usize, f64, f64, f64); 4] = [
    (27, 283.0, 39.3, 49.2),
    (64, 204.6, 18.9, 18.9),
    (125, 188.2, 11.1, 10.4),
    (216, 165.3, 9.7, 6.6),
];

fn projected_section(cluster: &ClusterSpec) {
    println!("== Table II (projection @ paper scale: 4096x2048x4096 x 32-bit = 128 GiB) ==\n");
    table::header(&[
        ("Processes", 10),
        ("No DDR", 12),
        ("DDR (RR)", 12),
        ("DDR (Consec)", 13),
        ("paper: No DDR", 14),
        ("RR", 8),
        ("Consec", 8),
    ]);
    for (i, &p) in PAPER_SCALES.iter().enumerate() {
        let no_ddr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::NoDdr, cluster).total();
        let rr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, cluster).total();
        let cons = project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, cluster).total();
        let (_, pn, pr, pc) = PAPER_TABLE2[i];
        let root = (p as f64).cbrt().round() as usize;
        table::row(&[
            (format!("{root}^3 ({p})"), 10),
            (table::secs(no_ddr), 12),
            (table::secs(rr), 12),
            (table::secs(cons), 13),
            (table::secs(pn), 14),
            (table::secs(pr), 8),
            (table::secs(pc), 8),
        ]);
    }
    let best = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::Consecutive, cluster).total();
    let base = project(PAPER_VOLUME, PAPER_ELEM, 216, Method::NoDdr, cluster).total();
    println!("\nmax speed-up at 216 ranks: {:.1}x (paper: 24.9x)\n", base / best);
}

fn flowsim_section(cluster: &ClusterSpec) {
    use ddr_bench::tiffcase::project_flowsim;
    println!("== Table II cross-check (flow-level simulation of the redistribution) ==\n");
    table::header(&[
        ("Processes", 10),
        ("RR analytic", 12),
        ("RR flowsim", 12),
        ("C analytic", 12),
        ("C flowsim", 12),
    ]);
    for &p in &PAPER_SCALES {
        let rr_a = project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, cluster);
        let rr_f = project_flowsim(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, cluster);
        let c_a = project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, cluster);
        let c_f = project_flowsim(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, cluster);
        table::row(&[
            (format!("{p}"), 10),
            (table::secs(rr_a.total()), 12),
            (table::secs(rr_f.total()), 12),
            (table::secs(c_a.total()), 12),
            (table::secs(c_f.total()), 12),
        ]);
    }
    println!(
        "\n(The flow simulator models ideal max-min fair sharing with no fitted contention\n\
         parameter, so it bounds the analytic estimate from below; the gap is the fitted\n\
         congestion penalty. The round-robin-vs-consecutive ordering is preserved.)\n"
    );
}

fn figure3_section(cluster: &ClusterSpec) {
    println!("== Figure 3 (strong scaling series; x axis is log3(processes^(1/3))) ==\n");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "processes", "No DDR [s]", "DDR RR [s]", "DDR Consec [s]"
    );
    for &p in &PAPER_SCALES {
        let no_ddr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::NoDdr, cluster).total();
        let rr = project(PAPER_VOLUME, PAPER_ELEM, p, Method::RoundRobin, cluster).total();
        let cons = project(PAPER_VOLUME, PAPER_ELEM, p, Method::Consecutive, cluster).total();
        println!("{p:>10} {no_ddr:>14.1} {rr:>14.1} {cons:>14.1}");
    }
    println!();
}

fn measured_section(reps: usize) {
    // A stack small enough for CI but big enough that decode dominates:
    // 128 slices of 256x128 16-bit = 8 MiB of pixel data.
    let vol = [256usize, 128, 128];
    let nprocs = 8; // 2x2x2 bricks
    println!(
        "== Table II (measured in-process @ {}x{}x{} 16-bit, {} ranks, {} reps) ==\n",
        vol[0], vol[1], vol[2], nprocs, reps
    );
    let dir = std::env::temp_dir().join(format!("ddr_table2_{}", std::process::id()));
    write_phantom_stack(&dir, vol).expect("write synthetic stack");

    table::header(&[("Method", 18), ("mean", 12), ("std", 10), ("images read", 12)]);
    for method in [Method::NoDdr, Method::RoundRobin, Method::Consecutive] {
        let mut times = Vec::with_capacity(reps);
        let mut reads = 0usize;
        for _ in 0..reps {
            let dir = dir.clone();
            let t0 = Instant::now();
            let stats =
                Universe::run(nprocs, move |comm| load_stack(comm, &dir, vol, method).unwrap().2);
            times.push(t0.elapsed().as_secs_f64());
            reads = stats.iter().map(|s| s.images_read).sum();
        }
        let mean = times.iter().sum::<f64>() / reps as f64;
        let var = times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / reps as f64;
        table::row(&[
            (method.label().to_string(), 18),
            (format!("{:.1} ms", mean * 1e3), 12),
            (format!("{:.1} ms", var.sqrt() * 1e3), 10),
            (format!("{reads}"), 12),
        ]);
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("\n(No DDR reads every image once per brick-layer that intersects it; DDR reads each image exactly once.)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let cluster = ClusterSpec::cooley();

    projected_section(&cluster);
    if args.iter().any(|a| a == "--figure3")
        || args.is_empty()
        || !args.contains(&"--no-figure3".into())
    {
        figure3_section(&cluster);
    }
    if args.iter().any(|a| a == "--flowsim") {
        flowsim_section(&cluster);
    }
    if !args.iter().any(|a| a == "--no-measured") {
        measured_section(reps);
    }
}
