//! The parallel TIFF-stack loader: the paper's use case 1 as running code.
//!
//! Each rank ends up holding its near-cubic brick of the volume as
//! normalized `f32` voxels, ready for distributed volume rendering. Three
//! variants mirror Table II: the traditional everyone-reads-what-they-need
//! loader and the two DDR-backed loaders (round-robin and consecutive file
//! assignment).

use crate::tiffcase::{image_block, Method};
use ddr_core::decompose::{brick, consecutive_items, near_cubic_grid};
use ddr_core::{Block, DataKind, Descriptor, ValidationPolicy};
use dtiff::TiffImage;
use minimpi::Comm;
use std::path::Path;

/// Errors from the stack loader.
#[derive(Debug)]
pub enum LoadError {
    /// TIFF decode or file I/O failure.
    Tiff(dtiff::TiffError),
    /// Redistribution failure.
    Ddr(ddr_core::DdrError),
    /// A slice did not match the declared volume dimensions.
    Shape(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Tiff(e) => write!(f, "tiff: {e}"),
            LoadError::Ddr(e) => write!(f, "ddr: {e}"),
            LoadError::Shape(s) => write!(f, "shape: {s}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<dtiff::TiffError> for LoadError {
    fn from(e: dtiff::TiffError) -> Self {
        LoadError::Tiff(e)
    }
}

impl From<ddr_core::DdrError> for LoadError {
    fn from(e: ddr_core::DdrError) -> Self {
        LoadError::Ddr(e)
    }
}

/// Decode one slice and normalize its samples to `f32` in `[0, 1]`.
fn decode_slice(dir: &Path, z: usize, vol: [usize; 3]) -> Result<Vec<f32>, LoadError> {
    let img = dtiff::read_stack_slice(dir, z)?;
    if img.width as usize != vol[0] || img.height as usize != vol[1] {
        return Err(LoadError::Shape(format!(
            "slice {z} is {}x{}, volume says {}x{}",
            img.width, img.height, vol[0], vol[1]
        )));
    }
    let scale = match img.kind() {
        dtiff::PixelKind::U8 => 255.0,
        dtiff::PixelKind::U16 => 65535.0,
        dtiff::PixelKind::U32 => u32::MAX as f64,
        dtiff::PixelKind::F32 => 1.0,
    };
    Ok((0..img.data.len()).map(|i| (img.data.get_f64(i) / scale) as f32).collect())
}

/// Statistics of one load, for the measured benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadStats {
    /// Whole images this rank read and decoded.
    pub images_read: usize,
    /// Bytes this rank shipped to other ranks (0 without DDR).
    pub bytes_sent: u64,
}

/// Load the TIFF stack in `dir` (dimensions `vol`, one file per z slice) so
/// that this rank holds its brick of the `near_cubic_grid(comm.size())`
/// decomposition. Returns the brick, its voxels, and load statistics.
pub fn load_stack(
    comm: &Comm,
    dir: &Path,
    vol: [usize; 3],
    method: Method,
) -> Result<(Block, Vec<f32>, LoadStats), LoadError> {
    let nprocs = comm.size();
    let rank = comm.rank();
    let domain = Block::d3([0, 0, 0], vol).expect("valid volume");
    let counts = near_cubic_grid(nprocs);
    let need = brick(&domain, counts, rank).expect("brick within domain");
    let mut stats = LoadStats::default();

    match method {
        Method::NoDdr => {
            // Read every image the brick intersects; throw away the rest of
            // each decoded image (the cost the paper eliminates).
            let mut out = vec![0f32; need.count() as usize];
            for z in need.offset[2]..need.offset[2] + need.dims[2] {
                let slice = decode_slice(dir, z, vol)?;
                stats.images_read += 1;
                for y in 0..need.dims[1] {
                    let gy = need.offset[1] + y;
                    let src = gy * vol[0] + need.offset[0];
                    let dst = (z - need.offset[2]) * need.dims[0] * need.dims[1] + y * need.dims[0];
                    out[dst..dst + need.dims[0]].copy_from_slice(&slice[src..src + need.dims[0]]);
                }
            }
            Ok((need, out, stats))
        }
        Method::RoundRobin => {
            let mut owned_blocks = Vec::new();
            let mut owned_data: Vec<Vec<f32>> = Vec::new();
            let mut z = rank;
            while z < vol[2] {
                owned_blocks.push(image_block(vol, z)?);
                owned_data.push(decode_slice(dir, z, vol)?);
                stats.images_read += 1;
                z += nprocs;
            }
            redistribute(comm, vol, owned_blocks, owned_data, need, &mut stats)
        }
        Method::Consecutive => {
            let (z0, len) = consecutive_items(vol[2], nprocs, rank);
            let (owned_blocks, owned_data) = if len == 0 {
                (Vec::new(), Vec::new())
            } else {
                let chunk = Block::d3([0, 0, z0], [vol[0], vol[1], len]).expect("valid chunk");
                let mut data = Vec::with_capacity(chunk.count() as usize);
                for z in z0..z0 + len {
                    data.extend(decode_slice(dir, z, vol)?);
                    stats.images_read += 1;
                }
                (vec![chunk], vec![data])
            };
            redistribute(comm, vol, owned_blocks, owned_data, need, &mut stats)
        }
    }
}

fn redistribute(
    comm: &Comm,
    _vol: [usize; 3],
    owned_blocks: Vec<Block>,
    owned_data: Vec<Vec<f32>>,
    need: Block,
    stats: &mut LoadStats,
) -> Result<(Block, Vec<f32>, LoadStats), LoadError> {
    let desc = Descriptor::for_type::<f32>(comm.size(), DataKind::D3)?;
    // Round-robin stacks can have thousands of chunks; their disjointness
    // holds by construction, so skip the O(n²) validation pass.
    let plan = desc.setup_data_mapping_with(comm, &owned_blocks, need, ValidationPolicy::Skip)?;
    stats.bytes_sent = plan.total_sent_bytes();
    let refs: Vec<&[f32]> = owned_data.iter().map(|v| v.as_slice()).collect();
    let mut out = vec![0f32; need.count() as usize];
    plan.reorganize(comm, &refs, &mut out)?;
    Ok((need, out, *stats))
}

fn phantom_slices(vol: [usize; 3]) -> Vec<TiffImage> {
    let data = volren::phantom_tooth(vol);
    let plane = vol[0] * vol[1];
    (0..vol[2])
        .map(|z| {
            let pixels: Vec<u16> =
                data[z * plane..(z + 1) * plane].iter().map(|&v| (v * 65535.0) as u16).collect();
            TiffImage::new(vol[0] as u32, vol[1] as u32, dtiff::PixelData::U16(pixels))
                .expect("plane matches dims")
        })
        .collect()
}

/// Generate a synthetic TIFF stack of the phantom volume (used by the
/// measured benchmark and the DVR example). Writes `vol[2]` slices of
/// `vol[0]×vol[1]` 16-bit grayscale, one file per slice.
pub fn write_phantom_stack(dir: &Path, vol: [usize; 3]) -> Result<(), LoadError> {
    dtiff::write_stack(dir, &phantom_slices(vol), dtiff::Endian::Little)?;
    Ok(())
}

/// Generate the phantom volume as a **single multi-page TIFF** — the other
/// file layout CT instruments emit. Returns the file path.
pub fn write_phantom_multipage(path: &Path, vol: [usize; 3]) -> Result<(), LoadError> {
    let bytes = dtiff::encode_multipage(
        &phantom_slices(vol),
        dtiff::Endian::Little,
        dtiff::Compression::None,
    )?;
    std::fs::write(path, bytes).map_err(dtiff::TiffError::from)?;
    Ok(())
}

/// Load a multi-page TIFF volume: rank 0 reads and decodes the whole file,
/// then DDR scatters the bricks. A single shared file cannot be divided
/// among readers the way a per-slice stack can — this loader demonstrates
/// DDR covering that producer layout too (one rank owns everything; every
/// rank needs its brick).
pub fn load_multipage(
    comm: &Comm,
    path: &Path,
    vol: [usize; 3],
) -> Result<(Block, Vec<f32>, LoadStats), LoadError> {
    let nprocs = comm.size();
    let rank = comm.rank();
    let domain = Block::d3([0, 0, 0], vol).expect("valid volume");
    let counts = near_cubic_grid(nprocs);
    let need = brick(&domain, counts, rank).expect("brick within domain");
    let mut stats = LoadStats::default();

    let (owned_blocks, owned_data) = if rank == 0 {
        let bytes = std::fs::read(path).map_err(dtiff::TiffError::from)?;
        let pages = TiffImage::decode_all(&bytes)?;
        if pages.len() != vol[2] {
            return Err(LoadError::Shape(format!(
                "file holds {} pages, volume says {}",
                pages.len(),
                vol[2]
            )));
        }
        stats.images_read = pages.len();
        let mut data = Vec::with_capacity(domain.count() as usize);
        for (z, img) in pages.iter().enumerate() {
            if img.width as usize != vol[0] || img.height as usize != vol[1] {
                return Err(LoadError::Shape(format!("page {z} has wrong dimensions")));
            }
            let scale = match img.kind() {
                dtiff::PixelKind::U8 => 255.0,
                dtiff::PixelKind::U16 => 65535.0,
                dtiff::PixelKind::U32 => u32::MAX as f64,
                dtiff::PixelKind::F32 => 1.0,
            };
            data.extend((0..img.data.len()).map(|i| (img.data.get_f64(i) / scale) as f32));
        }
        (vec![domain], vec![data])
    } else {
        (Vec::new(), Vec::new())
    };
    redistribute(comm, vol, owned_blocks, owned_data, need, &mut stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimpi::Universe;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ddr_loader_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn all_three_methods_agree_and_match_the_phantom() {
        let vol = [24usize, 16, 12];
        let dir = tmpdir("agree");
        write_phantom_stack(&dir, vol).unwrap();
        let reference = volren::phantom_tooth(vol);

        for nprocs in [1usize, 4, 8] {
            let mut per_method = Vec::new();
            for method in [Method::NoDdr, Method::RoundRobin, Method::Consecutive] {
                let dir = dir.clone();
                let results =
                    Universe::run(nprocs, move |comm| load_stack(comm, &dir, vol, method).unwrap());
                // Stitch bricks and compare against the phantom (through the
                // u16 quantization of the files).
                let mut stitched = vec![0f32; vol[0] * vol[1] * vol[2]];
                for (block, data, _) in &results {
                    for (v, c) in data.iter().zip(block.coords()) {
                        stitched[c[0] + vol[0] * (c[1] + vol[1] * c[2])] = *v;
                    }
                }
                for (got, want) in stitched.iter().zip(reference.iter()) {
                    assert!(
                        (got - want).abs() < 1.0 / 65000.0 + 1e-4,
                        "{method:?} at {nprocs}: {got} vs {want}"
                    );
                }
                per_method.push(stitched);
            }
            // All three loaders produce the identical volume.
            assert_eq!(per_method[0], per_method[1]);
            assert_eq!(per_method[1], per_method[2]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multipage_volume_loads_identically_to_per_slice_stack() {
        let vol = [16usize, 12, 10];
        let dir = tmpdir("multipage");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("volume.tif");
        write_phantom_multipage(&file, vol).unwrap();
        let stack_dir = dir.join("stack");
        write_phantom_stack(&stack_dir, vol).unwrap();

        for nprocs in [1usize, 8] {
            let f2 = file.clone();
            let multi = Universe::run(nprocs, move |comm| load_multipage(comm, &f2, vol).unwrap());
            let s2 = stack_dir.clone();
            let stack = Universe::run(nprocs, move |comm| {
                load_stack(comm, &s2, vol, Method::Consecutive).unwrap()
            });
            for ((bm, dm, _), (bs, ds, _)) in multi.iter().zip(stack.iter()) {
                assert_eq!(bm, bs);
                assert_eq!(dm, ds);
            }
            // The file is decoded exactly once, by rank 0.
            let reads: usize = multi.iter().map(|(_, _, s)| s.images_read).sum();
            assert_eq!(reads, vol[2]);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ddr_reduces_images_read() {
        let vol = [16usize, 8, 12];
        let dir = tmpdir("reads");
        write_phantom_stack(&dir, vol).unwrap();
        let d2 = dir.clone();
        let no_ddr = Universe::run(8, move |comm| {
            load_stack(comm, &d2, vol, Method::NoDdr).unwrap().2.images_read
        });
        let d3 = dir.clone();
        let ddr = Universe::run(8, move |comm| {
            load_stack(comm, &d3, vol, Method::Consecutive).unwrap().2.images_read
        });
        // 8 ranks = 2x2x2 bricks: every image is read by 4 ranks without
        // DDR (6 images each) but only once with DDR (1.5 images each).
        assert_eq!(no_ddr.iter().sum::<usize>(), 4 * 12);
        assert_eq!(ddr.iter().sum::<usize>(), 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
