//! Minimal fixed-width table printing for the harness binaries.

/// Print a header row followed by a separator.
pub fn header(cols: &[(&str, usize)]) {
    let row: Vec<String> = cols.iter().map(|(name, w)| format!("{name:>w$}")).collect();
    println!("{}", row.join("  "));
    let sep: Vec<String> = cols.iter().map(|(_, w)| "-".repeat(*w)).collect();
    println!("{}", sep.join("  "));
}

/// Print one data row with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let row: Vec<String> = cells.iter().map(|(s, w)| format!("{s:>w$}")).collect();
    println!("{}", row.join("  "));
}

/// Format seconds like the paper's tables ("165.3 sec").
pub fn secs(t: f64) -> String {
    format!("{t:.1} sec")
}

/// Format a byte count in the paper's MB (10^6) convention.
pub fn mb(bytes: f64) -> String {
    format!("{:.2}", bytes / 1e6)
}

/// Format a byte count with a binary-ish human suffix for logs.
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1000.0 && u + 1 < UNITS.len() {
        v /= 1000.0;
        u += 1;
    }
    if u == 0 {
        format!("{v:.0} {}", UNITS[u])
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(secs(165.31), "165.3 sec");
        assert_eq!(mb(4315.12e6), "4315.12");
        assert_eq!(human_bytes(3.2e9), "3.2 GB");
        assert_eq!(human_bytes(12.0), "12 B");
        assert_eq!(human_bytes(204.7e9), "204.7 GB");
    }
}
