//! Distributed-vs-serial equivalence: the slab-decomposed solver must match
//! the single-lattice reference bit for bit, for any rank count.

use ddr_lbm::{barrier_line, barrier_none, Config, DistributedLbm, Lattice};
use minimpi::Universe;

/// Run the serial reference for `steps` and return (velocity, vorticity).
fn serial_fields(
    cfg: Config,
    barrier: &(dyn Fn(usize, usize) -> bool + Send + Sync),
    steps: usize,
) -> (Vec<(f64, f64)>, Vec<f32>) {
    let mut lat = Lattice::new(cfg, 0, cfg.ny, barrier);
    for _ in 0..steps {
        lat.step_serial();
    }
    let vel: Vec<(f64, f64)> = (0..cfg.ny).flat_map(|ly| lat.velocity_row(ly)).collect();
    let vort = lat.vorticity(None, None);
    (vel, vort)
}

fn distributed_fields(
    cfg: Config,
    barrier: &(dyn Fn(usize, usize) -> bool + Send + Sync),
    steps: usize,
    nprocs: usize,
) -> (Vec<(f64, f64)>, Vec<f32>) {
    let results = Universe::run(nprocs, |comm| {
        let mut sim = DistributedLbm::new(cfg, comm, barrier);
        for _ in 0..steps {
            sim.step(comm).unwrap();
        }
        let vel: Vec<(f64, f64)> =
            (0..sim.lattice().rows()).flat_map(|ly| sim.lattice().velocity_row(ly)).collect();
        let vort = sim.vorticity(comm).unwrap();
        (sim.slab(), vel, vort)
    });
    let mut vel = vec![(0.0, 0.0); cfg.nx * cfg.ny];
    let mut vort = vec![0f32; cfg.nx * cfg.ny];
    for ((y0, rows), v, w) in results {
        vel[y0 * cfg.nx..(y0 + rows) * cfg.nx].copy_from_slice(&v);
        vort[y0 * cfg.nx..(y0 + rows) * cfg.nx].copy_from_slice(&w);
    }
    (vel, vort)
}

#[test]
fn distributed_matches_serial_bitwise_no_barrier() {
    let cfg = Config::wind_tunnel(32, 24);
    let barrier = barrier_none();
    let (sv, sw) = serial_fields(cfg, &barrier, 20);
    for nprocs in [2usize, 3, 5] {
        let (dv, dw) = distributed_fields(cfg, &barrier, 20, nprocs);
        assert_eq!(sv, dv, "velocity mismatch at {nprocs} ranks");
        assert_eq!(sw, dw, "vorticity mismatch at {nprocs} ranks");
    }
}

#[test]
fn distributed_matches_serial_bitwise_with_barrier() {
    let cfg = Config::wind_tunnel(48, 30);
    let barrier = barrier_line(12, 10, 20);
    let (sv, sw) = serial_fields(cfg, &barrier, 60);
    for nprocs in [2usize, 4, 6] {
        let (dv, dw) = distributed_fields(cfg, &barrier, 60, nprocs);
        assert_eq!(sv, dv, "velocity mismatch at {nprocs} ranks");
        assert_eq!(sw, dw, "vorticity mismatch at {nprocs} ranks");
    }
}

#[test]
fn barrier_crossing_slab_boundary_is_handled() {
    // The barrier spans rows 10..=20; with 6 ranks over 30 rows the slab
    // boundaries at rows 10, 15, 20 cut right through it.
    let cfg = Config::wind_tunnel(32, 30);
    let barrier = barrier_line(8, 10, 20);
    let (sv, _) = serial_fields(cfg, &barrier, 40);
    let (dv, _) = distributed_fields(cfg, &barrier, 40, 6);
    assert_eq!(sv, dv);
}

#[test]
fn single_rank_distributed_equals_serial() {
    let cfg = Config::wind_tunnel(24, 12);
    let barrier = barrier_line(6, 4, 8);
    let (sv, sw) = serial_fields(cfg, &barrier, 30);
    let (dv, dw) = distributed_fields(cfg, &barrier, 30, 1);
    assert_eq!(sv, dv);
    assert_eq!(sw, dw);
}

#[test]
fn uneven_rank_counts_cover_domain() {
    // 30 rows over 7 ranks: slabs of 5,5,4,4,4,4,4.
    let cfg = Config::wind_tunnel(16, 30);
    let barrier = barrier_none();
    let (dv, _) = distributed_fields(cfg, &barrier, 5, 7);
    assert_eq!(dv.len(), 16 * 30);
    // Uniform flow preserved.
    assert!(dv.iter().all(|&(ux, uy)| (ux - cfg.u0).abs() < 1e-12 && uy.abs() < 1e-12));
}

#[test]
fn circular_barrier_flow_stays_stable_and_sheds() {
    use ddr_lbm::barrier_circle;
    let cfg = Config::wind_tunnel(96, 48);
    let barrier = barrier_circle(24, 24, 5);
    let (vel, vort) = serial_fields(cfg, &barrier, 400);
    assert!(vel.iter().all(|(ux, uy)| ux.is_finite() && uy.is_finite()));
    // Shedding behind the cylinder: both rotation senses present.
    assert!(vort.iter().any(|&v| v > 1e-4) && vort.iter().any(|&v| v < -1e-4));
    // Solid interior has zero velocity.
    let center = vel[24 * 96 + 24];
    assert_eq!(center, (0.0, 0.0));
}

#[test]
fn density_and_speed_observables() {
    use ddr_lbm::{barrier_none, Lattice};
    let cfg = Config::wind_tunnel(32, 16);
    let none = barrier_none();
    let mut lat = Lattice::new(cfg, 0, 16, &none);
    lat.step_serial();
    let rho = lat.density();
    let speed = lat.speed();
    assert_eq!(rho.len(), 32 * 16);
    assert_eq!(speed.len(), 32 * 16);
    // Uniform inflow: density 1, speed u0 everywhere.
    assert!(rho.iter().all(|&r| (r - 1.0).abs() < 1e-5));
    assert!(speed.iter().all(|&s| (s - cfg.u0 as f32).abs() < 1e-5));
    assert!(!lat.is_solid(3, 3));
}
