//! Slab-decomposed LBM over a `minimpi` communicator.

use crate::config::Config;
use crate::lattice::{Edge, Lattice};
use minimpi::{Comm, Result as MpiResult};

/// Halo-exchange tag namespace (user tags; one per direction per purpose).
const TAG_F_UP: u32 = 0x4C42_0001; // post-collision rows moving upward
const TAG_F_DOWN: u32 = 0x4C42_0002;
const TAG_V_UP: u32 = 0x4C42_0003; // velocity rows for vorticity stencils
const TAG_V_DOWN: u32 = 0x4C42_0004;

/// The paper's simulation-side decomposition: "the simulation application
/// splits the data into slices … each rank only needs to communicate with
/// two other ranks at most, the neighbors with data directly above and
/// below".
pub struct DistributedLbm {
    lattice: Lattice,
    rank: usize,
    nprocs: usize,
}

impl DistributedLbm {
    /// Create the slab for `comm.rank()` of a balanced slice decomposition
    /// over `comm.size()` ranks.
    pub fn new<F: Fn(usize, usize) -> bool + ?Sized>(
        cfg: Config,
        comm: &Comm,
        barrier: &F,
    ) -> Self {
        let nprocs = comm.size();
        let rank = comm.rank();
        let (y0, rows) = split_rows(cfg.ny, nprocs, rank);
        DistributedLbm { lattice: Lattice::new(cfg, y0, rows, barrier), rank, nprocs }
    }

    /// The underlying slab.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Global row range `(y0, rows)` of this rank's slab.
    pub fn slab(&self) -> (usize, usize) {
        (self.lattice.y0(), self.lattice.rows())
    }

    /// Advance one time step: collide, exchange halo rows with the (at most
    /// two) neighbors, stream.
    pub fn step(&mut self, comm: &Comm) -> MpiResult<()> {
        self.lattice.collide();
        let below = self.rank.checked_sub(1);
        let above = if self.rank + 1 < self.nprocs { Some(self.rank + 1) } else { None };

        // Send both edges first (buffered), then receive: no deadlock.
        if let Some(b) = below {
            comm.send(b, TAG_F_DOWN, &self.lattice.edge_row(Edge::Below))?;
        }
        if let Some(a) = above {
            comm.send(a, TAG_F_UP, &self.lattice.edge_row(Edge::Above))?;
        }
        match below {
            Some(b) => {
                let ghost: Vec<f64> = comm.recv_vec(b, TAG_F_UP)?;
                self.lattice.set_ghost(Edge::Below, &ghost);
            }
            None => self.lattice.set_ghost_boundary(Edge::Below),
        }
        match above {
            Some(a) => {
                let ghost: Vec<f64> = comm.recv_vec(a, TAG_F_DOWN)?;
                self.lattice.set_ghost(Edge::Above, &ghost);
            }
            None => self.lattice.set_ghost_boundary(Edge::Above),
        }
        self.lattice.stream();
        Ok(())
    }

    /// Vorticity of this slab, with velocity halos exchanged so the stencil
    /// matches the serial solver exactly.
    pub fn vorticity(&self, comm: &Comm) -> MpiResult<Vec<f32>> {
        let below = self.rank.checked_sub(1);
        let above = if self.rank + 1 < self.nprocs { Some(self.rank + 1) } else { None };
        let pack = |row: Vec<(f64, f64)>| -> Vec<f64> {
            row.into_iter().flat_map(|(a, b)| [a, b]).collect()
        };
        let unpack = |flat: Vec<f64>| -> Vec<(f64, f64)> {
            flat.chunks_exact(2).map(|c| (c[0], c[1])).collect()
        };
        if let Some(b) = below {
            comm.send(b, TAG_V_DOWN, &pack(self.lattice.velocity_row(0)))?;
        }
        if let Some(a) = above {
            comm.send(a, TAG_V_UP, &pack(self.lattice.velocity_row(self.lattice.rows() - 1)))?;
        }
        let ghost_below = match below {
            Some(b) => Some(unpack(comm.recv_vec(b, TAG_V_UP)?)),
            None => None,
        };
        let ghost_above = match above {
            Some(a) => Some(unpack(comm.recv_vec(a, TAG_V_DOWN)?)),
            None => None,
        };
        Ok(self.lattice.vorticity(ghost_below.as_deref(), ghost_above.as_deref()))
    }
}

/// Balanced row split (first `ny % n` ranks get one extra row).
pub fn split_rows(ny: usize, nprocs: usize, rank: usize) -> (usize, usize) {
    let base = ny / nprocs;
    let extra = ny % nprocs;
    let rows = base + usize::from(rank < extra);
    let y0 = rank * base + rank.min(extra);
    (y0, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rows_covers_domain() {
        for ny in [7usize, 32, 100] {
            for n in [1usize, 3, 7] {
                let mut next = 0;
                for r in 0..n {
                    let (y0, rows) = split_rows(ny, n, r);
                    assert_eq!(y0, next);
                    next += rows;
                }
                assert_eq!(next, ny);
            }
        }
    }
}
