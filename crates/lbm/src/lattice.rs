//! One rank's slab of the LBM domain.

use crate::config::Config;
use crate::d2q9::{equilibrium, E, OPP};

/// Which slab edge a halo operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// The row below the slab (global y = y0 - 1).
    Below,
    /// The row above the slab (global y = y0 + rows).
    Above,
}

/// A horizontal slab of the global lattice: `rows` interior rows starting at
/// global row `y0`, plus one ghost row on each side. A lattice spanning the
/// whole domain (`y0 = 0`, `rows = ny`) is the serial reference solver.
pub struct Lattice {
    cfg: Config,
    y0: usize,
    rows: usize,
    /// Distributions: `f[d * stride + (y + 1) * nx + x]`, y ∈ -1..=rows.
    f: Vec<f64>,
    /// Streaming scratch buffer.
    tmp: Vec<f64>,
    /// Solid mask over interior + ghost rows.
    solid: Vec<bool>,
}

impl Lattice {
    /// Create a slab initialized to uniform inflow equilibrium.
    pub fn new<F: Fn(usize, usize) -> bool + ?Sized>(
        cfg: Config,
        y0: usize,
        rows: usize,
        barrier: &F,
    ) -> Self {
        assert!(rows >= 1, "a slab needs at least one interior row");
        assert!(y0 + rows <= cfg.ny, "slab exceeds the domain");
        let nx = cfg.nx;
        let cells = nx * (rows + 2);
        let mut f = vec![0f64; 9 * cells];
        for d in 0..9 {
            let feq = equilibrium(d, 1.0, cfg.u0, 0.0);
            f[d * cells..(d + 1) * cells].fill(feq);
        }
        let mut solid = vec![false; cells];
        for ly in 0..rows + 2 {
            // Ghost rows take the barrier mask of their global row when it
            // exists (so bounce-back across slab edges matches the serial
            // solver); out-of-domain ghosts stay fluid.
            let gy = (y0 + ly).checked_sub(1);
            if let Some(gy) = gy {
                if gy < cfg.ny {
                    for x in 0..nx {
                        solid[ly * nx + x] = barrier(x, gy);
                    }
                }
            }
        }
        Lattice { cfg, y0, rows, tmp: f.clone(), f, solid }
    }

    /// Simulation configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Global row of the first interior row.
    pub fn y0(&self) -> usize {
        self.y0
    }

    /// Number of interior rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn cells(&self) -> usize {
        self.cfg.nx * (self.rows + 2)
    }

    #[inline]
    fn idx(&self, d: usize, x: usize, ly: i64) -> usize {
        d * self.cells() + ((ly + 1) as usize) * self.cfg.nx + x
    }

    /// Density and velocity at interior cell `(x, ly)` (slab-local row).
    pub fn macroscopic(&self, x: usize, ly: usize) -> (f64, f64, f64) {
        if self.solid[(ly + 1) * self.cfg.nx + x] {
            return (1.0, 0.0, 0.0);
        }
        let mut rho = 0.0;
        let mut ux = 0.0;
        let mut uy = 0.0;
        for (d, e) in E.iter().enumerate() {
            let v = self.f[self.idx(d, x, ly as i64)];
            rho += v;
            ux += e[0] as f64 * v;
            uy += e[1] as f64 * v;
        }
        if rho > 0.0 {
            ux /= rho;
            uy /= rho;
        }
        (rho, ux, uy)
    }

    /// BGK collision on all interior fluid cells.
    pub fn collide(&mut self) {
        let nx = self.cfg.nx;
        let omega = self.cfg.omega;
        for ly in 0..self.rows {
            for x in 0..nx {
                if self.solid[(ly + 1) * nx + x] {
                    continue;
                }
                let (rho, ux, uy) = self.macroscopic(x, ly);
                for d in 0..9 {
                    let i = self.idx(d, x, ly as i64);
                    let feq = equilibrium(d, rho, ux, uy);
                    self.f[i] += omega * (feq - self.f[i]);
                }
            }
        }
    }

    /// Post-collision distributions of an interior edge row, packed as
    /// `[d][x]` (length `9 * nx`) — the halo payload for a neighbor.
    pub fn edge_row(&self, edge: Edge) -> Vec<f64> {
        let ly = match edge {
            Edge::Below => 0i64,
            Edge::Above => self.rows as i64 - 1,
        };
        let nx = self.cfg.nx;
        let mut out = Vec::with_capacity(9 * nx);
        for d in 0..9 {
            for x in 0..nx {
                out.push(self.f[self.idx(d, x, ly)]);
            }
        }
        out
    }

    /// Install a neighbor's post-collision edge row into a ghost row.
    ///
    /// # Panics
    /// Panics when the payload length is not `9 * nx`.
    pub fn set_ghost(&mut self, edge: Edge, data: &[f64]) {
        let nx = self.cfg.nx;
        assert_eq!(data.len(), 9 * nx, "ghost payload must be 9*nx values");
        let ly = match edge {
            Edge::Below => -1i64,
            Edge::Above => self.rows as i64,
        };
        for d in 0..9 {
            for x in 0..nx {
                let i = self.idx(d, x, ly);
                self.f[i] = data[d * nx + x];
            }
        }
    }

    /// Fill a ghost row with inflow equilibrium (used at global boundaries,
    /// where the paper keeps edge cells at fixed values).
    pub fn set_ghost_boundary(&mut self, edge: Edge) {
        let nx = self.cfg.nx;
        let ly = match edge {
            Edge::Below => -1i64,
            Edge::Above => self.rows as i64,
        };
        for d in 0..9 {
            let feq = equilibrium(d, 1.0, self.cfg.u0, 0.0);
            for x in 0..nx {
                let i = self.idx(d, x, ly);
                self.f[i] = feq;
            }
        }
    }

    /// Streaming with half-way bounce-back, then fixed-value boundaries.
    ///
    /// Pull scheme: each interior cell takes direction `d` from its upstream
    /// neighbor; if the upstream cell is solid, the opposite distribution of
    /// the cell itself is taken instead (bounce-back). After streaming, the
    /// domain edge cells (x = 0, x = nx−1, and the global top/bottom rows)
    /// are reset to inflow equilibrium.
    pub fn stream(&mut self) {
        let nx = self.cfg.nx;
        for d in 0..9 {
            let (ex, ey) = (E[d][0] as i64, E[d][1] as i64);
            for ly in 0..self.rows as i64 {
                for x in 0..nx {
                    let dst = self.idx(d, x, ly);
                    let sx = x as i64 - ex;
                    let sy = ly - ey;
                    self.tmp[dst] = if sx < 0 || sx >= nx as i64 {
                        // Upstream outside the x extent: inflow equilibrium.
                        equilibrium(d, 1.0, self.cfg.u0, 0.0)
                    } else if self.solid[((sy + 1) as usize) * nx + sx as usize] {
                        // Bounce back off the solid upstream cell.
                        self.f[self.idx(OPP[d], x, ly)]
                    } else {
                        self.f[self.idx(d, sx as usize, sy)]
                    };
                }
            }
        }
        // Copy streamed interior rows back (ghosts keep their old content;
        // they are refreshed before the next stream anyway).
        let cells = self.cells();
        for d in 0..9 {
            let base = d * cells + nx;
            self.f[base..base + nx * self.rows]
                .copy_from_slice(&self.tmp[base..base + nx * self.rows]);
        }
        self.apply_fixed_edges();
    }

    /// Reset the global domain edges to inflow equilibrium ("certain cells,
    /// including the edges, are kept at fixed values").
    fn apply_fixed_edges(&mut self) {
        let nx = self.cfg.nx;
        let fix_cell = |this: &mut Self, x: usize, ly: i64| {
            for d in 0..9 {
                let i = this.idx(d, x, ly);
                this.f[i] = equilibrium(d, 1.0, this.cfg.u0, 0.0);
            }
        };
        for ly in 0..self.rows as i64 {
            fix_cell(self, 0, ly);
            fix_cell(self, nx - 1, ly);
        }
        if self.y0 == 0 {
            for x in 0..nx {
                fix_cell(self, x, 0);
            }
        }
        if self.y0 + self.rows == self.cfg.ny {
            for x in 0..nx {
                fix_cell(self, x, self.rows as i64 - 1);
            }
        }
    }

    /// One serial time step: collide, refresh ghosts from boundary
    /// conditions, stream. Only meaningful when the slab covers the whole
    /// domain (otherwise use [`crate::DistributedLbm`]).
    pub fn step_serial(&mut self) {
        self.collide();
        self.set_ghost_boundary(Edge::Below);
        self.set_ghost_boundary(Edge::Above);
        self.stream();
    }

    /// Density of the slab interior as `f32` (another of the paper's
    /// streamable variables: "many other variables (e.g. velocity, density,
    /// etc.) … could also be streamed and rendered").
    pub fn density(&self) -> Vec<f32> {
        (0..self.rows)
            .flat_map(|ly| (0..self.cfg.nx).map(move |x| (x, ly)))
            .map(|(x, ly)| self.macroscopic(x, ly).0 as f32)
            .collect()
    }

    /// Flow speed |u| of the slab interior as `f32`.
    pub fn speed(&self) -> Vec<f32> {
        (0..self.rows)
            .flat_map(|ly| (0..self.cfg.nx).map(move |x| (x, ly)))
            .map(|(x, ly)| {
                let (_, ux, uy) = self.macroscopic(x, ly);
                ((ux * ux + uy * uy).sqrt()) as f32
            })
            .collect()
    }

    /// Whether the interior cell at `(x, ly)` is solid.
    pub fn is_solid(&self, x: usize, ly: usize) -> bool {
        self.solid[(ly + 1) * self.cfg.nx + x]
    }

    /// Velocity of every cell of interior row `ly`, as `(ux, uy)` pairs.
    pub fn velocity_row(&self, ly: usize) -> Vec<(f64, f64)> {
        (0..self.cfg.nx)
            .map(|x| {
                let (_, ux, uy) = self.macroscopic(x, ly);
                (ux, uy)
            })
            .collect()
    }

    /// Vorticity (∂uy/∂x − ∂ux/∂y) of the slab interior as `f32` values —
    /// the 4-byte float field streamed to the analysis application.
    ///
    /// `below` / `above` supply neighbor velocity rows for central
    /// differences across slab edges; when absent (global domain edge) a
    /// one-sided difference is used, so the distributed result equals the
    /// serial one exactly.
    pub fn vorticity(
        &self,
        below: Option<&[(f64, f64)]>,
        above: Option<&[(f64, f64)]>,
    ) -> Vec<f32> {
        let nx = self.cfg.nx;
        let rows = self.rows;
        // Cache interior velocities once: O(cells) instead of O(4·cells).
        let vel: Vec<(f64, f64)> = (0..rows).flat_map(|ly| self.velocity_row(ly)).collect();
        let at = |x: usize, ly: i64| -> (f64, f64) {
            if ly < 0 {
                match below {
                    Some(row) => row[x],
                    None => vel[x], // one-sided: reuse row 0
                }
            } else if ly >= rows as i64 {
                match above {
                    Some(row) => row[x],
                    None => vel[(rows - 1) * nx + x],
                }
            } else {
                vel[ly as usize * nx + x]
            }
        };
        let mut out = Vec::with_capacity(nx * rows);
        for ly in 0..rows as i64 {
            for x in 0..nx {
                let xm = x.saturating_sub(1);
                let xp = (x + 1).min(nx - 1);
                let duy_dx = (at(xp, ly).1 - at(xm, ly).1) / (xp - xm).max(1) as f64;
                let (ym, yp) = (ly - 1, ly + 1);
                let on_edge =
                    (below.is_none() && ly == 0) || (above.is_none() && ly == rows as i64 - 1);
                let dy_span = if on_edge { 1.0 } else { 2.0 };
                let lo = if below.is_none() && ly == 0 { ly } else { ym };
                let hi = if above.is_none() && ly == rows as i64 - 1 { ly } else { yp };
                let dux_dy = (at(x, hi).0 - at(x, lo).0) / dy_span;
                out.push((duy_dx - dux_dy) as f32);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{barrier_line, barrier_none};

    #[test]
    fn uniform_flow_is_a_fixed_point() {
        let cfg = Config::wind_tunnel(32, 16);
        let none = barrier_none();
        let mut lat = Lattice::new(cfg, 0, 16, &none);
        let before: Vec<f64> = (0..16)
            .flat_map(|ly| (0..32).map(move |x| (x, ly)))
            .map(|(x, ly)| lat.macroscopic(x, ly).1)
            .collect();
        for _ in 0..10 {
            lat.step_serial();
        }
        let after: Vec<f64> = (0..16)
            .flat_map(|ly| (0..32).map(move |x| (x, ly)))
            .map(|(x, ly)| lat.macroscopic(x, ly).1)
            .collect();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() < 1e-12, "{b} vs {a}");
        }
    }

    #[test]
    fn uniform_flow_has_zero_vorticity() {
        let cfg = Config::wind_tunnel(16, 16);
        let none = barrier_none();
        let mut lat = Lattice::new(cfg, 0, 16, &none);
        lat.step_serial();
        let vort = lat.vorticity(None, None);
        assert!(vort.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn barrier_generates_vorticity_downstream() {
        let cfg = Config::wind_tunnel(64, 32);
        let bar = barrier_line(16, 12, 20);
        let mut lat = Lattice::new(cfg, 0, 32, &bar);
        for _ in 0..200 {
            lat.step_serial();
        }
        let vort = lat.vorticity(None, None);
        let max = vort.iter().fold(0f32, |m, v| m.max(v.abs()));
        assert!(max > 1e-3, "no vorticity shed: max {max}");
        // Both senses of rotation appear (a vortex street sheds pairs).
        assert!(vort.iter().any(|&v| v > 1e-4) && vort.iter().any(|&v| v < -1e-4));
    }

    #[test]
    fn simulation_stays_finite_and_positive() {
        let cfg = Config::wind_tunnel(48, 24);
        let bar = barrier_line(12, 8, 16);
        let mut lat = Lattice::new(cfg, 0, 24, &bar);
        for _ in 0..500 {
            lat.step_serial();
        }
        for ly in 0..24 {
            for x in 0..48 {
                let (rho, ux, uy) = lat.macroscopic(x, ly);
                assert!(rho.is_finite() && ux.is_finite() && uy.is_finite());
                assert!(rho > 0.2 && rho < 5.0, "density blow-up: {rho}");
            }
        }
    }

    #[test]
    fn interior_mass_is_conserved_by_collision() {
        let cfg = Config::wind_tunnel(32, 16);
        let bar = barrier_line(8, 4, 10);
        let mut lat = Lattice::new(cfg, 0, 16, &bar);
        for _ in 0..5 {
            lat.step_serial();
        }
        let mass = |l: &Lattice| -> f64 {
            let mut m = 0.0;
            for ly in 0..16 {
                for x in 0..32 {
                    m += l.macroscopic(x, ly).0;
                }
            }
            m
        };
        let m0 = mass(&lat);
        lat.collide(); // collision alone must conserve mass exactly
        let m1 = mass(&lat);
        assert!((m0 - m1).abs() < 1e-9, "{m0} vs {m1}");
    }

    #[test]
    fn edge_row_and_ghost_roundtrip() {
        let cfg = Config::wind_tunnel(8, 8);
        let none = barrier_none();
        let mut a = Lattice::new(cfg, 0, 4, &none);
        let b = Lattice::new(cfg, 4, 4, &none);
        let payload = b.edge_row(Edge::Below);
        assert_eq!(payload.len(), 9 * 8);
        a.set_ghost(Edge::Above, &payload);
        // Ghost row now mirrors b's bottom interior row.
        for d in 0..9 {
            for x in 0..8 {
                assert_eq!(a.f[a.idx(d, x, 4)], b.f[b.idx(d, x, 0)]);
            }
        }
    }

    #[test]
    #[should_panic]
    fn slab_outside_domain_rejected() {
        let cfg = Config::wind_tunnel(8, 8);
        let none = barrier_none();
        let _ = Lattice::new(cfg, 6, 4, &none);
    }
}
