//! Simulation configuration and obstacle masks.

/// Parameters of the 2-D LBM wind-tunnel simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Grid width (x extent, flow direction).
    pub nx: usize,
    /// Grid height (y extent, the decomposed axis).
    pub ny: usize,
    /// BGK relaxation parameter `omega = 1/tau` (0 < omega < 2).
    pub omega: f64,
    /// Inflow velocity in x, lattice units (keep ≤ ~0.15 for stability).
    pub u0: f64,
}

impl Config {
    /// A stable default wind tunnel at the given resolution.
    pub fn wind_tunnel(nx: usize, ny: usize) -> Self {
        assert!(nx >= 4 && ny >= 4, "grid must be at least 4x4");
        Config { nx, ny, omega: 1.7, u0: 0.1 }
    }

    /// Kinematic viscosity implied by `omega` (lattice units).
    pub fn viscosity(&self) -> f64 {
        (1.0 / self.omega - 0.5) / 3.0
    }
}

/// Obstacle mask: `true` where a cell is solid.
pub type BarrierFn = dyn Fn(usize, usize) -> bool + Send + Sync;

/// No obstacle.
pub fn barrier_none() -> Box<BarrierFn> {
    Box::new(|_, _| false)
}

/// The paper's barrier: a vertical line segment the flow must divert around
/// ("we place a barrier inside the domain that forces the fluid to flow
/// around it, creating more turbulent flow patterns"). Placed at `x`,
/// spanning rows `y0..=y1`.
pub fn barrier_line(x: usize, y0: usize, y1: usize) -> Box<BarrierFn> {
    Box::new(move |cx, cy| cx == x && (y0..=y1).contains(&cy))
}

/// A solid disc obstacle (the classic cylinder-in-crossflow benchmark).
pub fn barrier_circle(cx: usize, cy: usize, radius: usize) -> Box<BarrierFn> {
    let r2 = (radius * radius) as i64;
    Box::new(move |x, y| {
        let dx = x as i64 - cx as i64;
        let dy = y as i64 - cy as i64;
        dx * dx + dy * dy <= r2
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viscosity_from_omega() {
        let c = Config { nx: 8, ny: 8, omega: 1.0, u0: 0.1 };
        assert!((c.viscosity() - 1.0 / 6.0).abs() < 1e-15);
        let c2 = Config { omega: 2.0, ..c };
        assert!(c2.viscosity().abs() < 1e-15);
    }

    #[test]
    fn barrier_line_mask() {
        let b = barrier_line(5, 2, 4);
        assert!(b(5, 2) && b(5, 3) && b(5, 4));
        assert!(!b(5, 1) && !b(5, 5) && !b(4, 3));
        assert!(!barrier_none()(0, 0));
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        Config::wind_tunnel(2, 8);
    }
}
