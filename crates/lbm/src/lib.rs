//! # ddr-lbm — distributed 2-D Lattice-Boltzmann fluid solver
//!
//! The paper's second use case runs "a simple Lattice Boltzmann method (LBM)
//! for computing fluid flows in a two-dimensional space": density and
//! velocity on a regular grid of floats, a barrier inside the domain forcing
//! turbulent flow, fixed edge cells, and a **slice decomposition** so each
//! rank exchanges halo rows with at most two neighbors per iteration.
//!
//! This crate implements that simulation with the standard **D2Q9 BGK**
//! model:
//!
//! * [`Config`] — grid size, relaxation, inflow velocity,
//! * [`barrier_line`] / [`barrier_none`] — the obstacle mask (the paper
//!   places a line barrier that sheds a vortex street),
//! * [`Lattice`] — one rank's slab (with ghost rows) supporting
//!   collide / halo-exchange / stream steps; a single lattice covering the
//!   whole domain is the serial reference,
//! * [`DistributedLbm`] — the slab-decomposed solver over a
//!   [`minimpi::Comm`], bit-identical to the serial solver,
//! * vorticity extraction ([`Lattice::vorticity`]) — the "variable of
//!   interest" rendered by the paper's analysis application.

#![warn(missing_docs)]

mod config;
mod d2q9;
mod dist;
mod lattice;

pub use config::{barrier_circle, barrier_line, barrier_none, BarrierFn, Config};
pub use d2q9::{E, OPP, W};
pub use dist::{split_rows, DistributedLbm};
pub use lattice::{Edge, Lattice};
