//! D2Q9 lattice constants.

/// Discrete velocity set: direction `d` moves by `E[d] = [ex, ey]` per step.
/// Order: rest, the four axis directions, then the four diagonals.
pub const E: [[i32; 2]; 9] =
    [[0, 0], [1, 0], [0, 1], [-1, 0], [0, -1], [1, 1], [-1, 1], [-1, -1], [1, -1]];

/// Lattice weights for each direction (sum to 1).
pub const W: [f64; 9] = [
    4.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 9.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

/// Opposite direction of each direction (for bounce-back).
pub const OPP: [usize; 9] = [0, 3, 4, 1, 2, 7, 8, 5, 6];

/// BGK equilibrium distribution for direction `d` at density `rho` and
/// velocity `(ux, uy)` (second-order expansion, lattice units, c_s² = 1/3).
#[inline]
pub fn equilibrium(d: usize, rho: f64, ux: f64, uy: f64) -> f64 {
    let eu = E[d][0] as f64 * ux + E[d][1] as f64 * uy;
    let usq = ux * ux + uy * uy;
    W[d] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let s: f64 = W.iter().sum();
        assert!((s - 1.0).abs() < 1e-15);
    }

    #[test]
    fn opposites_are_involutive_and_reverse_velocity() {
        for d in 0..9 {
            assert_eq!(OPP[OPP[d]], d);
            assert_eq!(E[OPP[d]][0], -E[d][0]);
            assert_eq!(E[OPP[d]][1], -E[d][1]);
        }
    }

    #[test]
    fn equilibrium_moments_match_inputs() {
        // Zeroth moment = rho, first moment = rho * u.
        let (rho, ux, uy) = (1.2, 0.08, -0.03);
        let f: Vec<f64> = (0..9).map(|d| equilibrium(d, rho, ux, uy)).collect();
        let m0: f64 = f.iter().sum();
        let mx: f64 = f.iter().enumerate().map(|(d, v)| E[d][0] as f64 * v).sum();
        let my: f64 = f.iter().enumerate().map(|(d, v)| E[d][1] as f64 * v).sum();
        assert!((m0 - rho).abs() < 1e-12);
        assert!((mx - rho * ux).abs() < 1e-12);
        assert!((my - rho * uy).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_at_rest_equals_weights() {
        for (d, &w) in W.iter().enumerate() {
            assert!((equilibrium(d, 1.0, 0.0, 0.0) - w).abs() < 1e-15);
        }
    }
}
