//! Cartesian process topologies (the `MPI_Cart_*` family).
//!
//! Block and brick decompositions name peers by grid coordinates, not raw
//! ranks; this module provides that mapping: build a [`CartComm`] over a
//! communicator, then translate between ranks and coordinates and find
//! shifted neighbors (the halo-exchange partner query).

use crate::comm::Comm;
use crate::error::{Error, Result};

/// A communicator arranged as an N-dimensional (≤ 3) grid of processes.
///
/// Rank 0 sits at coordinate (0, 0, 0); coordinate 0 varies fastest (the
/// same convention as DDR's memory layout).
pub struct CartComm {
    comm: Comm,
    dims: [usize; 3],
    ndims: usize,
    periodic: [bool; 3],
}

impl CartComm {
    /// Arrange `comm` as a grid with the given extents (their product must
    /// equal the communicator size). `periodic[d]` wraps neighbors on axis
    /// `d`.
    pub fn new(comm: Comm, dims: &[usize], periodic: &[bool]) -> Result<Self> {
        if dims.is_empty() || dims.len() > 3 || periodic.len() != dims.len() {
            return Err(Error::CollectiveMismatch {
                detail: format!("cartesian topology supports 1-3 dims, got {}", dims.len()),
            });
        }
        let total: usize = dims.iter().product();
        if total != comm.size() {
            return Err(Error::CollectiveMismatch {
                detail: format!(
                    "grid {dims:?} holds {total} ranks but communicator has {}",
                    comm.size()
                ),
            });
        }
        let mut d3 = [1usize; 3];
        let mut p3 = [false; 3];
        d3[..dims.len()].copy_from_slice(dims);
        p3[..periodic.len()].copy_from_slice(periodic);
        Ok(CartComm { comm, dims: d3, ndims: dims.len(), periodic: p3 })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Number of meaningful dimensions.
    pub fn ndims(&self) -> usize {
        self.ndims
    }

    /// Grid extents (trailing dims are 1).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> [usize; 3] {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of an arbitrary rank.
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        [
            rank % self.dims[0],
            (rank / self.dims[0]) % self.dims[1],
            rank / (self.dims[0] * self.dims[1]),
        ]
    }

    /// Rank at the given coordinates, or `None` when outside the grid.
    pub fn rank_of(&self, coords: [usize; 3]) -> Option<usize> {
        if coords.iter().zip(self.dims.iter()).any(|(&c, &d)| c >= d) {
            return None;
        }
        Some(coords[0] + self.dims[0] * (coords[1] + self.dims[1] * coords[2]))
    }

    /// The ranks `displacement` steps down/up axis `axis` from this rank:
    /// `(source, dest)` as in `MPI_Cart_shift`. `None` entries fall off a
    /// non-periodic boundary.
    pub fn shift(&self, axis: usize, displacement: i64) -> (Option<usize>, Option<usize>) {
        assert!(axis < self.ndims, "axis {axis} out of {} dims", self.ndims);
        let me = self.coords();
        let step = |dir: i64| -> Option<usize> {
            let extent = self.dims[axis] as i64;
            let raw = me[axis] as i64 + dir * displacement;
            let wrapped = if self.periodic[axis] {
                raw.rem_euclid(extent)
            } else if (0..extent).contains(&raw) {
                raw
            } else {
                return None;
            };
            let mut c = me;
            c[axis] = wrapped as usize;
            self.rank_of(c)
        };
        (step(-1), step(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn coords_roundtrip_2d() {
        Universe::run(6, |comm| {
            let cart = CartComm::new(comm.duplicate().unwrap(), &[3, 2], &[false, false]).unwrap();
            let c = cart.coords();
            assert_eq!(cart.rank_of(c), Some(comm.rank()));
            assert_eq!(c[0], comm.rank() % 3);
            assert_eq!(c[1], comm.rank() / 3);
            assert_eq!(cart.rank_of([3, 0, 0]), None);
        });
    }

    #[test]
    fn shift_non_periodic_drops_at_edges() {
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm.duplicate().unwrap(), &[4], &[false]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            let r = comm.rank();
            assert_eq!(src, r.checked_sub(1));
            assert_eq!(dst, if r + 1 < 4 { Some(r + 1) } else { None });
        });
    }

    #[test]
    fn shift_periodic_wraps() {
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm.duplicate().unwrap(), &[4], &[true]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            let r = comm.rank();
            assert_eq!(src, Some((r + 3) % 4));
            assert_eq!(dst, Some((r + 1) % 4));
        });
    }

    #[test]
    fn halo_ring_exchange_through_topology() {
        // Periodic 1-D ring: send to +1 neighbor, value rotates.
        let out = Universe::run(5, |comm| {
            let rank = comm.rank();
            let cart = CartComm::new(comm.duplicate().unwrap(), &[5], &[true]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            cart.comm().send(dst.unwrap(), 0, &[rank as u32]).unwrap();
            cart.comm().recv_vec::<u32>(src.unwrap(), 0).unwrap()[0]
        });
        assert_eq!(out, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn bad_grids_rejected() {
        Universe::run(4, |comm| {
            assert!(CartComm::new(comm.duplicate().unwrap(), &[3], &[false]).is_err());
            assert!(CartComm::new(comm.duplicate().unwrap(), &[], &[]).is_err());
            assert!(
                CartComm::new(comm.duplicate().unwrap(), &[2, 2], &[false]).is_err(),
                "periodic length mismatch"
            );
        });
    }

    #[test]
    fn grid_3d_coordinates() {
        Universe::run(8, |comm| {
            let cart = CartComm::new(comm.duplicate().unwrap(), &[2, 2, 2], &[false, false, false])
                .unwrap();
            let c = cart.coords();
            let r = comm.rank();
            assert_eq!(c, [r % 2, (r / 2) % 2, r / 4]);
            assert_eq!(cart.dims(), [2, 2, 2]);
            assert_eq!(cart.ndims(), 3);
        });
    }
}
