//! The zero-copy data-movement plane.
//!
//! minimpi ranks are threads in one address space, so a non-contiguous
//! message does not need MPI's pack → send → unpack staging: the *receiver*
//! can copy each contiguous run straight out of the sender's source buffer
//! into its own destination buffer — one `copy_from_slice` per run, zero
//! intermediate allocations. This module provides the three pieces that make
//! that safe and fast:
//!
//! * [`ZcCell`] / [`ZcHandle`] — a rendezvous protocol for lending a borrowed
//!   send buffer across threads. The sender deposits a handle (raw pointer +
//!   datatype + completion cell) and **blocks at the end of the collective**
//!   until every lent region was either copied (`Done`) or provably never
//!   will be (`Revoked`). The receiver must *claim* a region before touching
//!   it, so a sender that gives up (peer death, watchdog) can revoke safely:
//!   either the claim wins and the sender waits out the (bounded) memcpy, or
//!   the revoke wins and the receiver never dereferences the pointer.
//! * [`BufferPool`] — reusable staging buffers for the paths that still must
//!   pack (fault-injected routes, explicit opt-out), with a high-water-mark
//!   trim so a one-off huge exchange does not pin memory forever.
//! * [`CopyPool`] — a small lazily-spawned worker pool that fans the per-peer
//!   run copies of large exchanges out across cores.

use crate::datatype::Datatype;
use crate::flow::FlowLedger;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Rendezvous cells
// ---------------------------------------------------------------------------

const PENDING: u8 = 0;
const COPYING: u8 = 1;
const DONE: u8 = 2;
const REVOKED: u8 = 3;

/// Completion state of one lent region, shared between the sending and
/// receiving rank. State machine: `Pending → Copying → Done` (receiver) or
/// `Pending → Revoked` (sender giving up). The claim CAS makes the two
/// races — revoke-vs-claim and wait-vs-finish — well ordered.
#[derive(Debug, Default)]
pub(crate) struct ZcCell {
    state: AtomicU8,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Outcome of a sender's wait on a lent region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ZcWait {
    /// The receiver copied the region.
    Done,
    /// The sender revoked the loan; the pointer was never (and will never
    /// be) dereferenced.
    Revoked,
}

impl ZcCell {
    /// Receiver side: claim the region for copying. Returns `false` if the
    /// sender already revoked it (the payload is lost).
    pub fn try_claim(&self) -> bool {
        self.state.compare_exchange(PENDING, COPYING, Ordering::Acquire, Ordering::Acquire).is_ok()
    }

    /// Receiver side: mark the copy complete and wake the sender.
    pub fn finish(&self) {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        self.state.store(DONE, Ordering::Release);
        self.cv.notify_all();
    }

    /// Sender side: block until the region is copied, revoking the loan if
    /// `deadline` passes or `abort()` reports the receiver can no longer
    /// claim it. Never returns while the receiver might still dereference
    /// the lent pointer — that is the zero-copy soundness invariant.
    pub fn wait(&self, deadline: Instant, abort: impl Fn() -> bool) -> ZcWait {
        loop {
            match self.state.load(Ordering::Acquire) {
                DONE => return ZcWait::Done,
                // A third party revoked the loan (the queued envelope was
                // discarded — epoch fence, aborted exchange, teardown).
                REVOKED => return ZcWait::Revoked,
                // Expired or aborted: revoke. Losing the CAS race means the
                // receiver just claimed it — its memcpy is in flight and
                // bounded, so fall through, loop, and wait for Done.
                PENDING
                    if (abort() || Instant::now() >= deadline)
                        && self
                            .state
                            .compare_exchange(PENDING, REVOKED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok() =>
                {
                    return ZcWait::Revoked;
                }
                _ => {}
            }
            let guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            if self.state.load(Ordering::Acquire) != DONE {
                // Re-check under the lock so a finish() cannot slot between
                // the state load and the wait. Bounded wait keeps the abort
                // condition live even if no notification ever comes.
                let _ = self
                    .cv
                    .wait_timeout(guard, Duration::from_millis(25))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Third party (neither endpoint actively copying): revoke the loan if it
    /// was never claimed, waking the blocked sender. Used when a queued
    /// `Shared` envelope is discarded — epoch fencing, an aborted exchange
    /// draining its round, mailbox teardown — so the sender observes
    /// `Revoked` promptly instead of waiting out the watchdog. A loan already
    /// being copied (or finished) is left alone.
    pub fn revoke_if_pending(&self) -> bool {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let revoked = self
            .state
            .compare_exchange(PENDING, REVOKED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if revoked {
            self.cv.notify_all();
        }
        revoked
    }

    /// Whether the loan reached a terminal state (`Done` or `Revoked`) — i.e.
    /// its sender is no longer (or never was) on the hook. Used by the
    /// checker's finalize-time loan-leak scan.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.load(Ordering::Acquire), DONE | REVOKED)
    }
}

/// A lent region travelling through a mailbox: the sender's whole send
/// buffer (as raw parts) plus the datatype selecting the message's bytes
/// within it, and the completion cell the sender is waiting on.
pub(crate) struct ZcHandle {
    ptr: *const u8,
    len: usize,
    /// Selection of the message within the lent buffer.
    pub dt: Datatype,
    /// Completion cell shared with the sender.
    pub cell: Arc<ZcCell>,
}

// SAFETY: the raw pointer crosses threads by design. The sender guarantees
// the pointed-to buffer outlives the rendezvous (it blocks in ZcCell::wait
// until Done/Revoked before the borrow ends), and the receiver only reads
// it between a successful try_claim() and finish().
unsafe impl Send for ZcHandle {}

impl ZcHandle {
    /// Lend `buf` with selection `dt`, reporting completion through `cell`.
    pub fn new(buf: &[u8], dt: Datatype, cell: Arc<ZcCell>) -> Self {
        ZcHandle { ptr: buf.as_ptr(), len: buf.len(), dt, cell }
    }

    /// The lent buffer.
    ///
    /// # Safety
    /// Callable only between a successful [`ZcCell::try_claim`] and the
    /// matching [`ZcCell::finish`], while the sender is still blocked in
    /// [`ZcCell::wait`] — that is what keeps the borrow alive.
    pub unsafe fn src_slice(&self) -> &[u8] {
        // SAFETY: per the function contract the sender's buffer is alive and
        // not mutated for the duration of the claim.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Number of payload bytes this handle carries.
    pub fn packed_len(&self) -> usize {
        self.dt.packed_len()
    }
}

/// Dropping a handle that was never claimed revokes the loan. This is what
/// makes "discard the envelope" a complete operation: any path that throws a
/// queued `Shared` message away (epoch sweep, aborted exchange, universe
/// teardown) automatically releases the sender blocked on the cell.
impl Drop for ZcHandle {
    fn drop(&mut self) {
        self.cell.revoke_if_pending();
    }
}

// ---------------------------------------------------------------------------
// Staging-buffer pool
// ---------------------------------------------------------------------------

/// Snapshot of [`BufferPool`] occupancy and traffic, for tests, benches and
/// diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers currently parked in the free list.
    pub free_buffers: usize,
    /// Bytes of capacity currently parked in the free list.
    pub free_bytes: usize,
    /// Largest `free_bytes` ever observed.
    pub high_water_bytes: usize,
    /// Total acquisitions served.
    pub acquires: u64,
    /// Acquisitions served by reuse instead of allocation.
    pub reuse_hits: u64,
    /// Bytes of capacity released back to the allocator by the trim policy.
    pub trimmed_bytes: u64,
}

#[derive(Default)]
struct PoolInner {
    /// Free buffers, kept sorted by capacity (ascending) for best-fit.
    free: Vec<Vec<u8>>,
    free_bytes: usize,
    /// Largest single request seen in the current / previous demand epoch.
    epoch_demand: usize,
    prev_demand: usize,
    epoch_acquires: u32,
    stats: PoolStats,
}

/// How many acquisitions one demand epoch spans. Two epochs after a demand
/// spike ends, the high-water mark has fully decayed and the trim policy
/// releases the excess capacity.
const POOL_EPOCH: u32 = 64;
/// Retained capacity is bounded by `POOL_SLACK ×` the recent peak request
/// (enough to stage every concurrent round of a typical exchange).
const POOL_SLACK: usize = 8;
/// Capacity floor below which the pool never bothers trimming.
const POOL_MIN_RETAIN: usize = 64 * 1024;
/// Hard cap on parked buffer count.
const POOL_MAX_BUFFERS: usize = 64;

/// A shared pool of staging buffers for the pack/unpack (legacy) path.
///
/// `acquire` hands out a cleared `Vec<u8>` with at least the requested
/// capacity; `release` parks it for reuse. The release path trims the free
/// list against a decaying high-water mark of recent demand, so pool memory
/// stays bounded by current traffic instead of the historical maximum
/// (the fix for `pack_into`-era unbounded staging growth).
#[derive(Default)]
pub(crate) struct BufferPool {
    inner: Mutex<PoolInner>,
    /// Memory governor: parked free-list capacity is metered against the
    /// universe budget, and retention past it is denied (buffers are freed
    /// instead — the trim stage of the degradation ladder). `None` only in
    /// bare unit tests.
    flow: Option<Arc<FlowLedger>>,
}

impl BufferPool {
    /// A pool whose retained capacity is metered by `flow`.
    pub fn with_flow(flow: Arc<FlowLedger>) -> Self {
        BufferPool { flow: Some(flow), ..Default::default() }
    }

    fn lock(&self) -> MutexGuard<'_, PoolInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get a cleared buffer with capacity at least `cap` (best fit, else a
    /// fresh allocation).
    pub fn acquire(&self, cap: usize) -> Vec<u8> {
        let mut inner = self.lock();
        inner.stats.acquires += 1;
        inner.epoch_acquires += 1;
        inner.epoch_demand = inner.epoch_demand.max(cap);
        if inner.epoch_acquires >= POOL_EPOCH {
            inner.prev_demand = inner.epoch_demand;
            inner.epoch_demand = 0;
            inner.epoch_acquires = 0;
        }
        // Best fit: first free buffer (sorted ascending) that can hold `cap`.
        if let Some(i) = inner.free.iter().position(|b| b.capacity() >= cap) {
            let mut buf = inner.free.remove(i);
            inner.free_bytes -= buf.capacity();
            inner.stats.reuse_hits += 1;
            buf.clear();
            drop(inner);
            // The buffer leaves the free list: return its metered capacity
            // to the governor (a staged deposit will re-meter the payload).
            if let Some(flow) = &self.flow {
                flow.mem_sub(buf.capacity());
            }
            return buf;
        }
        drop(inner);
        // A checkout the free list could not serve: fresh allocation.
        ddrtrace::instant_arg("minimpi", "pool_alloc", "bytes", cap as i64);
        Vec::with_capacity(cap)
    }

    /// Return a buffer to the pool (content is discarded). Oversized
    /// capacity beyond the recent-demand watermark is released immediately.
    pub fn release(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let cap = buf.capacity();
        // Governor gate on retention: parked capacity counts against the
        // budget; a denial frees the buffer to the allocator instead.
        if let Some(flow) = &self.flow {
            if !flow.pool_try_retain(cap) {
                self.lock().stats.trimmed_bytes += cap as u64;
                ddrtrace::instant_arg("minimpi", "pool_trim", "bytes", cap as i64);
                return;
            }
        }
        let mut inner = self.lock();
        let at = inner.free.partition_point(|b| b.capacity() < cap);
        inner.free.insert(at, buf);
        inner.free_bytes += cap;
        inner.stats.high_water_bytes = inner.stats.high_water_bytes.max(inner.free_bytes);
        let bound = (inner.epoch_demand.max(inner.prev_demand) * POOL_SLACK).max(POOL_MIN_RETAIN);
        // Trim largest-first: big stale buffers are the ones that pin memory.
        let mut trimmed = 0u64;
        while inner.free_bytes > bound || inner.free.len() > POOL_MAX_BUFFERS {
            match inner.free.pop() {
                Some(b) => {
                    inner.free_bytes -= b.capacity();
                    inner.stats.trimmed_bytes += b.capacity() as u64;
                    trimmed += b.capacity() as u64;
                }
                None => break,
            }
        }
        drop(inner);
        // Capacity evicted by the demand-decay trim is no longer parked:
        // give its metered bytes back to the governor.
        if trimmed > 0 {
            if let Some(flow) = &self.flow {
                flow.mem_sub(trimmed as usize);
            }
        }
        if ddrtrace::enabled() {
            if trimmed > 0 {
                ddrtrace::instant_arg("minimpi", "pool_trim", "bytes", trimmed as i64);
            }
            ddrtrace::counter("pool_free_bytes", self.lock().free_bytes as i64);
        }
    }

    /// Current occupancy / traffic counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.lock();
        let mut s = inner.stats;
        s.free_buffers = inner.free.len();
        s.free_bytes = inner.free_bytes;
        s
    }
}

// ---------------------------------------------------------------------------
// Transport counters
// ---------------------------------------------------------------------------

/// Which wire path messages took, for tests and benches to introspect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Messages delivered by the zero-copy rendezvous.
    pub zerocopy_msgs: u64,
    /// Messages staged through pack buffers.
    pub staged_msgs: u64,
    /// Zero-copy loans that were revoked before the receiver copied them.
    pub revoked_msgs: u64,
    /// Receive-side copy batches executed on the parallel copy pool.
    pub parallel_copies: u64,
    /// Stale-epoch messages rejected by the membership fence instead of
    /// being delivered (swept at reconfiguration or caught at match time).
    pub fenced_msgs: u64,
}

/// Atomic backing store for [`TransportCounters`], kept on the world state.
#[derive(Debug, Default)]
pub(crate) struct TransportCells {
    pub zerocopy_msgs: AtomicU64,
    pub staged_msgs: AtomicU64,
    pub revoked_msgs: AtomicU64,
    pub parallel_copies: AtomicU64,
    pub fenced_msgs: AtomicU64,
}

impl TransportCells {
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            zerocopy_msgs: self.zerocopy_msgs.load(Ordering::Relaxed),
            staged_msgs: self.staged_msgs.load(Ordering::Relaxed),
            revoked_msgs: self.revoked_msgs.load(Ordering::Relaxed),
            parallel_copies: self.parallel_copies.load(Ordering::Relaxed),
            fenced_msgs: self.fenced_msgs.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel copy pool
// ---------------------------------------------------------------------------

/// Byte-run copy job: `(src_offset, dst_offset, len)` triples between two
/// raw base pointers. The submitter blocks on the latch until every job of
/// the batch finished, which keeps both borrows alive.
struct CopyJob {
    src: *const u8,
    dst: *mut u8,
    runs: Vec<(usize, usize, usize)>,
    latch: Arc<Latch>,
}

// SAFETY: jobs carry raw pointers across threads by design. The submitter
// (ZcBatch::run) guarantees src/dst outlive the batch by blocking on the
// latch, and that concurrently executing jobs write disjoint dst ranges.
unsafe impl Send for CopyJob {}

/// Countdown latch: `add` before submitting, workers `count_down`, the
/// submitter `wait`s for zero.
#[derive(Default)]
struct Latch {
    left: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn add(&self, n: usize) {
        *self.left.lock().unwrap_or_else(|e| e.into_inner()) += n;
    }

    fn count_down(&self) {
        let mut left = self.left.lock().unwrap_or_else(|e| e.into_inner());
        *left -= 1;
        if *left == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = self.left.lock().unwrap_or_else(|e| e.into_inner());
        while *left != 0 {
            left = self.cv.wait(left).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Number of helper threads. The submitting rank copies its own shard too,
/// so a batch uses at most `COPY_WORKERS + 1` cores.
const COPY_WORKERS: usize = 3;

/// Per-batch byte threshold below which fan-out is not worth the handoff.
pub(crate) const PARALLEL_COPY_MIN_BYTES: usize = 4 << 20;

/// A small process-global pool of copy workers, spawned on first use. The
/// workers are detached and spend their idle life blocked on the job
/// channel — they hold no references to any universe.
pub(crate) struct CopyPool {
    tx: Sender<CopyJob>,
}

fn worker_loop(rx: Arc<Mutex<Receiver<CopyJob>>>) {
    loop {
        let job = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { return };
        run_job(&job);
        job.latch.count_down();
    }
}

fn run_job(job: &CopyJob) {
    for &(s, d, n) in &job.runs {
        // SAFETY: the submitter keeps src/dst alive until the latch opens
        // and guarantees [d, d+n) ranges of concurrent jobs are disjoint;
        // src and dst buffers are themselves disjoint (send vs recv buffer).
        unsafe {
            std::ptr::copy_nonoverlapping(job.src.add(s), job.dst.add(d), n);
        }
    }
}

impl CopyPool {
    /// The process-global pool.
    pub fn global() -> &'static CopyPool {
        static POOL: OnceLock<CopyPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let (tx, rx) = channel::<CopyJob>();
            let rx = Arc::new(Mutex::new(rx));
            for i in 0..COPY_WORKERS {
                let rx = Arc::clone(&rx);
                // Degraded mode, not a crash: with zero workers every shard
                // runs inline on the submitting thread (run_batch falls back
                // when the channel send fails), so copies stay correct —
                // just without parallelism.
                if let Err(e) = std::thread::Builder::new()
                    .name(format!("minimpi-copy-{i}"))
                    .spawn(move || worker_loop(rx))
                {
                    eprintln!("minimpi: could not spawn copy worker {i}: {e}; copying inline");
                }
            }
            CopyPool { tx }
        })
    }

    /// Execute `shards` of run-copies between `src` and `dst` bases, using
    /// the workers for all but the first shard (which runs on the calling
    /// thread). Blocks until every shard completed.
    ///
    /// Caller contract: `src`/`dst` stay valid for the duration of the call
    /// and the dst ranges of distinct shards are pairwise disjoint.
    pub fn run_batch(&self, src: *const u8, dst: *mut u8, shards: Vec<Vec<(usize, usize, usize)>>) {
        let latch = Arc::new(Latch::default());
        let mut local: Option<CopyJob> = None;
        for (i, runs) in shards.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let job = CopyJob { src, dst, runs, latch: Arc::clone(&latch) };
            if i == 0 {
                local = Some(job);
            } else {
                latch.add(1);
                // A send only fails if every worker died (impossible: they
                // never exit while the channel is open) — run inline then.
                if let Err(e) = self.tx.send(job) {
                    run_job(&e.0);
                }
            }
        }
        if let Some(job) = local {
            run_job(&job);
        }
        latch.wait();
    }

    /// Like [`CopyPool::run_batch`], but every shard goes to the workers and
    /// the calling thread runs `local` instead of shard 0 — the shape the
    /// checksum-during-pack kernel uses: the submitter folds the hash over
    /// the source runs while the workers move the bytes. Blocks until both
    /// `local` and every shard completed. Same caller contract as
    /// `run_batch`.
    pub fn run_batch_with(
        &self,
        src: *const u8,
        dst: *mut u8,
        shards: Vec<Vec<(usize, usize, usize)>>,
        local: impl FnOnce(),
    ) {
        let latch = Arc::new(Latch::default());
        for runs in shards {
            if runs.is_empty() {
                continue;
            }
            latch.add(1);
            let job = CopyJob { src, dst, runs, latch: Arc::clone(&latch) };
            if let Err(e) = self.tx.send(job) {
                // Inline fallback (all workers dead): still count the shard
                // down, or the latch below would never open.
                run_job(&e.0);
                e.0.latch.count_down();
            }
        }
        local();
        latch.wait();
    }
}

/// Split run-copy triples into up to four byte-balanced contiguous shards
/// for [`CopyPool::run_batch`]. Contiguous chunking preserves the per-shard
/// ascending destination order (friendlier to the prefetcher than
/// round-robin).
pub(crate) fn shard_runs(pairs: Vec<(usize, usize, usize)>) -> Vec<Vec<(usize, usize, usize)>> {
    const SHARDS: usize = 4;
    let total: usize = pairs.iter().map(|&(_, _, n)| n).sum();
    let target = total.div_ceil(SHARDS).max(1);
    let mut shards: Vec<Vec<(usize, usize, usize)>> = Vec::with_capacity(SHARDS);
    let mut cur = Vec::new();
    let mut cur_bytes = 0usize;
    for run in pairs {
        cur_bytes += run.2;
        cur.push(run);
        if cur_bytes >= target && shards.len() + 1 < SHARDS {
            shards.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
    }
    if !cur.is_empty() {
        shards.push(cur);
    }
    shards
}

/// Reads `DDR_NO_ZEROCOPY`: a truthy value disables the zero-copy fast path
/// for the whole process.
pub(crate) fn zerocopy_env_default() -> bool {
    !crate::env::flag("DDR_NO_ZEROCOPY").unwrap_or(false)
}

/// Per-message byte threshold at or below which the sender stages even when
/// zero-copy is enabled: small loans cost as much in rendezvous handshakes
/// as the copy they avoid (measured breakeven at 64 KiB), so only strictly
/// larger messages loan. Default 64 KiB, overridable via `DDR_ZC_THRESHOLD`
/// (supports `K`/`M`/`G` suffixes; `0` loans everything).
pub(crate) const ZC_THRESHOLD_DEFAULT: usize = 64 << 10;

/// The process-wide threshold from the environment, used when the builder
/// did not decide explicitly.
pub(crate) fn zc_threshold_env_default() -> usize {
    crate::env::bytes_var("DDR_ZC_THRESHOLD").unwrap_or(ZC_THRESHOLD_DEFAULT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_done_path() {
        let cell = Arc::new(ZcCell::default());
        let c2 = Arc::clone(&cell);
        let h = std::thread::spawn(move || {
            assert!(c2.try_claim());
            c2.finish();
        });
        let out = cell.wait(Instant::now() + Duration::from_secs(5), || false);
        assert_eq!(out, ZcWait::Done);
        h.join().unwrap();
    }

    #[test]
    fn cell_revoke_on_timeout_blocks_claim() {
        let cell = ZcCell::default();
        let out = cell.wait(Instant::now(), || false);
        assert_eq!(out, ZcWait::Revoked);
        assert!(!cell.try_claim());
    }

    #[test]
    fn dropping_unclaimed_handle_revokes_loan() {
        let cell = Arc::new(ZcCell::default());
        let buf = vec![0u8; 16];
        let dt = Datatype::Contiguous { len_bytes: 16, offset: 0 };
        drop(ZcHandle::new(&buf, dt, Arc::clone(&cell)));
        // The loan is dead: the receiver can no longer claim it, and a
        // sender blocked in wait() observes the revocation immediately.
        assert!(!cell.try_claim());
        let out = cell.wait(Instant::now() + Duration::from_secs(5), || false);
        assert_eq!(out, ZcWait::Revoked);
    }

    #[test]
    fn dropping_claimed_handle_does_not_disturb_copy() {
        let cell = Arc::new(ZcCell::default());
        assert!(cell.try_claim());
        let buf = vec![0u8; 4];
        let dt = Datatype::Contiguous { len_bytes: 4, offset: 0 };
        drop(ZcHandle::new(&buf, dt, Arc::clone(&cell)));
        cell.finish();
        assert_eq!(cell.wait(Instant::now(), || false), ZcWait::Done);
    }

    #[test]
    fn cell_abort_revokes() {
        let cell = ZcCell::default();
        let out = cell.wait(Instant::now() + Duration::from_secs(60), || true);
        assert_eq!(out, ZcWait::Revoked);
    }

    #[test]
    fn pool_reuses_and_clears() {
        let pool = BufferPool::default();
        let mut a = pool.acquire(100);
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.release(a);
        let b = pool.acquire(50);
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.stats().reuse_hits, 1);
    }

    #[test]
    fn pool_trims_oversized_capacity_after_demand_decays() {
        let pool = BufferPool::default();
        // One huge staging buffer, then two epochs of small traffic.
        let huge = pool.acquire(32 << 20);
        pool.release(huge);
        for _ in 0..(2 * POOL_EPOCH) {
            let b = pool.acquire(1024);
            pool.release(b);
        }
        let s = pool.stats();
        assert!(
            s.free_bytes <= (1024 * POOL_SLACK).max(POOL_MIN_RETAIN),
            "pool retained {} bytes after demand decayed",
            s.free_bytes
        );
        assert!(s.trimmed_bytes >= (32 << 20) as u64);
    }

    #[test]
    fn copy_pool_runs_disjoint_shards() {
        let src: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        let mut dst = vec![0u8; 1 << 16];
        let shards: Vec<Vec<(usize, usize, usize)>> = (0..4)
            .map(|i| {
                let base = i * (1 << 14);
                vec![(base, base, 1 << 14)]
            })
            .collect();
        CopyPool::global().run_batch(src.as_ptr(), dst.as_mut_ptr(), shards);
        assert_eq!(src, dst);
    }
}
