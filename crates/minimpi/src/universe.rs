//! Launching a set of ranks.

use crate::comm::{Comm, WorldState};
use std::sync::Arc;

/// Entry point: runs an "MPI job" as `n` rank-threads inside this process.
pub struct Universe;

/// Stack size given to rank threads. Simulation kernels keep their state on
/// the heap, but deep recursion in user closures should still have room.
const RANK_STACK_BYTES: usize = 8 * 1024 * 1024;

impl Universe {
    /// Run `f` on `n` ranks, each on its own thread with a world [`Comm`].
    /// Returns the per-rank results in rank order.
    ///
    /// A panic on any rank propagates to the caller after all ranks have
    /// been joined (other ranks may first hit [`crate::Error::Timeout`] if
    /// they were waiting on the panicked rank).
    ///
    /// # Panics
    /// Panics if `n == 0` or if a rank thread cannot be spawned.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(n > 0, "Universe::run requires at least one rank");
        let world = Arc::new(WorldState::new(n));
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let world = Arc::clone(&world);
                let f = &f;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(RANK_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        let comm = Comm::world_comm(world, rank);
                        f(&comm)
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }

    /// Like [`Universe::run`] but for fallible rank bodies: returns the
    /// first error (by rank order) or all results.
    pub fn try_run<R, E, F>(n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&Comm) -> Result<R, E> + Sync,
    {
        Self::run(n, f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_ranks_and_orders_results() {
        let out = Universe::run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn try_run_propagates_errors() {
        let r: Result<Vec<()>, String> = Universe::try_run(3, |comm| {
            if comm.rank() == 1 {
                Err("boom".to_string())
            } else {
                Ok(())
            }
        });
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Universe::run(0, |_| ());
    }
}
