//! Launching a set of ranks.

use crate::comm::{default_timeout, Comm, WorldState};
use crate::elastic::SupervisorEvent;
use crate::fault::FaultPlan;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Entry point: runs an "MPI job" as `n` rank-threads inside this process.
pub struct Universe;

/// Stack size given to rank threads. Simulation kernels keep their state on
/// the heap, but deep recursion in user closures should still have room.
const RANK_STACK_BYTES: usize = 8 * 1024 * 1024;

/// Configures a universe before launch: watchdog timeout and an optional
/// deterministic [`FaultPlan`].
///
/// ```
/// use minimpi::Universe;
/// use std::time::Duration;
///
/// let sums = Universe::builder()
///     .timeout(Duration::from_secs(10))
///     .run(4, |comm| comm.allreduce(&[comm.rank() as u64], |a, b| a + b)[0]);
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UniverseBuilder {
    timeout: Option<Duration>,
    fault_plan: Option<FaultPlan>,
    check: Option<bool>,
    zerocopy: Option<bool>,
    zc_threshold: Option<usize>,
    respawn: Option<bool>,
    checksum: Option<bool>,
    retransmit_max: Option<u32>,
    retransmit_backoff: Option<Duration>,
    sched_seed: Option<u64>,
    trace: Option<PathBuf>,
    flow_credits: Option<u64>,
    flow_bytes: Option<usize>,
    mem_budget: Option<usize>,
}

impl UniverseBuilder {
    /// Watchdog timeout applied to every blocking receive. Defaults to
    /// `DDR_TIMEOUT_MS` (ms), else legacy `MINIMPI_TIMEOUT_SECS` (s),
    /// else 120 s.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Install a deterministic fault plan, replayed identically every run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enable (or force off) MPI-correctness checking: collective-matching
    /// verification and wait-for-graph deadlock detection. When unset, the
    /// `DDR_CHECK` environment variable decides (`1`/`true` = on, default
    /// off). Disabled checking costs a single `Option` branch per operation
    /// and spawns no detector thread.
    pub fn check(mut self, on: bool) -> Self {
        self.check = Some(on);
        self
    }

    /// Enable (or force off) the zero-copy exchange fast path for this
    /// universe, overriding the `DDR_NO_ZEROCOPY` environment variable.
    /// Unlike the (process-global, race-prone in parallel test runners)
    /// environment variable, this override is scoped to one universe — the
    /// differential test harness uses it to run the same exchange through
    /// both wire paths. Fault plans force the staged path regardless.
    pub fn zerocopy(mut self, on: bool) -> Self {
        self.zerocopy = Some(on);
        self
    }

    /// Per-message byte floor for zero-copy loans: messages of `bytes` or
    /// smaller are staged even when zero-copy is on, because for small
    /// payloads the rendezvous handshake costs as much as (or more than) the
    /// copy it avoids — only strictly larger messages loan. `0` loans
    /// everything. When unset, `DDR_ZC_THRESHOLD` decides (with `K`/`M`/`G`
    /// suffixes), defaulting to 64 KiB.
    pub fn zerocopy_threshold(mut self, bytes: usize) -> Self {
        self.zc_threshold = Some(bytes);
        self
    }

    /// Choose the [`crate::Comm::reconfigure`] policy: with respawn on (the
    /// default), every dead member is replaced by a fresh thread re-running
    /// the universe closure in the new epoch, so the communicator keeps its
    /// size; with respawn off, reconfigure shrinks to the survivors (still
    /// fencing the old epoch). When unset, `DDR_RESPAWN` decides
    /// (default on).
    pub fn respawn(mut self, on: bool) -> Self {
        self.respawn = Some(on);
        self
    }

    /// Enable (or force off) end-to-end envelope checksums for this
    /// universe, overriding `DDR_CHECKSUM`. Checksumming is **on by
    /// default**: every staged payload and zero-copy loan is hashed at
    /// pack/lend time and verified at match/claim time, so corruption
    /// surfaces as [`crate::Error::IntegrityFailure`] (and, inside
    /// `alltoallw`, triggers NACK/retransmit recovery) instead of delivering
    /// scrambled bytes. Off, the only remaining cost is one branch per
    /// deposit — the bench matrix holds it to <1 % against the
    /// pre-integrity numbers.
    pub fn checksum(mut self, on: bool) -> Self {
        self.checksum = Some(on);
        self
    }

    /// Bounded retransmit attempts per corrupt transfer before the receiver
    /// gives up with [`crate::Error::IntegrityFailure`], overriding
    /// `DDR_RETRANSMIT_MAX` (default 3). `0` makes every detection
    /// immediately fatal (detect-only).
    pub fn retransmit_max(mut self, attempts: u32) -> Self {
        self.retransmit_max = Some(attempts);
        self
    }

    /// Base of the receiver's exponential backoff before NACK attempt `k`
    /// (`base × 2^(k-1)`), overriding `DDR_RETRANSMIT_BACKOFF_MS`
    /// (default 1 ms).
    pub fn retransmit_backoff(mut self, base: Duration) -> Self {
        self.retransmit_backoff = Some(base);
        self
    }

    /// Seed the deterministic schedule explorer for this universe: every
    /// wait/poll point (sends, receives, zero-copy claims, retransmit polls,
    /// reconfigure rendezvous) consults a per-rank counterful hash of this
    /// seed and may yield or inject a short adversarial delay, and any-source
    /// receives rotate their source-scan preference — so different seeds
    /// exercise different (but individually reproducible) interleavings.
    /// When unset, `DDR_SCHED_SEED` decides; with neither, the hook
    /// compiles down to one `Option` branch per operation. Orthogonal to
    /// [`UniverseBuilder::check`]: seed + check finds races *and* explores
    /// schedules, seed alone just perturbs timing.
    pub fn sched_seed(mut self, seed: u64) -> Self {
        self.sched_seed = Some(seed);
        self
    }

    /// Bound every `(sender, receiver)` pair's mailbox: at most `credits`
    /// messages and `bytes` payload bytes queued per pair. A sender without
    /// credits parks on the flow gate until the receiver pops (or an epoch
    /// sweep discards) enough envelopes — backpressure instead of unbounded
    /// queue growth. `0` disables the respective window. Overrides
    /// `DDR_MAILBOX_CREDITS` / `DDR_MAILBOX_BYTES` (defaults: 1024 messages,
    /// 32 MiB). A single message larger than the byte window is still
    /// admitted when the pair is empty (stop-and-wait), so oversize
    /// transfers degrade instead of erroring.
    pub fn flow_control(mut self, credits: u64, bytes: usize) -> Self {
        self.flow_credits = Some(credits);
        self.flow_bytes = Some(bytes);
        self
    }

    /// Cap the universe's staging footprint: mailbox payloads and
    /// pool-retained capacity are metered against this budget, and the
    /// runtime degrades in stages as it fills — zero-copy sheds to the
    /// staged path at 50% occupancy, the pipelined executor (in `ddr-core`)
    /// shrinks its depth, the pool drops returned buffers instead of
    /// retaining them — before a reservation that cannot ever fit (or a
    /// budget wait with no global progress for a full timeout) fails with
    /// [`crate::Error::MemoryPressure`]. `0` (the default) meters without
    /// enforcing. Overrides `DDR_MEM_BUDGET`.
    pub fn mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Capture a trace of this universe run and write it to `path` as
    /// Chrome trace-event JSON (loadable in Perfetto). Equivalent to setting
    /// `DDR_TRACE=<path>`; the builder takes precedence. When tracing is off,
    /// the instrumentation compiles down to one relaxed atomic load per site.
    ///
    /// If a [`ddrtrace::capture`] window is already active (e.g. a bench
    /// harness tracing across several universes), this run contributes its
    /// events to that window instead of writing its own file.
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Run `f` on `n` ranks, each on its own thread with a world [`Comm`].
    /// Returns the per-rank results in rank order.
    ///
    /// When a rank's closure returns or panics, the rank is marked dead in
    /// the liveness registry, so peers still blocked on it fail fast with
    /// [`crate::Error::PeerDead`] rather than waiting out the watchdog.
    /// A panic on any rank propagates to the caller after all ranks joined.
    ///
    /// # Panics
    /// Panics if `n == 0` or if a rank thread cannot be spawned.
    pub fn run<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        assert!(n > 0, "Universe::run requires at least one rank");
        let timeout = self.timeout.unwrap_or_else(default_timeout);
        let check_on = self.check.unwrap_or_else(crate::check::check_env_default);
        let env_flow = crate::flow::FlowConfig::env_default();
        let flow_cfg = crate::flow::FlowConfig {
            msg_credits: self.flow_credits.unwrap_or(env_flow.msg_credits),
            byte_credits: self.flow_bytes.unwrap_or(env_flow.byte_credits),
            mem_budget: self.mem_budget.unwrap_or(env_flow.mem_budget),
        };
        let world = Arc::new(WorldState::new(
            n,
            timeout,
            self.fault_plan.clone(),
            check_on,
            self.zerocopy,
            self.zc_threshold,
            self.respawn,
            self.checksum,
            self.retransmit_max,
            self.retransmit_backoff,
            self.sched_seed,
            flow_cfg,
        ));
        // Tracing: the builder's path wins over `DDR_TRACE`. If a capture
        // window is already open (a bench tracing across several universes),
        // this run only contributes events — the window's owner writes them.
        let trace_path =
            self.trace.clone().or_else(|| crate::env::path_var("DDR_TRACE").map(PathBuf::from));
        let own_capture = trace_path.is_some() && !ddrtrace::capture::active();
        if own_capture {
            ddrtrace::capture::start();
        }
        // Rank tracks are pinned at their rank number; auto-assigned tracks
        // (main thread, copy workers) start at AUTO_TRACK_BASE. A world big
        // enough for the two ranges to overlap would silently merge
        // unrelated threads onto one track, so refuse it loudly.
        if ddrtrace::enabled() {
            assert!(
                n <= ddrtrace::AUTO_TRACK_BASE as usize,
                "tracing supports at most {} ranks per universe: rank {} would collide \
                 with auto-assigned helper-thread tracks",
                ddrtrace::AUTO_TRACK_BASE,
                n - 1,
            );
        }
        let shutdown = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let detector = world.check.is_some().then(|| {
                let world = Arc::clone(&world);
                let shutdown = &shutdown;
                std::thread::Builder::new()
                    .name("ddr-check-detector".into())
                    .spawn_scoped(scope, move || crate::check::detector_loop(&world, shutdown))
                    .expect("failed to spawn deadlock detector thread")
            });
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let world = Arc::clone(&world);
                let f = &f;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(RANK_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        ddrtrace::set_track(rank as u32, &format!("rank-{rank}"));
                        let _body = ddrtrace::span("rank", "rank_body");
                        let comm = Comm::world_comm(Arc::clone(&world), rank);
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        // Departed (or crashed) ranks count as dead: peers
                        // blocked on them should fail fast.
                        world.mark_dead(rank);
                        world.elastic.rank_finished();
                        match out {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            // Respawn supervisor: reconfigure queues a request per dead rank
            // being replaced; each spawns a fresh thread re-running `f` with
            // a communicator already in the new epoch. The loop ends only
            // when every thread — initial and respawned — has finished, so
            // the joins below never block on unfinished work.
            let mut respawned = Vec::new();
            while let SupervisorEvent::Spawn(req) = world.elastic.next_event() {
                let world = Arc::clone(&world);
                let f = &f;
                let rank = req.world_rank;
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(RANK_STACK_BYTES)
                    .spawn_scoped(scope, move || {
                        ddrtrace::set_track(rank as u32, &format!("rank-{rank}"));
                        let _body = ddrtrace::span("rank", "rank_body");
                        let comm = Comm::respawned_comm(Arc::clone(&world), &req);
                        let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&comm)));
                        world.mark_dead(rank);
                        world.elastic.rank_finished();
                        // A replacement's result is observable only
                        // through its communication; `run` returns
                        // the *initial* ranks' results.
                        match out {
                            Ok(_) => (),
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    })
                    .expect("failed to spawn respawned rank thread");
                respawned.push(handle);
            }
            // Collect every rank's outcome before re-raising any panic: the
            // detector must be shut down and joined first, or resuming a
            // panic here would leave the scope blocked on it forever.
            let outcomes: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let respawn_outcomes: Vec<_> = respawned.into_iter().map(|h| h.join()).collect();
            shutdown.store(true, Ordering::Release);
            if let Some(d) = detector {
                let _ = d.join();
            }
            if ddrtrace::enabled() {
                record_world_metrics(&world);
            }
            // Publish the schedule fingerprint before any panic can
            // propagate: the explorer reads it even for failing schedules.
            if let Some(sched) = &world.sched {
                sched.publish();
            }
            // Loan-leak scan: only meaningful when every rank finished
            // cleanly — a panicked or failed rank legitimately strands its
            // in-flight loans (the epoch sweep / Drop revocation handles
            // them), so a leak report there would be noise on top of the
            // real failure.
            let all_clean =
                outcomes.iter().all(|o| o.is_ok()) && respawn_outcomes.iter().all(|o| o.is_ok());
            if all_clean {
                if let Some(check) = &world.check {
                    if let Some(report) = check.leaked_loans() {
                        panic!("{}", crate::Error::LoanLeak(report));
                    }
                }
            }
            if own_capture {
                let trace = ddrtrace::capture::stop();
                if let Some(path) = &trace_path {
                    match trace.write_chrome(path) {
                        Ok(()) => eprintln!(
                            "minimpi: wrote trace ({} events, {} tracks) to {}\n{}",
                            trace.events.len(),
                            trace.tracks.len(),
                            path.display(),
                            trace.summary()
                        ),
                        Err(e) => {
                            eprintln!("minimpi: failed to write trace to {}: {e}", path.display())
                        }
                    }
                }
            }
            for o in respawn_outcomes {
                if let Err(payload) = o {
                    std::panic::resume_unwind(payload);
                }
            }
            outcomes
                .into_iter()
                .map(|o| o.unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }

    /// Like [`UniverseBuilder::run`] but for fallible rank bodies: returns
    /// the first error (by rank order) or all results.
    pub fn try_run<R, E, F>(&self, n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&Comm) -> Result<R, E> + Sync,
    {
        self.run(n, f).into_iter().collect()
    }
}

/// Fold this world's pool and transport counters into the unified metrics
/// registry. Traffic counters accumulate across universes within one capture
/// window; occupancy values are gauges and overwrite.
fn record_world_metrics(world: &WorldState) {
    let t = world.transport.snapshot();
    ddrtrace::metrics::add("minimpi.transport", "zerocopy_msgs", t.zerocopy_msgs);
    ddrtrace::metrics::add("minimpi.transport", "staged_msgs", t.staged_msgs);
    ddrtrace::metrics::add("minimpi.transport", "revoked_msgs", t.revoked_msgs);
    ddrtrace::metrics::add("minimpi.transport", "parallel_copies", t.parallel_copies);
    let p = world.pool.stats();
    ddrtrace::metrics::add("minimpi.pool", "acquires", p.acquires);
    ddrtrace::metrics::add("minimpi.pool", "reuse_hits", p.reuse_hits);
    ddrtrace::metrics::add("minimpi.pool", "trimmed_bytes", p.trimmed_bytes);
    ddrtrace::metrics::set("minimpi.pool", "free_bytes", p.free_bytes as u64);
    ddrtrace::metrics::set("minimpi.pool", "high_water_bytes", p.high_water_bytes as u64);
    ddrtrace::metrics::set("recover", "epoch", world.epoch());
    ddrtrace::metrics::add("recover", "respawns", world.elastic.respawns());
    ddrtrace::metrics::add("recover", "fenced_msgs", t.fenced_msgs);
    // Pack-kernel counters are process-global monotone totals (the kernel
    // layer has no per-world state), so publish with `set`, not `add` —
    // `add` would double-count them across universes in one process.
    let k = crate::kernels::snapshot();
    ddrtrace::metrics::set("pack", "fused_runs", k.fused_runs);
    ddrtrace::metrics::set("pack", "vector_bytes", k.vector_bytes);
    ddrtrace::metrics::set("pack", "scalar_bytes", k.scalar_bytes);
    ddrtrace::metrics::set("pack", "pool_dispatches", k.pool_dispatches);
    let fl = world.flow.counters();
    ddrtrace::metrics::add("flow", "credit_waits", fl.credit_waits);
    ddrtrace::metrics::add("flow", "stalled_ms", fl.stalled_ms);
    ddrtrace::metrics::add("flow", "watchdog_defers", fl.watchdog_defers);
    ddrtrace::metrics::add("flow", "slow_peers", fl.slow_peers);
    ddrtrace::metrics::add("mem", "zerocopy_sheds", fl.zerocopy_sheds);
    ddrtrace::metrics::add("mem", "denials", fl.mem_denials);
    ddrtrace::metrics::add("mem", "pool_trims", fl.pool_trims);
    ddrtrace::metrics::set("mem", "used_bytes", world.flow.mem_used() as u64);
    ddrtrace::metrics::set("mem", "high_water_bytes", world.flow.mem_high_water() as u64);
    ddrtrace::metrics::set("mem", "budget_bytes", world.flow.config().mem_budget as u64);
    let i = world.integrity.snapshot();
    ddrtrace::metrics::add("integrity", "checked", i.checked);
    ddrtrace::metrics::add("integrity", "detected", i.detected);
    ddrtrace::metrics::add("integrity", "retransmits", i.retransmits);
    ddrtrace::metrics::add("integrity", "exhausted", i.exhausted);
    if let Some(check) = &world.check {
        let c = check.counters();
        ddrtrace::metrics::add("check", "races", c.races);
        ddrtrace::metrics::add("check", "deadlocks", c.deadlocks);
        ddrtrace::metrics::add("check", "divergences", c.divergences);
        ddrtrace::metrics::add("check", "type_mismatches", c.type_mismatches);
    }
    if world.sched.is_some() {
        ddrtrace::metrics::add("check", "schedules_explored", 1);
    }
}

impl Universe {
    /// Configure timeout and fault injection before launching.
    pub fn builder() -> UniverseBuilder {
        UniverseBuilder::default()
    }

    /// Run `f` on `n` ranks with default configuration. See
    /// [`UniverseBuilder::run`].
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Comm) -> R + Sync,
    {
        Self::builder().run(n, f)
    }

    /// Like [`Universe::run`] but for fallible rank bodies: returns the
    /// first error (by rank order) or all results.
    pub fn try_run<R, E, F>(n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(&Comm) -> Result<R, E> + Sync,
    {
        Self::builder().try_run(n, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_ranks_and_orders_results() {
        let out = Universe::run(5, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_world() {
        let out = Universe::run(1, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn try_run_propagates_errors() {
        let r: Result<Vec<()>, String> =
            Universe::try_run(
                3,
                |comm| {
                    if comm.rank() == 1 {
                        Err("boom".to_string())
                    } else {
                        Ok(())
                    }
                },
            );
        assert_eq!(r.unwrap_err(), "boom");
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Universe::run(0, |_| ());
    }

    #[test]
    fn builder_timeout_is_applied() {
        let out =
            Universe::builder().timeout(Duration::from_millis(1234)).run(1, |comm| comm.timeout());
        assert_eq!(out, vec![Duration::from_millis(1234)]);
    }

    #[test]
    fn check_enabled_runs_clean_programs_unchanged() {
        // Matched collectives under full checking: same results, no reports.
        let out = Universe::builder()
            .check(true)
            .run(3, |comm| comm.allreduce(&[comm.rank() as u64 + 1], |a, b| a + b)[0]);
        assert_eq!(out, vec![6, 6, 6]);
    }

    #[test]
    fn departed_rank_fails_peers_fast() {
        use std::time::Instant;
        // Rank 1 exits immediately; rank 0 blocks on a receive from it and
        // must fail with PeerDead well before the 30 s watchdog.
        let start = Instant::now();
        let out = Universe::builder().timeout(Duration::from_secs(30)).run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_bytes(1, 0).map(|_| ())
            } else {
                Ok(())
            }
        });
        assert_eq!(out[0], Err(crate::Error::PeerDead { rank: 1 }));
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
