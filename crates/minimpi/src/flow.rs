//! Credit-based flow control and the process-global memory governor.
//!
//! Every queue in the runtime used to be unbounded: mailboxes were capless
//! `VecDeque`s and staging allocations had no global ceiling, so a fast
//! sender or a straggling receiver turned directly into unbounded memory
//! growth. This module provides the two enforcement mechanisms and the
//! observability around them:
//!
//! * **Per-pair credits** — every `(sender, receiver)` world-rank pair has a
//!   bounded message window ([`FlowConfig::msg_credits`]) and byte window
//!   ([`FlowConfig::byte_credits`]). A deposit *acquires* credits before the
//!   envelope enters the mailbox and the receiver *releases* them when it
//!   pops the envelope (or when an epoch sweep discards it) — so credit
//!   grants piggyback on the existing delivery path instead of needing
//!   dedicated ack traffic. Senders that cannot acquire block on the credit
//!   gate with a progress-reset deadline: a genuinely stuck handshake
//!   surfaces as a structured [`Error::Timeout`] instead of a hang, while a
//!   merely slow receiver just applies backpressure.
//! * **Memory governor** — a process-global meter of staged bytes (mailbox
//!   payloads plus pool-retained capacity) against
//!   [`FlowConfig::mem_budget`]. Accounting is always on (it feeds the
//!   `mem.high_water` metric and the bench's `peak_staging_bytes` column);
//!   the *gate* only engages when a budget is configured. Degradation is
//!   staged: zero-copy sheds to the staged path at 50% occupancy
//!   ([`FlowLedger::shedding_zerocopy`]), the pipelined executor shrinks its
//!   depth (see `ddr-core`), the buffer pool drops returned buffers instead
//!   of retaining them ([`FlowLedger::pool_try_retain`]), and only a single
//!   request larger than the whole budget — or a budget wait that makes no
//!   progress for a full timeout — returns [`Error::MemoryPressure`].
//! * **Straggler detection** — each pair keeps an EWMA of credit-stall
//!   durations; a pair whose EWMA crosses `DDR_SLOW_PEER_MS` is flagged once
//!   as a *SlowPeer* advisory (`flow.slow_peers` metric + trace instant),
//!   distinct from [`Error::PeerDead`]: the peer is alive, just slow. While
//!   a sender is parked on the gate its peers' watchdogs defer instead of
//!   firing (`flow.watchdog_defers`), so backpressure never masquerades as
//!   a deadlock.

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default per-pair message window.
pub(crate) const DEFAULT_MSG_CREDITS: u64 = 1024;
/// Default per-pair byte window (32 MiB).
pub(crate) const DEFAULT_BYTE_CREDITS: usize = 32 << 20;
/// Default slow-peer advisory threshold for the credit-stall EWMA.
const DEFAULT_SLOW_PEER_MS: u64 = 100;
/// Gate poll slice while parked: long enough to not spin, short enough that
/// death / progress signals are observed promptly even without a notify.
const GATE_POLL: Duration = Duration::from_millis(2);
/// Hard multiple of the comm timeout a credit wait may last in total, even
/// if unrelated global progress keeps resetting the sliding deadline.
const HARD_CAP_TIMEOUTS: u32 = 4;
/// EWMA smoothing shift: `ewma += (sample - ewma) >> 3` (alpha = 1/8).
const EWMA_SHIFT: u32 = 3;

/// Resolved flow-control configuration for one universe. Constructed by the
/// builder from its explicit settings or the `DDR_MAILBOX_CREDITS` /
/// `DDR_MAILBOX_BYTES` / `DDR_MEM_BUDGET` environment knobs. A limit of `0`
/// means unlimited (accounting still runs; the gate never blocks on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Messages one sender may have queued at one receiver (per pair).
    pub msg_credits: u64,
    /// Payload bytes one sender may have queued at one receiver (per pair).
    /// A single message larger than the whole window is admitted when the
    /// pair is empty, so oversize transfers degrade to stop-and-wait
    /// instead of erroring.
    pub byte_credits: usize,
    /// Process-global staged-byte budget (mailbox payloads + pool retention).
    pub mem_budget: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            msg_credits: DEFAULT_MSG_CREDITS,
            byte_credits: DEFAULT_BYTE_CREDITS,
            mem_budget: 0,
        }
    }
}

impl FlowConfig {
    /// Environment-resolved defaults: `DDR_MAILBOX_CREDITS`,
    /// `DDR_MAILBOX_BYTES`, `DDR_MEM_BUDGET`.
    pub(crate) fn env_default() -> Self {
        FlowConfig {
            msg_credits: crate::env::u64_var("DDR_MAILBOX_CREDITS").unwrap_or(DEFAULT_MSG_CREDITS),
            byte_credits: crate::env::bytes_var("DDR_MAILBOX_BYTES")
                .unwrap_or(DEFAULT_BYTE_CREDITS),
            mem_budget: crate::env::bytes_var("DDR_MEM_BUDGET").unwrap_or(0),
        }
    }
}

/// The credits one queued envelope holds, released by the mailbox when the
/// envelope is popped (delivered) or swept (epoch-fenced). Source is a
/// *world* rank: envelopes carry communicator-local ranks, but pair
/// accounting must survive communicator splits and renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlowCharge {
    /// Sender's world rank (the pair's row).
    pub src_world: usize,
    /// Pair byte-credits charged (0 for zero-copy loans and control traffic).
    pub bytes: usize,
    /// Governor bytes charged (staged payload length; 0 for loans).
    pub mem: usize,
}

/// Everything a deposit path needs to acquire credits: the pair, the
/// charge, and how to report a stall.
pub(crate) struct AcquireCtx {
    /// Sender world rank.
    pub src_world: usize,
    /// Receiver world rank.
    pub dst_world: usize,
    /// Pair byte-credits to charge.
    pub bytes: usize,
    /// Governor bytes to charge.
    pub mem: usize,
    /// Per-attempt stall budget (the comm's watchdog timeout); the sliding
    /// deadline resets whenever any release happens anywhere.
    pub timeout: Duration,
    /// Sender's communicator-local rank, for error construction.
    pub rank_local: usize,
    /// Receiver's communicator-local rank, for error construction.
    pub dest_local: usize,
    /// Key tag of the message being gated.
    pub tag: u64,
    /// Communicator id, for error construction.
    pub comm_id: u64,
}

/// What blocked a failed admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocker {
    /// The pair's message or byte window is full.
    Credits,
    /// The global memory budget is exhausted.
    Memory,
}

/// Per-pair credit state plus the stall EWMA feeding the slow-peer advisory.
#[derive(Default)]
struct PairState {
    msgs: AtomicU64,
    bytes: AtomicU64,
    /// EWMA of credit-stall durations against this pair, in microseconds.
    stall_ewma_us: AtomicU64,
    /// One-shot advisory latch: this pair was already reported slow.
    slow_flagged: AtomicBool,
}

/// Monotone counters describing flow-control activity, for metrics/tests.
#[derive(Debug, Default)]
struct FlowCells {
    credit_waits: AtomicU64,
    stalled_us: AtomicU64,
    watchdog_defers: AtomicU64,
    slow_peers: AtomicU64,
    zerocopy_sheds: AtomicU64,
    mem_denials: AtomicU64,
    pool_trims: AtomicU64,
}

/// Snapshot of the flow-control counters (see [`crate::Comm::flow_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowCounters {
    /// Deposits that had to park on the credit gate or the governor.
    pub credit_waits: u64,
    /// Total time senders spent parked, in milliseconds.
    pub stalled_ms: u64,
    /// Receive-watchdog expiries deferred because the awaited sender was
    /// parked on the gate (backpressure, not deadlock).
    pub watchdog_defers: u64,
    /// Pairs flagged by the slow-peer advisory (stall EWMA over threshold).
    pub slow_peers: u64,
    /// Messages shed from the zero-copy to the staged path by the governor's
    /// occupancy stage.
    pub zerocopy_sheds: u64,
    /// Admission attempts that found the memory budget exhausted.
    pub mem_denials: u64,
    /// Pool-retention requests the governor denied (buffer freed instead).
    pub pool_trims: u64,
}

/// The process-wide (per-universe) flow ledger: pair credit windows, the
/// memory governor, the sender parking gate, and the counters above.
pub(crate) struct FlowLedger {
    n: usize,
    cfg: FlowConfig,
    /// Dense pair table, indexed `src_world * n + dst_world`.
    pairs: Vec<PairState>,
    mem_used: AtomicUsize,
    mem_high_water: AtomicUsize,
    /// Bumped on every release; parked senders reset their deadline on it.
    progress: AtomicU64,
    /// Senders currently parked (fast check before taking the gate lock).
    waiters: AtomicUsize,
    /// Per world rank: parked in `acquire` right now (watchdog deferral).
    in_wait: Vec<AtomicBool>,
    gate: Mutex<()>,
    cv: Condvar,
    counters: FlowCells,
    slow_peer_us: u64,
}

impl FlowLedger {
    pub fn new(n: usize, cfg: FlowConfig) -> Self {
        FlowLedger {
            n,
            cfg,
            pairs: (0..n * n).map(|_| PairState::default()).collect(),
            mem_used: AtomicUsize::new(0),
            mem_high_water: AtomicUsize::new(0),
            progress: AtomicU64::new(0),
            waiters: AtomicUsize::new(0),
            in_wait: (0..n).map(|_| AtomicBool::new(false)).collect(),
            gate: Mutex::new(()),
            cv: Condvar::new(),
            counters: FlowCells::default(),
            slow_peer_us: crate::env::u64_var("DDR_SLOW_PEER_MS")
                .unwrap_or(DEFAULT_SLOW_PEER_MS)
                .saturating_mul(1000),
        }
    }

    /// The universe's resolved configuration.
    pub fn config(&self) -> FlowConfig {
        self.cfg
    }

    fn pair(&self, src: usize, dst: usize) -> &PairState {
        &self.pairs[src * self.n + dst]
    }

    /// One admission attempt: charge the pair windows and the governor, or
    /// report what blocked. Partially taken credits are rolled back, so a
    /// blocked attempt leaves no residue.
    fn try_admit(&self, ctx: &AcquireCtx) -> std::result::Result<FlowCharge, Blocker> {
        let pair = self.pair(ctx.src_world, ctx.dst_world);
        if self.cfg.msg_credits > 0 {
            let mut cur = pair.msgs.load(Ordering::Relaxed);
            loop {
                if cur >= self.cfg.msg_credits {
                    return Err(Blocker::Credits);
                }
                match pair.msgs.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if self.cfg.byte_credits > 0 && ctx.bytes > 0 {
            let limit = self.cfg.byte_credits as u64;
            let b = ctx.bytes as u64;
            let mut cur = pair.bytes.load(Ordering::Relaxed);
            loop {
                // An oversize single message is admitted into an empty pair
                // (stop-and-wait) instead of blocking forever.
                if cur > 0 && cur.saturating_add(b) > limit {
                    if self.cfg.msg_credits > 0 {
                        pair.msgs.fetch_sub(1, Ordering::AcqRel);
                    }
                    return Err(Blocker::Credits);
                }
                match pair.bytes.compare_exchange_weak(
                    cur,
                    cur + b,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        if ctx.mem > 0 {
            if let Err(blocker) = self.mem_try_add(ctx.mem) {
                if self.cfg.msg_credits > 0 {
                    pair.msgs.fetch_sub(1, Ordering::AcqRel);
                }
                if self.cfg.byte_credits > 0 && ctx.bytes > 0 {
                    pair.bytes.fetch_sub(ctx.bytes as u64, Ordering::AcqRel);
                }
                self.counters.mem_denials.fetch_add(1, Ordering::Relaxed);
                return Err(blocker);
            }
        }
        Ok(FlowCharge { src_world: ctx.src_world, bytes: ctx.bytes, mem: ctx.mem })
    }

    /// Meter `m` bytes against the governor. Accounting always runs (it
    /// feeds the high-water mark); the budget gate only blocks when one is
    /// configured. The CAS keeps the measured peak at or below the budget.
    fn mem_try_add(&self, m: usize) -> std::result::Result<(), Blocker> {
        let mut cur = self.mem_used.load(Ordering::Relaxed);
        loop {
            if self.cfg.mem_budget > 0 && cur.saturating_add(m) > self.cfg.mem_budget {
                return Err(Blocker::Memory);
            }
            match self.mem_used.compare_exchange_weak(
                cur,
                cur + m,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.mem_high_water.fetch_max(cur + m, Ordering::AcqRel);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Acquire credits for one deposit, blocking (bounded) when the window
    /// or budget is full. `is_dead` is re-checked on every wake so a peer
    /// death (or the sender's own fault-kill) unparks immediately with the
    /// appropriate error. The deadline slides forward whenever any release
    /// happens anywhere in the universe — a sender parked behind a *live*
    /// pipeline never times out — but a gate that sees no global progress
    /// for a full timeout (or `HARD_CAP_TIMEOUTS`× in total) fails
    /// structurally: [`Error::MemoryPressure`] when the governor is the
    /// blocker, [`Error::Timeout`] when the pair window is.
    pub fn acquire(
        &self,
        ctx: &AcquireCtx,
        is_dead: impl Fn() -> Option<Error>,
    ) -> Result<FlowCharge> {
        // A single staged request larger than the entire budget can never be
        // admitted: the terminal ladder stage, reported before any wait.
        if self.cfg.mem_budget > 0 && ctx.mem > self.cfg.mem_budget {
            self.counters.mem_denials.fetch_add(1, Ordering::Relaxed);
            return Err(Error::MemoryPressure {
                requested: ctx.mem,
                budget: self.cfg.mem_budget,
                used: self.mem_used.load(Ordering::Relaxed),
            });
        }
        if let Ok(charge) = self.try_admit(ctx) {
            return Ok(charge);
        }

        // Slow path: park on the gate.
        let mut blocker;
        self.counters.credit_waits.fetch_add(1, Ordering::Relaxed);
        self.in_wait[ctx.src_world].store(true, Ordering::Release);
        self.waiters.fetch_add(1, Ordering::AcqRel);
        let start = Instant::now();
        let hard_deadline = start + ctx.timeout * HARD_CAP_TIMEOUTS;
        let mut deadline = start + ctx.timeout;
        let mut last_progress = self.progress.load(Ordering::Acquire);
        let out = loop {
            if let Some(e) = is_dead() {
                break Err(e);
            }
            match self.try_admit(ctx) {
                Ok(charge) => break Ok(charge),
                Err(b) => blocker = b,
            }
            let now = Instant::now();
            let p = self.progress.load(Ordering::Acquire);
            if p != last_progress {
                last_progress = p;
                deadline = now + ctx.timeout;
            }
            if now >= deadline.min(hard_deadline) {
                break Err(match blocker {
                    Blocker::Memory => Error::MemoryPressure {
                        requested: ctx.mem,
                        budget: self.cfg.mem_budget,
                        used: self.mem_used.load(Ordering::Relaxed),
                    },
                    Blocker::Credits => Error::Timeout {
                        rank: ctx.rank_local,
                        src: Some(ctx.dest_local),
                        tag: ctx.tag,
                        comm_id: ctx.comm_id,
                    },
                });
            }
            let guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            let _ = self.cv.wait_timeout(guard, GATE_POLL).unwrap_or_else(|e| e.into_inner());
        };
        self.in_wait[ctx.src_world].store(false, Ordering::Release);
        self.waiters.fetch_sub(1, Ordering::AcqRel);
        self.record_stall(ctx, start.elapsed());
        out
    }

    /// Fold one stall into the counters and the pair's EWMA; cross the
    /// advisory threshold once per pair.
    fn record_stall(&self, ctx: &AcquireCtx, stalled: Duration) {
        let us = stalled.as_micros().min(u64::MAX as u128) as u64;
        self.counters.stalled_us.fetch_add(us, Ordering::Relaxed);
        let pair = self.pair(ctx.src_world, ctx.dst_world);
        let prev = pair.stall_ewma_us.load(Ordering::Relaxed);
        let ewma = prev + (us >> EWMA_SHIFT) - (prev >> EWMA_SHIFT);
        pair.stall_ewma_us.store(ewma, Ordering::Relaxed);
        if ewma >= self.slow_peer_us && !pair.slow_flagged.swap(true, Ordering::AcqRel) {
            self.counters.slow_peers.fetch_add(1, Ordering::Relaxed);
            ddrtrace::instant_arg("minimpi", "slow_peer", "dst", ctx.dst_world as i64);
        }
    }

    /// Release one envelope's charge: return the pair credits and governor
    /// bytes, publish progress, and wake parked senders. Saturating
    /// subtraction everywhere — a release can never underflow the ledger
    /// even if an accounting bug double-released (belt and braces; the
    /// mailbox releases each charge exactly once).
    pub fn release(&self, charge: FlowCharge, dst_world: usize) {
        let pair = self.pair(charge.src_world, dst_world);
        if self.cfg.msg_credits > 0 {
            let _ = pair
                .msgs
                .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
        }
        if self.cfg.byte_credits > 0 && charge.bytes > 0 {
            let _ = pair.bytes.fetch_update(Ordering::AcqRel, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(charge.bytes as u64))
            });
        }
        if charge.mem > 0 {
            self.mem_sub(charge.mem);
        }
        self.bump_progress();
    }

    fn bump_progress(&self) {
        self.progress.fetch_add(1, Ordering::AcqRel);
        if self.waiters.load(Ordering::Acquire) > 0 {
            let _guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    /// Governor-metered pool retention: account `bytes` of parked capacity,
    /// or deny (→ the pool frees the buffer instead — the trim stage of the
    /// degradation ladder).
    pub fn pool_try_retain(&self, bytes: usize) -> bool {
        match self.mem_try_add(bytes) {
            Ok(()) => true,
            Err(_) => {
                self.counters.pool_trims.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Return governor bytes (popped payloads, un-parked pool capacity).
    pub fn mem_sub(&self, bytes: usize) {
        let _ = self
            .mem_used
            .fetch_update(Ordering::AcqRel, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
        self.bump_progress();
    }

    /// Whether the occupancy stage says to shed zero-copy loans to the
    /// staged path: at half the budget, staged traffic (which the governor
    /// can meter and the pool can recycle) is preferable to unmetered loans.
    pub fn shedding_zerocopy(&self) -> bool {
        self.cfg.mem_budget > 0 && self.mem_used.load(Ordering::Relaxed) >= self.cfg.mem_budget / 2
    }

    /// Count one message actually shed from zero-copy to staged.
    pub fn note_zerocopy_shed(&self) {
        self.counters.zerocopy_sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one receive-watchdog expiry deferred because the awaited
    /// sender is parked on the gate.
    pub fn note_watchdog_defer(&self) {
        self.counters.watchdog_defers.fetch_add(1, Ordering::Relaxed);
    }

    /// Is `world_rank` currently parked in [`FlowLedger::acquire`]?
    pub fn rank_in_wait(&self, world_rank: usize) -> bool {
        self.in_wait.get(world_rank).is_some_and(|w| w.load(Ordering::Acquire))
    }

    /// Is any rank other than `me` parked? (Any-source watchdog deferral.)
    pub fn any_other_in_wait(&self, me: usize) -> bool {
        self.in_wait.iter().enumerate().any(|(r, w)| r != me && w.load(Ordering::Acquire))
    }

    /// Wake every parked sender (peer death, teardown) so their `is_dead`
    /// probes run immediately.
    pub fn wake_all(&self) {
        let _guard = self.gate.lock().unwrap_or_else(|e| e.into_inner());
        self.cv.notify_all();
    }

    /// Current governor occupancy in bytes.
    pub fn mem_used(&self) -> usize {
        self.mem_used.load(Ordering::Relaxed)
    }

    /// Largest governor occupancy ever observed.
    pub fn mem_high_water(&self) -> usize {
        self.mem_high_water.load(Ordering::Relaxed)
    }

    /// Debug-only invariant for the mailbox deposit: the pair's message
    /// count (including the envelope being deposited) respects the cap.
    #[cfg(debug_assertions)]
    pub fn pair_within_cap(&self, src_world: usize, dst_world: usize) -> bool {
        self.cfg.msg_credits == 0
            || self.pair(src_world, dst_world).msgs.load(Ordering::Acquire) <= self.cfg.msg_credits
    }

    /// Counter snapshot.
    pub fn counters(&self) -> FlowCounters {
        FlowCounters {
            credit_waits: self.counters.credit_waits.load(Ordering::Relaxed),
            stalled_ms: self.counters.stalled_us.load(Ordering::Relaxed) / 1000,
            watchdog_defers: self.counters.watchdog_defers.load(Ordering::Relaxed),
            slow_peers: self.counters.slow_peers.load(Ordering::Relaxed),
            zerocopy_sheds: self.counters.zerocopy_sheds.load(Ordering::Relaxed),
            mem_denials: self.counters.mem_denials.load(Ordering::Relaxed),
            pool_trims: self.counters.pool_trims.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ctx(src: usize, dst: usize, bytes: usize, mem: usize) -> AcquireCtx {
        AcquireCtx {
            src_world: src,
            dst_world: dst,
            bytes,
            mem,
            timeout: Duration::from_millis(100),
            rank_local: src,
            dest_local: dst,
            tag: 7,
            comm_id: 1,
        }
    }

    fn cfg(msgs: u64, bytes: usize, mem: usize) -> FlowConfig {
        FlowConfig { msg_credits: msgs, byte_credits: bytes, mem_budget: mem }
    }

    #[test]
    fn credits_charge_and_release() {
        let l = FlowLedger::new(2, cfg(2, 100, 0));
        let a = l.acquire(&ctx(0, 1, 40, 0), || None).unwrap();
        let b = l.acquire(&ctx(0, 1, 40, 0), || None).unwrap();
        // Window full: third deposit times out with a structured error.
        let e = l.acquire(&ctx(0, 1, 10, 0), || None).unwrap_err();
        assert!(matches!(e, Error::Timeout { rank: 0, src: Some(1), .. }), "{e:?}");
        assert!(l.counters().credit_waits >= 1);
        l.release(a, 1);
        l.acquire(&ctx(0, 1, 10, 0), || None).unwrap();
        l.release(b, 1);
    }

    #[test]
    fn oversize_message_admitted_into_empty_pair() {
        let l = FlowLedger::new(2, cfg(4, 64, 0));
        // 100 > 64, but the pair is empty: stop-and-wait admission.
        let big = l.acquire(&ctx(0, 1, 100, 0), || None).unwrap();
        // Pair non-empty now: even a small follow-up must wait.
        let e = l.acquire(&ctx(0, 1, 8, 0), || None).unwrap_err();
        assert!(matches!(e, Error::Timeout { .. }));
        l.release(big, 1);
        l.acquire(&ctx(0, 1, 8, 0), || None).unwrap();
    }

    #[test]
    fn pairs_are_independent() {
        let l = FlowLedger::new(3, cfg(1, 0, 0));
        let _a = l.acquire(&ctx(0, 1, 0, 0), || None).unwrap();
        // Same sender, different receiver: its own window.
        let _b = l.acquire(&ctx(0, 2, 0, 0), || None).unwrap();
        // Different sender, same receiver: its own window too.
        let _c = l.acquire(&ctx(2, 1, 0, 0), || None).unwrap();
    }

    #[test]
    fn governor_blocks_then_releases() {
        let l = Arc::new(FlowLedger::new(2, cfg(0, 0, 1000)));
        let a = l.acquire(&ctx(0, 1, 0, 800), || None).unwrap();
        assert_eq!(l.mem_used(), 800);
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || l2.acquire(&ctx(0, 1, 0, 400), || None));
        std::thread::sleep(Duration::from_millis(20));
        l.release(a, 1);
        let b = h.join().unwrap().unwrap();
        assert_eq!(b.mem, 400);
        assert_eq!(l.mem_high_water(), 800, "peak must never exceed the budget");
        assert!(l.counters().mem_denials >= 1);
    }

    #[test]
    fn request_larger_than_budget_is_memory_pressure() {
        let l = FlowLedger::new(2, cfg(0, 0, 100));
        let e = l.acquire(&ctx(0, 1, 0, 101), || None).unwrap_err();
        assert!(matches!(e, Error::MemoryPressure { requested: 101, budget: 100, .. }), "{e:?}");
    }

    #[test]
    fn governor_timeout_is_memory_pressure_not_hang() {
        let l = FlowLedger::new(2, cfg(0, 0, 100));
        let _held = l.acquire(&ctx(0, 1, 0, 90), || None).unwrap();
        let start = Instant::now();
        let e = l.acquire(&ctx(1, 0, 0, 50), || None).unwrap_err();
        assert!(matches!(e, Error::MemoryPressure { .. }), "{e:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn accounting_runs_without_a_budget() {
        let l = FlowLedger::new(2, cfg(0, 0, 0));
        let a = l.acquire(&ctx(0, 1, 0, 1 << 20), || None).unwrap();
        assert_eq!(l.mem_high_water(), 1 << 20);
        l.release(a, 1);
        assert_eq!(l.mem_used(), 0);
        assert_eq!(l.mem_high_water(), 1 << 20);
    }

    #[test]
    fn dead_peer_unparks_the_gate() {
        let l = Arc::new(FlowLedger::new(2, cfg(1, 0, 0)));
        let _held = l.acquire(&ctx(0, 1, 0, 0), || None).unwrap();
        let l2 = Arc::clone(&l);
        let dead = Arc::new(AtomicBool::new(false));
        let d2 = Arc::clone(&dead);
        let h = std::thread::spawn(move || {
            l2.acquire(&ctx(0, 1, 0, 0), || {
                d2.load(Ordering::Acquire).then_some(Error::PeerDead { rank: 1 })
            })
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(l.rank_in_wait(0), "sender must be registered as parked");
        assert!(l.any_other_in_wait(1));
        dead.store(true, Ordering::Release);
        l.wake_all();
        let e = h.join().unwrap().unwrap_err();
        assert!(matches!(e, Error::PeerDead { rank: 1 }));
        assert!(!l.rank_in_wait(0));
    }

    #[test]
    fn pool_retention_denied_over_budget() {
        let l = FlowLedger::new(2, cfg(0, 0, 100));
        assert!(l.pool_try_retain(80));
        assert!(!l.pool_try_retain(30), "retention past the budget must be denied");
        assert_eq!(l.counters().pool_trims, 1);
        l.mem_sub(80);
        assert!(l.pool_try_retain(30));
    }

    #[test]
    fn shedding_engages_at_half_budget() {
        let l = FlowLedger::new(2, cfg(0, 0, 100));
        assert!(!l.shedding_zerocopy());
        let a = l.acquire(&ctx(0, 1, 0, 50), || None).unwrap();
        assert!(l.shedding_zerocopy());
        l.release(a, 1);
        assert!(!l.shedding_zerocopy());
    }

    #[test]
    fn stall_counters_accumulate() {
        let l = FlowLedger::new(2, cfg(1, 0, 0));
        let held = l.acquire(&ctx(0, 1, 0, 0), || None).unwrap();
        let _ = l.acquire(&ctx(0, 1, 0, 0), || None).unwrap_err();
        let c = l.counters();
        assert_eq!(c.credit_waits, 1);
        assert!(c.stalled_ms >= 90, "a full timeout was burned: {c:?}");
        l.release(held, 1);
    }
}
