//! Seeded schedule perturbation for deterministic interleaving exploration.
//!
//! The OS scheduler picks one interleaving per test run; bugs that need a
//! different one survive indefinitely. When a schedule seed is set
//! ([`crate::UniverseBuilder::sched_seed`] or `DDR_SCHED_SEED`), every
//! wait/poll point in the runtime — mailbox sends and receives, zero-copy
//! lend/claim/drain handshakes, retransmit verdict polls, the reconfigure
//! rendezvous, and the nonblocking-request lifecycle (`ialltoallw` post,
//! `iwait`, `itest`) — calls [`SchedState::perturb`], which deterministically
//! decides from `(seed, rank, per-rank op count, point name)` whether to do
//! nothing, yield, or sleep briefly. That shifts the relative timing of
//! ranks without changing any program semantics, so a sweep over seeds (see
//! `ddrcheck`'s explorer) drives the same program through many distinct
//! interleavings, and any failure replays by re-running with the printed
//! seed.
//!
//! Each run also folds every message delivery into an order-insensitive
//! *schedule fingerprint* (per-rank delivery sequences, combined with XOR so
//! rank threads need no ordering between them). The fingerprint is
//! independent of the seed: two seeds that produce the same deliveries in
//! the same per-rank order are the *same* schedule, which is what lets the
//! explorer prune equivalent seeds instead of re-testing them. When no seed
//! is set the scheduler is absent (`Option::None`) and every hook is a
//! single branch.

use crate::fault::mix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Per-universe scheduler state, present in [`crate::comm::WorldState`] only
/// when a schedule seed is set.
pub(crate) struct SchedState {
    seed: u64,
    /// Per-rank perturbation-point counters (how many hooks this rank hit).
    ops: Vec<AtomicU64>,
    /// Per-rank any-source rotation counters.
    picks: Vec<AtomicU64>,
    /// Per-rank delivery counters feeding the fingerprint.
    deliveries: Vec<AtomicU64>,
    /// XOR-fold of all delivery events — the schedule fingerprint.
    fp: AtomicU64,
}

/// FNV-1a over a point name, so distinct hook sites perturb independently
/// even at the same op count.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl SchedState {
    pub fn new(seed: u64, n: usize) -> Self {
        SchedState {
            seed,
            ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
            picks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            deliveries: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fp: AtomicU64::new(0),
        }
    }

    /// Maybe delay `rank` at hook site `point`. The decision is a pure
    /// function of the seed, the rank, the rank's running op count, and the
    /// point name — deterministic for a fixed thread schedule, which is what
    /// makes a failing seed replayable. Distribution per call: 11/16 nothing,
    /// 2/16 yield, 1/16 short sleep (≤ 50 µs), 2/16 adversarial sleep
    /// (100–500 µs) — long enough to push a peer through the window the
    /// current rank would otherwise close first.
    pub fn perturb(&self, rank: usize, point: &'static str) {
        let n = self.ops[rank].fetch_add(1, Ordering::Relaxed);
        let h = mix64(
            mix64(self.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                ^ mix64(n)
                ^ fnv(point),
        );
        match h % 16 {
            0..=10 => {}
            11 | 12 => std::thread::yield_now(),
            13 => std::thread::sleep(Duration::from_micros((h >> 8) % 50)),
            _ => std::thread::sleep(Duration::from_micros(100 + (h >> 8) % 400)),
        }
    }

    /// Seeded rotation offset for any-source receives: instead of always
    /// scanning sources from 0, start the scan at a seed-dependent source so
    /// different seeds deliver ready messages in different orders.
    pub fn pick(&self, rank: usize) -> usize {
        let n = self.picks[rank].fetch_add(1, Ordering::Relaxed);
        mix64(self.seed ^ mix64((rank as u64) << 32 | n)) as usize
    }

    /// Fold one delivery (`src` → `rank`) into the schedule fingerprint.
    /// Deliberately seed-independent — see the module docs.
    pub fn observe(&self, rank: usize, src: usize) {
        let n = self.deliveries[rank].fetch_add(1, Ordering::Relaxed);
        let h = mix64(mix64((rank as u64) ^ (0xddcc_0feeu64 << 32)) ^ mix64(src as u64) ^ mix64(n));
        self.fp.fetch_xor(h, Ordering::Relaxed);
    }

    /// The schedule fingerprint accumulated so far.
    pub fn fingerprint(&self) -> u64 {
        self.fp.load(Ordering::Relaxed)
    }

    /// Publish this run's fingerprint for [`take_last_fingerprint`].
    pub fn publish(&self) {
        *lock_last() = Some(self.fingerprint());
    }
}

static LAST_FP: Mutex<Option<u64>> = Mutex::new(None);

fn lock_last() -> std::sync::MutexGuard<'static, Option<u64>> {
    LAST_FP.lock().unwrap_or_else(|e| e.into_inner())
}

/// Take the schedule fingerprint of the most recently completed seeded
/// universe run in this process (`None` if no seeded run has finished since
/// the last call). The explorer uses this to prune seeds that reproduced an
/// already-tested schedule.
pub fn take_last_fingerprint() -> Option<u64> {
    lock_last().take()
}

/// `DDR_SCHED_SEED` supplies a schedule seed when the builder did not.
pub(crate) fn sched_seed_env_default() -> Option<u64> {
    crate::env::u64_var("DDR_SCHED_SEED")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturb_is_deterministic_per_seed() {
        // Same seed → same op-count stream → same decisions; we can't observe
        // sleeps directly, but the underlying hash must be stable, which we
        // check through the fingerprint path (pure function of inputs).
        let a = SchedState::new(7, 2);
        let b = SchedState::new(7, 2);
        for _ in 0..100 {
            a.perturb(0, "send");
            b.perturb(0, "send");
        }
        assert_eq!(a.ops[0].load(Ordering::Relaxed), b.ops[0].load(Ordering::Relaxed));
    }

    #[test]
    fn fingerprint_ignores_cross_rank_interleaving() {
        // Two ranks' delivery streams folded in either global order produce
        // the same fingerprint — only per-rank order matters.
        let a = SchedState::new(1, 2);
        a.observe(0, 1);
        a.observe(1, 0);
        let b = SchedState::new(2, 2);
        b.observe(1, 0);
        b.observe(0, 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_delivery_orders() {
        // Same multiset of sources delivered to one rank in a different
        // order must fingerprint differently.
        let a = SchedState::new(1, 3);
        a.observe(0, 1);
        a.observe(0, 2);
        let b = SchedState::new(1, 3);
        b.observe(0, 2);
        b.observe(0, 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn publish_take_roundtrip() {
        let s = SchedState::new(3, 2);
        s.observe(0, 1);
        s.publish();
        assert_eq!(take_last_fingerprint(), Some(s.fingerprint()));
        assert_eq!(take_last_fingerprint(), None);
    }
}
