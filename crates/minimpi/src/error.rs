//! Error type for runtime failures.

use std::fmt;

/// Errors surfaced by the minimpi runtime.
///
/// Programming errors (rank out of range, datatype/buffer mismatch) are
/// reported as dedicated variants rather than panics so that library layers
/// above (e.g. `ddr-core`) can translate them into their own error domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A destination or source rank is outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A receive did not complete within the watchdog timeout — almost
    /// always a deadlock or a mismatched send/recv pair.
    Timeout {
        /// Receiving rank (communicator-local).
        rank: usize,
        /// Expected source rank, or `None` for any-source receives.
        src: Option<usize>,
        /// Message tag.
        tag: u64,
    },
    /// A peer rank is known to be dead — fault-killed, panicked, or already
    /// exited — so the awaited message can never arrive. Reported by the
    /// liveness registry well before the watchdog timeout would fire.
    PeerDead {
        /// The dead rank (communicator-local). When a fault plan kills the
        /// *calling* rank, this is the caller's own rank.
        rank: usize,
    },
    /// A typed receive found a message whose byte length is not a multiple
    /// of the element size, or that does not fit the caller's buffer.
    SizeMismatch {
        /// What the receiver expected, in bytes.
        expected: usize,
        /// What actually arrived, in bytes.
        got: usize,
    },
    /// A datatype does not fit the buffer it is applied to.
    DatatypeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Collective called with inconsistent arguments across ranks
    /// (detected where cheaply possible).
    CollectiveMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            Error::Timeout { rank, src, tag } => match src {
                Some(s) => write!(
                    f,
                    "rank {rank}: receive from rank {s} (tag {tag}) timed out — likely deadlock"
                ),
                None => write!(
                    f,
                    "rank {rank}: any-source receive (tag {tag}) timed out — likely deadlock"
                ),
            },
            Error::PeerDead { rank } => {
                write!(f, "rank {rank} is dead (fault-killed, panicked, or exited) — failing fast")
            }
            Error::SizeMismatch { expected, got } => {
                write!(f, "message size mismatch: expected {expected} bytes, got {got}")
            }
            Error::DatatypeMismatch { detail } => write!(f, "datatype mismatch: {detail}"),
            Error::CollectiveMismatch { detail } => write!(f, "collective mismatch: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
