//! Error type for runtime failures.

use crate::check::{DeadlockReport, DivergenceReport, LoanLeakReport, RaceReport, TypeSig};
use std::fmt;

/// Errors surfaced by the minimpi runtime.
///
/// Programming errors (rank out of range, datatype/buffer mismatch) are
/// reported as dedicated variants rather than panics so that library layers
/// above (e.g. `ddr-core`) can translate them into their own error domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A destination or source rank is outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A receive did not complete within the watchdog timeout — almost
    /// always a deadlock or a mismatched send/recv pair. Carries the full
    /// pending op so the hang is diagnosable: who waited, on whom, for what
    /// tag, on which communicator.
    Timeout {
        /// Receiving rank (communicator-local).
        rank: usize,
        /// Expected source rank, or `None` for any-source receives.
        src: Option<usize>,
        /// Raw key tag of the awaited message. User tags are `< 2^32`;
        /// larger values are internal collective sequence numbers (the
        /// `Display` impl decodes both).
        tag: u64,
        /// Communicator the receive was posted on.
        comm_id: u64,
    },
    /// A peer rank is known to be dead — fault-killed, panicked, or already
    /// exited — so the awaited message can never arrive. Reported by the
    /// liveness registry well before the watchdog timeout would fire.
    PeerDead {
        /// The dead rank (communicator-local). When a fault plan kills the
        /// *calling* rank, this is the caller's own rank.
        rank: usize,
    },
    /// A typed receive found a message whose byte length is not a multiple
    /// of the element size, or that does not fit the caller's buffer.
    SizeMismatch {
        /// What the receiver expected, in bytes.
        expected: usize,
        /// What actually arrived, in bytes.
        got: usize,
    },
    /// A datatype does not fit the buffer it is applied to.
    DatatypeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Collective called with inconsistent arguments across ranks
    /// (detected where cheaply possible).
    CollectiveMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// With checking enabled ([`crate::UniverseBuilder::check`]), two ranks
    /// of one communicator disagreed on which collective call comes next —
    /// detected and reported *before* any byte moves, instead of
    /// deadlocking. The report names both ranks, both operations (with
    /// root/signature) and both call sites.
    CollectiveDiverged(Box<DivergenceReport>),
    /// With checking enabled, the wait-for-graph detector found this rank in
    /// a confirmed receive cycle. The report lists every member of the cycle
    /// and what it was waiting for — the watchdog never needs to fire.
    Deadlock(Box<DeadlockReport>),
    /// With checking enabled, the happens-before checker found two causally
    /// unordered accesses to the same tracked buffer, at least one of them a
    /// write — e.g. a sender mutating a buffer while a receiver's zero-copy
    /// claim is still copying out of it. The report names the resource, both
    /// ranks, both operations and both call sites.
    DataRace(Box<RaceReport>),
    /// With checking enabled, one or more zero-copy loans were still live
    /// (never claimed and copied, never revoked) when the universe finished —
    /// a lent buffer whose ownership was never returned to the application.
    LoanLeak(Box<LoanLeakReport>),
    /// With checking enabled, a receive matched a message whose datatype
    /// signature (extent, element size, subarray shape) disagrees with what
    /// the receiver declared — caught before the bytes are silently
    /// reinterpreted.
    TypeMismatch {
        /// Sender (communicator-local).
        src: usize,
        /// Receiver (communicator-local).
        dst: usize,
        /// Raw key tag of the mismatched message.
        tag: u64,
        /// Signature the receiver declared.
        expected: TypeSig,
        /// Signature stamped by the sender.
        got: TypeSig,
    },
    /// The communicator handle predates the current membership epoch: a
    /// [`crate::Comm::reconfigure`] completed since this handle was built, so
    /// any traffic it could produce would be fenced as stale. The holder must
    /// switch to the communicator returned by `reconfigure` (or call
    /// `reconfigure` itself, on a handle from the current epoch).
    StaleEpoch {
        /// Epoch the communicator handle was created in.
        comm_epoch: u64,
        /// Current world membership epoch.
        world_epoch: u64,
    },
    /// A payload failed checksum verification and could not be recovered:
    /// either retransmission is unavailable on this path (point-to-point and
    /// non-alltoallw collective receives are detect-only), or every one of
    /// the `DDR_RETRANSMIT_MAX` retransmit attempts arrived corrupt too.
    /// Checksumming is on by default (`DDR_CHECKSUM=0` disables it).
    IntegrityFailure {
        /// Sender of the corrupt payload (communicator-local).
        src: usize,
        /// Receiver that detected the corruption (communicator-local).
        dst: usize,
        /// Raw key tag of the corrupt message (the `Display` impl decodes
        /// user tags and collective phases alike).
        tag: u64,
        /// Delivery attempts consumed: 0 means detection with no retransmit
        /// path; `n > 0` means the original plus `n` retransmits all failed.
        attempt: u32,
    },
    /// The memory governor could not admit a staging reservation: either a
    /// single request exceeds the whole `DDR_MEM_BUDGET`, or the budget
    /// stayed exhausted with no global progress for a full watchdog
    /// timeout. This is the *final* stage of the degradation ladder — the
    /// runtime first sheds zero-copy to staged, shrinks pipeline depth, and
    /// trims the buffer pool before failing a reservation. Note that slow
    /// peers are an advisory (`flow.slow_peers` counter), never an error.
    MemoryPressure {
        /// Bytes the denied reservation asked for.
        requested: usize,
        /// Configured budget (`DDR_MEM_BUDGET` / `mem_budget(..)`), bytes.
        budget: usize,
        /// Governor occupancy at the time of the denial, bytes.
        used: usize,
    },
    /// A runtime invariant was violated (e.g. a rendezvous protocol state
    /// that should be unreachable). Converted from what used to be panics in
    /// hot paths, so a broken invariant on one rank fails that rank's
    /// operation instead of aborting the process.
    Internal {
        /// Which invariant broke, and where.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            Error::Timeout { rank, src, tag, comm_id } => {
                let op = crate::comm::describe_key_tag(*tag);
                match src {
                    Some(s) => write!(
                        f,
                        "rank {rank}: receive from rank {s} ({op} on comm {comm_id:#x}) timed out — likely deadlock"
                    ),
                    None => write!(
                        f,
                        "rank {rank}: any-source receive ({op} on comm {comm_id:#x}) timed out — likely deadlock"
                    ),
                }
            }
            Error::PeerDead { rank } => {
                write!(f, "rank {rank} is dead (fault-killed, panicked, or exited) — failing fast")
            }
            Error::SizeMismatch { expected, got } => {
                write!(f, "message size mismatch: expected {expected} bytes, got {got}")
            }
            Error::DatatypeMismatch { detail } => write!(f, "datatype mismatch: {detail}"),
            Error::CollectiveMismatch { detail } => write!(f, "collective mismatch: {detail}"),
            Error::CollectiveDiverged(report) => {
                write!(f, "collective divergence: {report}")
            }
            Error::Deadlock(report) => write!(f, "{report}"),
            Error::DataRace(report) => write!(f, "data race: {report}"),
            Error::LoanLeak(report) => write!(f, "loan leak: {report}"),
            Error::TypeMismatch { src, dst, tag, expected, got } => {
                let op = crate::comm::describe_key_tag(*tag);
                write!(
                    f,
                    "datatype signature mismatch: rank {src} sent {got} but rank {dst} expected {expected} ({op})"
                )
            }
            Error::StaleEpoch { comm_epoch, world_epoch } => write!(
                f,
                "communicator from epoch {comm_epoch} used after reconfiguration to epoch {world_epoch} — rebuild it via reconfigure()"
            ),
            Error::IntegrityFailure { src, dst, tag, attempt } => {
                let op = crate::comm::describe_key_tag(*tag);
                if *attempt == 0 {
                    write!(
                        f,
                        "integrity failure: payload from rank {src} to rank {dst} ({op}) failed checksum verification (no retransmit path)"
                    )
                } else {
                    write!(
                        f,
                        "integrity failure: payload from rank {src} to rank {dst} ({op}) still corrupt after {attempt} retransmit attempt(s)"
                    )
                }
            }
            Error::MemoryPressure { requested, budget, used } => write!(
                f,
                "memory budget exhausted: {requested}-byte staging reservation denied (budget {budget} bytes, {used} in use)"
            ),
            Error::Internal { detail } => {
                write!(f, "internal runtime invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
