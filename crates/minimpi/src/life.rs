//! Rank liveness tracking and the shrink consensus barrier.
//!
//! Every world rank has a liveness flag. A rank is marked dead when a
//! [`crate::FaultPlan`] kill fires, when its closure panics, or when it
//! returns while peers are still running. Marking a rank dead interrupts
//! every mailbox so blocked receivers re-check their abort conditions and
//! fail fast with [`crate::Error::PeerDead`] instead of waiting out the
//! watchdog.
//!
//! [`ShrinkBarrier`] implements the agreement step of `Comm::shrink()`: all
//! *surviving* members of a communicator rendezvous (keyed by communicator
//! id and per-handle shrink generation) and agree on the ordered survivor
//! list. Completion is re-evaluated whenever a rank dies, so survivors are
//! never stuck waiting for a casualty to arrive.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Per-world-rank alive flags. Ranks transition alive → dead on failure; the
/// reconfigure leader may transition a rank back dead → alive when a
/// replacement thread is about to be respawned in a new epoch.
pub(crate) struct Liveness {
    alive: Vec<AtomicBool>,
}

impl Liveness {
    pub fn new(n: usize) -> Self {
        Liveness { alive: (0..n).map(|_| AtomicBool::new(true)).collect() }
    }

    pub fn is_alive(&self, world_rank: usize) -> bool {
        self.alive[world_rank].load(Ordering::Acquire)
    }

    /// Returns `true` if this call performed the transition (idempotent).
    pub fn mark_dead(&self, world_rank: usize) -> bool {
        self.alive[world_rank].swap(false, Ordering::AcqRel)
    }

    /// Resurrect a dead rank ahead of a respawn. Only the reconfigure leader
    /// calls this, after the survivor set has been agreed, so peers never see
    /// the rank flap: it goes dead → (agreement) → alive-with-replacement.
    pub fn revive(&self, world_rank: usize) {
        self.alive[world_rank].store(true, Ordering::Release);
    }
}

/// Key for one shrink round: (communicator id, per-communicator generation).
type ShrinkKey = (u64, u64);

struct PendingShrink {
    /// Parent communicator members (world ranks, parent rank order).
    members: Vec<usize>,
    /// World ranks that have entered this round.
    entered: Vec<usize>,
}

#[derive(Default)]
struct BarrierState {
    pending: HashMap<ShrinkKey, PendingShrink>,
    /// Completed rounds: ordered survivor world-rank lists. Kept for the
    /// lifetime of the universe — shrink rounds are rare and small.
    done: HashMap<ShrinkKey, Arc<Vec<usize>>>,
}

/// Rendezvous used by `Comm::shrink`. See module docs.
#[derive(Default)]
pub(crate) struct ShrinkBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl ShrinkBarrier {
    fn lock(&self) -> MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enter the shrink round `key` as `world_rank`, a member of `members`.
    /// Blocks until every *alive* member has entered, then returns the
    /// ordered survivor list (identical Arc on every member). Returns `None`
    /// on timeout.
    pub fn enter(
        &self,
        key: ShrinkKey,
        members: &[usize],
        world_rank: usize,
        liveness: &Liveness,
        timeout: Duration,
    ) -> Option<Arc<Vec<usize>>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        if !st.done.contains_key(&key) {
            let p = st.pending.entry(key).or_insert_with(|| PendingShrink {
                members: members.to_vec(),
                entered: Vec::new(),
            });
            if !p.entered.contains(&world_rank) {
                p.entered.push(world_rank);
            }
            Self::try_complete(&mut st, key, liveness);
            self.cv.notify_all();
        }
        loop {
            if let Some(survivors) = st.done.get(&key) {
                return Some(Arc::clone(survivors));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) =
                self.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Re-evaluate every pending round after a death (a round completes once
    /// all still-alive members have entered — which a death can trigger).
    pub fn on_death(&self, liveness: &Liveness) {
        let mut st = self.lock();
        let keys: Vec<ShrinkKey> = st.pending.keys().copied().collect();
        for key in keys {
            Self::try_complete(&mut st, key, liveness);
        }
        self.cv.notify_all();
    }

    fn try_complete(st: &mut BarrierState, key: ShrinkKey, liveness: &Liveness) {
        let Some(p) = st.pending.get(&key) else { return };
        let complete = p.members.iter().all(|&w| !liveness.is_alive(w) || p.entered.contains(&w));
        if complete {
            let p = st.pending.remove(&key).expect("checked above");
            let survivors: Vec<usize> =
                p.members.into_iter().filter(|&w| liveness.is_alive(w)).collect();
            st.done.insert(key, Arc::new(survivors));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_dead_is_idempotent() {
        let l = Liveness::new(2);
        assert!(l.is_alive(1));
        assert!(l.mark_dead(1));
        assert!(!l.mark_dead(1));
        assert!(!l.is_alive(1));
        assert!(l.is_alive(0));
    }

    #[test]
    fn shrink_completes_when_survivors_enter() {
        let l = Arc::new(Liveness::new(3));
        l.mark_dead(1);
        let b = Arc::new(ShrinkBarrier::default());
        let members = vec![0, 1, 2];
        let (b2, l2, m2) = (Arc::clone(&b), Arc::clone(&l), members.clone());
        let h = std::thread::spawn(move || b2.enter((7, 0), &m2, 2, &l2, Duration::from_secs(5)));
        let s0 = b.enter((7, 0), &members, 0, &l, Duration::from_secs(5)).unwrap();
        let s2 = h.join().unwrap().unwrap();
        assert_eq!(*s0, vec![0, 2]);
        assert_eq!(s0, s2);
    }

    #[test]
    fn death_after_entering_unblocks_round() {
        let l = Arc::new(Liveness::new(2));
        let b = Arc::new(ShrinkBarrier::default());
        let members = vec![0, 1];
        let (b2, l2, m2) = (Arc::clone(&b), Arc::clone(&l), members.clone());
        let h = std::thread::spawn(move || b2.enter((1, 0), &m2, 0, &l2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        // Rank 1 dies without ever entering; rank 0's round must complete.
        l.mark_dead(1);
        b.on_death(&l);
        assert_eq!(*h.join().unwrap().unwrap(), vec![0]);
    }

    #[test]
    fn timeout_when_peer_never_arrives() {
        let l = Liveness::new(2);
        let b = ShrinkBarrier::default();
        assert!(b.enter((0, 0), &[0, 1], 0, &l, Duration::from_millis(30)).is_none());
    }
}
