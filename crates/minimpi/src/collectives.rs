//! Collective operations over a [`Comm`].
//!
//! All collectives are built on point-to-point messages in a private tag
//! namespace keyed by a per-communicator sequence number, so user traffic and
//! concurrent collectives on *different* communicators can never interfere.
//! Every member of a communicator must call each collective in the same
//! order — the standard MPI contract.

use crate::check::{CollFingerprint, CollectiveKind, TypeSig};
use crate::comm::{coll_key_tag, Comm};
use crate::datatype::{copy_selection, Datatype};
use crate::error::{Error, Result};
use crate::fault::{mix64, Keystream};
use crate::mailbox::{Envelope, Payload};
use crate::pod::{bytes_of, vec_from_bytes, Pod};
use crate::zerocopy::{ZcCell, ZcWait, PARALLEL_COPY_MIN_BYTES};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

// Alltoallw's phase namespace under one collective sequence number. Phase 0
// carries the data; phases 1 and 2 exist only when NACK/retransmit recovery
// is armed (checksums on + a corrupt-capable fault plan installed).
const PHASE_DATA: u64 = 0;
/// Receiver → sender verdict channel: one byte per message.
const PHASE_VERDICT: u64 = 1;
/// Sender → receiver retransmitted payloads (always staged).
const PHASE_RETX: u64 = 2;

/// Verdict bytes on the `PHASE_VERDICT` channel. FIFO per (comm, src, tag)
/// means zero or more NACKs are followed by exactly one terminal ACK/FAIL.
const VERDICT_ACK: u8 = 0;
const VERDICT_NACK: u8 = 1;
const VERDICT_FAIL: u8 = 2;

/// Poll interval of the recovery-mode waits. Recovery waits poll (instead of
/// blocking on the mailbox condvar) so a rank can keep servicing its *own*
/// senders' NACK duties while it waits — two ranks each recovering from the
/// other would otherwise deadlock.
const RETX_POLL: Duration = Duration::from_micros(200);

/// Encode a list of byte buffers into one buffer (u64 count + u64 lengths +
/// concatenated payloads). Used to ship gathered results through broadcast.
fn encode_multi(parts: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(8 + 8 * parts.len() + total);
    out.extend_from_slice(&(parts.len() as u64).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    }
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

fn decode_multi(buf: &[u8]) -> Result<Vec<Vec<u8>>> {
    let fail = || Error::SizeMismatch { expected: 8, got: buf.len() };
    if buf.len() < 8 {
        return Err(fail());
    }
    let n = u64::from_le_bytes(buf[0..8].try_into().unwrap()) as usize;
    let header = 8 + 8 * n;
    if buf.len() < header {
        return Err(fail());
    }
    let mut lens = Vec::with_capacity(n);
    for i in 0..n {
        let o = 8 + 8 * i;
        lens.push(u64::from_le_bytes(buf[o..o + 8].try_into().unwrap()) as usize);
    }
    let mut parts = Vec::with_capacity(n);
    let mut cursor = header;
    for len in lens {
        if cursor + len > buf.len() {
            return Err(fail());
        }
        parts.push(buf[cursor..cursor + len].to_vec());
        cursor += len;
    }
    Ok(parts)
}

impl Comm {
    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Block until every rank in the communicator has entered the barrier.
    /// Dissemination algorithm: `ceil(log2 n)` rounds.
    #[track_caller]
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let seq = self.next_coll_seq();
        self.record_collective(seq, CollFingerprint::here(CollectiveKind::Barrier, None, 0))?;
        let _coll = ddrtrace::span("minimpi", "barrier");
        let mut dist = 1usize;
        let mut phase = 0u64;
        while dist < n {
            let to = (self.rank() + dist) % n;
            let from = (self.rank() + n - dist) % n;
            self.deposit_to(to, coll_key_tag(seq, phase), Vec::new())?;
            self.take_from(from, coll_key_tag(seq, phase))?;
            dist <<= 1;
            phase += 1;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Broadcast bytes from `root` to all ranks. On non-root ranks the
    /// returned vector is the received payload; on the root it is a copy of
    /// `data`. Binomial tree, `O(log n)` depth.
    #[track_caller]
    pub fn broadcast_bytes(&self, root: usize, data: &[u8]) -> Result<Vec<u8>> {
        let n = self.size();
        if root >= n {
            return Err(Error::RankOutOfRange { rank: root, size: n });
        }
        let seq = self.next_coll_seq();
        self.record_collective(
            seq,
            CollFingerprint::here(CollectiveKind::Broadcast, Some(root), 0),
        )?;
        let relative = (self.rank() + n - root) % n;

        let mut payload: Option<Vec<u8>> = if relative == 0 { Some(data.to_vec()) } else { None };

        // Receive phase: find the bit that identifies our parent.
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (self.rank() + n - mask) % n;
                payload = Some(self.take_from(src, coll_key_tag(seq, 0))?);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below our identifying bit.
        let payload = payload.ok_or_else(|| Error::Internal {
            detail: format!(
                "bcast: rank {} has no payload after the receive phase (root {root}, n {n})",
                self.rank()
            ),
        })?;
        let mut mask = mask >> 1;
        while mask > 0 {
            if relative + mask < n {
                let dst = (self.rank() + mask) % n;
                self.deposit_to(dst, coll_key_tag(seq, 0), payload.clone())?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Broadcast a typed slice from `root`; all ranks receive the root's data.
    #[track_caller]
    pub fn broadcast<T: Pod>(&self, root: usize, data: &[T]) -> Result<Vec<T>> {
        let bytes = self.broadcast_bytes(root, bytes_of(data))?;
        vec_from_bytes(&bytes)
            .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: bytes.len() })
    }

    // ------------------------------------------------------------------
    // Gather / Allgather
    // ------------------------------------------------------------------

    /// Gather each rank's (variable-length) bytes at `root`. Returns
    /// `Some(parts)` on the root (indexed by rank) and `None` elsewhere.
    #[track_caller]
    pub fn gather_bytes(&self, root: usize, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        let n = self.size();
        if root >= n {
            return Err(Error::RankOutOfRange { rank: root, size: n });
        }
        let seq = self.next_coll_seq();
        self.record_collective(seq, CollFingerprint::here(CollectiveKind::Gather, Some(root), 0))?;
        if self.rank() == root {
            let mut parts = vec![Vec::new(); n];
            parts[root] = data.to_vec();
            for (src, part) in parts.iter_mut().enumerate() {
                if src != root {
                    *part = self.take_from(src, coll_key_tag(seq, 0))?;
                }
            }
            Ok(Some(parts))
        } else {
            self.deposit_to(root, coll_key_tag(seq, 0), data.to_vec())?;
            Ok(None)
        }
    }

    /// Typed gather at `root`.
    #[track_caller]
    pub fn gather<T: Pod>(&self, root: usize, data: &[T]) -> Result<Option<Vec<Vec<T>>>> {
        match self.gather_bytes(root, bytes_of(data))? {
            None => Ok(None),
            Some(parts) => parts
                .iter()
                .map(|p| {
                    vec_from_bytes(p).ok_or(Error::SizeMismatch {
                        expected: std::mem::size_of::<T>(),
                        got: p.len(),
                    })
                })
                .collect::<Result<Vec<_>>>()
                .map(Some),
        }
    }

    /// Allgather of variable-length byte buffers: every rank receives every
    /// rank's contribution, indexed by rank. Gather-to-0 + broadcast.
    #[track_caller]
    pub fn allgather_bytes(&self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let gathered = self.gather_bytes(0, data)?;
        let encoded = match gathered {
            Some(parts) => encode_multi(&parts),
            None => Vec::new(),
        };
        let all = self.broadcast_bytes(0, &encoded)?;
        decode_multi(&all)
    }

    /// Typed allgather: every rank receives every rank's slice.
    #[track_caller]
    pub fn allgather<T: Pod>(&self, data: &[T]) -> Result<Vec<Vec<T>>> {
        self.allgather_bytes(bytes_of(data))?
            .iter()
            .map(|p| {
                vec_from_bytes(p)
                    .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: p.len() })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Scatter
    // ------------------------------------------------------------------

    /// Scatter variable-length byte buffers from `root`: rank `i` receives
    /// `parts[i]`. Non-root ranks pass `None`.
    #[track_caller]
    pub fn scatterv_bytes(&self, root: usize, parts: Option<&[Vec<u8>]>) -> Result<Vec<u8>> {
        let n = self.size();
        if root >= n {
            return Err(Error::RankOutOfRange { rank: root, size: n });
        }
        let seq = self.next_coll_seq();
        self.record_collective(seq, CollFingerprint::here(CollectiveKind::Scatter, Some(root), 0))?;
        if self.rank() == root {
            let parts = parts.ok_or_else(|| Error::CollectiveMismatch {
                detail: "scatterv: root must supply parts".into(),
            })?;
            if parts.len() != n {
                return Err(Error::CollectiveMismatch {
                    detail: format!("scatterv: expected {n} parts, got {}", parts.len()),
                });
            }
            for (dest, part) in parts.iter().enumerate() {
                if dest != root {
                    self.deposit_to(dest, coll_key_tag(seq, 0), part.clone())?;
                }
            }
            Ok(parts[root].clone())
        } else {
            self.take_from(root, coll_key_tag(seq, 0))
        }
    }

    /// Typed equal-size scatter: the root's slice is split into
    /// `size` equal chunks, rank `i` receiving the `i`-th.
    #[track_caller]
    pub fn scatter<T: Pod>(&self, root: usize, data: Option<&[T]>) -> Result<Vec<T>> {
        let n = self.size();
        let parts: Option<Vec<Vec<u8>>> = match (self.rank() == root, data) {
            (true, Some(d)) => {
                if d.len() % n != 0 {
                    return Err(Error::CollectiveMismatch {
                        detail: format!(
                            "scatter: {} elements do not divide evenly over {n} ranks",
                            d.len()
                        ),
                    });
                }
                let chunk = d.len() / n;
                Some((0..n).map(|i| bytes_of(&d[i * chunk..(i + 1) * chunk]).to_vec()).collect())
            }
            (true, None) => {
                return Err(Error::CollectiveMismatch {
                    detail: "scatter: root must supply data".into(),
                })
            }
            _ => None,
        };
        let mine = self.scatterv_bytes(root, parts.as_deref())?;
        vec_from_bytes(&mine)
            .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: mine.len() })
    }

    // ------------------------------------------------------------------
    // Reduce / Allreduce
    // ------------------------------------------------------------------

    /// Element-wise reduction at `root` with operator `op`, folding in rank
    /// order (deterministic for non-associative float ops). All ranks must
    /// contribute slices of the same length.
    #[track_caller]
    pub fn reduce<T: Pod>(
        &self,
        root: usize,
        data: &[T],
        op: impl Fn(T, T) -> T,
    ) -> Result<Option<Vec<T>>> {
        match self.gather(root, data)? {
            None => Ok(None),
            Some(parts) => {
                let len = parts[0].len();
                if parts.iter().any(|p| p.len() != len) {
                    return Err(Error::CollectiveMismatch {
                        detail: "reduce: contribution lengths differ across ranks".into(),
                    });
                }
                let mut acc = parts[0].clone();
                for part in &parts[1..] {
                    for (a, &b) in acc.iter_mut().zip(part.iter()) {
                        *a = op(*a, b);
                    }
                }
                Ok(Some(acc))
            }
        }
    }

    /// Element-wise reduction delivered to all ranks.
    ///
    /// # Panics
    /// Panics if the underlying communication fails (see [`Comm::try_allreduce`]
    /// for the fallible variant).
    #[track_caller]
    pub fn allreduce<T: Pod>(&self, data: &[T], op: impl Fn(T, T) -> T) -> Vec<T> {
        self.try_allreduce(data, op).expect("allreduce failed")
    }

    /// Fallible element-wise reduction delivered to all ranks.
    #[track_caller]
    pub fn try_allreduce<T: Pod>(&self, data: &[T], op: impl Fn(T, T) -> T) -> Result<Vec<T>> {
        let reduced = self.reduce(0, data, op)?;
        let bytes = match reduced {
            Some(v) => bytes_of(&v).to_vec(),
            None => Vec::new(),
        };
        let all = self.broadcast_bytes(0, &bytes)?;
        vec_from_bytes(&all)
            .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: all.len() })
    }

    // ------------------------------------------------------------------
    // Alltoall family
    // ------------------------------------------------------------------

    /// Personalized all-to-all of variable-length byte buffers. `msgs[d]` is
    /// sent to rank `d`; the result's index `s` holds rank `s`'s message to
    /// this rank. The self-message is moved, not copied through a mailbox.
    #[track_caller]
    pub fn alltoall_bytes(&self, mut msgs: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        let n = self.size();
        if msgs.len() != n {
            return Err(Error::CollectiveMismatch {
                detail: format!("alltoall: expected {n} messages, got {}", msgs.len()),
            });
        }
        let seq = self.next_coll_seq();
        self.record_collective(seq, CollFingerprint::here(CollectiveKind::Alltoall, None, 0))?;
        let me = self.rank();
        let self_msg = std::mem::take(&mut msgs[me]);
        for (d, m) in msgs.into_iter().enumerate() {
            if d != me {
                self.deposit_to(d, coll_key_tag(seq, 0), m)?;
            }
        }
        let mut out = vec![Vec::new(); n];
        out[me] = self_msg;
        for (s, slot) in out.iter_mut().enumerate() {
            if s != me {
                *slot = self.take_from(s, coll_key_tag(seq, 0))?;
            }
        }
        Ok(out)
    }

    /// Typed personalized all-to-all with per-destination counts.
    #[track_caller]
    pub fn alltoallv<T: Pod>(&self, msgs: &[Vec<T>]) -> Result<Vec<Vec<T>>> {
        let bytes: Vec<Vec<u8>> = msgs.iter().map(|m| bytes_of(m).to_vec()).collect();
        self.alltoall_bytes(bytes)?
            .iter()
            .map(|p| {
                vec_from_bytes(p)
                    .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: p.len() })
            })
            .collect()
    }

    /// `MPI_Alltoallw` over derived datatypes: for every destination `d`,
    /// `send_types[d]` selects the part of `send_buf` to ship; for every
    /// source `s`, `recv_types[s]` places the incoming bytes into `recv_buf`.
    ///
    /// Unlike MPI, zero-length transfers are elided entirely — the contract
    /// is that `send_types[d]` on rank `r` is non-empty **iff** `recv_types[r]`
    /// on rank `d` is non-empty (DDR's mapping guarantees this by
    /// construction). The self-transfer is a direct selection-to-selection
    /// copy.
    ///
    /// When the universe's zero-copy fast path is active (the default; see
    /// [`crate::UniverseBuilder::zerocopy`] and `DDR_NO_ZEROCOPY`), each
    /// message is delivered by the *receiver* copying contiguous runs
    /// straight out of the sender's `send_buf` — no pack/unpack staging
    /// buffers exist anywhere. With a fault plan installed, or with the fast
    /// path disabled, messages stage through the universe's shared buffer
    /// pool instead.
    #[track_caller]
    pub fn alltoallw(
        &self,
        send_buf: &[u8],
        send_types: &[Datatype],
        recv_buf: &mut [u8],
        recv_types: &[Datatype],
    ) -> Result<()> {
        self.alltoallw_impl(send_buf, send_types, recv_buf, recv_types, false).map(|_| ())
    }

    /// Shared engine of [`Comm::alltoallw`] and [`Comm::alltoallw_salvage`]:
    /// `salvage` decides whether a failed source aborts the exchange or is
    /// recorded in the report while the remaining sources are drained.
    ///
    /// The blocking collective is post-then-wait on the nonblocking engine,
    /// so both paths share one wire protocol, one error classification, and
    /// one loan-drain discipline — the differential suite's byte-identity
    /// between pipelined and round-synchronous execution holds by
    /// construction.
    #[track_caller]
    fn alltoallw_impl(
        &self,
        send_buf: &[u8],
        send_types: &[Datatype],
        recv_buf: &mut [u8],
        recv_types: &[Datatype],
        salvage: bool,
    ) -> Result<ExchangeReport> {
        self.ialltoallw_impl(send_buf, send_types, recv_types, salvage)?.wait(recv_buf)
    }

    /// Nonblocking [`Comm::alltoallw`]: runs the eager send phase (loaning
    /// or staging exactly as the blocking collective would) and returns an
    /// [`AlltoallwRequest`] without waiting for any source. Complete it with
    /// [`AlltoallwRequest::wait`] or poll it with [`AlltoallwRequest::test`],
    /// passing the receive buffer at completion time.
    ///
    /// Counts toward the communicator's collective order at *post* time:
    /// every rank must post matching exchanges in the same sequence, but may
    /// hold several open concurrently — each exchange lives in its own
    /// sequence-numbered tag namespace, so in-flight exchanges never
    /// interfere. A failed source aborts the whole exchange at wait time;
    /// see [`Comm::ialltoallw_salvage`] for per-source failure reporting.
    #[track_caller]
    pub fn ialltoallw<'a>(
        &'a self,
        send_buf: &'a [u8],
        send_types: &'a [Datatype],
        recv_types: &'a [Datatype],
    ) -> Result<AlltoallwRequest<'a>> {
        self.ialltoallw_impl(send_buf, send_types, recv_types, false)
    }

    /// Nonblocking [`Comm::alltoallw_salvage`]: like [`Comm::ialltoallw`],
    /// but a failed source is recorded in the completion report while the
    /// remaining sources still drain.
    #[track_caller]
    pub fn ialltoallw_salvage<'a>(
        &'a self,
        send_buf: &'a [u8],
        send_types: &'a [Datatype],
        recv_types: &'a [Datatype],
    ) -> Result<AlltoallwRequest<'a>> {
        self.ialltoallw_impl(send_buf, send_types, recv_types, true)
    }

    /// Post one alltoallw exchange: validate, claim a collective sequence
    /// number, and run the send phase eagerly. All receive-side work is
    /// deferred to the returned request.
    #[track_caller]
    fn ialltoallw_impl<'a>(
        &'a self,
        send_buf: &'a [u8],
        send_types: &'a [Datatype],
        recv_types: &'a [Datatype],
        salvage: bool,
    ) -> Result<AlltoallwRequest<'a>> {
        let n = self.size();
        if send_types.len() != n || recv_types.len() != n {
            return Err(Error::CollectiveMismatch {
                detail: format!(
                    "alltoallw: expected {n} send and recv types, got {} and {}",
                    send_types.len(),
                    recv_types.len()
                ),
            });
        }
        let seq = self.next_coll_seq();
        // Salvage is wire-compatible with the plain variant, so both record
        // the same kind: they may legitimately pair across ranks.
        self.record_collective(seq, CollFingerprint::here(CollectiveKind::Alltoallw, None, 0))?;
        self.sched_point("ialltoallw");
        let me = self.rank();
        let tag = coll_key_tag(seq, PHASE_DATA);
        let zerocopy = self.world.zerocopy_active();
        // Recovery is armed only when corruption is both detectable
        // (checksums on) and possible (a corrupt-capable plan installed):
        // clean runs keep the exact wire protocol, op counts, and blocking
        // receive paths they had before the integrity plane existed.
        let retx = self.recovery_armed();
        let span = ddrtrace::span_arg("minimpi", "alltoallw", "seq", seq as i64);

        let progress = recv_types
            .iter()
            .enumerate()
            .map(|(s, dt)| {
                if s == me || dt.packed_len() == 0 {
                    SrcProgress::Skip
                } else {
                    SrcProgress::Pending { attempt: 0 }
                }
            })
            .collect();
        // The request is built before the send phase so that a mid-post
        // error drops it — and Drop drains whatever loans went out before
        // the failure, exactly as the old in-line guard did.
        let mut req = AlltoallwRequest {
            comm: self,
            seq,
            send_buf,
            send_types,
            recv_types,
            salvage,
            retx,
            loans: Vec::new(),
            duties: None,
            progress,
            failed: Vec::new(),
            self_copy_done: false,
            settled: false,
            _span: span,
        };

        // Send phase (buffered; blocks only on the flow-control gate when a
        // pair's credit window or the memory budget is full — the executor
        // in ddr-core clamps pipeline depth to the credit window precisely
        // so these eager deposits cannot deadlock). A deposit fails if this
        // rank itself is dead — a hard error even under salvage — or with a
        // structured Timeout/MemoryPressure if a full gate makes no
        // progress for the whole watchdog window.
        for (d, dt) in send_types.iter().enumerate() {
            if d == me || dt.packed_len() == 0 {
                continue;
            }
            // At or below the threshold the rendezvous handshake costs as
            // much as (or more than) the copy it avoids, so small messages
            // stage even in zero-copy mode; only strictly larger messages
            // loan (threshold 0 loans everything).
            if zerocopy && dt.packed_len() > self.world.zc_threshold {
                // Validate sender-side bounds eagerly, where the legacy path
                // would have failed packing.
                dt.check_bounds(send_buf.len())?;
                let cell = self.deposit_shared(d, tag, send_buf, *dt)?;
                req.loans.push((d, cell));
            } else {
                let _pack = ddrtrace::span_arg("minimpi", "pack", "bytes", dt.packed_len() as i64);
                // Fused pack+checksum: one traversal of the source selection
                // produces both the packed payload and its envelope checksum.
                let (packed, pre) = self.pack_staged(dt, send_buf, tag)?;
                self.deposit_sig_pre(d, tag, packed, Some(TypeSig::of(dt)), pre)?;
            }
        }

        // Recovery-mode sender duties: track which destinations still owe a
        // terminal verdict and answer their NACKs with staged retransmits
        // from the still-borrowed `send_buf`.
        req.duties = retx.then(|| RetxSender::new(self, send_buf, send_types, seq));
        Ok(req)
    }

    /// Receive one alltoallw message from `s` with NACK/retransmit recovery:
    /// verify, NACK on corruption (after seeded exponential backoff),
    /// consume the staged retransmit, give up with
    /// [`Error::IntegrityFailure`] once `DDR_RETRANSMIT_MAX` retransmits all
    /// failed. Always leaves the sender terminally settled (ACK or FAIL) so
    /// no outcome of this rank can strand it — exhaustion is a structured
    /// error, never a hang. Waits poll via [`Comm::take_polling`] so this
    /// rank's own sender duties stay serviced throughout.
    /// `start_attempt` carries recovery progress made by a nonblocking
    /// [`AlltoallwRequest::test`] into the blocking wait: attempt 0 takes
    /// from the data phase, later attempts from the retransmit phase.
    fn recv_with_retransmit(
        &self,
        s: usize,
        seq: u64,
        dt: &Datatype,
        recv_buf: &mut [u8],
        duties: &mut RetxSender<'_>,
        start_attempt: u32,
    ) -> Result<()> {
        let data_tag = coll_key_tag(seq, PHASE_DATA);
        let verdict_tag = coll_key_tag(seq, PHASE_VERDICT);
        let retx_tag = coll_key_tag(seq, PHASE_RETX);
        let mut attempt: u32 = start_attempt;
        loop {
            let take_tag = if attempt == 0 { data_tag } else { retx_tag };
            let env = match self.take_polling(s, take_tag, duties) {
                Ok(env) => env,
                Err(e) => {
                    let _ = self.deposit_control(s, verdict_tag, vec![VERDICT_FAIL]);
                    return Err(e);
                }
            };
            match self.deliver_alltoallw(s, take_tag, env, dt, recv_buf) {
                Ok(()) => {
                    let _ = self.deposit_control(s, verdict_tag, vec![VERDICT_ACK]);
                    return Ok(());
                }
                Err(Error::IntegrityFailure { .. }) => {
                    attempt += 1;
                    if attempt > self.world.retransmit_max {
                        self.world.integrity.exhausted.fetch_add(1, Ordering::Relaxed);
                        ddrtrace::instant_arg("minimpi", "integrity_exhausted", "src", s as i64);
                        let _ = self.deposit_control(s, verdict_tag, vec![VERDICT_FAIL]);
                        return Err(Error::IntegrityFailure {
                            src: s,
                            dst: self.rank(),
                            tag: data_tag,
                            attempt: attempt - 1,
                        });
                    }
                    std::thread::sleep(self.retransmit_backoff_delay(s, attempt));
                    self.deposit_control(s, verdict_tag, vec![VERDICT_NACK])?;
                }
                Err(e) => {
                    let _ = self.deposit_control(s, verdict_tag, vec![VERDICT_FAIL]);
                    return Err(e);
                }
            }
        }
    }

    /// Recovery-mode receive: poll for a message from `src` under `key_tag`
    /// while servicing this rank's own sender duties every iteration.
    /// Blocking on the mailbox condvar instead would deadlock two ranks that
    /// each need a retransmit from the other.
    fn take_polling(
        &self,
        src: usize,
        key_tag: u64,
        duties: &mut RetxSender<'_>,
    ) -> Result<Envelope> {
        self.fault_tick()?;
        let src_world = self.members[src];
        let deadline = Instant::now() + self.timeout();
        loop {
            self.sched_point("retx_poll");
            match self.my_mailbox().try_take((self.comm_id, src, key_tag)) {
                // Match-time epoch fence, as in `take_envelope_from`.
                Some(env) if env.epoch != self.epoch => {
                    self.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                    ddrtrace::instant_arg("minimpi", "fenced_msg", "src", src as i64);
                }
                Some(env) => {
                    self.note_delivery(&env);
                    return Ok(env);
                }
                None => {
                    if !self.world.is_alive(src_world) {
                        return Err(Error::PeerDead { rank: src });
                    }
                    duties.service(self)?;
                    if Instant::now() >= deadline {
                        return Err(Error::Timeout {
                            rank: self.rank(),
                            src: Some(src),
                            tag: key_tag,
                            comm_id: self.comm_id,
                        });
                    }
                    std::thread::sleep(RETX_POLL);
                }
            }
        }
    }

    /// Backoff before NACK attempt `k` (1-based): `base × 2^(k-1)` plus a
    /// deterministic sub-`base` jitter seeded per stream, so receivers
    /// recovering from the same sender don't NACK in lockstep.
    fn retransmit_backoff_delay(&self, src: usize, attempt: u32) -> Duration {
        let base = self.world.retransmit_backoff;
        if base.is_zero() {
            return base;
        }
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(10));
        let span = base.as_nanos().max(1) as u64;
        let jitter = mix64(self.stream_seed(src, attempt as u64, self.epoch)) % span;
        exp + Duration::from_nanos(jitter)
    }

    /// Drop every message still queued under this exchange's sequence number
    /// — data, verdicts, and retransmits alike. Called on abort paths (and
    /// after settlement): dropping a staged payload discards bytes nobody
    /// will read, and dropping a zero-copy envelope revokes its loan via
    /// [`crate::zerocopy::ZcHandle`]'s `Drop`, so the alive-but-departing
    /// receiver cannot strand a healthy sender on the watchdog.
    fn sweep_exchange(&self, seq: u64) {
        let mb = self.my_mailbox();
        let mut swept = 0i64;
        for phase in [PHASE_DATA, PHASE_VERDICT, PHASE_RETX] {
            let tag = coll_key_tag(seq, phase);
            for s in 0..self.size() {
                while let Some(env) = mb.try_take((self.comm_id, s, tag)) {
                    drop(env);
                    swept += 1;
                }
            }
        }
        if swept > 0 {
            ddrtrace::instant_arg("minimpi", "exchange_sweep", "msgs", swept);
        }
    }

    /// Place one received alltoallw message into `recv_buf` through `dt`,
    /// verifying its envelope checksum along the way. Staged payloads verify
    /// in packed form — *before* unpacking when recovery is armed (a corrupt
    /// payload must never touch `recv_buf` ahead of its retransmit), fused
    /// into the unpack traversal otherwise; zero-copy loans are claimed, copied
    /// straight out of the sender's buffer, tainted with any claim-time
    /// corrupt-fault keystreams, and re-verified over the receiver's copy
    /// *before* the loan cell flips to DONE — a corrupt claim never silently
    /// releases the sender.
    fn deliver_alltoallw(
        &self,
        src: usize,
        key_tag: u64,
        env: Envelope,
        dt: &Datatype,
        recv_buf: &mut [u8],
    ) -> Result<()> {
        // Signature check happens *before* the payload is consumed: failing a
        // staged message leaves `recv_buf` untouched, and dropping an
        // unclaimed zero-copy envelope revokes the loan, releasing its
        // sender.
        self.verify_type_sig(src, key_tag, env.type_sig.as_ref(), &TypeSig::of(dt))?;
        let Envelope { epoch, payload, checksum, taints, .. } = env;
        match payload {
            Payload::Bytes(packed) => {
                let _unpack = ddrtrace::span_arg("minimpi", "unpack", "bytes", packed.len() as i64);
                let res = if self.recovery_armed() {
                    // Verify in packed form *before* unpacking: a corrupt
                    // payload must never touch `recv_buf`, because the
                    // NACK/retransmit protocol will deliver a clean copy
                    // into it afterwards.
                    self.verify_payload(src, key_tag, epoch, checksum, &packed)
                        .and_then(|()| dt.unpack(&packed, recv_buf))
                } else {
                    // No retransmit can follow, so a mismatch is terminal
                    // either way — fold verification into the unpack
                    // traversal and skip the separate hash pass.
                    self.unpack_verifying(src, key_tag, epoch, checksum, dt, &packed, recv_buf)
                };
                // The buffer came from the sender's pool.acquire; the pool is
                // world-shared, so recycling here closes the loop.
                self.world.pool.release(packed);
                res
            }
            Payload::Shared(h) => {
                let _zc =
                    ddrtrace::span_arg("minimpi", "zc_copy", "bytes", h.dt.packed_len() as i64);
                self.sched_point("zc_claim");
                if !h.cell.try_claim() {
                    // The sender revoked the loan before we got here.
                    return Err(Error::PeerDead { rank: src });
                }
                // A claim-time race (the sender wrote the lent region while
                // our claim is causally unordered with that write) is
                // surfaced only after the copy completes: erroring before
                // `finish()` would strand the sender in its wait.
                let race = match &self.world.check {
                    Some(check) => {
                        check.loan_claimed(&h.cell, self.world_rank()).err().map(Error::DataRace)
                    }
                    None => None,
                };
                // SAFETY: the claim succeeded, so the sender is blocked in
                // ZcCell::wait and `send_buf` stays alive until finish().
                let src_buf = unsafe { h.src_slice() };
                let res = self.zc_copy_in(src_buf, &h.dt, dt, recv_buf).and_then(|()| {
                    // Claim-time fault injection: the loan had no in-flight
                    // bytes to scramble, so the injector recorded keystream
                    // inits and the corruption lands on *our* copy here —
                    // the sender's buffer stays pristine for retransmits.
                    for &init in &taints {
                        let mut ks = Keystream::new(init);
                        for (off, len) in dt.byte_runs() {
                            ks.scramble(&mut recv_buf[off..off + len]);
                        }
                    }
                    self.verify_selection(src, key_tag, epoch, checksum, dt, recv_buf)
                });
                if let Some(check) = &self.world.check {
                    check.loan_done(&h.cell, self.world_rank());
                }
                h.cell.finish();
                match race {
                    Some(race) if res.is_ok() => Err(race),
                    _ => res,
                }
            }
        }
    }

    /// Copy `src_dt`'s selection of the sender's buffer into `dst_dt`'s
    /// selection of `recv_buf`. [`copy_selection`] dispatches through the
    /// pack-kernel layer, which fans large copies out across the copy pool;
    /// this wrapper only keeps the transport-level counter.
    fn zc_copy_in(
        &self,
        src_buf: &[u8],
        src_dt: &Datatype,
        dst_dt: &Datatype,
        recv_buf: &mut [u8],
    ) -> Result<()> {
        if src_dt.packed_len() >= PARALLEL_COPY_MIN_BYTES {
            self.world.transport.parallel_copies.fetch_add(1, Ordering::Relaxed);
        }
        copy_selection(src_buf, src_dt, recv_buf, dst_dt)
    }

    /// Sparse personalized exchange: send each `(dest, payload)` pair and
    /// receive exactly one message from each rank in `recv_srcs`. Runs in the
    /// private collective namespace, so it composes with user-tag traffic.
    ///
    /// This is the "direct send/receive instead of `MPI_Alltoallw`" pattern
    /// the DDR paper proposes as future work for mappings that only touch a
    /// few neighbors. Every rank of the communicator must call it in the same
    /// collective order (ranks with nothing to send or receive pass empty
    /// arguments). Returns `(src, payload)` pairs ordered by `recv_srcs`.
    #[track_caller]
    pub fn sparse_exchange(
        &self,
        sends: Vec<(usize, Vec<u8>)>,
        recv_srcs: &[usize],
    ) -> Result<Vec<(usize, Vec<u8>)>> {
        let seq = self.next_coll_seq();
        self.record_collective(
            seq,
            CollFingerprint::here(CollectiveKind::SparseExchange, None, 0),
        )?;
        let me = self.rank();
        // Self messages stay local; several per call are allowed (a plan may
        // move multiple rectangles from a rank to itself) and are consumed
        // in send order.
        let mut self_payloads = std::collections::VecDeque::new();
        for (dest, payload) in sends {
            self.check_rank_pub(dest)?;
            if dest == me {
                self_payloads.push_back(payload);
            } else {
                self.deposit_to(dest, coll_key_tag(seq, 0), payload)?;
            }
        }
        let mut out = Vec::with_capacity(recv_srcs.len());
        for &src in recv_srcs {
            self.check_rank_pub(src)?;
            if src == me {
                let payload =
                    self_payloads.pop_front().ok_or_else(|| Error::CollectiveMismatch {
                        detail: "sparse_exchange: self receive without matching self send".into(),
                    })?;
                out.push((src, payload));
            } else {
                out.push((src, self.take_from(src, coll_key_tag(seq, 0))?));
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Scan
    // ------------------------------------------------------------------

    /// Inclusive prefix reduction: rank `r` receives `op` folded over the
    /// contributions of ranks `0..=r`, in rank order.
    #[track_caller]
    pub fn scan<T: Pod>(&self, data: &[T], op: impl Fn(T, T) -> T) -> Result<Vec<T>> {
        // Linear chain: rank r waits for the prefix of r-1, folds, forwards.
        let seq = self.next_coll_seq();
        // The contribution's byte length doubles as the datatype signature:
        // scan requires equal-length contributions, so a mismatch is a
        // divergence detectable before the chain stalls.
        self.record_collective(
            seq,
            CollFingerprint::here(CollectiveKind::Scan, None, bytes_of(data).len() as u64),
        )?;
        let me = self.rank();
        let mut acc: Vec<T> = data.to_vec();
        if me > 0 {
            let prev_bytes = self.take_from(me - 1, coll_key_tag(seq, 0))?;
            let prev: Vec<T> = vec_from_bytes(&prev_bytes).ok_or(Error::SizeMismatch {
                expected: std::mem::size_of::<T>(),
                got: prev_bytes.len(),
            })?;
            if prev.len() != acc.len() {
                return Err(Error::CollectiveMismatch {
                    detail: "scan: contribution lengths differ across ranks".into(),
                });
            }
            for (a, &p) in acc.iter_mut().zip(prev.iter()) {
                *a = op(p, *a);
            }
        }
        if me + 1 < self.size() {
            self.deposit_to(me + 1, coll_key_tag(seq, 0), bytes_of(&acc).to_vec())?;
        }
        Ok(acc)
    }

    // ------------------------------------------------------------------
    // Salvage variants (degraded-mode collectives)
    // ------------------------------------------------------------------

    /// Like [`Comm::alltoallw`], but a failed receive from one source does
    /// not abort the exchange: the remaining sources are still drained so
    /// the maximum amount of data survives, and the per-source failures are
    /// reported in an [`ExchangeReport`].
    ///
    /// Errors that indicate *this* rank cannot continue (it was fault-killed
    /// mid-exchange, or its own arguments are malformed) are still returned
    /// as `Err`.
    #[track_caller]
    pub fn alltoallw_salvage(
        &self,
        send_buf: &[u8],
        send_types: &[Datatype],
        recv_buf: &mut [u8],
        recv_types: &[Datatype],
    ) -> Result<ExchangeReport> {
        self.alltoallw_impl(send_buf, send_types, recv_buf, recv_types, true)
    }

    /// Like [`Comm::sparse_exchange`], but failures on individual sources
    /// are reported per source instead of aborting the whole exchange.
    /// Returns one entry per element of `recv_srcs`, in order.
    #[track_caller]
    pub fn sparse_exchange_salvage(
        &self,
        sends: Vec<(usize, Vec<u8>)>,
        recv_srcs: &[usize],
    ) -> Result<Vec<(usize, Result<Vec<u8>>)>> {
        let seq = self.next_coll_seq();
        self.record_collective(
            seq,
            CollFingerprint::here(CollectiveKind::SparseExchange, None, 0),
        )?;
        let me = self.rank();
        let mut self_payloads = std::collections::VecDeque::new();
        for (dest, payload) in sends {
            self.check_rank_pub(dest)?;
            if dest == me {
                self_payloads.push_back(payload);
            } else {
                self.deposit_to(dest, coll_key_tag(seq, 0), payload)?;
            }
        }
        let mut out = Vec::with_capacity(recv_srcs.len());
        for &src in recv_srcs {
            self.check_rank_pub(src)?;
            if src == me {
                let res = self_payloads.pop_front().ok_or_else(|| Error::CollectiveMismatch {
                    detail: "sparse_exchange: self receive without matching self send".into(),
                });
                out.push((src, res));
            } else {
                match self.take_from(src, coll_key_tag(seq, 0)) {
                    Ok(p) => out.push((src, Ok(p))),
                    Err(Error::PeerDead { rank }) if rank == me && !self.is_alive(me) => {
                        return Err(Error::PeerDead { rank })
                    }
                    Err(e) => out.push((src, Err(e))),
                }
            }
        }
        Ok(out)
    }
}

/// Receive progress of one source within an in-flight exchange.
#[derive(Clone, Copy)]
enum SrcProgress {
    /// Nothing is owed by this source (self rank or empty selection).
    Skip,
    /// Still owed a message; `attempt` counts NACKed retransmit rounds so a
    /// recovery started under [`AlltoallwRequest::test`] resumes correctly
    /// inside a later [`AlltoallwRequest::wait`].
    Pending { attempt: u32 },
    /// Terminally resolved: delivered, or recorded as failed under salvage.
    Done,
}

/// An in-flight nonblocking alltoallw exchange (see [`Comm::ialltoallw`]).
///
/// Soundness anchor of the zero-copy fast path: `send_buf` is lent to peers
/// as raw pointers, so the borrow the request holds must stay alive while
/// any peer might still read it — and *every* exit path must drain the
/// loans. [`AlltoallwRequest::wait`] and [`AlltoallwRequest::test`] do so on
/// completion; the `Drop` impl covers early exits (errors, panics, a request
/// abandoned without waiting) by revoking unclaimed loans immediately and
/// waiting out claims already in flight (a bounded memcpy).
///
/// The receive buffer is supplied at completion time (`wait`/`test`), not at
/// post time, so several requests receiving into disjoint selections of the
/// same buffer — the pipelined redistribution pattern — need no aliasing
/// tricks. Epoch fencing, checksum verification, NACK/retransmit recovery,
/// and vector-clock checking all behave exactly as in the blocking
/// collective: the blocking path *is* post-then-wait on this type.
#[must_use = "an exchange completes only through wait()/test(); dropping the request revokes its zero-copy loans"]
pub struct AlltoallwRequest<'a> {
    comm: &'a Comm,
    seq: u64,
    send_buf: &'a [u8],
    send_types: &'a [Datatype],
    recv_types: &'a [Datatype],
    salvage: bool,
    retx: bool,
    loans: Vec<(usize, Arc<ZcCell>)>,
    duties: Option<RetxSender<'a>>,
    progress: Vec<SrcProgress>,
    failed: Vec<(usize, Error)>,
    self_copy_done: bool,
    /// Verdict/sweep cleanup already ran (completion or abort); Drop only
    /// drains loans.
    settled: bool,
    /// Keeps the `minimpi/alltoallw` trace span open from post to
    /// completion, so phase tables attribute the full exchange lifetime.
    _span: ddrtrace::SpanGuard,
}

impl<'a> AlltoallwRequest<'a> {
    /// The collective sequence number this exchange runs under.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Block until every source resolved, then finish the exchange: drain
    /// the zero-copy loans, settle retransmit duties, and report per-source
    /// failures (salvage mode) or abort on the first (plain mode). Consumes
    /// the request; `recv_buf` must be the same buffer every completion call
    /// on this request receives into.
    #[track_caller]
    pub fn wait(mut self, recv_buf: &mut [u8]) -> Result<ExchangeReport> {
        let comm = self.comm;
        comm.sched_point("iwait");
        let me = comm.rank();
        let tag = coll_key_tag(self.seq, PHASE_DATA);
        let mut abort = self.self_copy(recv_buf).err();
        if abort.is_none() {
            // Receive phase: under salvage, drain every source and record
            // failures; otherwise abort on the first one.
            for s in 0..self.progress.len() {
                let SrcProgress::Pending { attempt } = self.progress[s] else { continue };
                let dt = self.recv_types[s];
                let res = match self.duties.as_mut() {
                    Some(d) => comm.recv_with_retransmit(s, self.seq, &dt, recv_buf, d, attempt),
                    None => comm
                        .take_envelope_from(s, tag)
                        .and_then(|env| comm.deliver_alltoallw(s, tag, env, &dt, recv_buf)),
                };
                // Whatever the outcome, the source is terminally resolved:
                // `recv_with_retransmit` always settles it with ACK or FAIL.
                self.progress[s] = SrcProgress::Done;
                match res {
                    Ok(()) => {}
                    // Malformed local arguments are hard errors in both modes.
                    Err(e @ (Error::DatatypeMismatch { .. } | Error::SizeMismatch { .. })) => {
                        abort = Some(e);
                        break;
                    }
                    // Killed mid-drain: everything still missing is lost.
                    Err(Error::PeerDead { rank }) if rank == me && !comm.is_alive(me) => {
                        abort = Some(Error::PeerDead { rank });
                        break;
                    }
                    Err(e) if self.salvage => self.failed.push((s, e)),
                    Err(e) => {
                        abort = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = abort {
            // Our own outstanding loans are revoked by Drop on this return.
            self.abort_cleanup();
            return Err(e);
        }
        self.finish_clean()
    }

    /// Nonblocking progress poll: delivers whatever has already arrived into
    /// `recv_buf`, settles loans whose receivers finished copying, services
    /// retransmit duties, and returns `Ok(true)` once the exchange is fully
    /// complete (after which the request may be dropped freely). Never
    /// sleeps on a mailbox; an incomplete exchange returns `Ok(false)`.
    ///
    /// Errors carry the same classification as [`AlltoallwRequest::wait`]:
    /// salvage mode records per-source failures for the final report instead
    /// of erroring, and a returned `Err` means the exchange aborted (its
    /// cleanup has already run).
    #[track_caller]
    pub fn test(&mut self, recv_buf: &mut [u8]) -> Result<bool> {
        if self.settled {
            return Ok(true);
        }
        let comm = self.comm;
        comm.sched_point("itest");
        if let Err(e) = comm.fault_tick().and_then(|()| self.self_copy(recv_buf)) {
            self.abort_cleanup();
            return Err(e);
        }
        let me = comm.rank();
        let data_tag = coll_key_tag(self.seq, PHASE_DATA);
        let retx_tag = coll_key_tag(self.seq, PHASE_RETX);
        let verdict_tag = coll_key_tag(self.seq, PHASE_VERDICT);
        let mut abort = None;
        for s in 0..self.progress.len() {
            let SrcProgress::Pending { attempt } = self.progress[s] else { continue };
            let dt = self.recv_types[s];
            let take_tag = if attempt == 0 { data_tag } else { retx_tag };
            // Nonblocking probe with the match-time epoch fence of the
            // blocking receives.
            let env = loop {
                match comm.my_mailbox().try_take((comm.comm_id, s, take_tag)) {
                    Some(env) if env.epoch != comm.epoch => {
                        comm.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                        ddrtrace::instant_arg("minimpi", "fenced_msg", "src", s as i64);
                    }
                    other => break other,
                }
            };
            let res = match env {
                None if comm.is_alive(s) => continue, // still in flight
                None => Err(Error::PeerDead { rank: s }),
                Some(env) => {
                    comm.note_delivery(&env);
                    comm.deliver_alltoallw(s, take_tag, env, &dt, recv_buf)
                }
            };
            match res {
                Ok(()) => {
                    if self.retx {
                        let _ = comm.deposit_control(s, verdict_tag, vec![VERDICT_ACK]);
                    }
                    self.progress[s] = SrcProgress::Done;
                }
                Err(Error::IntegrityFailure { .. }) if self.retx => {
                    let next = attempt + 1;
                    if next > comm.world.retransmit_max {
                        comm.world.integrity.exhausted.fetch_add(1, Ordering::Relaxed);
                        ddrtrace::instant_arg("minimpi", "integrity_exhausted", "src", s as i64);
                        let _ = comm.deposit_control(s, verdict_tag, vec![VERDICT_FAIL]);
                        let e = Error::IntegrityFailure {
                            src: s,
                            dst: me,
                            tag: data_tag,
                            attempt: next - 1,
                        };
                        self.progress[s] = SrcProgress::Done;
                        if self.salvage {
                            self.failed.push((s, e));
                        } else {
                            abort = Some(e);
                            break;
                        }
                    } else {
                        // A nonblocking poll never sleeps a backoff — NACK
                        // right away; the sender's retransmit lands for a
                        // later test()/wait() to consume.
                        self.progress[s] = SrcProgress::Pending { attempt: next };
                        if let Err(e) = comm.deposit_control(s, verdict_tag, vec![VERDICT_NACK]) {
                            abort = Some(e);
                            break;
                        }
                    }
                }
                Err(e) => {
                    if self.retx {
                        let _ = comm.deposit_control(s, verdict_tag, vec![VERDICT_FAIL]);
                    }
                    self.progress[s] = SrcProgress::Done;
                    match e {
                        Error::DatatypeMismatch { .. } | Error::SizeMismatch { .. } => {
                            abort = Some(e);
                            break;
                        }
                        Error::PeerDead { rank } if rank == me && !comm.is_alive(me) => {
                            abort = Some(Error::PeerDead { rank });
                            break;
                        }
                        e if self.salvage => self.failed.push((s, e)),
                        e => {
                            abort = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        if abort.is_none() {
            if let Some(d) = self.duties.as_mut() {
                if let Err(e) = d.service(comm) {
                    abort = Some(e);
                }
            }
        }
        if let Some(e) = abort {
            self.abort_cleanup();
            return Err(e);
        }
        // Settle loans whose cells already reached a terminal state. A
        // PENDING cell must *not* be probed through ZcCell::wait with an
        // expired deadline — that would revoke a loan the receiver simply
        // has not reached yet — so only terminal cells (or loans to dead
        // receivers, revoked eagerly here) are classified.
        let mut revoked = 0u64;
        self.loans.retain(|(dest, cell)| {
            if !cell.is_terminal() && (comm.is_alive(*dest) || !cell.revoke_if_pending()) {
                return true; // pending or mid-copy: check again next poll
            }
            comm.sched_point("zc_wait");
            match cell.wait(Instant::now(), || false) {
                ZcWait::Revoked => {
                    ddrtrace::instant_arg("minimpi", "zc_revoke", "dest", *dest as i64);
                    revoked += 1;
                }
                ZcWait::Done => comm.note_loan_settled(cell),
            }
            false
        });
        if revoked > 0 {
            comm.world.transport.revoked_msgs.fetch_add(revoked, Ordering::Relaxed);
        }
        let sources_done = !self.progress.iter().any(|p| matches!(p, SrcProgress::Pending { .. }));
        let duties_settled = self.duties.as_ref().is_none_or(|d| !d.pending.iter().any(|&p| p));
        if !(sources_done && self.loans.is_empty() && duties_settled) {
            return Ok(false);
        }
        if let Some(mut d) = self.duties.take() {
            // Nothing pending: settle() returns without polling.
            let settled = d.settle(comm);
            comm.sweep_exchange(self.seq);
            self.settled = true;
            settled?;
        }
        self.settled = true;
        Ok(true)
    }

    /// The completion report accumulated so far. Meaningful after
    /// [`AlltoallwRequest::test`] returned `Ok(true)`; `wait` returns the
    /// report directly.
    pub fn report(&mut self) -> ExchangeReport {
        ExchangeReport { failed: std::mem::take(&mut self.failed) }
    }

    /// Wait on several exchanges in post order, delivering into the same
    /// receive buffer — the callers' selections must be pairwise disjoint
    /// (the redistribution plan guarantees this across rounds). On error the
    /// remaining requests are dropped, which drains their loans and settles
    /// their peers exactly like an individual abort.
    #[track_caller]
    pub fn wait_all(
        requests: Vec<AlltoallwRequest<'a>>,
        recv_buf: &mut [u8],
    ) -> Result<Vec<ExchangeReport>> {
        let mut reports = Vec::with_capacity(requests.len());
        for req in requests {
            reports.push(req.wait(recv_buf)?);
        }
        Ok(reports)
    }

    /// Self-transfer: direct selection-to-selection copy (no staging in
    /// either mode — faults never apply to self-messages). Runs once, on the
    /// first completion call that supplies the receive buffer.
    fn self_copy(&mut self, recv_buf: &mut [u8]) -> Result<()> {
        if self.self_copy_done {
            return Ok(());
        }
        self.self_copy_done = true;
        let me = self.comm.rank();
        if self.send_types[me].packed_len() > 0 || self.recv_types[me].packed_len() > 0 {
            let _copy = ddrtrace::span_arg(
                "minimpi",
                "self_copy",
                "bytes",
                self.send_types[me].packed_len() as i64,
            );
            copy_selection(self.send_buf, &self.send_types[me], recv_buf, &self.recv_types[me])?;
        }
        Ok(())
    }

    /// Clean completion: drain the loans against the watchdog deadline,
    /// settle retransmit duties, sweep, and emit the report.
    fn finish_clean(&mut self) -> Result<ExchangeReport> {
        let comm = self.comm;
        // Completion: wait until every lent region was consumed (or revoke
        // loans to receivers that can no longer claim them). Safe to do
        // before settlement even though the drain doesn't service NACKs: a
        // receiver blocked on a retransmit has, by the ascending source
        // order, already claimed every loan from the sender it waits on, so
        // any chain of "draining sender → receiver waiting on a
        // lower-ranked sender" strictly descends and bottoms out at a rank
        // that is still servicing.
        {
            let _complete = ddrtrace::span("minimpi", "zc_complete");
            let revoked = self.drain_loans(Instant::now() + comm.timeout());
            if revoked > 0 {
                comm.world.transport.revoked_msgs.fetch_add(revoked, Ordering::Relaxed);
            }
        }
        // Settlement: keep servicing NACKs until every destination delivered
        // its terminal verdict (or died) — only then is `send_buf` allowed
        // to go out of scope without breaking an in-progress recovery.
        if let Some(mut d) = self.duties.take() {
            let _settle = ddrtrace::span("minimpi", "retx_settle");
            let settled = d.settle(comm);
            comm.sweep_exchange(self.seq);
            self.settled = true;
            settled?;
        }
        self.settled = true;
        Ok(ExchangeReport { failed: std::mem::take(&mut self.failed) })
    }

    /// Abort-path settlement (shared by wait, test, and Drop): FAIL every
    /// source still owed a verdict so our departure can't strand a healthy
    /// sender, give our own receivers their retransmit settlement, and sweep
    /// the exchange's queued remainder — dropping a queued zero-copy
    /// envelope revokes its loan, releasing the sender immediately.
    fn abort_cleanup(&mut self) {
        let comm = self.comm;
        if self.retx {
            for (s, p) in self.progress.iter().enumerate() {
                if matches!(p, SrcProgress::Pending { .. }) {
                    let _ = comm.deposit_control(
                        s,
                        coll_key_tag(self.seq, PHASE_VERDICT),
                        vec![VERDICT_FAIL],
                    );
                }
            }
            // Our *data* went out in the send phase regardless of this
            // abort — stay available (best-effort) until every receiver
            // recovering from us reaches a terminal verdict.
            if let Some(mut d) = self.duties.take() {
                let _ = d.settle(comm);
            }
        }
        comm.sweep_exchange(self.seq);
        self.settled = true;
    }

    /// Wait until every loan was copied or revoked, giving receivers until
    /// `deadline`. Returns the number revoked.
    fn drain_loans(&mut self, deadline: Instant) -> u64 {
        let comm = self.comm;
        let mut revoked = 0;
        for (dest, cell) in self.loans.drain(..) {
            comm.sched_point("zc_wait");
            // A dead receiver can never claim the loan — revoke right away
            // rather than burning the watchdog.
            match cell.wait(deadline, || !comm.is_alive(dest)) {
                ZcWait::Revoked => {
                    ddrtrace::instant_arg("minimpi", "zc_revoke", "dest", dest as i64);
                    revoked += 1;
                }
                // The receiver copied the loan out: tell the checker, so the
                // sender's later writes to the lent region are ordered after
                // the receiver's copy.
                ZcWait::Done => comm.note_loan_settled(&cell),
            }
        }
        revoked
    }
}

impl Drop for AlltoallwRequest<'_> {
    fn drop(&mut self) {
        if !self.settled {
            // Dropped without completing (the latent-leak exit path): settle
            // peers best-effort without blocking — queued NACKs are answered
            // once, unreached sources are FAILed — then sweep. Receivers
            // whose verdicts arrive after this point resolve through their
            // own bounded waits.
            let comm = self.comm;
            if self.retx {
                for (s, p) in self.progress.iter().enumerate() {
                    if matches!(p, SrcProgress::Pending { .. }) {
                        let _ = comm.deposit_control(
                            s,
                            coll_key_tag(self.seq, PHASE_VERDICT),
                            vec![VERDICT_FAIL],
                        );
                    }
                }
                if let Some(mut d) = self.duties.take() {
                    let _ = d.service(comm);
                }
            }
            comm.sweep_exchange(self.seq);
        }
        // Every exit path drains the zero-copy loans: revoke anything still
        // unclaimed *now*; claims already in flight are waited out so the
        // borrow of `send_buf` stays sound.
        self.drain_loans(Instant::now());
    }
}

/// Sender half of the alltoallw NACK/retransmit protocol.
///
/// Holds borrows of `send_buf`/`send_types` (keeping the pristine data alive
/// and provably unmoved), and tracks which destinations still owe a terminal
/// verdict. [`RetxSender::service`] is called from every recovery-mode wait
/// loop on this rank — answering NACKs with freshly staged retransmits even
/// while the rank is itself blocked on some other sender — and
/// [`RetxSender::settle`] holds the rank in the exchange until every
/// destination ACKed, FAILed, or died, so `send_buf` cannot go out of scope
/// mid-recovery.
struct RetxSender<'a> {
    send_buf: &'a [u8],
    send_types: &'a [Datatype],
    verdict_tag: u64,
    retx_tag: u64,
    /// `pending[d]` — destination `d` has our data but no terminal verdict
    /// from it yet. Self and empty transfers start settled.
    pending: Vec<bool>,
}

impl<'a> RetxSender<'a> {
    fn new(comm: &Comm, send_buf: &'a [u8], send_types: &'a [Datatype], seq: u64) -> Self {
        let me = comm.rank();
        let pending =
            send_types.iter().enumerate().map(|(d, dt)| d != me && dt.packed_len() > 0).collect();
        RetxSender {
            send_buf,
            send_types,
            verdict_tag: coll_key_tag(seq, PHASE_VERDICT),
            retx_tag: coll_key_tag(seq, PHASE_RETX),
            pending,
        }
    }

    /// Drain queued verdicts: a NACK re-packs that destination's selection
    /// from the pristine `send_buf` and stages it on the retransmit phase
    /// (through the normal fault-injecting deposit — retransmits can be
    /// corrupted again); ACK/FAIL settles the destination. Dead destinations
    /// settle implicitly: no verdict can ever arrive from them.
    fn service(&mut self, comm: &Comm) -> Result<()> {
        for d in 0..self.pending.len() {
            if !self.pending[d] {
                continue;
            }
            while let Some(env) = comm.my_mailbox().try_take((comm.comm_id, d, self.verdict_tag)) {
                if env.epoch != comm.epoch {
                    comm.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                comm.note_delivery(&env);
                let verdict = match &env.payload {
                    Payload::Bytes(b) if b.len() == 1 => b[0],
                    _ => {
                        return Err(Error::Internal {
                            detail: format!("malformed retransmit verdict from rank {d}"),
                        })
                    }
                };
                match verdict {
                    VERDICT_NACK => {
                        let dt = &self.send_types[d];
                        let _pack = ddrtrace::span_arg(
                            "minimpi",
                            "retx_pack",
                            "bytes",
                            dt.packed_len() as i64,
                        );
                        let (packed, pre) = comm.pack_staged(dt, self.send_buf, self.retx_tag)?;
                        comm.deposit_sig_pre(d, self.retx_tag, packed, Some(TypeSig::of(dt)), pre)?;
                        comm.world.integrity.retransmits.fetch_add(1, Ordering::Relaxed);
                        ddrtrace::instant_arg("minimpi", "integrity_retransmit", "dest", d as i64);
                    }
                    VERDICT_ACK | VERDICT_FAIL => {
                        self.pending[d] = false;
                        break;
                    }
                    other => {
                        return Err(Error::Internal {
                            detail: format!("unknown retransmit verdict {other} from rank {d}"),
                        })
                    }
                }
            }
            if self.pending[d] && !comm.is_alive(d) {
                self.pending[d] = false;
            }
        }
        Ok(())
    }

    /// Keep servicing until every destination reached a terminal verdict or
    /// died. Bounded by the communicator watchdog: a destination that is
    /// alive but never settles (it would itself be stuck in a bounded wait)
    /// surfaces as a structured timeout, never a hang.
    fn settle(&mut self, comm: &Comm) -> Result<()> {
        let deadline = Instant::now() + comm.timeout();
        loop {
            self.service(comm)?;
            if !self.pending.iter().any(|&p| p) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let unsettled = self.pending.iter().position(|&p| p);
                return Err(Error::Timeout {
                    rank: comm.rank(),
                    src: unsettled,
                    tag: self.verdict_tag,
                    comm_id: comm.comm_id,
                });
            }
            std::thread::sleep(RETX_POLL);
        }
    }
}

/// Per-source outcome of a salvaged exchange: which sources failed to
/// deliver, and why.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExchangeReport {
    /// `(source rank, error)` for every source whose contribution was lost.
    pub failed: Vec<(usize, Error)>,
}

impl ExchangeReport {
    /// True when every source delivered.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::mix64;
    use crate::Universe;
    use std::time::Duration;

    /// Tentpole regression: the planted "sender mutates a lent buffer while
    /// the receiver's claim may still be copying" bug must be convicted as a
    /// [`Error::DataRace`] *deterministically* — the write is causally
    /// unordered with the claim no matter how the threads interleave —
    /// and the same write must be clean once the loan is settled.
    #[test]
    fn sender_write_during_live_loan_is_a_race() {
        let len = 4096usize;
        let out = Universe::builder()
            .check(true)
            .zerocopy(true)
            .zerocopy_threshold(0)
            .timeout(Duration::from_secs(20))
            .run(2, move |comm| {
                let tag = coll_key_tag(0, 0);
                if comm.rank() == 0 {
                    let buf: &'static [u8] = Box::leak(vec![7u8; len].into_boxed_slice());
                    let dt = Datatype::Contiguous { len_bytes: len, offset: 0 };
                    let cell = comm.deposit_shared(1, tag, buf, dt).unwrap();
                    // Planted bug: write the lent region before the loan
                    // settles. Nothing orders this write against the
                    // receiver's copy, so it must convict on every schedule.
                    let race = comm.check_write(buf).unwrap_err();
                    assert!(matches!(race, Error::DataRace(_)), "expected a data race, got {race}");
                    assert!(race.to_string().contains("zero-copy loan"), "got {race}");
                    // Fixed version: wait for the copy, settle, then write —
                    // now the write is ordered after the claim and is clean.
                    let w = cell.wait(Instant::now() + Duration::from_secs(10), || false);
                    assert_eq!(w, ZcWait::Done);
                    comm.note_loan_settled(&cell);
                    comm.check_write(buf).unwrap();
                    assert!(comm.check_counters().unwrap().races >= 1);
                    Ok(vec![])
                } else {
                    // The claim itself may also convict (it races the
                    // sender's write when the write lands first) — either a
                    // clean payload or a DataRace is acceptable here, and
                    // both leave the sender released.
                    match comm.take_from(0, tag) {
                        Ok(bytes) => {
                            assert_eq!(bytes, vec![7u8; len]);
                            Ok(bytes)
                        }
                        Err(Error::DataRace(_)) => Ok(vec![]),
                        Err(e) => Err(e),
                    }
                }
            });
        assert!(out[0].is_ok(), "rank 0: {out:?}");
        assert!(out[1].is_ok(), "rank 1: {out:?}");
    }

    /// A loan nobody ever claims or revokes is an ownership leak: the
    /// finalize-time scan must fail the run loudly instead of silently
    /// leaking the lent buffer's exclusivity.
    #[test]
    #[should_panic(expected = "loan leak")]
    fn unclaimed_loan_fails_finalize_under_check() {
        Universe::builder()
            .check(true)
            .zerocopy(true)
            .zerocopy_threshold(0)
            .timeout(Duration::from_secs(5))
            .run(2, |comm| {
                if comm.rank() == 0 {
                    let buf: &'static [u8] = Box::leak(vec![1u8; 256].into_boxed_slice());
                    let dt = Datatype::Contiguous { len_bytes: 256, offset: 0 };
                    let _cell = comm.deposit_shared(1, coll_key_tag(0, 0), buf, dt).unwrap();
                    // Depart without waiting: the loan is never claimed,
                    // revoked, or settled — rank 1 never receives it.
                }
            });
    }

    /// Satellite regression for elastic recovery: a receiver that aborts an
    /// exchange early (because some *other* source died) must not strand a
    /// healthy sender's zero-copy loan until the watchdog fires. Seeded over
    /// several message sizes.
    ///
    /// Geometry per run (3 ranks, zero-copy with threshold 0):
    /// * rank 0 hand-deposits a loan to rank 1 under the exchange's tag,
    ///   then departs — so rank 1's receive phase succeeds while rank 2's
    ///   aborts with `PeerDead { rank: 0 }`.
    /// * rank 1 lends `len` bytes to rank 2 and completes cleanly; without
    ///   the abort-path sweep it would sit in `ZcSendGuard::complete` for
    ///   the full watchdog, because rank 2 is alive but has left the
    ///   exchange with the loan still queued.
    /// * rank 2 waits until rank 1's loan is queued (making the stranding
    ///   deterministic), then aborts on the dead source.
    #[test]
    fn departing_receiver_revokes_unclaimed_loans() {
        for seed in 0..6u64 {
            let len = 32 + (mix64(seed ^ 0xA11_0C8) % 4096) as usize;
            let watchdog = Duration::from_secs(30);
            let start = Instant::now();
            let out = Universe::builder()
                .zerocopy(true)
                .zerocopy_threshold(0)
                .timeout(watchdog)
                .run(3, move |comm| {
                    let me = comm.rank();
                    let tag = coll_key_tag(0, 0);
                    if me == 0 {
                        // Loan to rank 1 only, then die with it outstanding.
                        let buf: &'static [u8] = Box::leak(vec![0xAB; len].into_boxed_slice());
                        let cell = comm
                            .deposit_shared(
                                1,
                                tag,
                                buf,
                                Datatype::Contiguous { len_bytes: len, offset: 0 },
                            )
                            .unwrap();
                        drop(cell); // nobody waits: the buffer is leaked
                        return Ok(());
                    }
                    let empty = Datatype::Empty;
                    let contig = |offset| Datatype::Contiguous { len_bytes: len, offset };
                    if me == 1 {
                        let send = vec![1u8; len];
                        let mut recv = vec![0u8; len];
                        let st = [empty, empty, contig(0)]; // loan under test → rank 2
                        let rt = [contig(0), empty, empty]; // rank 0's hand deposit
                        let res = comm.alltoallw(&send, &st, &mut recv, &rt);
                        assert_eq!(recv, vec![0xAB; len]);
                        // The loan to rank 2 must have come back *revoked* —
                        // this rank counted it on its own completion path.
                        assert!(comm.transport_counters().revoked_msgs >= 1);
                        return res;
                    }
                    // Rank 2: make sure rank 1's loan is already queued, so
                    // the abort below is what must release it.
                    let key = (0u64, 1usize, tag);
                    while !comm.my_mailbox().contains(key) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    let mut recv = vec![0u8; 2 * len];
                    let st = [empty, empty, empty];
                    let rt = [contig(0), contig(len), empty];
                    comm.alltoallw(&[], &st, &mut recv, &rt)
                });
            let elapsed = start.elapsed();
            assert_eq!(out[0], Ok(()), "seed {seed}");
            assert_eq!(out[1], Ok(()), "seed {seed}: sender must complete");
            assert_eq!(out[2], Err(Error::PeerDead { rank: 0 }), "seed {seed}");
            // Liveness: nowhere near the watchdog. Without the sweep, rank 1
            // burns the full 30 s in ZcSendGuard::complete.
            assert!(
                elapsed < Duration::from_secs(10),
                "seed {seed}: exchange took {elapsed:?} — a loan was stranded"
            );
        }
    }
}
