//! Runtime correctness checking: collective-matching verification,
//! wait-for-graph deadlock detection, happens-before race & lifetime
//! checking, and datatype signature verification.
//!
//! All of these facilities are off by default and enabled together via
//! [`crate::UniverseBuilder::check`] or `DDR_CHECK=1`. When disabled the only
//! cost on any hot path is a branch on an `Option` that is always `None`;
//! no state is allocated and no detector thread runs.
//!
//! ## Collective matching
//!
//! MPI's contract is that every member of a communicator calls the same
//! sequence of collectives with compatible arguments. A violation — rank 3
//! calls `broadcast` while rank 5 calls `alltoallw`, or two ranks disagree
//! on the root — silently deadlocks (or worse, mismatches payloads). With
//! checking on, every collective records a [`CollFingerprint`] keyed by
//! `(communicator id, collective index)` into a shared epoch log before any
//! byte moves. The first rank to reach index `i` defines the expected
//! fingerprint; every later arrival is compared and a divergence fails fast
//! with [`crate::Error::CollectiveDiverged`] naming both ranks, both ops and
//! both call sites — instead of waiting out the watchdog.
//!
//! ## Wait-for-graph deadlock detection
//!
//! Every blocking definite-source receive (including the receives inside
//! collectives) registers a `waiter → awaited` edge in a shared wait-for
//! graph. A detector thread periodically runs cycle detection; a cycle whose
//! edges are stable across consecutive scans and whose awaited messages are
//! verifiably absent from the waiters' mailboxes is a true deadlock (sends
//! in minimpi are eager, so an in-flight message is always already in the
//! destination mailbox). Every member of the cycle is interrupted and fails
//! with [`crate::Error::Deadlock`] carrying the full cycle, long before the
//! watchdog expires. Any-source receives take part as waiters only when they
//! time out naturally — an OR-wait cannot soundly be modeled as one edge —
//! so the watchdog remains the backstop for those.
//!
//! ## Happens-before race & lifetime checking
//!
//! Every world rank carries a [`VectorClock`]: ticked on each send, with the
//! sender's snapshot piggybacked on the envelope and joined into the
//! receiver's clock at match/claim time. Against that partial order, two
//! kinds of resources are tracked. **Zero-copy loans**: each lent buffer
//! region records its lend-time clock and (once the receiver finishes
//! copying) its done-time clock; a write to the region that is neither
//! ordered before the lend nor after the *settled* copy-out races the
//! receiver's read and fails with [`crate::Error::DataRace`]. **Annotated
//! buffers**: applications (and the runtime's own claim path) record
//! accesses via [`crate::Comm::check_write`] / [`crate::Comm::check_read`];
//! any two causally-unordered overlapping accesses with at least one write
//! are a race. Loans still live — neither copied out nor revoked — when the
//! universe finishes are reported as [`crate::Error::LoanLeak`]. The tables
//! grow with the number of tracked events; this is a debugging facility,
//! not a production mode. (Address ranges identify buffers, so a freed and
//! reallocated buffer at the same address aliases its predecessor — events
//! are cleared at epoch fences to bound the effect.)
//!
//! ## Datatype signatures
//!
//! With checking on, every envelope is stamped with a [`TypeSig`] — packed
//! extent, element size, subarray shape hash — and receives that declare
//! their own expectation (typed point-to-point receives, alltoallw
//! destination datatypes) verify the sender's stamp against it, failing
//! with [`crate::Error::TypeMismatch`] instead of silently reinterpreting
//! bytes.

use crate::comm::WorldState;
use crate::datatype::Datatype;
use crate::fault::mix64;
use crate::mailbox::MsgKey;
use crate::vclock::VectorClock;
use crate::zerocopy::ZcCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// How often the deadlock detector rescans the wait-for graph. A cycle must
/// survive two consecutive scans to be declared, so detection latency is
/// roughly two intervals — still orders of magnitude below any watchdog.
const DETECTOR_INTERVAL: Duration = Duration::from_millis(2);

/// Which collective primitive a rank entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// [`crate::Comm::barrier`]
    Barrier,
    /// [`crate::Comm::broadcast`] and byte variants
    Broadcast,
    /// [`crate::Comm::gather`] family (including the gather leg of reduce)
    Gather,
    /// [`crate::Comm::scatter`] / `scatterv_bytes`
    Scatter,
    /// [`crate::Comm::alltoallv`] / `alltoall_bytes`
    Alltoall,
    /// [`crate::Comm::alltoallw`] and its salvage variant
    Alltoallw,
    /// [`crate::Comm::sparse_exchange`] and its salvage variant
    SparseExchange,
    /// [`crate::Comm::scan`]
    Scan,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Alltoall => "alltoall",
            CollectiveKind::Alltoallw => "alltoallw",
            CollectiveKind::SparseExchange => "sparse_exchange",
            CollectiveKind::Scan => "scan",
        };
        f.write_str(name)
    }
}

/// What one rank recorded on entering a collective: everything the MPI
/// contract requires to be identical (or compatible) across members, plus
/// the user call site for diagnosis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollFingerprint {
    /// The collective primitive entered.
    pub kind: CollectiveKind,
    /// Root rank for rooted collectives (`usize::MAX` = not rooted).
    pub root: usize,
    /// Op-specific signature that must agree across ranks (e.g. the
    /// contribution byte length for `scan`; 0 where nothing further is
    /// comparable).
    pub sig: u64,
    /// Source file of the user call site.
    pub file: &'static str,
    /// Line of the user call site.
    pub line: u32,
}

impl CollFingerprint {
    /// Capture a fingerprint at the (track_caller-propagated) call site.
    #[track_caller]
    pub(crate) fn here(kind: CollectiveKind, root: Option<usize>, sig: u64) -> Self {
        let loc = Location::caller();
        CollFingerprint {
            kind,
            root: root.unwrap_or(usize::MAX),
            sig,
            file: loc.file(),
            line: loc.line(),
        }
    }

    /// Fields the MPI contract requires to match (call sites may legitimately
    /// differ between ranks taking different branches of an SPMD program).
    fn matches(&self, other: &CollFingerprint) -> bool {
        self.kind == other.kind && self.root == other.root && self.sig == other.sig
    }
}

impl fmt::Display for CollFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if self.root != usize::MAX {
            write!(f, "(root {})", self.root)?;
        }
        if self.sig != 0 {
            write!(f, "[sig {}]", self.sig)?;
        }
        write!(f, " at {}:{}", self.file, self.line)
    }
}

/// Two ranks of one communicator disagreed on what collective number `index`
/// is — the structured report behind [`crate::Error::CollectiveDiverged`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Communicator the divergence happened on.
    pub comm_id: u64,
    /// Zero-based index of the collective call in this communicator's
    /// program order.
    pub index: u64,
    /// First rank (communicator-local) to reach this index.
    pub rank_a: usize,
    /// What it recorded.
    pub fp_a: CollFingerprint,
    /// The diverging rank (the one that received the error).
    pub rank_b: usize,
    /// What it recorded instead.
    pub fp_b: CollFingerprint,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collective #{} on comm {:#x}: rank {} called {} but rank {} called {}",
            self.index, self.comm_id, self.rank_a, self.fp_a, self.rank_b, self.fp_b
        )
    }
}

/// One blocked receive participating in a deadlock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRecv {
    /// World rank of the blocked receiver.
    pub rank: usize,
    /// World rank it is waiting on.
    pub awaited: usize,
    /// Communicator the receive was posted on.
    pub comm_id: u64,
    /// Raw key tag of the awaited message (user tag, or an internal
    /// collective sequence number — see [`crate::Error::Timeout`] docs).
    pub tag: u64,
}

impl fmt::Display for PendingRecv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} waits on rank {} ({} on comm {:#x})",
            self.rank,
            self.awaited,
            crate::comm::describe_key_tag(self.tag),
            self.comm_id
        )
    }
}

/// A confirmed cycle in the wait-for graph — the structured report behind
/// [`crate::Error::Deadlock`]. `cycle[i].awaited == cycle[i + 1].rank`
/// (wrapping), so the chain reads directly as "0 waits on 1 waits on … on 0".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// The blocked receives forming the cycle, in chain order.
    pub cycle: Vec<PendingRecv>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadlock cycle of {} ranks: ", self.cycle.len())?;
        for (i, p) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Datatype signature stamped on envelopes with checking enabled: the
/// fields two sides of a transfer must agree on before bytes are
/// reinterpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeSig {
    /// Packed extent in bytes (`0` = undeclared / unchecked, used by
    /// open-length receives).
    pub extent: u64,
    /// Element size in bytes (`1` = untyped bytes, compatible with any
    /// element size).
    pub elem: u32,
    /// Hash of a subarray's rectangle extents, `0` for non-subarray types.
    /// Diagnostic only: MPI signatures compare as element sequences, so
    /// differently-shaped subarrays with equal element size and count are
    /// legitimately compatible.
    pub shape: u64,
}

impl TypeSig {
    /// The signature of a wire datatype.
    pub(crate) fn of(dt: &Datatype) -> TypeSig {
        match dt {
            Datatype::Empty => TypeSig { extent: 0, elem: 1, shape: 0 },
            Datatype::Contiguous { len_bytes, .. } => {
                TypeSig { extent: *len_bytes as u64, elem: 1, shape: 0 }
            }
            Datatype::Subarray(s) => {
                let mut h = mix64(0x0073_6861_7065 ^ s.ndims as u64);
                for d in 0..s.ndims {
                    h = mix64(h ^ s.subsizes[d] as u64);
                }
                TypeSig { extent: s.packed_len() as u64, elem: s.elem_size as u32, shape: h }
            }
        }
    }

    /// An untyped-bytes signature of `extent` bytes.
    pub(crate) fn bytes(extent: u64) -> TypeSig {
        TypeSig { extent, elem: 1, shape: 0 }
    }

    /// Whether a sender-stamped signature `got` satisfies this receiver-side
    /// expectation. Element sizes conflict only when both sides declare one
    /// (the byte-granular collective internals stamp `elem == 1`); extents
    /// conflict only when both sides declare one (`0` = unchecked).
    pub(crate) fn accepts(&self, got: &TypeSig) -> bool {
        if self.elem > 1 && got.elem > 1 && self.elem != got.elem {
            return false;
        }
        if self.extent > 0 && got.extent > 0 && self.extent != got.extent {
            return false;
        }
        true
    }
}

impl fmt::Display for TypeSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(extent {}B, elem {}B", self.extent, self.elem)?;
        if self.shape != 0 {
            write!(f, ", shape {:#x}", self.shape)?;
        }
        write!(f, ")")
    }
}

/// Two causally-unordered accesses to one tracked buffer, at least one a
/// write — the structured report behind [`crate::Error::DataRace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The tracked resource both accesses touched.
    pub resource: String,
    /// World ranks of the two accessors (earlier-recorded first).
    pub ranks: (usize, usize),
    /// What each side was doing.
    pub ops: (String, String),
    /// Call site of each access.
    pub call_sites: (String, String),
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "on {}: rank {} ({} at {}) is causally unordered with rank {} ({} at {})",
            self.resource,
            self.ranks.0,
            self.ops.0,
            self.call_sites.0,
            self.ranks.1,
            self.ops.1,
            self.call_sites.1
        )
    }
}

/// One zero-copy loan still live at finalize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakedLoan {
    /// World rank that lent the buffer.
    pub src: usize,
    /// World rank the loan was addressed to.
    pub dst: usize,
    /// Size of the lent region in bytes.
    pub bytes: usize,
    /// Where the loan was made.
    pub site: String,
}

/// Loans never driven to a terminal state (copied out or revoked) by the
/// end of the universe — the structured report behind
/// [`crate::Error::LoanLeak`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoanLeakReport {
    /// Every loan still live, in lend order.
    pub loans: Vec<LeakedLoan>,
}

impl fmt::Display for LoanLeakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} zero-copy loan(s) still live at finalize: ", self.loans.len())?;
        for (i, l) in self.loans.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}B from rank {} to rank {} (lent at {})", l.bytes, l.src, l.dst, l.site)?;
        }
        Ok(())
    }
}

/// Snapshot of the check-plane counters, exported into the ddrtrace metrics
/// registry as `check.*` and queryable via [`crate::Comm::check_counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Data races convicted by the happens-before checker.
    pub races: u64,
    /// Deadlock cycles convicted by the wait-for-graph detector.
    pub deadlocks: u64,
    /// Collective divergences reported.
    pub divergences: u64,
    /// Datatype signature mismatches reported.
    pub type_mismatches: u64,
}

/// One collective epoch-log entry: the fingerprint the first arrival set,
/// and how many members have matched it so far (entries are retired once
/// every member has checked in, bounding the log to in-flight collectives).
struct CollEntry {
    first_rank: usize,
    fp: CollFingerprint,
    seen: usize,
}

/// A registered `waiter → awaited` edge. `gen` distinguishes successive
/// waits by the same rank so the detector can tell a *stuck* wait from a
/// rapid sequence of short ones.
#[derive(Clone, Copy)]
struct WaitEdge {
    awaited_world: usize,
    key: MsgKey,
    gen: u64,
}

#[derive(Default)]
struct WaitTable {
    /// At most one blocking receive per rank at a time, indexed by world rank.
    edges: Vec<Option<WaitEdge>>,
    next_gen: u64,
}

/// One recorded access to a tracked buffer range.
struct AccessEvent {
    rank: usize,
    start: usize,
    end: usize,
    write: bool,
    clock: VectorClock,
    op: String,
    site: String,
}

/// One tracked zero-copy loan. The strong `cell` reference keeps the
/// completion cell queryable for the finalize-time leak check even after
/// the envelope is consumed, and its address is the loan's identity.
struct Loan {
    cell: Arc<ZcCell>,
    src_world: usize,
    dst_world: usize,
    start: usize,
    end: usize,
    /// Sender clock at lend time (after the send tick).
    lend_clock: VectorClock,
    /// Receiver clock when the copy-out finished; `None` while outstanding.
    done_clock: Option<VectorClock>,
    site: String,
}

#[derive(Default)]
struct Counters {
    races: AtomicU64,
    deadlocks: AtomicU64,
    divergences: AtomicU64,
    type_mismatches: AtomicU64,
}

/// Shared state of the checking subsystem, present in
/// [`crate::comm::WorldState`] only when checking is enabled.
pub(crate) struct CheckState {
    colls: Mutex<HashMap<(u64, u64), CollEntry>>,
    waits: Mutex<WaitTable>,
    /// Ranks declared deadlocked by the detector, with their cycle report.
    deadlocked: Mutex<HashMap<usize, DeadlockReport>>,
    /// Per-world-rank vector clocks (the happens-before order).
    clocks: Mutex<Vec<VectorClock>>,
    /// Tracked zero-copy loans, in lend order.
    loans: Mutex<Vec<Loan>>,
    /// Recorded buffer accesses (annotated + claim-path reads).
    accesses: Mutex<Vec<AccessEvent>>,
    counters: Counters,
}

impl CheckState {
    pub fn new(n: usize) -> Self {
        CheckState {
            colls: Mutex::new(HashMap::new()),
            waits: Mutex::new(WaitTable { edges: vec![None; n], next_gen: 0 }),
            deadlocked: Mutex::new(HashMap::new()),
            clocks: Mutex::new(vec![VectorClock::new(n); n]),
            loans: Mutex::new(Vec::new()),
            accesses: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record that `rank` (communicator-local, of a communicator with `size`
    /// members) entered collective number `index` on `comm_id` with
    /// fingerprint `fp`. Returns the divergence if a previous arrival
    /// recorded an incompatible fingerprint for the same index.
    pub fn record_collective(
        &self,
        comm_id: u64,
        index: u64,
        rank: usize,
        size: usize,
        fp: CollFingerprint,
    ) -> Result<(), Box<DivergenceReport>> {
        let mut colls = Self::lock(&self.colls);
        match colls.entry((comm_id, index)) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(CollEntry { first_rank: rank, fp, seen: 1 });
                Ok(())
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let entry = o.get_mut();
                if !entry.fp.matches(&fp) {
                    // Leave the entry in place so every further diverging
                    // member gets the same diagnosis.
                    self.counters.divergences.fetch_add(1, Ordering::Relaxed);
                    return Err(Box::new(DivergenceReport {
                        comm_id,
                        index,
                        rank_a: entry.first_rank,
                        fp_a: entry.fp,
                        rank_b: rank,
                        fp_b: fp,
                    }));
                }
                entry.seen += 1;
                if entry.seen >= size {
                    o.remove();
                }
                Ok(())
            }
        }
    }

    /// Register this rank's blocking receive in the wait-for graph.
    pub fn begin_wait(&self, world_rank: usize, awaited_world: usize, key: MsgKey) {
        let mut w = Self::lock(&self.waits);
        w.next_gen += 1;
        let gen = w.next_gen;
        w.edges[world_rank] = Some(WaitEdge { awaited_world, key, gen });
    }

    /// Remove this rank's edge. `delivered` clears any (necessarily stale)
    /// deadlock verdict — a rank whose message arrived was never stuck;
    /// otherwise the verdict, if one exists, is taken and returned.
    pub fn finish_wait(&self, world_rank: usize, delivered: bool) -> Option<DeadlockReport> {
        Self::lock(&self.waits).edges[world_rank] = None;
        let mut dl = Self::lock(&self.deadlocked);
        if delivered {
            dl.remove(&world_rank);
            None
        } else {
            dl.remove(&world_rank)
        }
    }

    /// Abort-condition probe used by blocked receivers.
    pub fn is_deadlocked(&self, world_rank: usize) -> bool {
        Self::lock(&self.deadlocked).contains_key(&world_rank)
    }

    /// Tick `world_rank`'s clock for a send and return the snapshot to
    /// piggyback on the envelope.
    pub fn on_send(&self, world_rank: usize) -> VectorClock {
        let mut clocks = Self::lock(&self.clocks);
        clocks[world_rank].tick(world_rank);
        clocks[world_rank].clone()
    }

    /// Join a delivered envelope's clock into `world_rank`'s clock (the
    /// receive is itself an event, so the clock also ticks).
    pub fn on_recv(&self, world_rank: usize, msg: &VectorClock) {
        let mut clocks = Self::lock(&self.clocks);
        clocks[world_rank].tick(world_rank);
        clocks[world_rank].join(msg);
    }

    /// Track a zero-copy loan of `len` bytes at `start` from `src_world` to
    /// `dst_world`, identified by its completion cell. Call after the send
    /// tick so the lend clock covers the lend itself.
    #[track_caller]
    pub fn register_loan(
        &self,
        cell: &Arc<ZcCell>,
        src_world: usize,
        dst_world: usize,
        start: usize,
        len: usize,
    ) {
        let loc = Location::caller();
        let lend_clock = Self::lock(&self.clocks)[src_world].clone();
        Self::lock(&self.loans).push(Loan {
            cell: Arc::clone(cell),
            src_world,
            dst_world,
            start,
            end: start + len,
            lend_clock,
            done_clock: None,
            site: format!("{}:{}", loc.file(), loc.line()),
        });
    }

    /// Run `f` on the loan identified by `cell`, if tracked. Latest match
    /// wins; cell addresses are unique while the table holds strong refs.
    fn with_loan<R>(&self, cell: &Arc<ZcCell>, f: impl FnOnce(&mut Loan) -> R) -> Option<R> {
        let key = Arc::as_ptr(cell);
        let mut loans = Self::lock(&self.loans);
        loans.iter_mut().rev().find(|l| std::ptr::eq(Arc::as_ptr(&l.cell), key)).map(f)
    }

    /// Record the receiver's successful claim of a loan: the copy-out
    /// begins. The claim is registered as a read of the loaned range, so a
    /// write racing the copy window is convicted from whichever side the
    /// checker sees second.
    pub fn loan_claimed(
        &self,
        cell: &Arc<ZcCell>,
        dst_world: usize,
    ) -> Result<(), Box<RaceReport>> {
        let Some((start, end, site)) =
            self.with_loan(cell, |l| (l.start, l.end, format!("claim of loan lent at {}", l.site)))
        else {
            return Ok(());
        };
        self.access(
            dst_world,
            start,
            end - start,
            false,
            "zero-copy claim (copy out of loan)",
            site,
        )
    }

    /// Record that the receiver finished copying out of a loan (just before
    /// the cell is driven to `Done`).
    pub fn loan_done(&self, cell: &Arc<ZcCell>, dst_world: usize) {
        let done = {
            let mut clocks = Self::lock(&self.clocks);
            clocks[dst_world].tick(dst_world);
            clocks[dst_world].clone()
        };
        self.with_loan(cell, |l| l.done_clock = Some(done));
    }

    /// Record that the sender observed the loan's completion (its drain wait
    /// returned): the receiver's copy-out now happens-before everything the
    /// sender does next, so later writes to the buffer are clean.
    pub fn loan_settled(&self, cell: &Arc<ZcCell>, src_world: usize) {
        let done = self.with_loan(cell, |l| l.done_clock.clone()).flatten();
        if let Some(d) = done {
            Self::lock(&self.clocks)[src_world].join(&d);
        }
    }

    /// Check an access of `len` bytes at `start` by `world_rank` against
    /// every outstanding loan (writes only) and every previously recorded
    /// overlapping access, then record it. Returns the race if one is found
    /// (the access is still recorded, so each pair is convicted once).
    pub fn access(
        &self,
        world_rank: usize,
        start: usize,
        len: usize,
        write: bool,
        op: &str,
        site: String,
    ) -> Result<(), Box<RaceReport>> {
        let end = start + len;
        let clock = {
            let mut clocks = Self::lock(&self.clocks);
            clocks[world_rank].tick(world_rank);
            clocks[world_rank].clone()
        };
        let mut race = None;
        if write {
            let loans = Self::lock(&self.loans);
            for l in loans.iter() {
                if l.end <= start || end <= l.start {
                    continue;
                }
                // Safe only if the write is ordered before the lend or after
                // the receiver's (settled) copy-out.
                let after_done = l.done_clock.as_ref().is_some_and(|d| d.leq(&clock));
                let before_lend = clock.leq(&l.lend_clock);
                if !after_done && !before_lend {
                    race = Some(Box::new(RaceReport {
                        resource: format!(
                            "zero-copy loan [{:#x}..{:#x}) ({}B)",
                            l.start,
                            l.end,
                            l.end - l.start
                        ),
                        ranks: (l.dst_world, world_rank),
                        ops: (format!("reads the loan from rank {}", l.src_world), op.to_string()),
                        call_sites: (l.site.clone(), site.clone()),
                    }));
                    break;
                }
            }
        }
        let mut events = Self::lock(&self.accesses);
        if race.is_none() {
            for e in events.iter() {
                if e.end <= start || end <= e.start {
                    continue;
                }
                if !(e.write || write) {
                    continue;
                }
                if e.clock.concurrent(&clock) {
                    race = Some(Box::new(RaceReport {
                        resource: format!(
                            "buffer [{:#x}..{:#x}) ({}B)",
                            start.max(e.start),
                            end.min(e.end),
                            end.min(e.end) - start.max(e.start)
                        ),
                        ranks: (e.rank, world_rank),
                        ops: (e.op.clone(), op.to_string()),
                        call_sites: (e.site.clone(), site.clone()),
                    }));
                    break;
                }
            }
        }
        events.push(AccessEvent {
            rank: world_rank,
            start,
            end,
            write,
            clock,
            op: op.to_string(),
            site,
        });
        drop(events);
        match race {
            Some(r) => {
                self.counters.races.fetch_add(1, Ordering::Relaxed);
                Err(r)
            }
            None => Ok(()),
        }
    }

    /// Loans still live (neither copied out nor revoked) — the finalize-time
    /// lifetime check behind [`crate::Error::LoanLeak`].
    pub fn leaked_loans(&self) -> Option<Box<LoanLeakReport>> {
        let loans = Self::lock(&self.loans);
        let leaked: Vec<LeakedLoan> = loans
            .iter()
            .filter(|l| !l.cell.is_terminal())
            .map(|l| LeakedLoan {
                src: l.src_world,
                dst: l.dst_world,
                bytes: l.end - l.start,
                site: l.site.clone(),
            })
            .collect();
        (!leaked.is_empty()).then(|| Box::new(LoanLeakReport { loans: leaked }))
    }

    /// Count one datatype signature mismatch.
    pub fn note_type_mismatch(&self) {
        self.counters.type_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the check-plane counters.
    pub fn counters(&self) -> CheckCounters {
        CheckCounters {
            races: self.counters.races.load(Ordering::Relaxed),
            deadlocks: self.counters.deadlocks.load(Ordering::Relaxed),
            divergences: self.counters.divergences.load(Ordering::Relaxed),
            type_mismatches: self.counters.type_mismatches.load(Ordering::Relaxed),
        }
    }

    /// Clear all checker state across a membership epoch change. The
    /// reconfigure leader calls this while every survivor is parked in the
    /// epoch barrier (no collective is in flight and no member is blocked in
    /// a mailbox wait), so in-flight entries are by construction orphans of
    /// the old epoch: half-seen collective fingerprints of ranks that died,
    /// wait edges of the casualties, verdicts about a membership that no
    /// longer exists. Leaving any of it behind would convict post-reconfigure
    /// waits against pre-reconfigure state — the false-`Deadlock` failure
    /// mode the epoch protocol must not have.
    pub fn reset_for_epoch(&self) {
        Self::lock(&self.colls).clear();
        let mut w = Self::lock(&self.waits);
        for e in w.edges.iter_mut() {
            *e = None;
        }
        drop(w);
        Self::lock(&self.deadlocked).clear();
        // Loans and access events of the old epoch are orphans too: their
        // envelopes are about to be swept (revoking outstanding loans), and
        // buffers freed by departed ranks may be reallocated at the same
        // addresses in the new epoch. The clocks survive — happens-before is
        // monotone across epochs.
        Self::lock(&self.loans).clear();
        Self::lock(&self.accesses).clear();
    }

    /// One detector scan: find cycles in the current wait-for graph, confirm
    /// them against the previous scan's candidates (`prev`, keyed by the
    /// edge generations) and against the mailboxes, then convict.
    fn scan(&self, world: &WorldState, prev: &mut Vec<Vec<(usize, u64)>>) {
        let snapshot: Vec<Option<WaitEdge>> = Self::lock(&self.waits).edges.clone();
        let n = snapshot.len();
        let mut candidates: Vec<Vec<(usize, u64)>> = Vec::new();

        // Each node has at most one outgoing edge, so walking successors
        // from every unvisited node finds every cycle in O(n).
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on path, 2 = done
        for start in 0..n {
            if state[start] != 0 || snapshot[start].is_none() {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if state[cur] == 1 {
                    // Found a cycle: the tail of `path` from `cur` onward.
                    let pos = path.iter().position(|&r| r == cur).expect("on path");
                    let cycle: Vec<(usize, u64)> = path[pos..]
                        .iter()
                        .map(|&r| {
                            let e: WaitEdge = snapshot[r].expect("edge on path");
                            (r, e.gen)
                        })
                        .collect();
                    candidates.push(cycle);
                    break;
                }
                if state[cur] == 2 {
                    break;
                }
                state[cur] = 1;
                path.push(cur);
                match snapshot[cur] {
                    Some(e) if world.is_alive(e.awaited_world) => cur = e.awaited_world,
                    // Waiting on a dead rank is PeerDead's business, and a
                    // rank not blocked at all ends the chain.
                    _ => break,
                }
            }
            for r in path {
                state[r] = 2;
            }
        }

        for cycle in &candidates {
            // A true deadlock is stable: same ranks, same wait generations
            // as the previous scan. A fresh cycle might still be a racing
            // snapshot (a message was popped but the edge not yet removed),
            // so it only becomes a conviction next scan.
            if !prev.iter().any(|p| p == cycle) {
                continue;
            }
            // Eager sends mean a satisfiable wait has its message already
            // queued; verify none of the cycle's messages are.
            let satisfiable = cycle
                .iter()
                .any(|&(r, _)| snapshot[r].is_some_and(|e| world.mailboxes[r].contains(e.key)));
            if satisfiable {
                continue;
            }
            let report = DeadlockReport {
                cycle: cycle
                    .iter()
                    .map(|&(r, _)| {
                        let e = snapshot[r].expect("cycle member has an edge");
                        PendingRecv {
                            rank: r,
                            awaited: e.awaited_world,
                            comm_id: e.key.0,
                            tag: e.key.2,
                        }
                    })
                    .collect(),
            };
            self.counters.deadlocks.fetch_add(1, Ordering::Relaxed);
            let mut dl = Self::lock(&self.deadlocked);
            for &(r, _) in cycle {
                dl.insert(r, report.clone());
            }
            drop(dl);
            for &(r, _) in cycle {
                world.mailboxes[r].interrupt();
            }
        }
        *prev = candidates;
    }
}

/// Body of the detector thread: rescan until told to shut down.
pub(crate) fn detector_loop(world: &WorldState, shutdown: &AtomicBool) {
    let check = world.check.as_ref().expect("detector runs only with checking enabled");
    let mut prev = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        std::thread::sleep(DETECTOR_INTERVAL);
        check.scan(world, &mut prev);
    }
}

/// `DDR_CHECK=1` (or `true`) turns checking on when the builder did not
/// decide explicitly.
pub(crate) fn check_env_default() -> bool {
    crate::env::flag("DDR_CHECK").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(kind: CollectiveKind, root: Option<usize>, sig: u64) -> CollFingerprint {
        CollFingerprint { kind, root: root.unwrap_or(usize::MAX), sig, file: "t.rs", line: 1 }
    }

    #[test]
    fn matching_fingerprints_retire_the_entry() {
        let c = CheckState::new(2);
        let f = fp(CollectiveKind::Barrier, None, 0);
        c.record_collective(7, 0, 0, 2, f).unwrap();
        c.record_collective(7, 0, 1, 2, f).unwrap();
        assert!(CheckState::lock(&c.colls).is_empty());
    }

    #[test]
    fn diverging_fingerprint_is_reported_with_both_sides() {
        let c = CheckState::new(2);
        c.record_collective(7, 0, 0, 2, fp(CollectiveKind::Broadcast, Some(0), 0)).unwrap();
        let err =
            c.record_collective(7, 0, 1, 2, fp(CollectiveKind::Alltoallw, None, 0)).unwrap_err();
        assert_eq!(err.rank_a, 0);
        assert_eq!(err.rank_b, 1);
        assert_eq!(err.fp_a.kind, CollectiveKind::Broadcast);
        assert_eq!(err.fp_b.kind, CollectiveKind::Alltoallw);
        // A third diverging member still gets diagnosed.
        assert!(c.record_collective(7, 0, 2, 3, fp(CollectiveKind::Scan, None, 8)).is_err());
    }

    #[test]
    fn root_mismatch_is_a_divergence() {
        let c = CheckState::new(2);
        c.record_collective(1, 4, 0, 2, fp(CollectiveKind::Broadcast, Some(0), 0)).unwrap();
        let err =
            c.record_collective(1, 4, 1, 2, fp(CollectiveKind::Broadcast, Some(1), 0)).unwrap_err();
        assert_eq!(err.fp_a.root, 0);
        assert_eq!(err.fp_b.root, 1);
    }

    #[test]
    fn delivered_wait_clears_stale_deadlock_verdict() {
        let c = CheckState::new(2);
        c.begin_wait(0, 1, (0, 1, 0));
        CheckState::lock(&c.deadlocked).insert(0, DeadlockReport { cycle: vec![] });
        assert!(c.finish_wait(0, true).is_none());
        assert!(!c.is_deadlocked(0));
    }
}
