//! # minimpi — an in-process MPI-like message-passing runtime
//!
//! `minimpi` provides the distributed-memory substrate for the DDR
//! reproduction. It models an MPI job as a set of **ranks**, each running on
//! its own OS thread inside a single process, communicating through typed
//! point-to-point messages and MPI-style collectives.
//!
//! The subset implemented here is exactly what the DDR library (Marrinan et
//! al., *Automated Dynamic Data Redistribution*, 2017) and its two evaluation
//! use cases require:
//!
//! * a [`Universe`] that launches `n` ranks and hands each a [`Comm`],
//! * reliable, ordered, tag-matched point-to-point messaging
//!   ([`Comm::send`], [`Comm::recv_vec`], byte-level variants),
//! * collectives: [`Comm::barrier`], [`Comm::broadcast`], gather /
//!   allgather(v), reduce / allreduce, alltoall(v), and crucially
//!   [`Comm::alltoallw`] with **subarray datatypes** ([`Datatype`],
//!   [`Subarray`]) — the operation the paper builds data redistribution on,
//! * communicator splitting ([`Comm::split`]) so disjoint rank groups (e.g. a
//!   simulation resource and an analysis resource) can run their own
//!   collectives, as in the paper's in-transit streaming use case.
//!
//! ## Semantics
//!
//! * Sends are **eager and buffered**: `send` never blocks on the receiver
//!   (as if every message fit MPI's eager threshold). Messages between a
//!   (communicator, sender, tag) triple and a receiver are delivered in FIFO
//!   order, matching MPI's non-overtaking guarantee.
//! * Receives block until a matching message arrives, with a configurable
//!   watchdog timeout (default 120 s, or `DDR_TIMEOUT_MS` /
//!   [`Universe::builder`]) so an accidental deadlock in a test fails with
//!   [`Error::Timeout`] instead of hanging the suite.
//! * Collectives are implemented over point-to-point messages in a private
//!   tag namespace keyed by a per-communicator sequence number, so user
//!   traffic can never be confused with collective traffic.
//!
//! ## Fault injection and liveness
//!
//! A deterministic [`FaultPlan`] can be installed via [`Universe::builder`]:
//! it kills ranks at exact communication-op counts and drops, delays, or
//! corrupts matched in-flight messages — identically on every run, because
//! faults trigger on counters, never on wall clock. A **liveness registry**
//! tracks dead ranks (fault-killed, panicked, or returned early); blocking
//! receives and collectives aimed at a dead peer fail fast with
//! [`Error::PeerDead`] instead of burning the watchdog timeout, and
//! [`Comm::shrink`] lets survivors agree on a new communicator containing
//! only live ranks — the substrate for DDR's shrink-and-remap recovery.
//!
//! ## Elastic membership
//!
//! [`Comm::reconfigure`] goes beyond shrink: the survivors agree, the world
//! enters a new **membership epoch**, and (by default) every dead rank is
//! respawned as a fresh thread re-running the universe closure inside the
//! new epoch — so capacity lost to a failure is restored instead of
//! permanently degraded. Every message envelope carries its sender's epoch;
//! stale-epoch traffic (including in-flight zero-copy loans, which are
//! revoked) is fenced rather than matched, and the checker state is reset
//! across the bump so a reconfigure never produces a false
//! [`Error::Deadlock`] or [`Error::Timeout`]. See [`RecoveryCounters`] and
//! the `DDR_RESPAWN` / `DDR_RECONFIG_TIMEOUT_MS` knobs.
//!
//! ## Correctness checking
//!
//! `Universe::builder().check(true)` (or `DDR_CHECK=1`) turns on two
//! runtime analyses:
//!
//! * **Collective matching** — every collective records a fingerprint
//!   (operation kind, root, datatype signature) keyed by its per-communicator
//!   sequence number; the first rank whose fingerprint disagrees with its
//!   peers fails immediately with [`Error::CollectiveDiverged`], naming both
//!   ranks, both operations and both call sites, instead of deadlocking.
//! * **Wait-for-graph deadlock detection** — blocked receives register
//!   wait-for edges; a detector thread runs cycle detection and converts a
//!   confirmed cycle into [`Error::Deadlock`] on every member, listing the
//!   full cycle, long before the watchdog would fire.
//!
//! * **Happens-before race & lifetime checking** — each rank carries a
//!   vector clock, piggybacked on every envelope and joined at delivery;
//!   zero-copy loans and explicitly annotated buffers ([`Comm::check_write`]
//!   / [`Comm::check_read`]) are tracked resources. Two causally unordered
//!   accesses to overlapping bytes, at least one a write — e.g. a sender
//!   mutating a buffer while a receiver's claim is still copying — fail with
//!   [`Error::DataRace`]; loans still live at the end of the run panic with
//!   [`Error::LoanLeak`].
//! * **Datatype signature verification** — sends stamp a [`TypeSig`]
//!   (extent, element size, subarray shape) into the envelope; typed
//!   receives and `alltoallw` deliveries that disagree fail with
//!   [`Error::TypeMismatch`] before the bytes are reinterpreted.
//!
//! When checking is off (the default) the cost is one `Option` branch per
//! operation and no detector thread exists.
//!
//! ## Flow control and memory governance
//!
//! Sends are eager but no longer unbounded: every `(sender, receiver)` pair
//! has a credit window ([`FlowConfig`], `DDR_MAILBOX_CREDITS` /
//! `DDR_MAILBOX_BYTES`, or [`UniverseBuilder::flow_control`]) and a
//! process-global **memory governor** meters staged bytes against
//! `DDR_MEM_BUDGET` ([`UniverseBuilder::mem_budget`]). Overloaded senders
//! park on a credit gate — observable via [`Comm::flow_counters`] and never
//! mistaken for a deadlock by the watchdog or the wait-for-graph detector —
//! and the runtime degrades in stages (shed zero-copy → shrink pipeline
//! depth → trim the pool) before the terminal [`Error::MemoryPressure`].
//! Credits ride on the envelopes themselves, so the epoch sweep performed by
//! [`Comm::reconfigure`] restores them exactly: no credit leaks or
//! duplicates across a membership change.
//!
//! ## Deterministic schedule exploration
//!
//! `Universe::builder().sched_seed(s)` (or `DDR_SCHED_SEED=s`) arms a seeded
//! scheduler hook at every wait/poll point: sends, receives, zero-copy
//! claims, retransmit polls, and the reconfigure rendezvous may yield or
//! sleep for a few hundred microseconds, and any-source receives rotate
//! their source preference — all as a pure function of (seed, rank, op
//! count), so a given seed replays the same perturbation. Each run folds its
//! delivery orders into a seed-independent fingerprint
//! ([`take_last_fingerprint`]) that an explorer (see the `ddrcheck` crate)
//! uses to prune equivalent schedules while sweeping seeds. Unseeded, the
//! hook is one `Option` branch per operation.
//!
//! ## Example
//!
//! ```
//! use minimpi::Universe;
//!
//! let sums = Universe::run(4, |comm| {
//!     let mine = vec![comm.rank() as u64 + 1];
//!     let total: u64 = comm.allreduce(&mine, |a, b| a + b)[0];
//!     total
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

#![warn(missing_docs)]

mod cart;
mod check;
mod collectives;
mod comm;
mod datatype;
mod elastic;
pub mod env;
mod error;
mod fault;
mod flow;
mod integrity;
mod kernels;
mod life;
mod mailbox;
mod pod;
mod request;
mod sched;
mod universe;
mod vclock;
mod zerocopy;

pub use cart::CartComm;
pub use check::{
    CheckCounters, CollFingerprint, CollectiveKind, DeadlockReport, DivergenceReport, LeakedLoan,
    LoanLeakReport, PendingRecv, RaceReport, TypeSig,
};
pub use collectives::{AlltoallwRequest, ExchangeReport};
pub use comm::{Comm, RecvStatus, Tag, ANY_SOURCE};
pub use datatype::{ByteRuns, Datatype, Subarray};
pub use elastic::RecoveryCounters;
pub use error::{Error, Result};
pub use fault::{FaultAction, FaultPlan, MessageMatcher};
pub use flow::{FlowConfig, FlowCounters};
pub use integrity::IntegrityCounters;
pub use kernels::PackCounters;
pub use pod::{bytes_of, bytes_of_mut, Pod};
pub use request::RecvRequest;
pub use sched::take_last_fingerprint;
pub use universe::{Universe, UniverseBuilder};
pub use vclock::VectorClock;
pub use zerocopy::{PoolStats, TransportCounters};

/// Snapshot of the process-global pack-kernel dispatch counters
/// (`pack.{fused_runs,vector_bytes,scalar_bytes,pool_dispatches}` in the
/// ddr-trace report). Totals are monotone across the process lifetime;
/// take deltas around a region to attribute work to it.
pub fn pack_counters() -> PackCounters {
    kernels::snapshot()
}
