//! Plain-old-data marker trait used for typed message payloads.

/// Marker for types that can be sent as raw bytes.
///
/// # Safety
///
/// Implementors must guarantee that the type
///
/// * has no padding bytes (every byte of the representation is initialized),
/// * is valid for **any** bit pattern (so bytes received off the wire can be
///   reinterpreted as the type), and
/// * contains no pointers or lifetimes.
///
/// The blanket implementations below cover the primitive numeric types and
/// fixed-size arrays of them, which is everything the DDR stack transmits.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

macro_rules! impl_pod {
    ($($t:ty),* $(,)?) => {
        // SAFETY: primitive numeric types have no padding, accept every bit
        // pattern (floats included — any bits are *a* float, possibly NaN),
        // and hold no pointers or lifetimes.
        $(unsafe impl Pod for $t {})*
    };
}

impl_pod!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128, usize, isize, f32, f64);

// SAFETY: an array is `N` contiguous `T`s with no extra padding (guaranteed
// by the array layout), so it is Pod exactly when its element type is.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a slice of POD values as raw bytes.
pub fn bytes_of<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: `T: Pod` guarantees no padding and no invalid representations;
    // the length arithmetic cannot overflow because the slice exists.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// View a mutable slice of POD values as raw bytes.
pub fn bytes_of_mut<T: Pod>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: as in `bytes_of`; any bit pattern written through the returned
    // slice is a valid `T` because `T: Pod`.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// Copy raw bytes into a freshly allocated, correctly aligned `Vec<T>`.
///
/// Returns `None` when `bytes.len()` is not a multiple of `size_of::<T>()`.
pub(crate) fn vec_from_bytes<T: Pod>(bytes: &[u8]) -> Option<Vec<T>> {
    let esz = std::mem::size_of::<T>();
    if esz == 0 || bytes.len() % esz != 0 {
        return None;
    }
    let n = bytes.len() / esz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: the destination allocation holds exactly `n` elements; Pod
    // types accept arbitrary byte patterns, so copying then setting the
    // length yields initialized, valid values.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), bytes.len());
        out.set_len(n);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_f64() {
        let v = [1.5f64, -2.25, 0.0, f64::MAX];
        let b = bytes_of(&v);
        assert_eq!(b.len(), 32);
        let back: Vec<f64> = vec_from_bytes(b).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn bytes_of_mut_writes_through() {
        let mut v = [0u32; 2];
        bytes_of_mut(&mut v).copy_from_slice(&[1, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(v, [1u32.to_le(), 2u32.to_le()]);
    }

    #[test]
    fn vec_from_bytes_rejects_ragged_lengths() {
        assert!(vec_from_bytes::<u32>(&[0u8; 7]).is_none());
        assert!(vec_from_bytes::<u32>(&[0u8; 8]).is_some());
    }

    #[test]
    fn vec_from_bytes_empty() {
        let v: Vec<u64> = vec_from_bytes(&[]).unwrap();
        assert!(v.is_empty());
    }
}
