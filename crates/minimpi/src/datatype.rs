//! MPI-style derived datatypes.
//!
//! The DDR paper's redistribution step relies on `MPI_Alltoallw` with
//! **subarray** datatypes: each rank describes, for every peer, a
//! multidimensional rectangular subset of a larger array to send from (or
//! receive into). This module implements that subset of MPI's datatype
//! machinery: a [`Subarray`] describes the rectangle, and [`Datatype`] is the
//! wire-facing enum used by [`crate::Comm::alltoallw`].
//!
//! Memory layout convention (matching the paper's `[i, j, k]` parameter
//! order): **coordinate 0 varies fastest**. For a 2-D array of size
//! `[sx, sy]`, element `(x, y)` lives at linear index `x + sx * y`; for 3-D
//! `[sx, sy, sz]`, element `(x, y, z)` lives at `x + sx * (y + sy * z)`.

use crate::error::{Error, Result};
use crate::integrity::Checksum;
use crate::kernels::{self, RunShape};

/// Maximum dimensionality supported (the paper supports 1-D, 2-D and 3-D).
pub const MAX_DIMS: usize = 3;

/// A rectangular subset of a multidimensional array, equivalent to the
/// datatype produced by `MPI_Type_create_subarray`.
///
/// Unused trailing dimensions must be set to size 1 (for `sizes` and
/// `subsizes`) and 0 (for `starts`); the convenience constructors do this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subarray {
    /// Number of meaningful dimensions (1..=3).
    pub ndims: usize,
    /// Full extents of the underlying array, fastest-varying first.
    pub sizes: [usize; MAX_DIMS],
    /// Extents of the selected rectangle.
    pub subsizes: [usize; MAX_DIMS],
    /// Offset of the rectangle inside the underlying array.
    pub starts: [usize; MAX_DIMS],
    /// Size in bytes of one array element.
    pub elem_size: usize,
    /// Fused run structure, derived once at construction so `byte_runs` and
    /// the pack/unpack kernels never re-derive the dimension merge. Fully a
    /// function of the fields above (`PartialEq` stays consistent).
    shape: RunShape,
}

impl Subarray {
    /// Create a subarray datatype, validating that the rectangle lies inside
    /// the full array.
    pub fn new(
        ndims: usize,
        sizes: [usize; MAX_DIMS],
        subsizes: [usize; MAX_DIMS],
        starts: [usize; MAX_DIMS],
        elem_size: usize,
    ) -> Result<Self> {
        if ndims == 0 || ndims > MAX_DIMS {
            return Err(Error::DatatypeMismatch {
                detail: format!("ndims must be 1..=3, got {ndims}"),
            });
        }
        if elem_size == 0 {
            return Err(Error::DatatypeMismatch { detail: "elem_size must be > 0".into() });
        }
        let mut sizes = sizes;
        let mut subsizes = subsizes;
        let mut starts = starts;
        for d in ndims..MAX_DIMS {
            sizes[d] = 1;
            subsizes[d] = 1;
            starts[d] = 0;
        }
        for d in 0..ndims {
            if starts[d] + subsizes[d] > sizes[d] {
                return Err(Error::DatatypeMismatch {
                    detail: format!(
                        "dim {d}: start {} + subsize {} exceeds size {}",
                        starts[d], subsizes[d], sizes[d]
                    ),
                });
            }
        }
        let shape = RunShape::derive(&sizes, &subsizes, &starts, elem_size);
        Ok(Subarray { ndims, sizes, subsizes, starts, elem_size, shape })
    }

    /// 1-D convenience constructor.
    pub fn d1(size: usize, subsize: usize, start: usize, elem_size: usize) -> Result<Self> {
        Self::new(1, [size, 1, 1], [subsize, 1, 1], [start, 0, 0], elem_size)
    }

    /// 2-D convenience constructor (`x` fastest-varying).
    pub fn d2(
        sizes: [usize; 2],
        subsizes: [usize; 2],
        starts: [usize; 2],
        elem_size: usize,
    ) -> Result<Self> {
        Self::new(
            2,
            [sizes[0], sizes[1], 1],
            [subsizes[0], subsizes[1], 1],
            [starts[0], starts[1], 0],
            elem_size,
        )
    }

    /// 3-D convenience constructor (`x` fastest-varying).
    pub fn d3(
        sizes: [usize; 3],
        subsizes: [usize; 3],
        starts: [usize; 3],
        elem_size: usize,
    ) -> Result<Self> {
        Self::new(3, sizes, subsizes, starts, elem_size)
    }

    /// Number of elements selected by the rectangle.
    pub fn count(&self) -> usize {
        self.subsizes[0] * self.subsizes[1] * self.subsizes[2]
    }

    /// Number of bytes the rectangle packs into.
    pub fn packed_len(&self) -> usize {
        self.count() * self.elem_size
    }

    /// Number of bytes the *full* underlying array occupies.
    pub fn full_len(&self) -> usize {
        self.sizes[0] * self.sizes[1] * self.sizes[2] * self.elem_size
    }

    fn check_buf(&self, buf_len: usize) -> Result<()> {
        if buf_len < self.full_len() {
            return Err(Error::DatatypeMismatch {
                detail: format!(
                    "buffer of {} bytes too small for array of {} bytes ({}x{}x{} elems of {}B)",
                    buf_len,
                    self.full_len(),
                    self.sizes[0],
                    self.sizes[1],
                    self.sizes[2],
                    self.elem_size
                ),
            });
        }
        Ok(())
    }

    /// Iterate the selection as maximal contiguous byte runs
    /// `(byte_offset, byte_len)`, in packed (row-major, coordinate 0
    /// fastest) order. Fully covered leading dimensions are merged into
    /// longer runs, so a full-array selection yields exactly one run. The
    /// run structure is cached at construction ([`kernels::RunShape`]), so
    /// this is a field copy, not a re-derivation.
    pub fn byte_runs(&self) -> ByteRuns {
        ByteRuns::from_shape(&self.shape)
    }

    /// Pack the selected rectangle out of `src` (the full array, as bytes)
    /// and append it to `out`, through the tiered kernel dispatcher
    /// (fused memcpy / lane gather / pooled fan-out — see
    /// [`crate::kernels`]).
    pub fn pack_into(&self, src: &[u8], out: &mut Vec<u8>) -> Result<()> {
        self.check_buf(src.len())?;
        kernels::pack_runs(src, &self.shape, out);
        Ok(())
    }

    /// [`Subarray::pack_into`] that additionally folds the packed bytes into
    /// `sum` during the copy. Bit-identical to packing and then hashing the
    /// packed payload (the envelope checksum is split-point independent),
    /// without the second pass.
    pub(crate) fn pack_into_hashed(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        sum: &mut Checksum,
    ) -> Result<()> {
        self.check_buf(src.len())?;
        kernels::pack_runs_hashed(src, &self.shape, out, sum);
        Ok(())
    }

    /// Pack the selected rectangle into a fresh buffer.
    pub fn pack(&self, src: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.packed_len());
        self.pack_into(src, &mut out)?;
        Ok(out)
    }

    /// Unpack `packed` bytes (as produced by [`Subarray::pack`]) into the
    /// selected rectangle of `dst` (the full array, as bytes).
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) -> Result<()> {
        self.check_buf(dst.len())?;
        if packed.len() != self.packed_len() {
            return Err(Error::SizeMismatch { expected: self.packed_len(), got: packed.len() });
        }
        kernels::unpack_runs(packed, &self.shape, dst);
        Ok(())
    }

    /// [`Subarray::unpack`] that additionally folds the packed bytes into
    /// `sum` during the scatter — the receive-side counterpart of
    /// [`Subarray::pack_into_hashed`], for paths that fuse envelope
    /// verification into the unpack.
    pub(crate) fn unpack_hashed(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        sum: &mut Checksum,
    ) -> Result<()> {
        self.check_buf(dst.len())?;
        if packed.len() != self.packed_len() {
            return Err(Error::SizeMismatch { expected: self.packed_len(), got: packed.len() });
        }
        kernels::unpack_runs_hashed(packed, &self.shape, dst, sum);
        Ok(())
    }

    /// Copy the rectangle directly from `src` into the rectangle described by
    /// `dst_type` in `dst`, without an intermediate packed buffer: source and
    /// destination runs are walked in lockstep, one `copy_from_slice` per
    /// overlapping stretch. Used for self-sends and the zero-copy exchange.
    pub fn copy_to(&self, src: &[u8], dst_type: &Subarray, dst: &mut [u8]) -> Result<()> {
        if self.count() != dst_type.count() || self.elem_size != dst_type.elem_size {
            return Err(Error::DatatypeMismatch {
                detail: format!(
                    "self-copy shape mismatch: {} elems of {}B vs {} elems of {}B",
                    self.count(),
                    self.elem_size,
                    dst_type.count(),
                    dst_type.elem_size
                ),
            });
        }
        copy_selection(src, &Datatype::Subarray(*self), dst, &Datatype::Subarray(*dst_type))
    }
}

/// Iterator over the maximal contiguous byte runs of a [`Subarray`]
/// selection, in packed order. See [`Subarray::byte_runs`].
#[derive(Debug, Clone)]
pub struct ByteRuns {
    run_bytes: usize,
    base: usize,
    /// Non-merged dimensions as `(count, byte stride)`; `dims[0]` is inner.
    dims: [(usize, usize); 2],
    idx: [usize; 2],
    left: usize,
}

impl ByteRuns {
    pub(crate) fn from_shape(s: &RunShape) -> ByteRuns {
        ByteRuns { run_bytes: s.run_bytes, base: s.base, dims: s.dims, idx: [0; 2], left: s.nruns }
    }
}

impl Iterator for ByteRuns {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.left == 0 {
            return None;
        }
        let off = self.base + self.idx[0] * self.dims[0].1 + self.idx[1] * self.dims[1].1;
        self.idx[0] += 1;
        if self.idx[0] == self.dims[0].0 {
            self.idx[0] = 0;
            self.idx[1] += 1;
        }
        self.left -= 1;
        Some((off, self.run_bytes))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left, Some(self.left))
    }
}

impl ExactSizeIterator for ByteRuns {}

/// Walk the runs of two equal-length selections in lockstep, invoking
/// `f(src_offset, dst_offset, len)` for every maximal stretch that is
/// contiguous in *both*. This is the engine of the zero-copy exchange: one
/// callback per `copy_from_slice`, no staging buffer anywhere.
pub(crate) fn for_each_run_pair(
    src_dt: &Datatype,
    dst_dt: &Datatype,
    mut f: impl FnMut(usize, usize, usize),
) -> Result<()> {
    if src_dt.packed_len() != dst_dt.packed_len() {
        return Err(Error::SizeMismatch {
            expected: dst_dt.packed_len(),
            got: src_dt.packed_len(),
        });
    }
    let mut src_runs = src_dt.byte_runs();
    let mut dst_runs = dst_dt.byte_runs();
    let (mut so, mut sl) = (0usize, 0usize);
    let (mut doff, mut dl) = (0usize, 0usize);
    loop {
        if sl == 0 {
            match src_runs.next() {
                Some((o, l)) => (so, sl) = (o, l),
                None => return Ok(()),
            }
            continue;
        }
        if dl == 0 {
            match dst_runs.next() {
                Some((o, l)) => (doff, dl) = (o, l),
                // Equal packed lengths: the destination cannot run dry first.
                None => unreachable!("run streams of equal packed length diverged"),
            }
            continue;
        }
        let n = sl.min(dl);
        f(so, doff, n);
        so += n;
        sl -= n;
        doff += n;
        dl -= n;
    }
}

/// Copy `src_dt`'s selection of `src` directly into `dst_dt`'s selection of
/// `dst`. Both buffers are validated against their datatypes up front.
/// Large copies (≥ 4 MiB) collect the run pairs and fan out across the
/// [`crate::kernels`] pool dispatcher — the same tier `pack_into`/`unpack`
/// use — so `copy_to` and the zero-copy claim share one dispatch point.
pub(crate) fn copy_selection(
    src: &[u8],
    src_dt: &Datatype,
    dst: &mut [u8],
    dst_dt: &Datatype,
) -> Result<()> {
    src_dt.check_bounds(src.len())?;
    dst_dt.check_bounds(dst.len())?;
    let total = src_dt.packed_len();
    if total >= crate::zerocopy::PARALLEL_COPY_MIN_BYTES && !cfg!(miri) {
        let mut pairs = Vec::new();
        for_each_run_pair(src_dt, dst_dt, |s, d, n| pairs.push((s, d, n)))?;
        kernels::copy_pairs(src, dst, pairs, total);
        return Ok(());
    }
    for_each_run_pair(src_dt, dst_dt, |s, d, n| {
        dst[d..d + n].copy_from_slice(&src[s..s + n]);
    })
}

/// Wire-facing datatype used by [`crate::Comm::alltoallw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Datatype {
    /// No data exchanged with this peer.
    Empty,
    /// `len_bytes` contiguous bytes starting at the beginning of the buffer.
    Contiguous {
        /// Number of bytes.
        len_bytes: usize,
        /// Byte offset into the buffer.
        offset: usize,
    },
    /// A rectangular subset of a multidimensional array.
    Subarray(Subarray),
}

impl Datatype {
    /// Bytes this datatype packs to.
    pub fn packed_len(&self) -> usize {
        match self {
            Datatype::Empty => 0,
            Datatype::Contiguous { len_bytes, .. } => *len_bytes,
            Datatype::Subarray(s) => s.packed_len(),
        }
    }

    /// Iterate this datatype's selection as contiguous `(offset, len)` byte
    /// runs in packed order (see [`Subarray::byte_runs`]).
    pub fn byte_runs(&self) -> ByteRuns {
        match self {
            Datatype::Empty => ByteRuns::from_shape(&RunShape::EMPTY),
            Datatype::Contiguous { len_bytes, offset } => {
                ByteRuns::from_shape(&RunShape::contiguous(*offset, *len_bytes))
            }
            Datatype::Subarray(s) => s.byte_runs(),
        }
    }

    /// Validate that a buffer of `buf_len` bytes is large enough to hold this
    /// datatype's full underlying extent.
    pub(crate) fn check_bounds(&self, buf_len: usize) -> Result<()> {
        match self {
            Datatype::Empty => Ok(()),
            Datatype::Contiguous { len_bytes, offset } => {
                let end = offset + len_bytes;
                if end > buf_len {
                    return Err(Error::DatatypeMismatch {
                        detail: format!(
                            "contiguous range {offset}..{end} exceeds buffer of {buf_len} bytes"
                        ),
                    });
                }
                Ok(())
            }
            Datatype::Subarray(s) => s.check_buf(buf_len),
        }
    }

    /// Pack this datatype's selection out of `src`, appending to `out`.
    pub fn pack_into(&self, src: &[u8], out: &mut Vec<u8>) -> Result<()> {
        match self {
            Datatype::Empty => Ok(()),
            Datatype::Contiguous { len_bytes, offset } => {
                let end = offset + len_bytes;
                if end > src.len() {
                    return Err(Error::DatatypeMismatch {
                        detail: format!(
                            "contiguous range {offset}..{end} exceeds buffer of {} bytes",
                            src.len()
                        ),
                    });
                }
                out.extend_from_slice(&src[*offset..end]);
                Ok(())
            }
            Datatype::Subarray(s) => s.pack_into(src, out),
        }
    }

    /// [`Datatype::pack_into`] that folds the packed bytes into `sum` during
    /// the copy — the sender-side checksum fusion (see
    /// [`Subarray::pack_into_hashed`]).
    pub(crate) fn pack_into_hashed(
        &self,
        src: &[u8],
        out: &mut Vec<u8>,
        sum: &mut Checksum,
    ) -> Result<()> {
        match self {
            Datatype::Empty => Ok(()),
            Datatype::Contiguous { .. } => {
                let start = out.len();
                self.pack_into(src, out)?;
                sum.update(&out[start..]);
                Ok(())
            }
            Datatype::Subarray(s) => s.pack_into_hashed(src, out, sum),
        }
    }

    /// Unpack `packed` into this datatype's selection of `dst`.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) -> Result<()> {
        match self {
            Datatype::Empty => {
                if packed.is_empty() {
                    Ok(())
                } else {
                    Err(Error::SizeMismatch { expected: 0, got: packed.len() })
                }
            }
            Datatype::Contiguous { len_bytes, offset } => {
                if packed.len() != *len_bytes {
                    return Err(Error::SizeMismatch { expected: *len_bytes, got: packed.len() });
                }
                let end = offset + len_bytes;
                if end > dst.len() {
                    return Err(Error::DatatypeMismatch {
                        detail: format!(
                            "contiguous range {offset}..{end} exceeds buffer of {} bytes",
                            dst.len()
                        ),
                    });
                }
                dst[*offset..end].copy_from_slice(packed);
                Ok(())
            }
            Datatype::Subarray(s) => s.unpack(packed, dst),
        }
    }

    /// [`Datatype::unpack`] that folds the packed bytes into `sum` during
    /// the scatter — the receive-side checksum fusion (see
    /// [`Subarray::unpack_hashed`]).
    pub(crate) fn unpack_hashed(
        &self,
        packed: &[u8],
        dst: &mut [u8],
        sum: &mut Checksum,
    ) -> Result<()> {
        match self {
            Datatype::Empty => self.unpack(packed, dst),
            Datatype::Contiguous { len_bytes, offset } => {
                if packed.len() != *len_bytes {
                    return Err(Error::SizeMismatch { expected: *len_bytes, got: packed.len() });
                }
                let end = offset + len_bytes;
                if end > dst.len() {
                    return Err(Error::DatatypeMismatch {
                        detail: format!(
                            "contiguous range {offset}..{end} exceeds buffer of {} bytes",
                            dst.len()
                        ),
                    });
                }
                sum.update_copying_to(packed, &mut dst[*offset..end]);
                Ok(())
            }
            Datatype::Subarray(s) => s.unpack_hashed(packed, dst, sum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr2d(w: usize, h: usize) -> Vec<u8> {
        (0..w * h).map(|i| i as u8).collect()
    }

    #[test]
    fn pack_2d_interior_rect() {
        // 4x4 array, pack the central 2x2 (starts [1,1]).
        let a = arr2d(4, 4);
        let s = Subarray::d2([4, 4], [2, 2], [1, 1], 1).unwrap();
        assert_eq!(s.pack(&a).unwrap(), vec![5, 6, 9, 10]);
    }

    #[test]
    fn unpack_restores_exact_region() {
        let a = arr2d(4, 4);
        let s = Subarray::d2([4, 4], [2, 2], [1, 1], 1).unwrap();
        let packed = s.pack(&a).unwrap();
        let mut b = vec![0u8; 16];
        s.unpack(&packed, &mut b).unwrap();
        let expect: Vec<u8> =
            (0..16).map(|i| if [5, 6, 9, 10].contains(&i) { i as u8 } else { 0 }).collect();
        assert_eq!(b, expect);
    }

    #[test]
    fn pack_unpack_roundtrip_3d_multibyte_elems() {
        // 3x2x2 array of u32, pack a 2x1x2 corner.
        let w = 3;
        let h = 2;
        let d = 2;
        let vals: Vec<u32> = (0..(w * h * d) as u32).collect();
        let bytes = crate::pod::bytes_of(&vals);
        let s = Subarray::d3([3, 2, 2], [2, 1, 2], [1, 1, 0], 4).unwrap();
        let packed = s.pack(bytes).unwrap();
        // Selected elements: (x,y,z) with x in 1..3, y == 1, z in 0..2.
        // Linear index = x + 3*(y + 2*z).
        let expect: Vec<u32> = vec![1 + 3, 2 + 3, 1 + 3 * (1 + 2), 2 + 3 * (1 + 2)];
        let got: Vec<u32> = crate::pod::vec_from_bytes(&packed).unwrap();
        assert_eq!(got, expect);

        let mut dst = vec![0u32; w * h * d];
        s.unpack(&packed, crate::pod::bytes_of_mut(&mut dst)).unwrap();
        for (i, v) in dst.iter().enumerate() {
            if expect.contains(&(i as u32)) {
                assert_eq!(*v, i as u32);
            } else {
                assert_eq!(*v, 0);
            }
        }
    }

    #[test]
    fn full_array_pack_is_identity() {
        let a = arr2d(5, 3);
        let s = Subarray::d2([5, 3], [5, 3], [0, 0], 1).unwrap();
        assert_eq!(s.pack(&a).unwrap(), a);
    }

    #[test]
    fn rejects_out_of_bounds_rect() {
        assert!(Subarray::d2([4, 4], [2, 2], [3, 0], 1).is_err());
        assert!(Subarray::new(4, [1; 3], [1; 3], [0; 3], 1).is_err());
        assert!(Subarray::d1(4, 2, 0, 0).is_err());
    }

    #[test]
    fn zero_extent_rect_is_valid_and_empty() {
        let s = Subarray::d2([4, 4], [0, 2], [0, 0], 1).unwrap();
        assert_eq!(s.count(), 0);
        assert_eq!(s.packed_len(), 0);
        assert_eq!(s.byte_runs().count(), 0);
        let a = arr2d(4, 4);
        assert_eq!(s.pack(&a).unwrap(), Vec::<u8>::new());
        let mut b = a.clone();
        s.unpack(&[], &mut b).unwrap();
        assert_eq!(b, a);
        // A zero-extent rectangle may sit on the far edge.
        assert!(Subarray::d1(4, 0, 4, 1).is_ok());
        assert!(Subarray::d1(4, 0, 5, 1).is_err());
    }

    #[test]
    fn byte_runs_merge_fully_covered_dims() {
        // Full-array selection: one run.
        let s = Subarray::d3([4, 3, 2], [4, 3, 2], [0, 0, 0], 2).unwrap();
        assert_eq!(s.byte_runs().collect::<Vec<_>>(), vec![(0, 48)]);
        // Full rows, partial y: runs merge across y, split across z.
        let s = Subarray::d3([4, 3, 2], [4, 2, 2], [0, 1, 0], 1).unwrap();
        assert_eq!(s.byte_runs().collect::<Vec<_>>(), vec![(4, 8), (16, 8)]);
        // Partial x: one run per (y, z) row.
        let s = Subarray::d3([4, 3, 2], [2, 2, 1], [1, 0, 1], 1).unwrap();
        assert_eq!(s.byte_runs().collect::<Vec<_>>(), vec![(13, 2), (17, 2)]);
    }

    #[test]
    fn byte_runs_match_pack_order() {
        let a = arr2d(5, 4);
        let s = Subarray::d2([5, 4], [3, 2], [1, 1], 1).unwrap();
        let mut via_runs = Vec::new();
        for (off, len) in s.byte_runs() {
            via_runs.extend_from_slice(&a[off..off + len]);
        }
        assert_eq!(via_runs, s.pack(&a).unwrap());
    }

    #[test]
    fn rejects_short_buffers() {
        let s = Subarray::d2([4, 4], [2, 2], [1, 1], 1).unwrap();
        assert!(s.pack(&[0u8; 15]).is_err());
        let mut small = [0u8; 15];
        assert!(s.unpack(&[0u8; 4], &mut small).is_err());
        let mut ok = [0u8; 16];
        assert!(s.unpack(&[0u8; 3], &mut ok).is_err()); // wrong packed len
    }

    #[test]
    fn contiguous_datatype_roundtrip() {
        let src = [1u8, 2, 3, 4, 5, 6];
        let dt = Datatype::Contiguous { len_bytes: 3, offset: 2 };
        let mut out = Vec::new();
        dt.pack_into(&src, &mut out).unwrap();
        assert_eq!(out, vec![3, 4, 5]);
        let mut dst = [0u8; 6];
        dt.unpack(&out, &mut dst).unwrap();
        assert_eq!(dst, [0, 0, 3, 4, 5, 0]);
    }

    #[test]
    fn empty_datatype() {
        let dt = Datatype::Empty;
        assert_eq!(dt.packed_len(), 0);
        let mut out = Vec::new();
        dt.pack_into(&[], &mut out).unwrap();
        assert!(out.is_empty());
        assert!(dt.unpack(&[1], &mut []).is_err());
    }

    #[test]
    fn copy_to_between_different_geometries() {
        // Pack a 4x1 row out of an 8-wide array, deposit as a 2x2 square.
        let src: Vec<u8> = (0..8).collect();
        let s_src = Subarray::d2([8, 1], [4, 1], [2, 0], 1).unwrap();
        let s_dst = Subarray::d2([4, 4], [2, 2], [0, 0], 1).unwrap();
        let mut dst = vec![0u8; 16];
        s_src.copy_to(&src, &s_dst, &mut dst).unwrap();
        assert_eq!(&dst[0..2], &[2, 3]);
        assert_eq!(&dst[4..6], &[4, 5]);
    }
}
