//! Specialized pack/unpack kernels for subarray selections.
//!
//! The datatype engine describes every selection as a stream of contiguous
//! byte runs ([`crate::Subarray::byte_runs`]). This module is the single
//! place those runs are *moved*: `pack` (gather into a packed buffer),
//! `unpack` (scatter a packed buffer back into a selection), and the
//! run-pair copy behind `copy_to` / the zero-copy claim all dispatch here.
//!
//! Three tiers, chosen per call from the [`RunShape`] cached on the
//! datatype at construction time:
//!
//! 1. **Fused**: a selection whose runs merged into a single contiguous
//!    stretch (full-array selections, 2-D slabs with contiguous rows) is one
//!    `memcpy` — no per-run loop at all.
//! 2. **Pooled**: at or above [`PARALLEL_COPY_MIN_BYTES`] (the existing
//!    ≥ 4 MiB zero-copy bound) the runs are sharded across the process
//!    [`CopyPool`], so huge packs, unpacks and claim copies all use the same
//!    parallel dispatcher.
//! 3. **Lanes**: strided interior selections copy through a fixed-width
//!    lane loop (`[u8; N]` reads/writes for the common run widths), which
//!    the compiler vectorizes; other widths fall back to a scalar
//!    `copy_nonoverlapping` per run.
//!
//! Sender-side envelope checksums fold *during* the gather
//! ([`pack_runs_hashed`]): the 4-lane hash is split-point independent
//! (`integrity.rs`), so hashing run-by-run while the bytes are cache-hot is
//! bit-identical to re-hashing the packed payload afterwards — the second
//! pass the old path paid.
//!
//! Every tier bumps a process-global counter, published as `pack.*` metrics
//! in the ddr-trace report and exported via [`crate::pack_counters`].

use crate::integrity::Checksum;
use crate::zerocopy::{shard_runs, CopyPool, PARALLEL_COPY_MIN_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};

/// The derived run structure of a subarray selection, computed once at
/// [`crate::Subarray::new`] time and cached on the datatype, so iterating or
/// copying a selection never re-derives the dimension merge.
///
/// The selection consists of `nruns` contiguous runs of `run_bytes` bytes;
/// run `(i0, i1)` (with `i0 < dims[0].0`, `i1 < dims[1].0`, `i0` varying
/// fastest) starts at `base + i0 * dims[0].1 + i1 * dims[1].1`. Fully
/// covered leading dimensions were merged into `run_bytes` during
/// derivation, so a fused (fully contiguous) selection has `nruns == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunShape {
    /// Bytes per contiguous run.
    pub run_bytes: usize,
    /// Byte offset of the first run.
    pub base: usize,
    /// Non-merged dimensions as `(count, byte stride)`; `dims[0]` is the
    /// faster-varying one. `(1, 0)` for absent dimensions.
    pub dims: [(usize, usize); 2],
    /// Total number of runs (`dims[0].0 * dims[1].0`, or 0 for an empty
    /// selection).
    pub nruns: usize,
}

impl RunShape {
    /// The empty selection: no runs, no bytes.
    pub const EMPTY: RunShape = RunShape { run_bytes: 0, base: 0, dims: [(0, 0); 2], nruns: 0 };

    /// A single contiguous stretch of `len` bytes at `offset`.
    pub fn contiguous(offset: usize, len: usize) -> RunShape {
        RunShape { run_bytes: len, base: offset, dims: [(1, 0); 2], nruns: usize::from(len > 0) }
    }

    /// Derive the fused run structure of a subarray selection. `sizes`,
    /// `subsizes` and `starts` must already be normalized (trailing unused
    /// dimensions set to extent 1 / start 0) and validated in-bounds.
    pub fn derive(
        sizes: &[usize; 3],
        subsizes: &[usize; 3],
        starts: &[usize; 3],
        elem_size: usize,
    ) -> RunShape {
        if subsizes.iter().product::<usize>() == 0 {
            return RunShape::EMPTY;
        }
        // Longest prefix of dimensions the rectangle covers completely:
        // those merge into the contiguous run (their start is necessarily
        // 0). This is the fusion rule: a 2-D slab with contiguous rows
        // (subsizes[0] == sizes[0]) collapses its row loop into run length.
        let ndims = sizes.len();
        let mut p = 0;
        while p < ndims && subsizes[p] == sizes[p] {
            p += 1;
        }
        let stride = |d: usize| -> usize { sizes[..d].iter().product::<usize>() };
        let mut run_elems: usize = sizes[..p].iter().product();
        let mut base_elems = 0usize;
        if p < ndims {
            run_elems *= subsizes[p];
            base_elems += starts[p] * stride(p);
        }
        // At most two dimensions remain to iterate; dims[0] is the inner
        // (faster-varying) one.
        let mut dims = [(1usize, 0usize); 2];
        for (slot, d) in ((p + 1)..ndims).enumerate() {
            dims[slot] = (subsizes[d], stride(d) * elem_size);
            base_elems += starts[d] * stride(d);
        }
        RunShape {
            run_bytes: run_elems * elem_size,
            base: base_elems * elem_size,
            dims,
            nruns: dims[0].0 * dims[1].0,
        }
    }

    /// Total bytes the selection packs to.
    pub fn total_bytes(&self) -> usize {
        self.run_bytes * self.nruns
    }

    /// One-past-the-end byte offset of the highest-addressed run (0 for an
    /// empty selection) — the bound the kernels assert before raw copies.
    fn max_end(&self) -> usize {
        if self.nruns == 0 {
            return 0;
        }
        self.base
            + (self.dims[0].0 - 1) * self.dims[0].1
            + (self.dims[1].0 - 1) * self.dims[1].1
            + self.run_bytes
    }
}

/// Per-kernel dispatch counters, process-global (the kernels have no world
/// handle). Exported as `pack.*` metrics and via [`crate::pack_counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackCounters {
    /// Selections moved as a single fused memcpy (runs merged to one).
    pub fused_runs: u64,
    /// Bytes moved through the fixed-width lane gather/scatter loops.
    pub vector_bytes: u64,
    /// Bytes moved through the scalar per-run fallback (odd run widths and
    /// run-pair copies).
    pub scalar_bytes: u64,
    /// Batches fanned out across the [`CopyPool`] (≥ 4 MiB).
    pub pool_dispatches: u64,
}

static FUSED_RUNS: AtomicU64 = AtomicU64::new(0);
static VECTOR_BYTES: AtomicU64 = AtomicU64::new(0);
static SCALAR_BYTES: AtomicU64 = AtomicU64::new(0);
static POOL_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global kernel counters (monotone totals).
pub fn snapshot() -> PackCounters {
    PackCounters {
        fused_runs: FUSED_RUNS.load(Ordering::Relaxed),
        vector_bytes: VECTOR_BYTES.load(Ordering::Relaxed),
        scalar_bytes: SCALAR_BYTES.load(Ordering::Relaxed),
        pool_dispatches: POOL_DISPATCHES.load(Ordering::Relaxed),
    }
}

/// Run widths that go through the lane loops. Covers the element sizes the
/// DDR stack actually moves (u8..f64 and small multiples — a strided column
/// of f32 is a 4-byte lane, a pair of f64 a 16-byte one).
const fn is_lane_width(n: usize) -> bool {
    matches!(n, 1 | 2 | 4 | 8 | 12 | 16 | 32 | 64)
}

/// Gather the selection out of `src`, appending to `out`.
pub(crate) fn pack_runs(src: &[u8], shape: &RunShape, out: &mut Vec<u8>) {
    pack_impl(src, shape, out, None);
}

/// Gather the selection out of `src`, appending to `out`, folding the bytes
/// into `sum` during the copy (in packed order, so the result equals
/// hashing the packed payload).
pub(crate) fn pack_runs_hashed(
    src: &[u8],
    shape: &RunShape,
    out: &mut Vec<u8>,
    sum: &mut Checksum,
) {
    pack_impl(src, shape, out, Some(sum));
}

fn pack_impl(src: &[u8], shape: &RunShape, out: &mut Vec<u8>, mut sum: Option<&mut Checksum>) {
    let total = shape.total_bytes();
    if total == 0 {
        return;
    }
    assert!(shape.max_end() <= src.len(), "run shape exceeds source buffer");
    if shape.nruns == 1 {
        let run = &src[shape.base..shape.base + shape.run_bytes];
        match sum.as_deref_mut() {
            // Single pass: each 32-byte group is loaded once, stored to the
            // packed buffer, and folded into the hash lanes while still in
            // registers — a fused pack with checksumming costs one traversal
            // of the payload, not two.
            Some(s) => s.update_copying(run, out),
            None => out.extend_from_slice(run),
        }
        FUSED_RUNS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let start = out.len();
    out.reserve(total);
    if total >= PARALLEL_COPY_MIN_BYTES && !cfg!(miri) {
        // Fan the copy out across the pool. When a checksum is requested the
        // submitting thread hashes the source runs (in packed order — equal
        // to hashing the packed image) concurrently with the workers'
        // copies, so the hash still costs no extra pass.
        let mut pairs = Vec::with_capacity(shape.nruns);
        let mut cursor = 0usize;
        for (off, len) in runs(shape) {
            pairs.push((off, cursor, len));
            cursor += len;
        }
        let shards = shard_runs(pairs);
        // SAFETY: `reserve(total)` above guarantees `total` spare bytes
        // after `start`; the shard destinations partition exactly
        // [0, total), so every reserved byte is written before `set_len`.
        // Sources stay in-bounds by the `max_end` assert.
        unsafe {
            let dst = out.as_mut_ptr().add(start);
            match sum {
                Some(s) => CopyPool::global().run_batch_with(src.as_ptr(), dst, shards, || {
                    for (off, len) in runs(shape) {
                        s.update(&src[off..off + len]);
                    }
                }),
                None => CopyPool::global().run_batch(src.as_ptr(), dst, shards),
            }
            out.set_len(start + total);
        }
        POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // SAFETY: spare capacity of `total` bytes was reserved; the lane/scalar
    // loops write runs at consecutive cursor positions covering exactly
    // [start, start + total); source offsets are bounded by the `max_end`
    // assert.
    unsafe {
        let dst = out.as_mut_ptr().add(start);
        match shape.run_bytes {
            1 => gather_lanes::<1>(src.as_ptr(), shape, dst),
            2 => gather_lanes::<2>(src.as_ptr(), shape, dst),
            4 => gather_lanes::<4>(src.as_ptr(), shape, dst),
            8 => gather_lanes::<8>(src.as_ptr(), shape, dst),
            12 => gather_lanes::<12>(src.as_ptr(), shape, dst),
            16 => gather_lanes::<16>(src.as_ptr(), shape, dst),
            32 => gather_lanes::<32>(src.as_ptr(), shape, dst),
            64 => gather_lanes::<64>(src.as_ptr(), shape, dst),
            n => {
                let mut cur = dst;
                for (off, _) in runs(shape) {
                    std::ptr::copy_nonoverlapping(src.as_ptr().add(off), cur, n);
                    cur = cur.add(n);
                }
            }
        }
        out.set_len(start + total);
    }
    if is_lane_width(shape.run_bytes) {
        VECTOR_BYTES.fetch_add(total as u64, Ordering::Relaxed);
    } else {
        SCALAR_BYTES.fetch_add(total as u64, Ordering::Relaxed);
    }
    if let Some(s) = sum {
        // The packed image was just written — folding it now reads L1-hot
        // bytes, which is what "checksum during pack" buys over the old
        // second pass at deposit time.
        s.update(&out[start..start + total]);
    }
}

/// Scatter `packed` (exactly the selection's packed bytes) into `dst`.
pub(crate) fn unpack_runs(packed: &[u8], shape: &RunShape, dst: &mut [u8]) {
    unpack_impl(packed, shape, dst, None);
}

/// Scatter `packed` into `dst`, folding the packed bytes into `sum` in the
/// same traversal — the receive-side counterpart of [`pack_runs_hashed`],
/// used when envelope verification can be fused into the unpack (no
/// retransmit protocol in play).
pub(crate) fn unpack_runs_hashed(
    packed: &[u8],
    shape: &RunShape,
    dst: &mut [u8],
    sum: &mut Checksum,
) {
    unpack_impl(packed, shape, dst, Some(sum));
}

fn unpack_impl(packed: &[u8], shape: &RunShape, dst: &mut [u8], mut sum: Option<&mut Checksum>) {
    let total = shape.total_bytes();
    debug_assert_eq!(packed.len(), total);
    if total == 0 {
        return;
    }
    assert!(shape.max_end() <= dst.len(), "run shape exceeds destination buffer");
    if shape.nruns == 1 {
        let run = &mut dst[shape.base..shape.base + shape.run_bytes];
        match sum.as_deref_mut() {
            // Single pass: load each group once, store it to the selection
            // and fold it into the hash lanes while still in registers.
            Some(s) => s.update_copying_to(packed, run),
            None => run.copy_from_slice(packed),
        }
        FUSED_RUNS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if total >= PARALLEL_COPY_MIN_BYTES && !cfg!(miri) {
        let mut pairs = Vec::with_capacity(shape.nruns);
        let mut cursor = 0usize;
        for (off, len) in runs(shape) {
            pairs.push((cursor, off, len));
            cursor += len;
        }
        let shards = shard_runs(pairs);
        // The destination runs of one selection are pairwise disjoint, so
        // sharding them across workers is race-free; `dst` is initialized
        // memory throughout. The submitting thread folds the (contiguous)
        // packed image concurrently with the workers' copies.
        match sum {
            Some(s) => {
                CopyPool::global()
                    .run_batch_with(packed.as_ptr(), dst.as_mut_ptr(), shards, || s.update(packed))
            }
            None => CopyPool::global().run_batch(packed.as_ptr(), dst.as_mut_ptr(), shards),
        }
        POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // SAFETY: destination runs are in-bounds by the `max_end` assert;
    // source cursor positions cover exactly `packed`.
    unsafe {
        let srcp = packed.as_ptr();
        match shape.run_bytes {
            1 => scatter_lanes::<1>(srcp, shape, dst.as_mut_ptr()),
            2 => scatter_lanes::<2>(srcp, shape, dst.as_mut_ptr()),
            4 => scatter_lanes::<4>(srcp, shape, dst.as_mut_ptr()),
            8 => scatter_lanes::<8>(srcp, shape, dst.as_mut_ptr()),
            12 => scatter_lanes::<12>(srcp, shape, dst.as_mut_ptr()),
            16 => scatter_lanes::<16>(srcp, shape, dst.as_mut_ptr()),
            32 => scatter_lanes::<32>(srcp, shape, dst.as_mut_ptr()),
            64 => scatter_lanes::<64>(srcp, shape, dst.as_mut_ptr()),
            n => {
                let mut cur = srcp;
                for (off, _) in runs(shape) {
                    std::ptr::copy_nonoverlapping(cur, dst.as_mut_ptr().add(off), n);
                    cur = cur.add(n);
                }
            }
        }
    }
    if is_lane_width(shape.run_bytes) {
        VECTOR_BYTES.fetch_add(total as u64, Ordering::Relaxed);
    } else {
        SCALAR_BYTES.fetch_add(total as u64, Ordering::Relaxed);
    }
    if let Some(s) = sum {
        // The packed image was just read by the scatter — folding it now
        // hits L1-hot bytes instead of paying a separate cold pass.
        s.update(packed);
    }
}

/// Copy pre-walked `(src_off, dst_off, len)` run pairs totalling `total`
/// bytes, fanning out across the pool at the ≥ 4 MiB bound — the shared
/// dispatcher behind `copy_to` and the zero-copy claim copy. Destination
/// ranges must be pairwise disjoint (selection runs are).
pub(crate) fn copy_pairs(
    src: &[u8],
    dst: &mut [u8],
    pairs: Vec<(usize, usize, usize)>,
    total: usize,
) {
    if total >= PARALLEL_COPY_MIN_BYTES && !cfg!(miri) {
        let shards = shard_runs(pairs);
        CopyPool::global().run_batch(src.as_ptr(), dst.as_mut_ptr(), shards);
        POOL_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        return;
    }
    for (s, d, n) in pairs {
        dst[d..d + n].copy_from_slice(&src[s..s + n]);
    }
    SCALAR_BYTES.fetch_add(total as u64, Ordering::Relaxed);
}

/// Iterate the shape's `(offset, len)` runs in packed order (cheap,
/// allocation-free; the shape is already derived).
fn runs(shape: &RunShape) -> impl Iterator<Item = (usize, usize)> + '_ {
    let (n0, s0) = shape.dims[0];
    let (n1, s1) = shape.dims[1];
    (0..n1).flat_map(move |i1| {
        (0..n0).map(move |i0| (shape.base + i0 * s0 + i1 * s1, shape.run_bytes))
    })
}

/// Strided gather with a compile-time run width: one `[u8; N]` load/store
/// per run, which the compiler turns into vector moves for the power-of-two
/// widths and keeps branch-free for the rest.
///
/// # Safety
/// `N == shape.run_bytes`, every source run is in-bounds of the `src`
/// allocation (asserted via `max_end` by the caller), and `dst` has space
/// for `shape.nruns * N` bytes.
unsafe fn gather_lanes<const N: usize>(src: *const u8, shape: &RunShape, mut dst: *mut u8) {
    let (n0, s0) = shape.dims[0];
    let (n1, s1) = shape.dims[1];
    for i1 in 0..n1 {
        let mut row = src.add(shape.base + i1 * s1);
        for _ in 0..n0 {
            (dst as *mut [u8; N]).write_unaligned((row as *const [u8; N]).read_unaligned());
            dst = dst.add(N);
            row = row.add(s0);
        }
    }
}

/// Strided scatter with a compile-time run width — the inverse of
/// [`gather_lanes`].
///
/// # Safety
/// Same contract as [`gather_lanes`] with `src`/`dst` roles swapped: `src`
/// holds `shape.nruns * N` packed bytes, every destination run is in-bounds
/// of the `dst` allocation.
unsafe fn scatter_lanes<const N: usize>(mut src: *const u8, shape: &RunShape, dst: *mut u8) {
    let (n0, s0) = shape.dims[0];
    let (n1, s1) = shape.dims[1];
    for i1 in 0..n1 {
        let mut row = dst.add(shape.base + i1 * s1);
        for _ in 0..n0 {
            (row as *mut [u8; N]).write_unaligned((src as *const [u8; N]).read_unaligned());
            src = src.add(N);
            row = row.add(s0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_2d(base: usize, run: usize, n0: usize, s0: usize, n1: usize, s1: usize) -> RunShape {
        RunShape { run_bytes: run, base, dims: [(n0, s0), (n1, s1)], nruns: n0 * n1 }
    }

    /// Reference gather: straight byte loop over the run iterator.
    fn reference_pack(src: &[u8], shape: &RunShape) -> Vec<u8> {
        let mut out = Vec::new();
        for (off, len) in runs(shape) {
            out.extend_from_slice(&src[off..off + len]);
        }
        out
    }

    #[test]
    fn lane_and_scalar_gathers_match_reference() {
        let src: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        // Every lane width plus scalar widths, strided and offset.
        for run in [1usize, 2, 3, 4, 5, 8, 12, 16, 24, 32, 64] {
            let shape = shape_2d(7, run, 5, run + 3, 4, 5 * (run + 3) + 11);
            assert!(shape.max_end() <= src.len());
            let mut out = vec![0xAB; 3];
            pack_runs(&src, &shape, &mut out);
            assert_eq!(&out[..3], &[0xAB; 3]);
            assert_eq!(&out[3..], reference_pack(&src, &shape).as_slice(), "run width {run}");
        }
    }

    #[test]
    fn scatter_is_inverse_of_gather() {
        let src: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
        for run in [1usize, 2, 4, 7, 8, 12, 16, 64] {
            let shape = shape_2d(13, run, 6, run + 2, 3, 6 * (run + 2) + 9);
            let packed = reference_pack(&src, &shape);
            let mut dst = vec![0u8; src.len()];
            unpack_runs(&packed, &shape, &mut dst);
            // Re-gathering the scattered bytes restores the packed image.
            assert_eq!(reference_pack(&dst, &shape), packed, "run width {run}");
        }
    }

    #[test]
    fn hashed_pack_matches_one_shot_checksum() {
        use crate::integrity::checksum64;
        let src: Vec<u8> = (0..2048).map(|i| (i % 241) as u8).collect();
        for run in [1usize, 4, 5, 8, 16] {
            let shape = shape_2d(3, run, 7, run + 1, 2, 7 * (run + 1) + 5);
            let mut out = Vec::new();
            let mut sum = Checksum::new(99);
            pack_runs_hashed(&src, &shape, &mut out, &mut sum);
            assert_eq!(sum.finish(), checksum64(99, &out), "run width {run}");
        }
    }

    #[test]
    fn hashed_unpack_matches_one_shot_checksum() {
        use crate::integrity::checksum64;
        let src: Vec<u8> = (0..2048).map(|i| (i % 241) as u8).collect();
        // Strided widths plus the fused single-run shape.
        let shapes = [1usize, 4, 5, 8, 16]
            .map(|run| shape_2d(3, run, 7, run + 1, 2, 7 * (run + 1) + 5))
            .into_iter()
            .chain([RunShape::contiguous(11, 777)]);
        for shape in shapes {
            let packed = reference_pack(&src, &shape);
            let mut dst = vec![0u8; src.len()];
            let mut sum = Checksum::new(42);
            unpack_runs_hashed(&packed, &shape, &mut dst, &mut sum);
            assert_eq!(sum.finish(), checksum64(42, &packed), "shape {shape:?}");
            assert_eq!(reference_pack(&dst, &shape), packed, "shape {shape:?}");
        }
    }

    #[test]
    fn pooled_hashed_unpack_matches_one_shot_checksum() {
        use crate::integrity::checksum64;
        let run = 128 * 1024;
        let n1 = 40; // 5 MiB
        let shape = shape_2d(16, run, 1, 0, n1, run + 64);
        let src: Vec<u8> = (0..(run + 64) * n1 + 16).map(|i| (i % 247) as u8).collect();
        let packed = reference_pack(&src, &shape);
        let mut dst = vec![0u8; src.len()];
        let mut sum = Checksum::new(13);
        unpack_runs_hashed(&packed, &shape, &mut dst, &mut sum);
        assert_eq!(sum.finish(), checksum64(13, &packed));
        assert_eq!(reference_pack(&dst, &shape), packed);
    }

    #[test]
    fn fused_single_run_is_one_memcpy() {
        let src: Vec<u8> = (0..64).collect();
        let shape = RunShape::contiguous(8, 16);
        let before = snapshot().fused_runs;
        let mut out = Vec::new();
        pack_runs(&src, &shape, &mut out);
        assert_eq!(out, &src[8..24]);
        assert_eq!(snapshot().fused_runs, before + 1);
    }

    #[test]
    fn copy_pairs_moves_disjoint_runs() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        let pairs = vec![(0usize, 128usize, 64usize), (128, 0, 64)];
        copy_pairs(&src, &mut dst, pairs, 128);
        assert_eq!(&dst[128..192], &src[0..64]);
        assert_eq!(&dst[0..64], &src[128..192]);
    }

    #[test]
    fn empty_and_zero_width_shapes_are_noops() {
        let src = [0u8; 16];
        let mut out = Vec::new();
        pack_runs(&src, &RunShape::EMPTY, &mut out);
        pack_runs(&src, &RunShape::contiguous(4, 0), &mut out);
        assert!(out.is_empty());
        let mut dst = [9u8; 16];
        unpack_runs(&[], &RunShape::EMPTY, &mut dst);
        assert_eq!(dst, [9u8; 16]);
    }

    #[test]
    fn pooled_pack_and_unpack_match_reference() {
        // Large enough to cross PARALLEL_COPY_MIN_BYTES with strided runs.
        let run = 64 * 1024;
        let n1 = 96; // 96 runs x 64 KiB = 6 MiB > 4 MiB
        let src: Vec<u8> = (0..(run + 512) * n1 + 64).map(|i| (i % 253) as u8).collect();
        let shape = shape_2d(32, run, 1, 0, n1, run + 512);
        let before = snapshot().pool_dispatches;
        let mut out = Vec::new();
        pack_runs(&src, &shape, &mut out);
        assert_eq!(out, reference_pack(&src, &shape));
        let mut dst = vec![0u8; src.len()];
        unpack_runs(&out, &shape, &mut dst);
        assert_eq!(reference_pack(&dst, &shape), out);
        if !cfg!(miri) {
            assert!(snapshot().pool_dispatches >= before + 2);
        }
    }

    #[test]
    fn pooled_hashed_pack_matches_one_shot_checksum() {
        use crate::integrity::checksum64;
        let run = 128 * 1024;
        let n1 = 40; // 5 MiB
        let src: Vec<u8> = (0..(run + 64) * n1 + 16).map(|i| (i % 249) as u8).collect();
        let shape = shape_2d(16, run, 1, 0, n1, run + 64);
        let mut out = Vec::new();
        let mut sum = Checksum::new(7);
        pack_runs_hashed(&src, &shape, &mut out, &mut sum);
        assert_eq!(sum.finish(), checksum64(7, &out));
    }
}
