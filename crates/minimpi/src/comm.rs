//! Communicators and point-to-point messaging.

use crate::error::{Error, Result};
use crate::mailbox::{Envelope, Mailbox, MsgKey};
use crate::pod::{bytes_of, vec_from_bytes, Pod};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// User message tag. The full `u32` range is available to applications;
/// collective traffic lives in a disjoint internal namespace.
pub type Tag = u32;

/// Pseudo-rank accepted by [`Comm::recv_bytes_any`]-style operations.
pub const ANY_SOURCE: usize = usize::MAX;

/// Result metadata for receives that report their matched source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStatus {
    /// Communicator-local rank the message came from.
    pub src: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Shared state of one [`crate::Universe`] run: a mailbox per world rank.
pub(crate) struct WorldState {
    pub mailboxes: Vec<Mailbox>,
}

impl WorldState {
    pub fn new(n: usize) -> Self {
        WorldState { mailboxes: (0..n).map(|_| Mailbox::default()).collect() }
    }
}

// Internal key-tag namespace: user tags and collective sequence numbers must
// never collide. User tag t  -> key tag = t (< 2^32).
// Collective (seq, phase)    -> key tag = COLL_BIT | seq << PHASE_BITS | phase.
const COLL_BIT: u64 = 1 << 63;
const PHASE_BITS: u32 = 12;
const PHASE_MASK: u64 = (1 << PHASE_BITS) - 1;

fn user_key_tag(tag: Tag) -> u64 {
    tag as u64
}

pub(crate) fn coll_key_tag(seq: u64, phase: u64) -> u64 {
    debug_assert!(phase <= PHASE_MASK);
    COLL_BIT | (seq << PHASE_BITS) | phase
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) used to derive child
/// communicator ids identically on every member rank.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A communicator: a rank's handle onto an ordered group of ranks.
///
/// Each rank-thread owns its `Comm` (it is `Send` but deliberately not
/// `Sync`); cloning is not provided — use [`Comm::duplicate`], which is a
/// collective, mirroring `MPI_Comm_dup`.
pub struct Comm {
    pub(crate) world: Arc<WorldState>,
    pub(crate) comm_id: u64,
    /// This rank's index within the communicator.
    pub(crate) rank: usize,
    /// World rank of each communicator member, indexed by communicator rank.
    pub(crate) members: Arc<Vec<usize>>,
    /// Per-rank collective sequence number; identical across members because
    /// collectives are called in the same order by all of them.
    pub(crate) coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
    timeout: Cell<Duration>,
}

impl Comm {
    pub(crate) fn world_comm(world: Arc<WorldState>, rank: usize) -> Self {
        let n = world.mailboxes.len();
        Comm {
            world,
            comm_id: 0,
            rank,
            members: Arc::new((0..n).collect()),
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            timeout: Cell::new(default_timeout()),
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the original world communicator.
    pub fn world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Watchdog timeout applied to blocking receives.
    pub fn timeout(&self) -> Duration {
        self.timeout.get()
    }

    /// Set the watchdog timeout for blocking receives on this handle.
    pub fn set_timeout(&self, t: Duration) {
        self.timeout.set(t);
    }

    pub(crate) fn check_rank_pub(&self, r: usize) -> Result<()> {
        self.check_rank(r)
    }

    fn check_rank(&self, r: usize) -> Result<()> {
        if r >= self.size() {
            return Err(Error::RankOutOfRange { rank: r, size: self.size() });
        }
        Ok(())
    }

    fn my_mailbox(&self) -> &Mailbox {
        &self.world.mailboxes[self.members[self.rank]]
    }

    pub(crate) fn deposit_to(&self, dest: usize, key_tag: u64, payload: Vec<u8>) {
        let key: MsgKey = (self.comm_id, self.rank, key_tag);
        self.world.mailboxes[self.members[dest]].deposit(key, Envelope { src: self.rank, payload });
    }

    pub(crate) fn take_from(&self, src: usize, key_tag: u64) -> Result<Vec<u8>> {
        let key: MsgKey = (self.comm_id, src, key_tag);
        match self.my_mailbox().take(key, self.timeout.get()) {
            Some(env) => Ok(env.payload),
            None => Err(Error::Timeout { rank: self.rank, src: Some(src), tag: key_tag }),
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send raw bytes to `dest` with `tag`. Buffered: returns immediately.
    pub fn send_bytes(&self, dest: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.check_rank(dest)?;
        self.deposit_to(dest, user_key_tag(tag), data.to_vec());
        Ok(())
    }

    /// Send a slice of POD values to `dest` with `tag`.
    pub fn send<T: Pod>(&self, dest: usize, tag: Tag, data: &[T]) -> Result<()> {
        self.send_bytes(dest, tag, bytes_of(data))
    }

    /// Send an owned byte buffer without copying it.
    pub fn send_bytes_owned(&self, dest: usize, tag: Tag, data: Vec<u8>) -> Result<()> {
        self.check_rank(dest)?;
        self.deposit_to(dest, user_key_tag(tag), data);
        Ok(())
    }

    /// Receive raw bytes from `src` with `tag`, blocking until available.
    pub fn recv_bytes(&self, src: usize, tag: Tag) -> Result<Vec<u8>> {
        self.check_rank(src)?;
        self.take_from(src, user_key_tag(tag))
    }

    /// Receive from any source; returns the payload and its origin.
    pub fn recv_bytes_any(&self, tag: Tag) -> Result<(RecvStatus, Vec<u8>)> {
        match self.my_mailbox().take_any(
            self.comm_id,
            user_key_tag(tag),
            self.size(),
            self.timeout.get(),
        ) {
            Some(env) => {
                Ok((RecvStatus { src: env.src, len: env.payload.len() }, env.payload))
            }
            None => Err(Error::Timeout { rank: self.rank, src: None, tag: user_key_tag(tag) }),
        }
    }

    /// Receive a `Vec<T>` of POD values from `src` with `tag`.
    pub fn recv_vec<T: Pod>(&self, src: usize, tag: Tag) -> Result<Vec<T>> {
        let bytes = self.recv_bytes(src, tag)?;
        vec_from_bytes(&bytes).ok_or(Error::SizeMismatch {
            expected: std::mem::size_of::<T>(),
            got: bytes.len(),
        })
    }

    /// Receive into a caller-provided buffer; the message length must equal
    /// the buffer length exactly.
    pub fn recv_into<T: Pod>(&self, src: usize, tag: Tag, buf: &mut [T]) -> Result<()> {
        let bytes = self.recv_bytes(src, tag)?;
        let want = std::mem::size_of_val(buf);
        if bytes.len() != want {
            return Err(Error::SizeMismatch { expected: want, got: bytes.len() });
        }
        crate::pod::bytes_of_mut(buf).copy_from_slice(&bytes);
        Ok(())
    }

    /// Non-blocking receive attempt.
    pub fn try_recv_bytes(&self, src: usize, tag: Tag) -> Result<Option<Vec<u8>>> {
        self.check_rank(src)?;
        Ok(self
            .my_mailbox()
            .try_take((self.comm_id, src, user_key_tag(tag)))
            .map(|env| env.payload))
    }

    /// Combined send+receive, safe against head-of-line blocking because
    /// sends are buffered (as in `MPI_Sendrecv` with eager protocol).
    pub fn sendrecv<T: Pod>(
        &self,
        dest: usize,
        send_data: &[T],
        src: usize,
        tag: Tag,
    ) -> Result<Vec<T>> {
        self.send(dest, tag, send_data)?;
        self.recv_vec(src, tag)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Collective: split this communicator into disjoint sub-communicators,
    /// one per distinct `color`. Members of each child are ordered by their
    /// rank in the parent (MPI's `key` is fixed to the parent rank).
    pub fn split(&self, color: u64) -> Result<Comm> {
        let all: Vec<(u64, usize)> = self
            .allgather(&[color])?
            .into_iter()
            .enumerate()
            .map(|(r, c)| (c[0], r))
            .collect();
        let members: Vec<usize> = all
            .iter()
            .filter(|(c, _)| *c == color)
            .map(|(_, r)| self.members[*r])
            .collect();
        let new_rank = members
            .iter()
            .position(|&w| w == self.world_rank())
            .expect("split: calling rank missing from its own color group");
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        let child_id = mix64(mix64(self.comm_id ^ seq.wrapping_mul(0x9e37)) ^ color);
        Ok(Comm {
            world: Arc::clone(&self.world),
            comm_id: child_id,
            rank: new_rank,
            members: Arc::new(members),
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            timeout: Cell::new(self.timeout.get()),
        })
    }

    /// Collective: duplicate this communicator into an independent one with
    /// the same group but a private message namespace.
    pub fn duplicate(&self) -> Result<Comm> {
        self.split(0)
    }

    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }
}

fn default_timeout() -> Duration {
    match std::env::var("MINIMPI_TIMEOUT_SECS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(s) => Duration::from_secs(s),
        None => Duration::from_secs(120),
    }
}
