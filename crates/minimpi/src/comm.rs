//! Communicators and point-to-point messaging.

use crate::check::{CheckCounters, CheckState, CollFingerprint, TypeSig};
use crate::datatype::Datatype;
use crate::elastic::ElasticState;
use crate::error::{Error, Result};
use crate::fault::{mix64, FaultPlan, FaultState, Keystream, MessageVerdict};
use crate::flow::{AcquireCtx, FlowCharge, FlowConfig, FlowCounters, FlowLedger};
use crate::integrity::{checksum64, stream_seed, Checksum, IntegrityCells, IntegrityCounters};
use crate::life::{Liveness, ShrinkBarrier};
use crate::mailbox::{Envelope, Mailbox, MsgKey, Payload, TakeOutcome};
use crate::pod::{bytes_of, vec_from_bytes, Pod};
use crate::sched::SchedState;
use crate::vclock::VectorClock;
use crate::zerocopy::{
    zerocopy_env_default, BufferPool, PoolStats, TransportCells, TransportCounters, ZcCell,
    ZcHandle,
};
use std::cell::Cell;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// User message tag. The full `u32` range is available to applications;
/// collective traffic lives in a disjoint internal namespace.
pub type Tag = u32;

/// Pseudo-rank accepted by [`Comm::recv_bytes_any`]-style operations.
pub const ANY_SOURCE: usize = usize::MAX;

/// Result metadata for receives that report their matched source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvStatus {
    /// Communicator-local rank the message came from.
    pub src: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Shared state of one [`crate::Universe`] run: a mailbox per world rank,
/// the liveness registry, the shrink rendezvous, and (optionally) the
/// installed fault plan's runtime state.
pub(crate) struct WorldState {
    pub mailboxes: Vec<Mailbox>,
    pub liveness: Liveness,
    pub shrink: ShrinkBarrier,
    pub faults: Option<FaultState>,
    /// Correctness-checking state (collective epoch log + wait-for graph +
    /// happens-before race/lifetime tables); `None` unless checking was
    /// enabled on the universe builder.
    pub check: Option<CheckState>,
    /// Seeded schedule-perturbation state; `None` (zero cost) unless a
    /// schedule seed was set via the builder or `DDR_SCHED_SEED`.
    pub sched: Option<SchedState>,
    /// Communication ops performed so far, per world rank. Counted whether
    /// or not a fault plan is installed, so op positions observed in a
    /// clean run can be used to place kills in a faulty one.
    pub ops: Vec<AtomicU64>,
    pub default_timeout: Duration,
    /// Whether the zero-copy fast path is allowed for this universe (builder
    /// override, else `DDR_NO_ZEROCOPY`). Fault plans additionally force the
    /// staged path at use sites — see [`WorldState::zerocopy_active`].
    pub zerocopy: bool,
    /// Per-message byte floor for loaning: messages strictly smaller than
    /// this are staged even when zero-copy is on, because the rendezvous
    /// handshake costs more than the copy it avoids (builder override, else
    /// `DDR_ZC_THRESHOLD`, else 64 KiB).
    pub zc_threshold: usize,
    /// Shared staging-buffer pool for the pack/unpack path.
    pub pool: BufferPool,
    /// Wire-path counters (zero-copy vs staged deliveries).
    pub transport: TransportCells,
    /// Membership-epoch state: current epoch, respawn supervisor queue, and
    /// recovery counters (see [`crate::elastic`]).
    pub elastic: ElasticState,
    /// Rendezvous for [`Comm::reconfigure`]'s agreement step. A second
    /// barrier instance so reconfigure generations can never collide with
    /// shrink generations on the same communicator.
    pub reconfig: ShrinkBarrier,
    /// Whether reconfigure respawns replacements for dead ranks (builder
    /// override, else `DDR_RESPAWN`, default true).
    pub respawn: bool,
    /// Whether envelopes carry a pack/lend-time checksum verified at
    /// match/claim time (builder override, else `DDR_CHECKSUM`, default
    /// **on**). Off, the only cost left is one branch per deposit.
    pub checksum: bool,
    /// Bounded retransmit attempts per corrupt transfer before the receiver
    /// fails with [`Error::IntegrityFailure`] (builder override, else
    /// `DDR_RETRANSMIT_MAX`, default 3).
    pub retransmit_max: u32,
    /// Base of the receiver's exponential NACK backoff (builder override,
    /// else `DDR_RETRANSMIT_BACKOFF_MS`, default 1 ms).
    pub retransmit_backoff: Duration,
    /// Integrity-plane counters (verifications, detections, retransmits,
    /// exhaustions).
    pub integrity: IntegrityCells,
    /// Flow-control ledger: per-pair credit windows, the memory governor,
    /// and the sender parking gate (see [`crate::flow`]).
    pub flow: Arc<FlowLedger>,
}

impl WorldState {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        default_timeout: Duration,
        fault_plan: Option<FaultPlan>,
        check: bool,
        zerocopy: Option<bool>,
        zc_threshold: Option<usize>,
        respawn: Option<bool>,
        checksum: Option<bool>,
        retransmit_max: Option<u32>,
        retransmit_backoff: Option<Duration>,
        sched_seed: Option<u64>,
        flow_cfg: FlowConfig,
    ) -> Self {
        let flow = Arc::new(FlowLedger::new(n, flow_cfg));
        WorldState {
            mailboxes: (0..n).map(|i| Mailbox::with_flow(i, Arc::clone(&flow))).collect(),
            liveness: Liveness::new(n),
            shrink: ShrinkBarrier::default(),
            faults: fault_plan.map(FaultState::new),
            check: check.then(|| CheckState::new(n)),
            sched: sched_seed
                .or_else(crate::sched::sched_seed_env_default)
                .map(|s| SchedState::new(s, n)),
            ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
            default_timeout,
            zerocopy: zerocopy.unwrap_or_else(zerocopy_env_default),
            zc_threshold: zc_threshold.unwrap_or_else(crate::zerocopy::zc_threshold_env_default),
            pool: BufferPool::with_flow(Arc::clone(&flow)),
            transport: TransportCells::default(),
            elastic: ElasticState::new(n),
            reconfig: ShrinkBarrier::default(),
            respawn: respawn.unwrap_or_else(crate::elastic::respawn_env_default),
            checksum: checksum.unwrap_or_else(crate::integrity::checksum_env_default),
            retransmit_max: retransmit_max
                .unwrap_or_else(crate::integrity::retransmit_max_env_default),
            retransmit_backoff: retransmit_backoff
                .unwrap_or_else(crate::integrity::retransmit_backoff_env_default),
            integrity: IntegrityCells::default(),
            flow,
        }
    }

    /// Current membership epoch (bumped by every completed reconfigure).
    pub fn epoch(&self) -> u64 {
        self.elastic.epoch()
    }

    /// Drop every queued message that does not carry `current_epoch`,
    /// crediting the fenced-message counter. Stale zero-copy loans are
    /// revoked by the drop, releasing their senders.
    pub fn sweep_stale(&self, current_epoch: u64) -> u64 {
        let mut fenced = 0u64;
        for mb in &self.mailboxes {
            fenced += mb.sweep_stale(current_epoch);
        }
        if fenced > 0 {
            self.transport.fenced_msgs.fetch_add(fenced, Ordering::Relaxed);
        }
        fenced
    }

    /// Whether exchanges should take the zero-copy fast path. Kill and
    /// drop/delay fault plans force staging — those faults act on an
    /// in-flight copy a loan doesn't have — but corrupt-*only* plans ride
    /// zero-copy: their scramble is applied by the receiver at claim time
    /// (see [`FaultState::on_message_zc`]), so the fastest path stays
    /// exercised under corruption faults.
    pub fn zerocopy_active(&self) -> bool {
        let base = self.zerocopy && self.faults.as_ref().is_none_or(|f| !f.forces_staging());
        // First rung of the degradation ladder: past half the memory budget,
        // shed loans to the staged path — staged traffic is metered by the
        // governor and recycled through the pool, loans are not.
        if base && self.flow.shedding_zerocopy() {
            self.flow.note_zerocopy_shed();
            return false;
        }
        base
    }

    pub fn is_alive(&self, world_rank: usize) -> bool {
        self.liveness.is_alive(world_rank)
    }

    /// Mark a world rank dead and wake every blocked receiver and pending
    /// shrink round so they re-check liveness. Idempotent.
    pub fn mark_dead(&self, world_rank: usize) {
        if self.liveness.mark_dead(world_rank) {
            for mb in &self.mailboxes {
                mb.interrupt();
            }
            // Senders parked on the credit gate re-run their liveness probe
            // on wake, so a death releases them with PeerDead immediately.
            self.flow.wake_all();
            self.shrink.on_death(&self.liveness);
            self.reconfig.on_death(&self.liveness);
        }
    }
}

// Internal key-tag namespace: user tags and collective sequence numbers must
// never collide. User tag t  -> key tag = t (< 2^32).
// Collective (seq, phase)    -> key tag = COLL_BIT | seq << PHASE_BITS | phase.
const COLL_BIT: u64 = 1 << 63;
const PHASE_BITS: u32 = 12;
const PHASE_MASK: u64 = (1 << PHASE_BITS) - 1;

/// Sentinel tag reported by shrink-rendezvous timeouts (no message traffic
/// is involved, so there is no real tag to report).
const SHRINK_TAG: u64 = COLL_BIT | PHASE_MASK;

/// Sentinel tag reported by reconfigure-rendezvous timeouts.
pub(crate) const RECONFIG_TAG: u64 = COLL_BIT | (PHASE_MASK - 1);

fn user_key_tag(tag: Tag) -> u64 {
    tag as u64
}

pub(crate) fn coll_key_tag(seq: u64, phase: u64) -> u64 {
    debug_assert!(phase <= PHASE_MASK);
    COLL_BIT | (seq << PHASE_BITS) | phase
}

/// Human-readable description of a raw key tag for diagnostics: user tags
/// print as-is, collective tags decode to sequence number and phase.
pub(crate) fn describe_key_tag(key_tag: u64) -> String {
    if key_tag & COLL_BIT == 0 {
        return format!("user tag {key_tag}");
    }
    if key_tag == SHRINK_TAG {
        return "shrink rendezvous".to_string();
    }
    if key_tag == RECONFIG_TAG {
        return "reconfigure rendezvous".to_string();
    }
    let body = key_tag & !COLL_BIT;
    format!("collective #{} phase {}", body >> PHASE_BITS, body & PHASE_MASK)
}

/// A communicator: a rank's handle onto an ordered group of ranks.
///
/// Each rank-thread owns its `Comm` (it is `Send` but deliberately not
/// `Sync`); cloning is not provided — use [`Comm::duplicate`], which is a
/// collective, mirroring `MPI_Comm_dup`.
pub struct Comm {
    pub(crate) world: Arc<WorldState>,
    pub(crate) comm_id: u64,
    /// This rank's index within the communicator.
    pub(crate) rank: usize,
    /// World rank of each communicator member, indexed by communicator rank.
    pub(crate) members: Arc<Vec<usize>>,
    /// Membership epoch this handle was built in. Envelopes are stamped with
    /// it; a handle whose epoch is no longer current fails every operation
    /// with [`Error::StaleEpoch`] (see [`Comm::reconfigure`]).
    pub(crate) epoch: u64,
    /// Per-rank collective sequence number; identical across members because
    /// collectives are called in the same order by all of them.
    pub(crate) coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
    shrink_seq: Cell<u64>,
    pub(crate) reconfig_seq: Cell<u64>,
    timeout: Cell<Duration>,
}

impl Comm {
    pub(crate) fn world_comm(world: Arc<WorldState>, rank: usize) -> Self {
        let n = world.mailboxes.len();
        let timeout = world.default_timeout;
        let epoch = world.epoch();
        Comm::derived(world, 0, rank, Arc::new((0..n).collect()), epoch, timeout)
    }

    /// Build a derived communicator handle (child of split/shrink/reconfigure
    /// or a respawned rank's entry handle) with fresh sequence counters.
    pub(crate) fn derived(
        world: Arc<WorldState>,
        comm_id: u64,
        rank: usize,
        members: Arc<Vec<usize>>,
        epoch: u64,
        timeout: Duration,
    ) -> Self {
        Comm {
            world,
            comm_id,
            rank,
            members,
            epoch,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            shrink_seq: Cell::new(0),
            reconfig_seq: Cell::new(0),
            timeout: Cell::new(timeout),
        }
    }

    /// Membership epoch this communicator handle belongs to. `0` until the
    /// first [`Comm::reconfigure`]; a respawned rank can use `epoch() > 0`
    /// to detect that it is a replacement joining mid-run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the original world communicator.
    pub fn world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Watchdog timeout applied to blocking receives.
    pub fn timeout(&self) -> Duration {
        self.timeout.get()
    }

    /// Set the watchdog timeout for blocking receives on this handle.
    pub fn set_timeout(&self, t: Duration) {
        self.timeout.set(t);
    }

    pub(crate) fn check_rank_pub(&self, r: usize) -> Result<()> {
        self.check_rank(r)
    }

    fn check_rank(&self, r: usize) -> Result<()> {
        if r >= self.size() {
            return Err(Error::RankOutOfRange { rank: r, size: self.size() });
        }
        Ok(())
    }

    pub(crate) fn my_mailbox(&self) -> &Mailbox {
        &self.world.mailboxes[self.members[self.rank]]
    }

    /// Is communicator member `r` still alive?
    pub fn is_alive(&self, r: usize) -> bool {
        self.world.is_alive(self.members[r])
    }

    /// Communicator-local ranks of the members still alive, in rank order.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.size()).filter(|&r| self.is_alive(r)).collect()
    }

    /// Number of communication primitives (sends, receives, collective
    /// phases) this rank has performed. Deterministic for a deterministic
    /// program, which makes it the coordinate system for placing
    /// [`crate::FaultPlan`] kills.
    pub fn op_count(&self) -> u64 {
        self.world.ops[self.world_rank()].load(Ordering::Relaxed)
    }

    /// Count one communication op against the fault plan. Returns
    /// [`Error::PeerDead`] (naming *this* rank) if the rank is already dead
    /// or a kill fault fires on this op.
    pub(crate) fn fault_tick(&self) -> Result<()> {
        let w = self.world_rank();
        if !self.world.is_alive(w) {
            return Err(Error::PeerDead { rank: self.rank });
        }
        // The epoch fence: a handle from before the last reconfigure can
        // neither send (its envelopes would be stamped stale) nor receive
        // (it would match against a dead namespace). Checked before the op
        // counter so fault-plan op coordinates are unaffected.
        let world_epoch = self.world.epoch();
        if world_epoch != self.epoch {
            return Err(Error::StaleEpoch { comm_epoch: self.epoch, world_epoch });
        }
        let op = self.world.ops[w].fetch_add(1, Ordering::Relaxed);
        if let Some(faults) = &self.world.faults {
            if faults.should_kill(w, op) {
                self.world.mark_dead(w);
                return Err(Error::PeerDead { rank: self.rank });
            }
        }
        Ok(())
    }

    /// Checksum seed for the stream (this communicator, sender `src`,
    /// `key_tag`) in `epoch`. Sender and receiver derive it independently.
    pub(crate) fn stream_seed(&self, src: usize, key_tag: u64, epoch: u64) -> u64 {
        stream_seed(self.comm_id, src, key_tag, epoch)
    }

    /// Verify a delivered payload against its envelope checksum (a no-op
    /// when the envelope carries none). `attempt 0` marks paths with no
    /// retransmit protocol; alltoallw rewrites it when recovery is in play.
    pub(crate) fn verify_payload(
        &self,
        src: usize,
        key_tag: u64,
        epoch: u64,
        expected: Option<u64>,
        bytes: &[u8],
    ) -> Result<()> {
        let Some(want) = expected else { return Ok(()) };
        self.world.integrity.checked.fetch_add(1, Ordering::Relaxed);
        if checksum64(self.stream_seed(src, key_tag, epoch), bytes) == want {
            return Ok(());
        }
        self.world.integrity.detected.fetch_add(1, Ordering::Relaxed);
        ddrtrace::instant_arg("minimpi", "integrity_detected", "src", src as i64);
        Err(Error::IntegrityFailure { src, dst: self.rank, tag: key_tag, attempt: 0 })
    }

    /// Unpack a staged payload into `recv_buf` with envelope verification
    /// folded into the same traversal — the receive-side counterpart of
    /// checksum-during-pack. Only sound on paths with **no retransmit
    /// protocol**: the payload reaches `recv_buf` before the verdict is
    /// known, so a mismatch here must be terminal (the collective fails and
    /// the buffer contents are unspecified, exactly as for any other
    /// mid-exchange error). Callers with recovery armed must keep the
    /// verify-then-unpack order ([`Comm::verify_payload`]) instead.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn unpack_verifying(
        &self,
        src: usize,
        key_tag: u64,
        epoch: u64,
        expected: Option<u64>,
        dt: &Datatype,
        packed: &[u8],
        recv_buf: &mut [u8],
    ) -> Result<()> {
        let Some(want) = expected else { return dt.unpack(packed, recv_buf) };
        self.world.integrity.checked.fetch_add(1, Ordering::Relaxed);
        let mut c = Checksum::new(self.stream_seed(src, key_tag, epoch));
        dt.unpack_hashed(packed, recv_buf, &mut c)?;
        if c.finish() == want {
            return Ok(());
        }
        self.world.integrity.detected.fetch_add(1, Ordering::Relaxed);
        ddrtrace::instant_arg("minimpi", "integrity_detected", "src", src as i64);
        Err(Error::IntegrityFailure { src, dst: self.rank, tag: key_tag, attempt: 0 })
    }

    /// True when corruption recovery (NACK/retransmit) is armed: checksums
    /// are on *and* an installed fault plan can actually corrupt messages.
    /// Gates both the alltoallw recovery protocol and the receive-side
    /// checksum fusion (which is only sound when no retransmit can follow).
    pub(crate) fn recovery_armed(&self) -> bool {
        self.world.checksum && self.world.faults.as_ref().is_some_and(|f| f.has_corrupt_rules())
    }

    /// Verify a delivered payload *in place* in `buf`, walking `dt`'s byte
    /// runs in packed order — the zero-copy claim path's counterpart of
    /// [`Comm::verify_payload`], equal to hashing the packed form.
    pub(crate) fn verify_selection(
        &self,
        src: usize,
        key_tag: u64,
        epoch: u64,
        expected: Option<u64>,
        dt: &Datatype,
        buf: &[u8],
    ) -> Result<()> {
        let Some(want) = expected else { return Ok(()) };
        self.world.integrity.checked.fetch_add(1, Ordering::Relaxed);
        let mut c = Checksum::new(self.stream_seed(src, key_tag, epoch));
        for (off, len) in dt.byte_runs() {
            c.update(&buf[off..off + len]);
        }
        if c.finish() == want {
            return Ok(());
        }
        self.world.integrity.detected.fetch_add(1, Ordering::Relaxed);
        ddrtrace::instant_arg("minimpi", "integrity_detected", "src", src as i64);
        Err(Error::IntegrityFailure { src, dst: self.rank, tag: key_tag, attempt: 0 })
    }

    /// Maybe-delay hook for the seeded schedule explorer: a no-op (one
    /// `Option` branch) unless a schedule seed is set.
    #[inline]
    pub(crate) fn sched_point(&self, point: &'static str) {
        if let Some(s) = &self.world.sched {
            s.perturb(self.world_rank(), point);
        }
    }

    /// Record a delivered envelope: fold it into the schedule fingerprint
    /// and join its piggybacked clock into this rank's clock. Call at every
    /// point an envelope is accepted for this rank.
    pub(crate) fn note_delivery(&self, env: &Envelope) {
        if let Some(s) = &self.world.sched {
            s.observe(self.world_rank(), env.src);
        }
        if let Some(check) = &self.world.check {
            if let Some(clock) = &env.clock {
                check.on_recv(self.world_rank(), clock);
            }
        }
    }

    /// Clock snapshot + datatype signature to stamp on an outgoing envelope;
    /// `(None, None)` (no work at all) when checking is off. `sig` defaults
    /// to an untyped-bytes signature of `payload_len`.
    fn send_stamp(
        &self,
        sig: Option<TypeSig>,
        payload_len: usize,
    ) -> (Option<VectorClock>, Option<TypeSig>) {
        match &self.world.check {
            Some(check) => (
                Some(check.on_send(self.world_rank())),
                Some(sig.unwrap_or_else(|| TypeSig::bytes(payload_len as u64))),
            ),
            None => (None, None),
        }
    }

    /// With checking enabled, verify a sender's stamped datatype signature
    /// against the receiver's declared expectation; no-op otherwise (or when
    /// the envelope predates checking, e.g. hand-built test envelopes).
    pub(crate) fn verify_type_sig(
        &self,
        src: usize,
        key_tag: u64,
        got: Option<&TypeSig>,
        want: &TypeSig,
    ) -> Result<()> {
        let (Some(check), Some(got)) = (&self.world.check, got) else {
            return Ok(());
        };
        if want.accepts(got) {
            return Ok(());
        }
        check.note_type_mismatch();
        Err(Error::TypeMismatch { src, dst: self.rank, tag: key_tag, expected: *want, got: *got })
    }

    /// Declare a *write* access to `buf` for the happens-before race
    /// checker. With checking enabled, fails with [`Error::DataRace`] if the
    /// write is causally unordered with another tracked access to an
    /// overlapping range — in particular, writing a buffer lent via the
    /// zero-copy path while the receiver's claim may still be copying.
    /// A no-op (one `Option` branch) when checking is off.
    #[track_caller]
    pub fn check_write(&self, buf: &[u8]) -> Result<()> {
        self.check_access(buf, true, "writes the buffer")
    }

    /// Declare a *read* access to `buf` for the happens-before race checker.
    /// Reads race only with causally unordered writes. A no-op when checking
    /// is off.
    #[track_caller]
    pub fn check_read(&self, buf: &[u8]) -> Result<()> {
        self.check_access(buf, false, "reads the buffer")
    }

    #[track_caller]
    fn check_access(&self, buf: &[u8], write: bool, op: &str) -> Result<()> {
        let Some(check) = &self.world.check else { return Ok(()) };
        let loc = Location::caller();
        let site = format!("{}:{}", loc.file(), loc.line());
        check
            .access(self.world_rank(), buf.as_ptr() as usize, buf.len(), write, op, site)
            .map_err(Error::DataRace)
    }

    /// Snapshot of the checker's violation counters, or `None` when checking
    /// is off. Counts are world-wide (shared by every communicator handle).
    pub fn check_counters(&self) -> Option<CheckCounters> {
        self.world.check.as_ref().map(|c| c.counters())
    }

    /// Tell the checker the sender observed a loan reaching a terminal
    /// state: join the receiver's copy-done clock into this (sender) rank's
    /// clock, so later sender writes are ordered after the copy.
    pub(crate) fn note_loan_settled(&self, cell: &Arc<ZcCell>) {
        if let Some(check) = &self.world.check {
            check.loan_settled(cell, self.world_rank());
        }
    }

    /// Acquire flow-control credits for one envelope to `dest`: `bytes`
    /// against the pair's byte window, `mem` against the memory governor
    /// (plus one message credit, always). Blocks — boundedly — when the
    /// window or budget is full; a peer death, the sender's own fault-kill,
    /// or an epoch bump during the wait unparks with the matching error.
    /// The mailbox releases the returned charge when the envelope is popped
    /// or swept.
    fn acquire_charge(
        &self,
        dest: usize,
        key_tag: u64,
        bytes: usize,
        mem: usize,
    ) -> Result<FlowCharge> {
        self.sched_point("credit");
        let src_world = self.world_rank();
        let dst_world = self.members[dest];
        let ctx = AcquireCtx {
            src_world,
            dst_world,
            bytes,
            mem,
            timeout: self.timeout.get(),
            rank_local: self.rank,
            dest_local: dest,
            tag: key_tag,
            comm_id: self.comm_id,
        };
        self.world.flow.acquire(&ctx, || {
            if !self.world.is_alive(src_world) {
                return Some(Error::PeerDead { rank: self.rank });
            }
            if !self.world.is_alive(dst_world) {
                return Some(Error::PeerDead { rank: dest });
            }
            let world_epoch = self.world.epoch();
            if world_epoch != self.epoch {
                return Some(Error::StaleEpoch { comm_epoch: self.epoch, world_epoch });
            }
            None
        })
    }

    pub(crate) fn deposit_to(&self, dest: usize, key_tag: u64, payload: Vec<u8>) -> Result<()> {
        self.deposit_sig(dest, key_tag, payload, None)
    }

    /// [`Comm::deposit_to`] with an explicit datatype signature (typed sends
    /// and datatype-carrying collective fragments stamp theirs; everything
    /// else defaults to untyped bytes).
    pub(crate) fn deposit_sig(
        &self,
        dest: usize,
        key_tag: u64,
        payload: Vec<u8>,
        sig: Option<TypeSig>,
    ) -> Result<()> {
        self.deposit_sig_pre(dest, key_tag, payload, sig, None)
    }

    /// [`Comm::deposit_sig`] with an optionally precomputed envelope
    /// checksum: the staged alltoallw path folds the checksum *during* the
    /// pack copy ([`crate::kernels`]) and passes it here, skipping the
    /// second pass over the payload. `precomputed` must equal
    /// `checksum64(stream_seed(rank, key_tag, epoch), &payload)` — the
    /// split-point independence of the hash guarantees the fused fold does.
    pub(crate) fn deposit_sig_pre(
        &self,
        dest: usize,
        key_tag: u64,
        mut payload: Vec<u8>,
        sig: Option<TypeSig>,
        precomputed: Option<u64>,
    ) -> Result<()> {
        self.sched_point("send");
        self.fault_tick()?;
        // Checksum the *pristine* payload before fault injection: the
        // injector models wire damage, which by definition happens after the
        // sender sealed the envelope. (A precomputed checksum was folded at
        // pack time, equally before injection.)
        let checksum = match precomputed {
            Some(c) if self.world.checksum => Some(c),
            _ => self
                .world
                .checksum
                .then(|| checksum64(self.stream_seed(self.rank, key_tag, self.epoch), &payload)),
        };
        let (clock, type_sig) = self.send_stamp(sig, payload.len());
        if let Some(faults) = &self.world.faults {
            let (src_w, dst_w) = (self.world_rank(), self.members[dest]);
            match faults.on_message(src_w, dst_w, key_tag, &mut payload) {
                MessageVerdict::Deliver => {}
                MessageVerdict::Drop => return Ok(()),
                MessageVerdict::DeliverAfter(d) => {
                    std::thread::sleep(d);
                    // The world may have reconfigured while this message was
                    // delayed in flight; delivering it into the new epoch
                    // would be exactly the stale match the fence exists to
                    // prevent. Count it and drop it.
                    if self.world.epoch() != self.epoch {
                        self.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                        ddrtrace::instant_arg("minimpi", "fenced_msg", "epoch", self.epoch as i64);
                        return Ok(());
                    }
                }
            }
        }
        // Credit gate, after the fault verdict: a dropped or fenced message
        // never reserves anything, so there is no reserve-without-deposit
        // window. Staged payloads charge the governor for their full length.
        let charge = self.acquire_charge(dest, key_tag, payload.len(), payload.len())?;
        self.world.transport.staged_msgs.fetch_add(1, Ordering::Relaxed);
        let key: MsgKey = (self.comm_id, self.rank, key_tag);
        self.world.mailboxes[self.members[dest]].deposit(
            key,
            Envelope {
                src: self.rank,
                epoch: self.epoch,
                payload: Payload::Bytes(payload),
                checksum,
                taints: Vec::new(),
                clock,
                type_sig,
                charge: Some(charge),
            },
        );
        Ok(())
    }

    /// Pack `dt`'s selection of `send_buf` into a pool buffer, folding the
    /// envelope checksum for (`key_tag`, this epoch) into the same pass when
    /// checksumming is on. Returns the packed payload and the checksum to
    /// hand to [`Comm::deposit_sig_pre`] — one traversal of the source bytes
    /// instead of pack-then-hash.
    pub(crate) fn pack_staged(
        &self,
        dt: &Datatype,
        send_buf: &[u8],
        key_tag: u64,
    ) -> Result<(Vec<u8>, Option<u64>)> {
        let mut packed = self.world.pool.acquire(dt.packed_len());
        let pre = if self.world.checksum {
            let mut sum = Checksum::new(self.stream_seed(self.rank, key_tag, self.epoch));
            dt.pack_into_hashed(send_buf, &mut packed, &mut sum)?;
            Some(sum.finish())
        } else {
            dt.pack_into(send_buf, &mut packed)?;
            None
        };
        Ok((packed, pre))
    }

    /// True when any timing-perturbing instrumentation is armed (fault
    /// injection, runtime checking, seeded schedule exploration). Adaptive
    /// heuristics that compare wall-clock measurements (e.g. the pipeline
    /// auto-fallback gate) must stay inert under these modes: the timings
    /// are not representative, and injected sleeps would make the decision
    /// seed-dependent.
    pub fn timing_perturbed(&self) -> bool {
        self.world.faults.is_some() || self.world.check.is_some() || self.world.sched.is_some()
    }

    /// Deposit a control-plane message (retransmit verdicts/NACKs). Control
    /// traffic is neither checksummed nor fault-injected: the recovery
    /// protocol must itself stay reliable, and letting message rules consume
    /// match counts on 1-byte verdicts would make data-message targeting
    /// (the `nth` coordinate) depend on recovery timing.
    pub(crate) fn deposit_control(
        &self,
        dest: usize,
        key_tag: u64,
        payload: Vec<u8>,
    ) -> Result<()> {
        self.sched_point("send_control");
        self.fault_tick()?;
        let (clock, type_sig) = self.send_stamp(None, payload.len());
        let key: MsgKey = (self.comm_id, self.rank, key_tag);
        // Control traffic is uncharged (`charge: None`): verdicts and NACKs
        // are tiny, and gating them behind the very windows they exist to
        // drain could deadlock the recovery protocol.
        self.world.mailboxes[self.members[dest]].deposit(
            key,
            Envelope {
                src: self.rank,
                epoch: self.epoch,
                payload: Payload::Bytes(payload),
                checksum: None,
                taints: Vec::new(),
                clock,
                type_sig,
                charge: None,
            },
        );
        Ok(())
    }

    /// Deposit a zero-copy loan of `dt`'s selection of `buf` into `dest`'s
    /// mailbox. Returns the completion cell the caller **must** drive to
    /// `Done` or `Revoked` (via [`ZcCell::wait`]) before `buf`'s borrow ends
    /// — that wait is what makes the receiver's raw-pointer read sound.
    ///
    /// Callers must have checked [`WorldState::zerocopy_active`]: a message
    /// fault plan would need to mutate the payload, which a loan forbids.
    #[track_caller]
    pub(crate) fn deposit_shared(
        &self,
        dest: usize,
        key_tag: u64,
        buf: &[u8],
        dt: Datatype,
    ) -> Result<Arc<ZcCell>> {
        self.sched_point("lend");
        // Same op accounting as `deposit_to`, so op positions (the fault
        // plan coordinate system) are identical across wire paths.
        self.fault_tick()?;
        // A loan occupies a mailbox slot but stages no bytes: it charges one
        // message credit and nothing against the byte window or governor.
        // Acquired before the loan is created/registered so a gate failure
        // leaves no half-registered loan behind.
        let charge = self.acquire_charge(dest, key_tag, 0, 0)?;
        // Lend-time checksum: walk the selection's byte runs in packed order
        // through the streaming hasher, which equals hashing the packed form
        // — so a receiver can verify its claimed copy without the sender
        // ever staging the payload.
        let checksum = self.world.checksum.then(|| {
            let mut c = Checksum::new(self.stream_seed(self.rank, key_tag, self.epoch));
            for (off, len) in dt.byte_runs() {
                c.update(&buf[off..off + len]);
            }
            c.finish()
        });
        // Corrupt rules can't scramble a loan in flight (there are no
        // in-flight bytes); record which rules fired so the receiver applies
        // the identical keystream to its copy at claim time.
        let taints = match &self.world.faults {
            Some(f) => f.on_message_zc(self.world_rank(), self.members[dest], key_tag),
            None => Vec::new(),
        };
        self.world.transport.zerocopy_msgs.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(ZcCell::default());
        let (clock, type_sig) = self.send_stamp(Some(TypeSig::of(&dt)), 0);
        // Track the loan *after* the send tick, so the lend clock covers the
        // lend event itself.
        if let Some(check) = &self.world.check {
            check.register_loan(
                &cell,
                self.world_rank(),
                self.members[dest],
                buf.as_ptr() as usize,
                buf.len(),
            );
        }
        let handle = ZcHandle::new(buf, dt, Arc::clone(&cell));
        let key: MsgKey = (self.comm_id, self.rank, key_tag);
        self.world.mailboxes[self.members[dest]].deposit(
            key,
            Envelope {
                src: self.rank,
                epoch: self.epoch,
                payload: Payload::Shared(handle),
                checksum,
                taints,
                clock,
                type_sig,
                charge: Some(charge),
            },
        );
        Ok(cell)
    }

    /// Turn a received envelope into owned, *verified* bytes. For zero-copy
    /// loans this is the slow path (generic receives don't have a
    /// destination selection to copy into directly): claim, pack out of the
    /// sender's buffer, release, then apply any claim-time corruption taints
    /// and check the checksum. Verification failure surfaces as
    /// [`Error::IntegrityFailure`] with `attempt: 0` — these paths are
    /// detect-only (recovery lives in alltoallw, where the sender's buffer
    /// is provably still owned).
    pub(crate) fn materialize(&self, src: usize, key_tag: u64, env: Envelope) -> Result<Vec<u8>> {
        let Envelope { epoch, checksum, taints, payload, .. } = env;
        match payload {
            Payload::Bytes(b) => {
                self.verify_payload(src, key_tag, epoch, checksum, &b)?;
                Ok(b)
            }
            Payload::Shared(h) => {
                self.sched_point("zc_claim");
                if !h.cell.try_claim() {
                    // The sender revoked the loan (timeout / death) before we
                    // got here; the payload is unrecoverable.
                    return Err(Error::PeerDead { rank: src });
                }
                // Record the claim (a read of the loaned range). A detected
                // race is surfaced only after the copy completes: the claim
                // succeeded, so the sender is parked until finish() — erroring
                // out before driving the cell to Done would strand it.
                let race = match &self.world.check {
                    Some(check) => {
                        check.loan_claimed(&h.cell, self.world_rank()).err().map(Error::DataRace)
                    }
                    None => None,
                };
                // SAFETY: the claim succeeded, so the sender is blocked in
                // ZcCell::wait and its buffer stays alive until finish().
                let src_buf = unsafe { h.src_slice() };
                let mut out = Vec::with_capacity(h.packed_len());
                let packed = h.dt.pack_into(src_buf, &mut out);
                if let Some(check) = &self.world.check {
                    check.loan_done(&h.cell, self.world_rank());
                }
                h.cell.finish();
                packed?;
                if let Some(race) = race {
                    return Err(race);
                }
                for &init in &taints {
                    Keystream::new(init).scramble(&mut out);
                }
                self.verify_payload(src, key_tag, epoch, checksum, &out)?;
                Ok(out)
            }
        }
    }

    pub(crate) fn take_from(&self, src: usize, key_tag: u64) -> Result<Vec<u8>> {
        let env = self.take_envelope_from(src, key_tag)?;
        self.materialize(src, key_tag, env)
    }

    pub(crate) fn take_envelope_from(&self, src: usize, key_tag: u64) -> Result<Envelope> {
        self.sched_point("recv");
        self.fault_tick()?;
        let key: MsgKey = (self.comm_id, src, key_tag);
        let src_world = self.members[src];
        let me_world = self.world_rank();
        if let Some(check) = &self.world.check {
            check.begin_wait(me_world, src_world, key);
        }
        let wait = ddrtrace::span_arg("minimpi", "mailbox_wait", "src", src as i64);
        let outcome = loop {
            let o = self.my_mailbox().take_watched(key, self.timeout.get(), || {
                !self.world.is_alive(src_world)
                    || self.world.check.as_ref().is_some_and(|c| c.is_deadlocked(me_world))
            });
            // Match-time epoch fence: a message stamped by a different epoch
            // must never be delivered. Dropping it revokes any zero-copy
            // loan it carried; keep waiting for a current-epoch message.
            if let TakeOutcome::Delivered(env) = &o {
                if env.epoch != self.epoch {
                    self.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                    ddrtrace::instant_arg("minimpi", "fenced_msg", "src", src as i64);
                    continue;
                }
            }
            // Watchdog deferral: a sender parked on the credit gate or the
            // governor is applying backpressure, not deadlocked — re-arm the
            // deadline instead of reporting a false timeout. Bounded because
            // the sender's own gate wait is bounded (it either acquires,
            // errors, or leaves the parked state).
            if matches!(o, TakeOutcome::TimedOut) && self.world.flow.rank_in_wait(src_world) {
                self.world.flow.note_watchdog_defer();
                continue;
            }
            break o;
        };
        drop(wait);
        let deadlock =
            self.world.check.as_ref().and_then(|c| {
                c.finish_wait(me_world, matches!(outcome, TakeOutcome::Delivered(_)))
            });
        match outcome {
            TakeOutcome::Delivered(env) => {
                self.note_delivery(&env);
                Ok(env)
            }
            TakeOutcome::TimedOut => Err(Error::Timeout {
                rank: self.rank,
                src: Some(src),
                tag: key_tag,
                comm_id: self.comm_id,
            }),
            TakeOutcome::Aborted => match deadlock {
                Some(report) => Err(Error::Deadlock(Box::new(report))),
                None => Err(Error::PeerDead { rank: src }),
            },
        }
    }

    /// Occupancy and traffic counters of the universe's shared
    /// staging-buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.world.pool.stats()
    }

    /// Get a cleared buffer with at least `cap` capacity from the universe's
    /// shared staging pool. Pair with [`Comm::release_staging`] — the pool
    /// is shared across ranks, so a buffer sent to a peer can be recycled by
    /// the receiver.
    pub fn acquire_staging(&self, cap: usize) -> Vec<u8> {
        self.world.pool.acquire(cap)
    }

    /// Return a staging buffer to the universe's shared pool (its content is
    /// discarded; oversized capacity may be trimmed).
    pub fn release_staging(&self, buf: Vec<u8>) {
        self.world.pool.release(buf)
    }

    /// Counters of which wire path messages took so far in this universe.
    pub fn transport_counters(&self) -> TransportCounters {
        self.world.transport.snapshot()
    }

    /// Integrity-plane counters so far in this universe: payloads verified,
    /// corruptions detected, retransmits performed, transfers exhausted.
    pub fn integrity_counters(&self) -> IntegrityCounters {
        self.world.integrity.snapshot()
    }

    /// Whether envelopes on this universe carry checksums (builder /
    /// `DDR_CHECKSUM` opt-out; on by default).
    pub fn checksum_active(&self) -> bool {
        self.world.checksum
    }

    /// Whether exchanges on this universe currently take the zero-copy fast
    /// path (builder / `DDR_NO_ZEROCOPY` opt-out, and no fault plan).
    pub fn zerocopy_active(&self) -> bool {
        self.world.zerocopy_active()
    }

    /// Flow-control counters so far in this universe: credit waits, total
    /// stall time, watchdog deferrals, slow-peer advisories, zero-copy
    /// sheds, budget denials, pool trims.
    pub fn flow_counters(&self) -> FlowCounters {
        self.world.flow.counters()
    }

    /// The universe's resolved flow-control configuration (builder or
    /// `DDR_MAILBOX_CREDITS` / `DDR_MAILBOX_BYTES` / `DDR_MEM_BUDGET`).
    pub fn flow_config(&self) -> FlowConfig {
        self.world.flow.config()
    }

    /// Configured memory budget in bytes (0 = unlimited).
    pub fn mem_budget(&self) -> usize {
        self.world.flow.config().mem_budget
    }

    /// Current memory-governor occupancy in bytes (staged mailbox payloads
    /// plus pool-retained capacity).
    pub fn mem_usage(&self) -> usize {
        self.world.flow.mem_used()
    }

    /// Largest memory-governor occupancy observed so far — the measured
    /// peak staging footprint. With a budget configured, never exceeds it.
    pub fn mem_high_water(&self) -> usize {
        self.world.flow.mem_high_water()
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Send raw bytes to `dest` with `tag`. Buffered: returns immediately.
    pub fn send_bytes(&self, dest: usize, tag: Tag, data: &[u8]) -> Result<()> {
        self.check_rank(dest)?;
        self.deposit_to(dest, user_key_tag(tag), data.to_vec())
    }

    /// Send a slice of POD values to `dest` with `tag`. With checking
    /// enabled the element size is stamped into the envelope so a typed
    /// receive with a different element type fails with
    /// [`Error::TypeMismatch`] instead of silently reinterpreting bytes.
    pub fn send<T: Pod>(&self, dest: usize, tag: Tag, data: &[T]) -> Result<()> {
        self.check_rank(dest)?;
        let bytes = bytes_of(data).to_vec();
        let sig =
            TypeSig { extent: bytes.len() as u64, elem: std::mem::size_of::<T>() as u32, shape: 0 };
        self.deposit_sig(dest, user_key_tag(tag), bytes, Some(sig))
    }

    /// Send an owned byte buffer without copying it.
    pub fn send_bytes_owned(&self, dest: usize, tag: Tag, data: Vec<u8>) -> Result<()> {
        self.check_rank(dest)?;
        self.deposit_to(dest, user_key_tag(tag), data)
    }

    /// Receive raw bytes from `src` with `tag`, blocking until available.
    pub fn recv_bytes(&self, src: usize, tag: Tag) -> Result<Vec<u8>> {
        self.check_rank(src)?;
        self.take_from(src, user_key_tag(tag))
    }

    /// Receive from any source; returns the payload and its origin. Fails
    /// fast with [`Error::PeerDead`] once every other member is dead.
    pub fn recv_bytes_any(&self, tag: Tag) -> Result<(RecvStatus, Vec<u8>)> {
        self.sched_point("recv_any");
        self.fault_tick()?;
        let me = self.rank;
        // Seeded rotation of the source-scan start explores different
        // delivery orders when several sources are ready; 0 (lowest source
        // first) without a scheduler.
        let start = match &self.world.sched {
            Some(s) => s.pick(self.world_rank()) % self.size().max(1),
            None => 0,
        };
        let wait = ddrtrace::span("minimpi", "mailbox_wait_any");
        let outcome = loop {
            let o = self.my_mailbox().take_any_watched(
                self.comm_id,
                user_key_tag(tag),
                self.size(),
                start,
                self.timeout.get(),
                || (0..self.size()).all(|r| r == me || !self.is_alive(r)),
            );
            if let TakeOutcome::Delivered(env) = &o {
                if env.epoch != self.epoch {
                    self.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                    ddrtrace::instant_arg("minimpi", "fenced_msg", "src", env.src as i64);
                    continue;
                }
            }
            // Any-source watchdog deferral: if any live peer is parked on
            // the flow gate, its message may still be coming — backpressure
            // must not read as a timeout.
            if matches!(o, TakeOutcome::TimedOut)
                && self.world.flow.any_other_in_wait(self.world_rank())
            {
                self.world.flow.note_watchdog_defer();
                continue;
            }
            break o;
        };
        drop(wait);
        match outcome {
            TakeOutcome::Delivered(env) => {
                self.note_delivery(&env);
                let src = env.src;
                let bytes = self.materialize(src, user_key_tag(tag), env)?;
                Ok((RecvStatus { src, len: bytes.len() }, bytes))
            }
            TakeOutcome::TimedOut => Err(Error::Timeout {
                rank: self.rank,
                src: None,
                tag: user_key_tag(tag),
                comm_id: self.comm_id,
            }),
            // Every possible source is gone; report the lowest dead rank.
            TakeOutcome::Aborted => Err(Error::PeerDead {
                rank: (0..self.size()).find(|&r| !self.is_alive(r)).unwrap_or(0),
            }),
        }
    }

    /// Typed receive: take the envelope, verify the sender's datatype
    /// signature against `want` *before* consuming the payload (a mismatched
    /// zero-copy loan is dropped, revoking it), then materialize.
    fn take_from_typed(&self, src: usize, key_tag: u64, want: TypeSig) -> Result<Vec<u8>> {
        let env = self.take_envelope_from(src, key_tag)?;
        self.verify_type_sig(src, key_tag, env.type_sig.as_ref(), &want)?;
        self.materialize(src, key_tag, env)
    }

    /// Receive a `Vec<T>` of POD values from `src` with `tag`.
    pub fn recv_vec<T: Pod>(&self, src: usize, tag: Tag) -> Result<Vec<T>> {
        self.check_rank(src)?;
        let want = TypeSig { extent: 0, elem: std::mem::size_of::<T>() as u32, shape: 0 };
        let bytes = self.take_from_typed(src, user_key_tag(tag), want)?;
        vec_from_bytes(&bytes)
            .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: bytes.len() })
    }

    /// Receive into a caller-provided buffer; the message length must equal
    /// the buffer length exactly.
    pub fn recv_into<T: Pod>(&self, src: usize, tag: Tag, buf: &mut [T]) -> Result<()> {
        self.check_rank(src)?;
        let want = std::mem::size_of_val(buf);
        let sig = TypeSig { extent: want as u64, elem: std::mem::size_of::<T>() as u32, shape: 0 };
        let bytes = self.take_from_typed(src, user_key_tag(tag), sig)?;
        if bytes.len() != want {
            return Err(Error::SizeMismatch { expected: want, got: bytes.len() });
        }
        crate::pod::bytes_of_mut(buf).copy_from_slice(&bytes);
        Ok(())
    }

    /// Non-blocking receive attempt.
    pub fn try_recv_bytes(&self, src: usize, tag: Tag) -> Result<Option<Vec<u8>>> {
        self.check_rank(src)?;
        self.sched_point("try_recv");
        self.fault_tick()?;
        loop {
            match self.my_mailbox().try_take((self.comm_id, src, user_key_tag(tag))) {
                Some(env) if env.epoch != self.epoch => {
                    self.world.transport.fenced_msgs.fetch_add(1, Ordering::Relaxed);
                    ddrtrace::instant_arg("minimpi", "fenced_msg", "src", src as i64);
                }
                Some(env) => {
                    self.note_delivery(&env);
                    return Ok(Some(self.materialize(src, user_key_tag(tag), env)?));
                }
                None => return Ok(None),
            }
        }
    }

    /// Combined send+receive, safe against head-of-line blocking because
    /// sends are buffered (as in `MPI_Sendrecv` with eager protocol).
    pub fn sendrecv<T: Pod>(
        &self,
        dest: usize,
        send_data: &[T],
        src: usize,
        tag: Tag,
    ) -> Result<Vec<T>> {
        self.send(dest, tag, send_data)?;
        self.recv_vec(src, tag)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Collective: split this communicator into disjoint sub-communicators,
    /// one per distinct `color`. Members of each child are ordered by their
    /// rank in the parent (MPI's `key` is fixed to the parent rank).
    #[track_caller]
    pub fn split(&self, color: u64) -> Result<Comm> {
        let all: Vec<(u64, usize)> =
            self.allgather(&[color])?.into_iter().enumerate().map(|(r, c)| (c[0], r)).collect();
        let members: Vec<usize> =
            all.iter().filter(|(c, _)| *c == color).map(|(_, r)| self.members[*r]).collect();
        let new_rank = members.iter().position(|&w| w == self.world_rank()).ok_or_else(|| {
            Error::Internal {
                detail: format!(
                    "split: world rank {} missing from its own color group (color {color})",
                    self.world_rank()
                ),
            }
        })?;
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        let child_id = mix64(mix64(self.comm_id ^ seq.wrapping_mul(0x9e37)) ^ color);
        Ok(Comm::derived(
            Arc::clone(&self.world),
            child_id,
            new_rank,
            Arc::new(members),
            self.epoch,
            self.timeout.get(),
        ))
    }

    /// Collective: duplicate this communicator into an independent one with
    /// the same group but a private message namespace.
    #[track_caller]
    pub fn duplicate(&self) -> Result<Comm> {
        self.split(0)
    }

    /// Collective over the *surviving* members: agree on the set of members
    /// still alive and return a new communicator containing exactly them, in
    /// parent rank order (the moral equivalent of `MPI_Comm_shrink` from
    /// ULFM).
    ///
    /// Every surviving member must call `shrink` the same number of times;
    /// dead members are excused — the rendezvous completes as soon as all
    /// currently-alive members have entered, and is re-evaluated whenever a
    /// rank dies, so survivors never wait out the watchdog on a casualty.
    ///
    /// Unlike other collectives this does not send messages (it agrees via
    /// shared state), so it cannot itself be killed by a fault plan — a rank
    /// that reached `shrink` alive will complete it.
    pub fn shrink(&self) -> Result<Comm> {
        let generation = self.shrink_seq.get();
        self.shrink_seq.set(generation + 1);
        let survivors = self
            .world
            .shrink
            .enter(
                (self.comm_id, generation),
                &self.members,
                self.world_rank(),
                &self.world.liveness,
                self.timeout.get(),
            )
            .ok_or(Error::Timeout {
                rank: self.rank,
                src: None,
                tag: SHRINK_TAG,
                comm_id: self.comm_id,
            })?;
        let new_rank = survivors.iter().position(|&w| w == self.world_rank()).ok_or_else(|| {
            Error::Internal {
                detail: format!(
                    "shrink: world rank {} absent from the agreed survivor set",
                    self.world_rank()
                ),
            }
        })?;
        // Derive the child id identically on every survivor.
        let mut child_id = mix64(self.comm_id ^ mix64(0x5421_494e_4b21 ^ generation));
        for &w in survivors.iter() {
            child_id = mix64(child_id ^ w as u64);
        }
        Ok(Comm::derived(
            Arc::clone(&self.world),
            child_id,
            new_rank,
            Arc::new((*survivors).clone()),
            self.epoch,
            self.timeout.get(),
        ))
    }

    pub(crate) fn next_coll_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    /// With checking enabled, verify this rank's collective call number
    /// `seq` against what other members recorded for the same slot; no-op
    /// (one always-false branch) otherwise.
    pub(crate) fn record_collective(&self, seq: u64, fp: CollFingerprint) -> Result<()> {
        if let Some(check) = &self.world.check {
            check
                .record_collective(self.comm_id, seq, self.rank, self.size(), fp)
                .map_err(Error::CollectiveDiverged)?;
        }
        Ok(())
    }
}

/// Watchdog timeout used when none is set on the [`crate::Universe`]
/// builder: `DDR_TIMEOUT_MS` (milliseconds), else the legacy
/// `MINIMPI_TIMEOUT_SECS` (seconds), else 120 s.
pub(crate) fn default_timeout() -> Duration {
    if let Some(ms) = crate::env::u64_var("DDR_TIMEOUT_MS") {
        return Duration::from_millis(ms);
    }
    match crate::env::u64_var("MINIMPI_TIMEOUT_SECS") {
        Some(s) => Duration::from_secs(s),
        None => Duration::from_secs(120),
    }
}
