//! Centralized `DDR_*` environment-variable parsing.
//!
//! Every runtime knob the stack reads from the environment goes through this
//! module, so parsing rules are uniform and a malformed value produces exactly
//! one warning on stderr (per variable, per process) instead of being
//! silently ignored somewhere deep in a hot path.
//!
//! The full knob table lives in the repository README under "Observability".

use std::collections::BTreeSet;
use std::sync::Mutex;
use std::sync::OnceLock;

fn warned() -> &'static Mutex<BTreeSet<&'static str>> {
    static WARNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn warn_once(name: &'static str, value: &str, expected: &str) {
    let mut set = warned().lock().unwrap_or_else(|e| e.into_inner());
    if set.insert(name) {
        eprintln!("minimpi: ignoring {name}={value:?}: expected {expected}");
    }
}

/// A boolean flag: `1`/`true`/`yes`/`on` (any case) is true, `0`/`false`/
/// `no`/`off` is false, unset is `None`. Anything else warns once and reads
/// as `None`.
pub fn flag(name: &'static str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" | "" => Some(false),
        _ => {
            warn_once(name, &raw, "a boolean (1/true/yes/on or 0/false/no/off)");
            None
        }
    }
}

/// An unsigned integer. Malformed values warn once and read as `None`.
pub fn u64_var(name: &'static str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, &raw, "an unsigned integer");
            None
        }
    }
}

/// A byte count with an optional `K`/`M`/`G` (or `KiB`/`MiB`/`GiB`) suffix,
/// e.g. `64K`, `1M`, `65536`. Malformed values warn once and read as `None`.
pub fn bytes_var(name: &'static str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match parse_bytes(raw.trim()) {
        Some(v) => Some(v),
        None => {
            warn_once(name, &raw, "a byte count like 65536, 64K, 4M or 1G");
            None
        }
    }
}

/// A non-empty path-like string (no validation beyond non-emptiness).
pub fn path_var(name: &'static str) -> Option<String> {
    let raw = std::env::var(name).ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        warn_once(name, &raw, "a non-empty path");
        None
    } else {
        Some(trimmed.to_string())
    }
}

fn parse_bytes(s: &str) -> Option<usize> {
    if s.is_empty() {
        return None;
    }
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix("kib").or(lower.strip_suffix("kb")) {
        (d, 1usize << 10)
    } else if let Some(d) = lower.strip_suffix("mib").or(lower.strip_suffix("mb")) {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix("gib").or(lower.strip_suffix("gb")) {
        (d, 1 << 30)
    } else if let Some(d) = lower.strip_suffix('k') {
        (d, 1 << 10)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = lower.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (lower.as_str(), 1)
    };
    let n = digits.trim().parse::<usize>().ok()?;
    n.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation races other tests in this binary; these tests only use
    // variable names nothing else reads.

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("65536"), Some(65536));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("64k"), Some(64 << 10));
        assert_eq!(parse_bytes("4MiB"), Some(4 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes("2kb"), Some(2 << 10));
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes("12x"), None);
    }

    #[test]
    fn flag_values() {
        std::env::set_var("DDR_TEST_FLAG_A", "yes");
        assert_eq!(flag("DDR_TEST_FLAG_A"), Some(true));
        std::env::set_var("DDR_TEST_FLAG_A", "OFF");
        assert_eq!(flag("DDR_TEST_FLAG_A"), Some(false));
        assert_eq!(flag("DDR_TEST_FLAG_UNSET"), None);
    }

    #[test]
    fn malformed_warns_once_and_is_ignored() {
        std::env::set_var("DDR_TEST_BAD_INT", "twelve");
        assert_eq!(u64_var("DDR_TEST_BAD_INT"), None);
        assert_eq!(u64_var("DDR_TEST_BAD_INT"), None);
        assert!(warned().lock().unwrap().contains("DDR_TEST_BAD_INT"));
    }
}
