//! Per-rank message stores with blocking, tag-matched retrieval.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Key identifying a message stream: (communicator id, sender's rank within
/// that communicator, tag). The tag space is split between user tags and
/// internal collective sequence numbers by [`crate::comm`].
pub(crate) type MsgKey = (u64, usize, u64);

/// A message queued for delivery. `src` is re-recorded so any-source
/// receives can report where a message came from.
pub(crate) struct Envelope {
    pub src: usize,
    pub payload: Vec<u8>,
}

#[derive(Default)]
struct Queues {
    by_key: HashMap<MsgKey, VecDeque<Envelope>>,
}

/// One rank's incoming message store.
///
/// Senders deposit into the receiving rank's mailbox and notify the condvar;
/// receivers block until a matching key has a queued message. FIFO order is
/// preserved per key, matching MPI's non-overtaking rule for messages with
/// the same (source, tag, communicator).
#[derive(Default)]
pub(crate) struct Mailbox {
    queues: Mutex<Queues>,
    cv: Condvar,
}

impl Mailbox {
    pub fn deposit(&self, key: MsgKey, env: Envelope) {
        let mut q = self.queues.lock();
        q.by_key.entry(key).or_default().push_back(env);
        // Receivers may be waiting on any key; notify them all. Contention is
        // bounded: only the owning rank ever blocks on this mailbox.
        self.cv.notify_all();
    }

    /// Block until a message with `key` is available, or `deadline` passes.
    /// Returns `None` on timeout.
    pub fn take(&self, key: MsgKey, timeout: Duration) -> Option<Envelope> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock();
        loop {
            if let Some(dq) = q.by_key.get_mut(&key) {
                if let Some(env) = dq.pop_front() {
                    if dq.is_empty() {
                        q.by_key.remove(&key);
                    }
                    return Some(env);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_until(&mut q, deadline) .timed_out() {
                // Re-check once after timeout in case of a race with deposit.
                if let Some(dq) = q.by_key.get_mut(&key) {
                    if let Some(env) = dq.pop_front() {
                        if dq.is_empty() {
                            q.by_key.remove(&key);
                        }
                        return Some(env);
                    }
                }
                return None;
            }
        }
    }

    /// Non-blocking probe-and-take.
    pub fn try_take(&self, key: MsgKey) -> Option<Envelope> {
        let mut q = self.queues.lock();
        let dq = q.by_key.get_mut(&key)?;
        let env = dq.pop_front();
        if dq.is_empty() {
            q.by_key.remove(&key);
        }
        env
    }

    /// Block until a message with communicator `comm_id` and tag `tag` from
    /// *any* source is available. Scans in ascending source order for
    /// determinism when several are ready.
    pub fn take_any(
        &self,
        comm_id: u64,
        tag: u64,
        size: usize,
        timeout: Duration,
    ) -> Option<Envelope> {
        fn scan(q: &mut Queues, comm_id: u64, tag: u64, size: usize) -> Option<Envelope> {
            for src in 0..size {
                let key = (comm_id, src, tag);
                if let Some(dq) = q.by_key.get_mut(&key) {
                    if let Some(env) = dq.pop_front() {
                        if dq.is_empty() {
                            q.by_key.remove(&key);
                        }
                        return Some(env);
                    }
                }
            }
            None
        }

        let deadline = Instant::now() + timeout;
        let mut q = self.queues.lock();
        loop {
            if let Some(env) = scan(&mut q, comm_id, tag, size) {
                return Some(env);
            }
            if self.cv.wait_until(&mut q, deadline).timed_out() {
                // One last scan after the final wakeup, in case a deposit
                // raced with the timeout.
                return scan(&mut q, comm_id, tag, size);
            }
        }
    }

    /// Number of queued messages (diagnostics only).
    #[cfg(test)]
    pub fn pending(&self) -> usize {
        self.queues.lock().by_key.values().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deposit_take_fifo() {
        let mb = Mailbox::default();
        let key = (1, 0, 7);
        mb.deposit(key, Envelope { src: 0, payload: vec![1] });
        mb.deposit(key, Envelope { src: 0, payload: vec![2] });
        assert_eq!(mb.take(key, Duration::from_secs(1)).unwrap().payload, vec![1]);
        assert_eq!(mb.take(key, Duration::from_secs(1)).unwrap().payload, vec![2]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn take_blocks_until_deposit() {
        let mb = Arc::new(Mailbox::default());
        let key = (9, 3, 0);
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take(key, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        mb.deposit(key, Envelope { src: 3, payload: vec![42] });
        assert_eq!(h.join().unwrap().unwrap().payload, vec![42]);
    }

    #[test]
    fn take_times_out() {
        let mb = Mailbox::default();
        assert!(mb.take((0, 0, 0), Duration::from_millis(20)).is_none());
    }

    #[test]
    fn try_take_nonblocking() {
        let mb = Mailbox::default();
        let key = (1, 1, 1);
        assert!(mb.try_take(key).is_none());
        mb.deposit(key, Envelope { src: 1, payload: vec![5] });
        assert_eq!(mb.try_take(key).unwrap().payload, vec![5]);
    }

    #[test]
    fn take_any_prefers_lowest_source() {
        let mb = Mailbox::default();
        mb.deposit((2, 4, 8), Envelope { src: 4, payload: vec![4] });
        mb.deposit((2, 1, 8), Envelope { src: 1, payload: vec![1] });
        let env = mb.take_any(2, 8, 8, Duration::from_secs(1)).unwrap();
        assert_eq!(env.src, 1);
    }
}
