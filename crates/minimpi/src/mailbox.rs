//! Per-rank message stores with blocking, tag-matched retrieval.

use crate::flow::{FlowCharge, FlowLedger};
use crate::zerocopy::ZcHandle;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Key identifying a message stream: (communicator id, sender's rank within
/// that communicator, tag). The tag space is split between user tags and
/// internal collective sequence numbers by [`crate::comm`].
pub(crate) type MsgKey = (u64, usize, u64);

/// What a queued message carries: either owned bytes (the staged path), or a
/// zero-copy loan of the sender's buffer that the receiver copies out of
/// directly (see [`crate::zerocopy`]).
pub(crate) enum Payload {
    /// Owned packed bytes, transferred with the envelope.
    Bytes(Vec<u8>),
    /// A lent region of the sender's buffer; the sender blocks until the
    /// receiver copies it (or the loan is revoked).
    Shared(ZcHandle),
}

/// A message queued for delivery. `src` is re-recorded so any-source
/// receives can report where a message came from. `epoch` is the membership
/// epoch of the *sending* communicator handle; receivers and the
/// reconfigure-time sweep reject envelopes whose epoch is not current
/// (dropping a stale `Shared` payload revokes the loan, waking its sender).
pub(crate) struct Envelope {
    pub src: usize,
    pub epoch: u64,
    pub payload: Payload,
    /// Seeded 64-bit checksum of the pristine payload, computed at
    /// pack/lend time (before fault injection) and verified at match/claim
    /// time. `None` when checksumming is disabled (`DDR_CHECKSUM=0`).
    pub checksum: Option<u64>,
    /// Corrupt-fault keystream inits for a `Shared` payload: a zero-copy
    /// loan has no in-flight bytes to scramble at lend time, so the injector
    /// records which corrupt rules fired and the *receiver* applies the
    /// scramble to its own copy at claim time. Empty (no allocation) in the
    /// overwhelmingly common clean case; always empty for `Bytes`.
    pub taints: Vec<u64>,
    /// Sender's vector-clock snapshot, piggybacked when checking is enabled
    /// (`None` otherwise) and joined into the receiver's clock at delivery.
    pub clock: Option<crate::vclock::VectorClock>,
    /// Sender's datatype signature, stamped when checking is enabled and
    /// verified against the receiver's declared expectation.
    pub type_sig: Option<crate::check::TypeSig>,
    /// Flow-control credits this envelope holds while queued. Released by
    /// the mailbox exactly once — when the envelope is popped for delivery
    /// or discarded by the epoch sweep — which is what makes credit grants
    /// "piggyback" on delivery and makes the sweep an exact credit reset
    /// across [`crate::Comm::reconfigure`]. `None` for control traffic.
    pub charge: Option<FlowCharge>,
}

#[derive(Default)]
struct Queues {
    by_key: HashMap<MsgKey, VecDeque<Envelope>>,
}

/// One rank's incoming message store.
///
/// Senders deposit into the receiving rank's mailbox and notify the condvar;
/// receivers block until a matching key has a queued message. FIFO order is
/// preserved per key, matching MPI's non-overtaking rule for messages with
/// the same (source, tag, communicator).
#[derive(Default)]
pub(crate) struct Mailbox {
    queues: Mutex<Queues>,
    cv: Condvar,
    /// World rank that owns (receives from) this mailbox — the credit
    /// pair's column when releasing charges.
    owner: usize,
    /// The universe's flow ledger; `None` in bare unit tests.
    flow: Option<Arc<FlowLedger>>,
}

impl Mailbox {
    /// A mailbox wired to the universe's flow ledger: every charged
    /// envelope it releases returns its credits to `flow`.
    pub fn with_flow(owner: usize, flow: Arc<FlowLedger>) -> Self {
        Mailbox { owner, flow: Some(flow), ..Default::default() }
    }

    fn lock(&self) -> MutexGuard<'_, Queues> {
        self.queues.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Return the envelope's credits (if any) to the ledger. Called exactly
    /// once per charged envelope: on pop-for-delivery or on epoch sweep.
    /// `take()` makes a second call a no-op by construction.
    fn settle(&self, env: &mut Envelope) {
        if let Some(charge) = env.charge.take() {
            if let Some(flow) = &self.flow {
                flow.release(charge, self.owner);
            }
        }
    }

    pub fn deposit(&self, key: MsgKey, env: Envelope) {
        // The sender acquired this envelope's credits *before* depositing,
        // so the queue depth per (sender, receiver) pair can never exceed
        // the configured window.
        #[cfg(debug_assertions)]
        if let (Some(flow), Some(charge)) = (&self.flow, env.charge.as_ref()) {
            debug_assert!(
                flow.pair_within_cap(charge.src_world, self.owner),
                "deposit from world rank {} would exceed the credit cap",
                charge.src_world
            );
        }
        let mut q = self.lock();
        q.by_key.entry(key).or_default().push_back(env);
        drop(q);
        // Receivers may be waiting on any key; notify them all. The queue
        // itself is bounded by the credit window: a sender without credits
        // parks on the flow gate and never reaches this deposit.
        self.cv.notify_all();
    }

    /// Wake any blocked receiver so it can re-check liveness conditions
    /// (used when a rank dies or departs).
    pub fn interrupt(&self) {
        // Take the lock so the wakeup cannot slot between a receiver's
        // condition check and its wait.
        drop(self.lock());
        self.cv.notify_all();
    }

    /// Block until a message with `key` is available, or `deadline` passes.
    /// Returns `None` on timeout.
    #[cfg(test)]
    pub fn take(&self, key: MsgKey, timeout: Duration) -> Option<Envelope> {
        match self.take_watched(key, timeout, || false) {
            TakeOutcome::Delivered(env) => Some(env),
            _ => None,
        }
    }

    /// Like [`Mailbox::take`], but also gives up early — returning
    /// [`TakeOutcome::Aborted`] — once `abort()` reports true and no matching
    /// message is queued. Queued messages always win over the abort
    /// condition, preserving "messages sent before death are deliverable".
    pub fn take_watched(
        &self,
        key: MsgKey,
        timeout: Duration,
        abort: impl Fn() -> bool,
    ) -> TakeOutcome {
        let deadline = Instant::now() + timeout;
        let mut q = self.lock();
        loop {
            if let Some(mut env) = Self::pop(&mut q, key) {
                drop(q);
                self.settle(&mut env);
                return TakeOutcome::Delivered(env);
            }
            if abort() {
                return TakeOutcome::Aborted;
            }
            let now = Instant::now();
            if now >= deadline {
                return TakeOutcome::TimedOut;
            }
            let (guard, res) = match self.cv.wait_timeout(q, deadline - now) {
                Ok(ok) => ok,
                Err(e) => {
                    let (guard, res) = e.into_inner();
                    (guard, res)
                }
            };
            q = guard;
            if res.timed_out() {
                // Re-check once after timeout in case of a race with deposit.
                return match Self::pop(&mut q, key) {
                    Some(mut env) => {
                        drop(q);
                        self.settle(&mut env);
                        TakeOutcome::Delivered(env)
                    }
                    None if abort() => TakeOutcome::Aborted,
                    None => TakeOutcome::TimedOut,
                };
            }
        }
    }

    fn pop(q: &mut Queues, key: MsgKey) -> Option<Envelope> {
        let dq = q.by_key.get_mut(&key)?;
        let env = dq.pop_front();
        if dq.is_empty() {
            q.by_key.remove(&key);
        }
        env
    }

    /// Non-blocking probe-and-take.
    pub fn try_take(&self, key: MsgKey) -> Option<Envelope> {
        let mut env = Self::pop(&mut self.lock(), key)?;
        self.settle(&mut env);
        Some(env)
    }

    /// Drop every queued envelope whose epoch is not `current_epoch` and
    /// return how many were fenced. Called by the reconfigure leader after
    /// the epoch bump: pre-reconfiguration messages must never match a
    /// post-reconfiguration receive, and dropping a stale zero-copy loan
    /// revokes it so its sender is released instead of waiting out the
    /// watchdog.
    pub fn sweep_stale(&self, current_epoch: u64) -> u64 {
        let mut q = self.lock();
        let mut fenced = 0u64;
        q.by_key.retain(|_, dq| {
            dq.retain_mut(|env| {
                let keep = env.epoch == current_epoch;
                if !keep {
                    fenced += 1;
                    // Discarding a stale envelope returns its credits: the
                    // sweep is the epoch-fenced credit reset, so a
                    // reconfigure can neither leak nor duplicate credits.
                    self.settle(env);
                }
                keep
            });
            !dq.is_empty()
        });
        drop(q);
        if fenced > 0 {
            self.cv.notify_all();
        }
        fenced
    }

    /// Whether a message with `key` is currently queued (used by the
    /// deadlock detector to rule out satisfiable waits — with eager sends,
    /// an in-flight message is always already queued here).
    pub fn contains(&self, key: MsgKey) -> bool {
        self.lock().by_key.contains_key(&key)
    }

    /// Block until a message with communicator `comm_id` and tag `tag` from
    /// *any* source is available. Scans sources in ascending order starting
    /// at `start` (wrapping) — deterministic when several are ready, but a
    /// seeded scheduler can rotate the preference to explore different
    /// delivery orders. Gives up early when `abort()` reports true (e.g.
    /// every possible source is dead).
    pub fn take_any_watched(
        &self,
        comm_id: u64,
        tag: u64,
        size: usize,
        start: usize,
        timeout: Duration,
        abort: impl Fn() -> bool,
    ) -> TakeOutcome {
        fn scan(
            q: &mut Queues,
            comm_id: u64,
            tag: u64,
            size: usize,
            start: usize,
        ) -> Option<Envelope> {
            (0..size).find_map(|i| Mailbox::pop(q, (comm_id, (start + i) % size.max(1), tag)))
        }

        let deadline = Instant::now() + timeout;
        let mut q = self.lock();
        loop {
            if let Some(mut env) = scan(&mut q, comm_id, tag, size, start) {
                drop(q);
                self.settle(&mut env);
                return TakeOutcome::Delivered(env);
            }
            if abort() {
                return TakeOutcome::Aborted;
            }
            let now = Instant::now();
            if now >= deadline {
                return TakeOutcome::TimedOut;
            }
            let (guard, res) = match self.cv.wait_timeout(q, deadline - now) {
                Ok(ok) => ok,
                Err(e) => e.into_inner(),
            };
            q = guard;
            if res.timed_out() {
                // One last scan after the final wakeup, in case a deposit
                // raced with the timeout.
                return match scan(&mut q, comm_id, tag, size, start) {
                    Some(mut env) => {
                        drop(q);
                        self.settle(&mut env);
                        TakeOutcome::Delivered(env)
                    }
                    None if abort() => TakeOutcome::Aborted,
                    None => TakeOutcome::TimedOut,
                };
            }
        }
    }

    /// Number of queued messages (diagnostics only).
    #[cfg(test)]
    pub fn pending(&self) -> usize {
        self.lock().by_key.values().map(|d| d.len()).sum()
    }
}

/// Result of a blocking mailbox retrieval.
///
/// `Delivered` is much larger than the unit variants, but every take site
/// destructures the outcome immediately — boxing the envelope would add an
/// allocation per delivery for a value that never outlives the match.
#[allow(clippy::large_enum_variant)]
pub(crate) enum TakeOutcome {
    /// A matching message arrived (or was already queued).
    Delivered(Envelope),
    /// The watchdog deadline passed with no matching message.
    TimedOut,
    /// The abort condition fired — e.g. the awaited peer is dead.
    Aborted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn bytes_env(src: usize, bytes: Vec<u8>) -> Envelope {
        Envelope {
            src,
            epoch: 0,
            payload: Payload::Bytes(bytes),
            checksum: None,
            taints: Vec::new(),
            clock: None,
            type_sig: None,
            charge: None,
        }
    }

    fn into_bytes(env: Envelope) -> Vec<u8> {
        match env.payload {
            Payload::Bytes(b) => b,
            Payload::Shared(_) => panic!("expected an owned-bytes payload"),
        }
    }

    #[test]
    fn deposit_take_fifo() {
        let mb = Mailbox::default();
        let key = (1, 0, 7);
        mb.deposit(key, bytes_env(0, vec![1]));
        mb.deposit(key, bytes_env(0, vec![2]));
        assert_eq!(into_bytes(mb.take(key, Duration::from_secs(1)).unwrap()), vec![1]);
        assert_eq!(into_bytes(mb.take(key, Duration::from_secs(1)).unwrap()), vec![2]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn take_blocks_until_deposit() {
        let mb = Arc::new(Mailbox::default());
        let key = (9, 3, 0);
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take(key, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        mb.deposit(key, bytes_env(3, vec![42]));
        assert_eq!(into_bytes(h.join().unwrap().unwrap()), vec![42]);
    }

    #[test]
    fn take_times_out() {
        let mb = Mailbox::default();
        assert!(mb.take((0, 0, 0), Duration::from_millis(20)).is_none());
    }

    #[test]
    fn try_take_nonblocking() {
        let mb = Mailbox::default();
        let key = (1, 1, 1);
        assert!(mb.try_take(key).is_none());
        mb.deposit(key, bytes_env(1, vec![5]));
        assert_eq!(into_bytes(mb.try_take(key).unwrap()), vec![5]);
    }

    #[test]
    fn take_any_prefers_lowest_source() {
        let mb = Mailbox::default();
        mb.deposit((2, 4, 8), bytes_env(4, vec![4]));
        mb.deposit((2, 1, 8), bytes_env(1, vec![1]));
        let env = match mb.take_any_watched(2, 8, 8, 0, Duration::from_secs(1), || false) {
            TakeOutcome::Delivered(env) => env,
            _ => panic!("expected delivery"),
        };
        assert_eq!(env.src, 1);
    }
}
