//! Vector clocks ordering events across ranks for the happens-before
//! analyses in [`crate::check`].
//!
//! Each world rank owns one clock. A rank ticks its own component on every
//! send and joins the sender's snapshot into its own clock on every
//! delivery, so `a.leq(b)` holds exactly when the event that produced
//! snapshot `a` happens-before the event that produced `b`. Two snapshots
//! where neither `leq` the other are *concurrent* — the raw material of a
//! data race.

/// A vector clock: one logical-time component per world rank.
///
/// The clock is a pure value type; [`crate::check::CheckState`] owns the
/// per-rank instances and serializes updates. Snapshots of it travel on
/// envelopes when checking is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// A zeroed clock for a world of `n` ranks.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of components (the world size it was built for).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no components (a zero-rank world).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// This rank's own component.
    pub fn get(&self, rank: usize) -> u64 {
        self.0.get(rank).copied().unwrap_or(0)
    }

    /// Advance `rank`'s own component by one logical step.
    pub fn tick(&mut self, rank: usize) {
        if let Some(c) = self.0.get_mut(rank) {
            *c += 1;
        }
    }

    /// Pointwise maximum: absorb everything `other` has observed.
    pub fn join(&mut self, other: &VectorClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Componentwise `≤` — the happens-before-or-equal order. Returns true
    /// when every component of `self` is at most the matching component of
    /// `other`, i.e. the event that produced `self` happens-before (or is)
    /// the event that produced `other`.
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }

    /// Neither clock orders the other: the two events are concurrent.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_own_component_only() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        c.tick(1);
        assert_eq!((c.get(0), c.get(1), c.get(2)), (0, 2, 0));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        b.tick(1);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1), a.get(2)), (1, 2, 0));
    }

    #[test]
    fn leq_orders_causal_chain() {
        let mut a = VectorClock::new(2);
        a.tick(0); // send on rank 0
        let mut b = VectorClock::new(2);
        b.join(&a);
        b.tick(1); // delivery + local step on rank 1
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn unrelated_events_are_concurrent() {
        let mut a = VectorClock::new(2);
        a.tick(0);
        let mut b = VectorClock::new(2);
        b.tick(1);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
    }

    #[test]
    fn display_is_compact() {
        let mut c = VectorClock::new(3);
        c.tick(2);
        assert_eq!(c.to_string(), "[0 0 1]");
    }
}
