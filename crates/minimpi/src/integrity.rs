//! End-to-end payload integrity: seeded envelope checksums.
//!
//! Every envelope a rank deposits — staged bytes, collective fragments, and
//! zero-copy loan completions alike — carries a 64-bit checksum computed at
//! pack/lend time over the *pristine* payload and verified at match/claim
//! time, so corruption on the wire (modelled by [`crate::FaultPlan`]'s
//! `Corrupt` rules) is detected instead of sailing silently into the
//! receiver's buffer. Detection is the first rung of the ladder; the
//! NACK/retransmit recovery protocol lives in `collectives::alltoallw`.
//!
//! The hash folds 8-byte chunks into four independent lanes (lane = absolute
//! chunk index mod 4) with one odd-constant multiply per chunk
//! (`lane = (lane ^ chunk) * FOLD`), then finishes the lanes through the
//! crate's standard splitmix64 finalizer. Four lanes break the serial
//! dependency that makes a single chained hash latency-bound — the fold runs
//! at memory bandwidth (~8× a chained `mix64` per chunk), which is what
//! keeps checksums affordable as the *default*. Every fold is a bijection of
//! its lane, so flipping any single payload bit changes exactly one lane —
//! and the final value — with certainty, which is what the single-bit-flip
//! property test pins down. The lanes are seeded per message stream
//! (communicator, sender, tag, epoch) so a payload replayed on the wrong
//! stream can never verify.
//!
//! Checksumming is **on by default**; `DDR_CHECKSUM=0` (or
//! [`crate::UniverseBuilder::checksum`]) disables it, and the disabled path
//! costs one branch per deposit — the bench matrix holds it to <1 %
//! overhead against the pre-integrity numbers.

use crate::fault::mix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Streaming 64-bit checksum over a (possibly discontiguous) byte sequence.
///
/// Feeding the same bytes in different split points yields the same value,
/// so hashing a zero-copy selection run-by-run equals hashing its packed
/// form — the property that lets lend-time and claim-time checksums agree
/// without ever staging the payload.
#[derive(Debug, Clone)]
pub(crate) struct Checksum {
    /// Four independent accumulation chains; chunk `i` folds into lane
    /// `i mod 4`, so the assignment depends only on absolute position, not
    /// on how callers split their `update` calls.
    lanes: [u64; 4],
    /// Absolute index of the next 8-byte chunk.
    chunk_idx: u64,
    /// Partial chunk not yet folded in (little-endian, low `pending_len`
    /// bytes valid).
    pending: u64,
    pending_len: u32,
    total: u64,
}

/// Per-chunk fold multiplier. Odd, so `lane -> (lane ^ chunk) * FOLD` is a
/// bijection in both the lane state and the chunk — the property the
/// single-bit-flip guarantee rests on. Diffusion across lanes happens once,
/// in [`Checksum::finish`].
const FOLD: u64 = 0x9E37_79B9_7F4A_7C15;

impl Checksum {
    /// Start a checksum for one message stream.
    pub fn new(seed: u64) -> Self {
        let base = mix64(seed ^ 0x1DE7_EC7E_D0C5);
        Checksum {
            lanes: [
                base,
                mix64(base ^ 0x9E37_79B9_7F4A_7C15),
                mix64(base ^ 0xC2B2_AE3D_27D4_EB4F),
                mix64(base ^ 0x1656_67B1_9E37_79F9),
            ],
            chunk_idx: 0,
            pending: 0,
            pending_len: 0,
            total: 0,
        }
    }

    #[inline]
    fn fold(&mut self, chunk: u64) {
        let l = (self.chunk_idx & 3) as usize;
        self.lanes[l] = (self.lanes[l] ^ chunk).wrapping_mul(FOLD);
        self.chunk_idx += 1;
    }

    /// Fold `bytes` into the running state.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        self.fold_bytes(bytes);
    }

    /// [`Checksum::update`] fused with a copy: appends `src` to `out` and
    /// folds it into the state in the same pass, loading each 32-byte group
    /// once for both the store and the lane multiplies. Bit-identical to
    /// `out.extend_from_slice(src); self.update(src)` — this is the kernel
    /// behind checksum-during-pack ([`crate::kernels`]), where the separate
    /// hash pass would double the memory traffic of a fused (single-run)
    /// pack.
    pub fn update_copying(&mut self, src: &[u8], out: &mut Vec<u8>) {
        self.total = self.total.wrapping_add(src.len() as u64);
        if self.pending_len > 0 {
            // Mid-chunk state: rare (only multi-run selections with non-8×
            // run lengths), and the realignment bookkeeping would dominate —
            // take the two-pass route.
            out.extend_from_slice(src);
            self.fold_bytes(src);
            return;
        }
        let p = (self.chunk_idx & 3) as usize;
        let mut l0 = self.lanes[p];
        let mut l1 = self.lanes[(p + 1) & 3];
        let mut l2 = self.lanes[(p + 2) & 3];
        let mut l3 = self.lanes[(p + 3) & 3];
        let start = out.len();
        out.reserve(src.len());
        let mut groups = src.chunks_exact(32);
        let ngroups = src.len() / 32;
        // SAFETY: `reserve` guarantees `src.len()` spare bytes after
        // `start`; the loop writes exactly `32 * ngroups` of them before
        // `set_len`. The stored bytes are the loaded bytes
        // (`from_le_bytes`/`to_le_bytes` round-trip), so the copy is exact.
        unsafe {
            let mut dst = out.as_mut_ptr().add(start);
            for g in &mut groups {
                let c0 = u64::from_le_bytes(g[0..8].try_into().unwrap());
                let c1 = u64::from_le_bytes(g[8..16].try_into().unwrap());
                let c2 = u64::from_le_bytes(g[16..24].try_into().unwrap());
                let c3 = u64::from_le_bytes(g[24..32].try_into().unwrap());
                (dst as *mut [u8; 8]).write_unaligned(c0.to_le_bytes());
                (dst.add(8) as *mut [u8; 8]).write_unaligned(c1.to_le_bytes());
                (dst.add(16) as *mut [u8; 8]).write_unaligned(c2.to_le_bytes());
                (dst.add(24) as *mut [u8; 8]).write_unaligned(c3.to_le_bytes());
                l0 = (l0 ^ c0).wrapping_mul(FOLD);
                l1 = (l1 ^ c1).wrapping_mul(FOLD);
                l2 = (l2 ^ c2).wrapping_mul(FOLD);
                l3 = (l3 ^ c3).wrapping_mul(FOLD);
                dst = dst.add(32);
            }
            out.set_len(start + 32 * ngroups);
        }
        self.lanes[p] = l0;
        self.lanes[(p + 1) & 3] = l1;
        self.lanes[(p + 2) & 3] = l2;
        self.lanes[(p + 3) & 3] = l3;
        self.chunk_idx += 4 * ngroups as u64;
        let tail = groups.remainder();
        out.extend_from_slice(tail);
        self.fold_tail(tail);
    }

    /// [`Checksum::update_copying`] for an initialized slice destination:
    /// copies `src` into `dst` (equal lengths) and folds it in the same
    /// pass. Bit-identical to `dst.copy_from_slice(src); self.update(src)`
    /// — the kernel behind verify-during-unpack on receive paths with no
    /// retransmit protocol, where a second hash pass over the payload was
    /// the last remaining double traversal.
    pub fn update_copying_to(&mut self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "copy-fold length mismatch");
        self.total = self.total.wrapping_add(src.len() as u64);
        if self.pending_len > 0 {
            // Mid-chunk state: rare, take the two-pass route (see
            // `update_copying`).
            dst.copy_from_slice(src);
            self.fold_bytes(src);
            return;
        }
        let p = (self.chunk_idx & 3) as usize;
        let mut l0 = self.lanes[p];
        let mut l1 = self.lanes[(p + 1) & 3];
        let mut l2 = self.lanes[(p + 2) & 3];
        let mut l3 = self.lanes[(p + 3) & 3];
        let mut groups = src.chunks_exact(32);
        let ngroups = src.len() / 32;
        // SAFETY: `dst` is at least as long as `src` (asserted above); the
        // loop writes exactly `32 * ngroups <= src.len()` bytes. The stored
        // bytes are the loaded bytes (`from_le_bytes`/`to_le_bytes`
        // round-trip), so the copy is exact.
        unsafe {
            let mut out = dst.as_mut_ptr();
            for g in &mut groups {
                let c0 = u64::from_le_bytes(g[0..8].try_into().unwrap());
                let c1 = u64::from_le_bytes(g[8..16].try_into().unwrap());
                let c2 = u64::from_le_bytes(g[16..24].try_into().unwrap());
                let c3 = u64::from_le_bytes(g[24..32].try_into().unwrap());
                (out as *mut [u8; 8]).write_unaligned(c0.to_le_bytes());
                (out.add(8) as *mut [u8; 8]).write_unaligned(c1.to_le_bytes());
                (out.add(16) as *mut [u8; 8]).write_unaligned(c2.to_le_bytes());
                (out.add(24) as *mut [u8; 8]).write_unaligned(c3.to_le_bytes());
                l0 = (l0 ^ c0).wrapping_mul(FOLD);
                l1 = (l1 ^ c1).wrapping_mul(FOLD);
                l2 = (l2 ^ c2).wrapping_mul(FOLD);
                l3 = (l3 ^ c3).wrapping_mul(FOLD);
                out = out.add(32);
            }
        }
        self.lanes[p] = l0;
        self.lanes[(p + 1) & 3] = l1;
        self.lanes[(p + 2) & 3] = l2;
        self.lanes[(p + 3) & 3] = l3;
        self.chunk_idx += 4 * ngroups as u64;
        let tail = groups.remainder();
        dst[32 * ngroups..].copy_from_slice(tail);
        self.fold_tail(tail);
    }

    /// Fold `bytes` without touching the length accumulator (shared by
    /// [`Checksum::update`] and the fused-copy path, which account for the
    /// length themselves).
    fn fold_bytes(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        // Top up a partial chunk first so chunk boundaries are independent of
        // how the caller split the byte sequence.
        if self.pending_len > 0 {
            let need = (8 - self.pending_len) as usize;
            let take = need.min(rest.len());
            for &b in &rest[..take] {
                self.pending |= (b as u64) << (8 * self.pending_len);
                self.pending_len += 1;
            }
            rest = &rest[take..];
            if self.pending_len == 8 {
                let chunk = self.pending;
                self.fold(chunk);
                self.pending = 0;
                self.pending_len = 0;
            }
        }
        // Bulk: one 32-byte group per iteration touches each lane exactly
        // once, so the four multiplies are independent and pipeline — this
        // is what makes the hash memory-bound instead of latency-bound. The
        // lane phase `p` is invariant across groups (chunk_idx += 4), so the
        // four lanes live in registers for the whole loop instead of
        // round-tripping through `self.lanes` every group.
        let p = (self.chunk_idx & 3) as usize;
        let mut l0 = self.lanes[p];
        let mut l1 = self.lanes[(p + 1) & 3];
        let mut l2 = self.lanes[(p + 2) & 3];
        let mut l3 = self.lanes[(p + 3) & 3];
        let mut groups = rest.chunks_exact(32);
        let ngroups = rest.len() / 32;
        for g in &mut groups {
            let c0 = u64::from_le_bytes(g[0..8].try_into().unwrap());
            let c1 = u64::from_le_bytes(g[8..16].try_into().unwrap());
            let c2 = u64::from_le_bytes(g[16..24].try_into().unwrap());
            let c3 = u64::from_le_bytes(g[24..32].try_into().unwrap());
            l0 = (l0 ^ c0).wrapping_mul(FOLD);
            l1 = (l1 ^ c1).wrapping_mul(FOLD);
            l2 = (l2 ^ c2).wrapping_mul(FOLD);
            l3 = (l3 ^ c3).wrapping_mul(FOLD);
        }
        self.lanes[p] = l0;
        self.lanes[(p + 1) & 3] = l1;
        self.lanes[(p + 2) & 3] = l2;
        self.lanes[(p + 3) & 3] = l3;
        self.chunk_idx += 4 * ngroups as u64;
        self.fold_tail(groups.remainder());
    }

    /// Fold the sub-32-byte remainder of a bulk loop: whole 8-byte chunks,
    /// then buffer the partial chunk.
    fn fold_tail(&mut self, tail: &[u8]) {
        let mut chunks = tail.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        for &b in chunks.remainder() {
            self.pending |= (b as u64) << (8 * self.pending_len);
            self.pending_len += 1;
        }
    }

    /// Finish the hash. Length is folded in so a truncated payload whose
    /// missing tail happened to be zeros still mismatches.
    pub fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            // Tag the tail with its length so `[0]` and `[0, 0]` differ even
            // before the final length fold.
            let chunk = self.pending ^ ((self.pending_len as u64) << 56);
            self.fold(chunk);
        }
        // Combine: bijective in each lane with the others held fixed, so a
        // change confined to one lane (e.g. a single flipped bit) always
        // reaches the final value.
        let mut h = self.total;
        for &l in &self.lanes {
            h = mix64(h ^ l);
        }
        h
    }
}

/// One-shot checksum of a contiguous payload.
pub(crate) fn checksum64(seed: u64, bytes: &[u8]) -> u64 {
    let mut c = Checksum::new(seed);
    c.update(bytes);
    c.finish()
}

/// Per-stream checksum seed: binds a payload to its communicator, sender,
/// tag, and membership epoch, so a (hypothetically) misrouted or replayed
/// envelope fails verification even if its bytes are intact.
pub(crate) fn stream_seed(comm_id: u64, src: usize, key_tag: u64, epoch: u64) -> u64 {
    mix64(mix64(comm_id ^ mix64(key_tag)) ^ mix64(src as u64 ^ (epoch << 32)))
}

/// Integrity-plane counters, snapshotted per universe (see
/// [`crate::Comm::integrity_counters`]) and exported as `integrity.*`
/// metrics in the ddr-trace report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Payload verifications performed.
    pub checked: u64,
    /// Verifications that failed — corruption detected before delivery.
    pub detected: u64,
    /// Retransmissions performed after a receiver NACKed a corrupt payload.
    pub retransmits: u64,
    /// Transfers abandoned after `DDR_RETRANSMIT_MAX` attempts all failed.
    pub exhausted: u64,
}

/// Atomic backing store for [`IntegrityCounters`], kept on the world state.
#[derive(Debug, Default)]
pub(crate) struct IntegrityCells {
    pub checked: AtomicU64,
    pub detected: AtomicU64,
    pub retransmits: AtomicU64,
    pub exhausted: AtomicU64,
}

impl IntegrityCells {
    pub fn snapshot(&self) -> IntegrityCounters {
        IntegrityCounters {
            checked: self.checked.load(Ordering::Relaxed),
            detected: self.detected.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }
}

/// `DDR_CHECKSUM`: envelope checksumming, **on** unless explicitly disabled.
pub(crate) fn checksum_env_default() -> bool {
    crate::env::flag("DDR_CHECKSUM").unwrap_or(true)
}

/// `DDR_RETRANSMIT_MAX`: bounded retransmit attempts per corrupt transfer
/// before the receiver gives up with `Error::IntegrityFailure`. Default 3.
pub(crate) const RETRANSMIT_MAX_DEFAULT: u32 = 3;

pub(crate) fn retransmit_max_env_default() -> u32 {
    crate::env::u64_var("DDR_RETRANSMIT_MAX").map_or(RETRANSMIT_MAX_DEFAULT, |v| v as u32)
}

/// `DDR_RETRANSMIT_BACKOFF_MS`: base of the exponential backoff the receiver
/// sleeps before NACK attempt `k` (`base × 2^(k-1)`). Default 1 ms — faults
/// here are injected, not physical, so recovery should be prompt.
pub(crate) fn retransmit_backoff_env_default() -> Duration {
    Duration::from_millis(crate::env::u64_var("DDR_RETRANSMIT_BACKOFF_MS").unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_do_not_change_the_hash() {
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        let whole = checksum64(42, &data);
        for split in [0usize, 1, 3, 7, 8, 9, 64, 255, 776, 777] {
            let mut c = Checksum::new(42);
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
        // Byte-at-a-time must agree too (the zero-copy run walk can produce
        // arbitrarily small runs).
        let mut c = Checksum::new(42);
        for b in &data {
            c.update(std::slice::from_ref(b));
        }
        assert_eq!(c.finish(), whole);
    }

    #[test]
    #[ignore = "manual throughput probe"]
    fn hash_throughput_probe() {
        let data = vec![0xA5u8; 1 << 16];
        let mut h = 0u64;
        let start = std::time::Instant::now();
        let iters = 4096u32;
        for i in 0..iters {
            h ^= checksum64(i as u64, &data);
        }
        let el = start.elapsed();
        let gbs = (data.len() as f64 * iters as f64) / el.as_secs_f64() / 1e9;
        println!("checksum64 64KiB: {gbs:.2} GB/s ({el:?} total, h={h})");
    }

    #[test]
    fn update_copying_matches_two_pass() {
        let data = gen_payload(5, 4097);
        // `pre` bytes fed first set up the interesting starting states:
        // chunk-aligned (fast path, phase 0), phase ≠ 0 (pre = 8, 24), and a
        // buffered partial chunk (pre = 3, 13 → two-pass fallback).
        for pre in [0usize, 3, 8, 13, 24, 32] {
            for len in [0usize, 1, 7, 8, 31, 32, 33, 64, 801, 4000] {
                let (head, body) = (&data[..pre], &data[pre..pre + len]);
                let mut reference = Checksum::new(77);
                reference.update(head);
                let mut fused = reference.clone();
                let mut out = vec![0xEEu8; 5];
                fused.update_copying(body, &mut out);
                assert_eq!(&out[..5], &[0xEE; 5], "pre {pre} len {len}");
                assert_eq!(&out[5..], body, "pre {pre} len {len}");
                reference.update(body);
                assert_eq!(fused.finish(), reference.finish(), "pre {pre} len {len}");
            }
        }
    }

    #[test]
    fn update_copying_to_matches_two_pass() {
        let data = gen_payload(6, 4097);
        for pre in [0usize, 3, 8, 13, 24, 32] {
            for len in [0usize, 1, 7, 8, 31, 32, 33, 64, 801, 4000] {
                let (head, body) = (&data[..pre], &data[pre..pre + len]);
                let mut reference = Checksum::new(78);
                reference.update(head);
                let mut fused = reference.clone();
                let mut dst = vec![0u8; len];
                fused.update_copying_to(body, &mut dst);
                assert_eq!(dst, body, "pre {pre} len {len}");
                reference.update(body);
                assert_eq!(fused.finish(), reference.finish(), "pre {pre} len {len}");
            }
        }
    }

    #[test]
    fn seed_and_length_are_bound() {
        assert_ne!(checksum64(1, b"hello"), checksum64(2, b"hello"));
        assert_ne!(checksum64(1, &[0u8; 4]), checksum64(1, &[0u8; 5]));
        assert_ne!(checksum64(1, &[]), checksum64(1, &[0]));
        // Tail content matters even when zero-padded chunks would collide.
        assert_ne!(checksum64(1, &[1, 0, 0]), checksum64(1, &[1, 0]));
    }

    #[test]
    fn stream_seed_separates_streams() {
        let base = stream_seed(7, 1, 99, 0);
        assert_ne!(base, stream_seed(8, 1, 99, 0), "comm");
        assert_ne!(base, stream_seed(7, 2, 99, 0), "src");
        assert_ne!(base, stream_seed(7, 1, 98, 0), "tag");
        assert_ne!(base, stream_seed(7, 1, 99, 1), "epoch");
    }

    #[test]
    fn single_bit_flips_always_detected_smoke() {
        // The randomized property tests follow below; this is the cheap,
        // exhaustive-over-a-small-payload smoke.
        let data = vec![0xA5u8; 96];
        let clean = checksum64(9, &data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut fl = data.clone();
                fl[byte] ^= 1 << bit;
                assert_ne!(checksum64(9, &fl), clean, "flip {byte}:{bit} undetected");
            }
        }
    }

    /// Deterministic pseudo-random payload so property cases over 100 KiB+
    /// payloads don't pay proptest's per-byte value-tree cost.
    fn gen_payload(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed;
        (0..len)
            .map(|i| {
                if i % 8 == 0 {
                    s = mix64(s);
                }
                (s >> (8 * (i % 8))) as u8
            })
            .collect()
    }

    mod props {
        use super::*;
        use crate::fault::Keystream;
        use proptest::prelude::*;

        /// Sizes spanning the zero-copy threshold (`DDR_ZC_THRESHOLD`,
        /// default 64 KiB): both the staged path (small) and the loan path
        /// (large) hash payloads of these lengths. `size_class` picks the
        /// band, `len_seed` picks the exact length within it.
        fn pick_len(size_class: usize, len_seed: u64) -> usize {
            match size_class {
                0 => 1 + (len_seed as usize % 511),         // staged path
                1 => 60_000 + (len_seed as usize % 10_000), // around the threshold
                2 => 65_536,                                // exactly at threshold
                _ => 65_537,                                // first loan-path size
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Every single-bit flip changes the checksum: each chunk fold is
            /// a bijection of the running state, so there is no position or
            /// payload where one flipped bit cancels out.
            #[test]
            fn single_bit_flip_is_always_detected(
                seed in any::<u64>(),
                size_class in 0usize..4,
                len_seed in any::<u64>(),
                pos_seed in any::<u64>(),
                bit in 0u8..8,
            ) {
                let len = pick_len(size_class, len_seed);
                let data = gen_payload(seed, len);
                let clean = checksum64(seed ^ 1, &data);
                let mut fl = data;
                let at = pos_seed as usize % len;
                fl[at] ^= 1 << bit;
                prop_assert_ne!(checksum64(seed ^ 1, &fl), clean);
            }

            /// Every fault-injector keystream scramble is detected: keystream
            /// bytes are never zero (low bit forced), so at least the first
            /// payload byte always changes, and the hash with it.
            #[test]
            fn keystream_scramble_is_always_detected(
                seed in any::<u64>(),
                ks_init in any::<u64>(),
                size_class in 0usize..4,
                len_seed in any::<u64>(),
            ) {
                let len = pick_len(size_class, len_seed);
                let data = gen_payload(seed, len);
                let clean = checksum64(seed, &data);
                let mut scrambled = data;
                Keystream::new(ks_init).scramble(&mut scrambled);
                prop_assert_ne!(checksum64(seed, &scrambled), clean);
            }

            /// Split-point independence over arbitrary run boundaries — the
            /// exact property the zero-copy run walk relies on.
            #[test]
            fn arbitrary_run_splits_hash_identically(
                seed in any::<u64>(),
                len in 1usize..4096,
                cut_seeds in prop::collection::vec(any::<u64>(), 0..6),
            ) {
                let data = gen_payload(seed, len);
                let whole = checksum64(seed, &data);
                let mut offsets: Vec<usize> =
                    cut_seeds.iter().map(|c| *c as usize % (len + 1)).collect();
                offsets.push(0);
                offsets.push(len);
                offsets.sort_unstable();
                let mut c = Checksum::new(seed);
                for w in offsets.windows(2) {
                    c.update(&data[w[0]..w[1]]);
                }
                prop_assert_eq!(c.finish(), whole);
            }
        }
    }
}
