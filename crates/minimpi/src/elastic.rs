//! Elastic membership: epoch-fenced reconfiguration and rank respawn.
//!
//! PR 1's fault story was shrink-only: a dead rank permanently degrades
//! capacity, because [`crate::Comm::shrink`] can only agree on the survivor
//! subset. This module adds the other half — growing the rank set back — as
//! an explicit membership protocol:
//!
//! 1. **Agreement.** Every surviving member of the communicator enters
//!    [`crate::Comm::reconfigure`], which rendezvouses exactly like shrink
//!    (via shared state, so the agreement itself cannot deadlock or be
//!    fault-killed) and produces the agreed survivor list.
//! 2. **Epoch bump.** The lowest-ranked survivor acts as leader: it bumps
//!    the world's membership **epoch**, sweeps every mailbox of messages
//!    stamped with the old epoch (revoking any stale zero-copy loans, which
//!    releases their blocked senders), resets the checker's collective log
//!    and wait-for graph, and — when respawn is enabled — revives each dead
//!    rank and queues a respawn request for the supervisor running on the
//!    main thread.
//! 3. **Fencing.** Every envelope carries the epoch of the communicator
//!    handle that sent it. Stale envelopes are rejected at three points:
//!    swept at reconfigure time, dropped at match time by receivers, and
//!    (for fault-delayed messages still in flight) dropped at deposit time.
//!    A communicator handle from a previous epoch fails every operation
//!    with [`crate::Error::StaleEpoch`] instead of producing stale traffic.
//! 4. **Respawn.** The universe's main thread runs a supervisor loop: each
//!    queued request spawns a fresh rank thread that re-runs the user
//!    closure with a communicator handle already in the new epoch. The
//!    closure can detect that it is a replacement via `comm.epoch() > 0`
//!    and skip to its recovery path.
//!
//! Every survivor (and every respawned rank) ends up with a communicator of
//! the **same id, membership, and epoch**, so post-reconfigure collectives
//! match exactly as if the universe had just started.

use crate::comm::{Comm, WorldState, RECONFIG_TAG};
use crate::error::{Error, Result};
use crate::fault::mix64;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Salt mixed into reconfigured communicator ids so they can never collide
/// with split/shrink children or with other epochs ("EPOCH!").
const EPOCH_SALT: u64 = 0x4550_4f43_4821;

/// A queued request for the supervisor to spawn a replacement rank thread.
pub(crate) struct RespawnRequest {
    /// World rank to respawn.
    pub world_rank: usize,
    /// Epoch the replacement joins in.
    pub epoch: u64,
    /// Communicator id of the reconfigured communicator it starts with.
    pub comm_id: u64,
    /// Members of that communicator (world ranks, rank order).
    pub members: Arc<Vec<usize>>,
}

/// What the supervisor loop should do next.
pub(crate) enum SupervisorEvent {
    /// Spawn a replacement rank thread.
    Spawn(RespawnRequest),
    /// Every rank thread (initial and respawned) has finished.
    AllDone,
}

#[derive(Default)]
struct Supervisor {
    /// Rank threads currently running (initial + respawned). The universe is
    /// done when this reaches zero with no queued requests; a reconfigure
    /// increments it *before* the requester could possibly finish, so the
    /// count can never dip to zero with a respawn still owed.
    running: usize,
    requests: VecDeque<RespawnRequest>,
}

/// Membership-epoch state shared by all ranks of one universe: the current
/// epoch, recovery counters, and the respawn supervisor queue.
pub(crate) struct ElasticState {
    epoch: AtomicU64,
    respawns: AtomicU64,
    sup: Mutex<Supervisor>,
    cv: Condvar,
}

impl ElasticState {
    pub fn new(n: usize) -> Self {
        ElasticState {
            epoch: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            sup: Mutex::new(Supervisor { running: n, requests: VecDeque::new() }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Supervisor> {
        self.sup.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Total replacement ranks spawned so far.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::Relaxed)
    }

    /// Leader side: publish the new epoch and wake everyone parked in
    /// [`ElasticState::wait_for_epoch`].
    fn set_epoch(&self, epoch: u64) {
        let _g = self.lock();
        self.epoch.store(epoch, Ordering::Release);
        self.cv.notify_all();
    }

    /// Non-leader side: block until the world epoch reaches `target`.
    /// Deliberately invisible to the deadlock detector — this wait is part
    /// of the reconfigure protocol, not a message receive, and the leader is
    /// guaranteed to publish (it cannot be fault-killed between agreement
    /// and publication). Returns `false` on timeout.
    fn wait_for_epoch(&self, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.lock();
        loop {
            if self.epoch.load(Ordering::Acquire) >= target {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) =
                self.cv.wait_timeout(g, deadline - now).unwrap_or_else(|e| e.into_inner());
            g = guard;
        }
    }

    /// A rank thread (initial or respawned) finished.
    pub fn rank_finished(&self) {
        let mut g = self.lock();
        g.running = g.running.saturating_sub(1);
        drop(g);
        self.cv.notify_all();
    }

    /// Leader side, before the epoch is published: account for the
    /// replacements this reconfigure has committed to spawn. Non-leaders
    /// wake the moment the epoch lands, so the counter must already cover
    /// the requests that are queued right after publication.
    fn add_respawns(&self, n: u64) {
        self.respawns.fetch_add(n, Ordering::Relaxed);
    }

    /// Queue a replacement rank for the supervisor to spawn (already counted
    /// by [`ElasticState::add_respawns`]). Increments the running count in
    /// the same critical section so the supervisor cannot observe "all done"
    /// with this respawn still pending.
    fn request_respawn(&self, req: RespawnRequest) {
        let mut g = self.lock();
        g.running += 1;
        g.requests.push_back(req);
        drop(g);
        self.cv.notify_all();
    }

    /// Supervisor side (universe main thread): block for the next event.
    pub fn next_event(&self) -> SupervisorEvent {
        let mut g = self.lock();
        loop {
            if let Some(req) = g.requests.pop_front() {
                return SupervisorEvent::Spawn(req);
            }
            if g.running == 0 {
                return SupervisorEvent::AllDone;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Snapshot of the recovery counters, for tests and diagnostics (also
/// exported to the `ddrtrace` metrics registry as `recover.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Current membership epoch (number of completed reconfigurations).
    pub epoch: u64,
    /// Replacement rank threads spawned.
    pub respawns: u64,
    /// Stale-epoch messages fenced instead of delivered.
    pub fenced_msgs: u64,
}

/// `DDR_RESPAWN`: whether reconfigure respawns replacements for dead ranks
/// (default true; set `0`/`false` to shrink instead).
pub(crate) fn respawn_env_default() -> bool {
    crate::env::flag("DDR_RESPAWN").unwrap_or(true)
}

/// `DDR_RECONFIG_TIMEOUT_MS`: how long reconfigure waits for the survivor
/// rendezvous and the epoch publication, else the handle's watchdog timeout.
fn reconfig_timeout(fallback: Duration) -> Duration {
    crate::env::u64_var("DDR_RECONFIG_TIMEOUT_MS").map(Duration::from_millis).unwrap_or(fallback)
}

impl Comm {
    /// Snapshot of the universe's recovery counters.
    pub fn recovery_counters(&self) -> RecoveryCounters {
        RecoveryCounters {
            epoch: self.world.epoch(),
            respawns: self.world.elastic.respawns(),
            fenced_msgs: self.world.transport.snapshot().fenced_msgs,
        }
    }

    /// Collective over the *surviving* members: agree on who is still alive,
    /// open a new membership epoch, and return this rank's handle onto the
    /// reconfigured communicator.
    ///
    /// With respawn enabled (the default; [`crate::UniverseBuilder::respawn`]
    /// or `DDR_RESPAWN`), every dead member is revived and a replacement
    /// thread re-running the universe closure is spawned into the new epoch,
    /// so the returned communicator has the **same size** as this one. With
    /// respawn disabled the returned communicator contains only the
    /// survivors, like [`Comm::shrink`] — but still in a new epoch, with
    /// stale traffic fenced.
    ///
    /// The epoch fence means all communicator handles from before the call —
    /// including this one, the world communicator, and any splits — are
    /// dead after it returns: they fail every operation with
    /// [`Error::StaleEpoch`]. Reconfigure is therefore a job-wide event:
    /// call it on a communicator containing every rank that will continue
    /// (normally the world communicator or a reconfigured descendant), and
    /// re-derive sub-communicators from the handle it returns.
    ///
    /// Like shrink, the agreement runs over shared state: it sends no
    /// messages, cannot be fault-killed mid-protocol, and is re-evaluated on
    /// every death, so survivors never wait out the watchdog on a casualty.
    pub fn reconfigure(&self) -> Result<Comm> {
        let me_world = self.world_rank();
        if !self.world.is_alive(me_world) {
            return Err(Error::PeerDead { rank: self.rank });
        }
        let entry_epoch = self.world.epoch();
        if entry_epoch != self.epoch {
            return Err(Error::StaleEpoch { comm_epoch: self.epoch, world_epoch: entry_epoch });
        }
        let timeout = reconfig_timeout(self.timeout());
        self.sched_point("reconfig");
        let generation = self.reconfig_seq.get();
        self.reconfig_seq.set(generation + 1);
        let span = ddrtrace::span("minimpi", "reconfigure");
        let survivors = self
            .world
            .reconfig
            .enter(
                (self.comm_id, generation),
                &self.members,
                me_world,
                &self.world.liveness,
                timeout,
            )
            .ok_or(Error::Timeout {
                rank: self.rank,
                src: None,
                tag: RECONFIG_TAG,
                comm_id: self.comm_id,
            })?;
        // The agreement may have declared *this* rank dead (its kill raced
        // this call — by now it may even have been revived for a respawned
        // replacement). The zombie thread must exit instead of rejoining and
        // racing its own replacement for the rank's identity.
        if !survivors.contains(&me_world) {
            return Err(Error::PeerDead { rank: self.rank });
        }
        let respawn = self.world.respawn;
        let new_epoch = entry_epoch + 1;
        let new_members: Arc<Vec<usize>> = if respawn {
            Arc::new((*self.members).clone())
        } else {
            Arc::new((*survivors).clone())
        };
        let mut comm_id = mix64(self.comm_id ^ mix64(EPOCH_SALT ^ new_epoch));
        for &w in new_members.iter() {
            comm_id = mix64(comm_id ^ w as u64);
        }

        if survivors.first() == Some(&me_world) {
            // Leader duties, in a deliberate order. Reset the checker first:
            // every survivor is parked in this rendezvous, so all remaining
            // checker state is orphaned by the old epoch. Revive the dead
            // *before* publishing the epoch, so no survivor can wake up and
            // fail a send to a replacement that still reads as dead. Sweep
            // after publishing: the sweep keeps only new-epoch messages, and
            // publishing first closes the window where a fault-delayed
            // deposit could slip in behind the sweep (its deposit-time fence
            // only fires once the epoch has moved).
            if let Some(check) = &self.world.check {
                check.reset_for_epoch();
            }
            let dead: Vec<usize> =
                self.members.iter().copied().filter(|w| !survivors.contains(w)).collect();
            if respawn {
                for &w in &dead {
                    self.world.liveness.revive(w);
                }
                self.world.elastic.add_respawns(dead.len() as u64);
            }
            self.world.elastic.set_epoch(new_epoch);
            let fenced = self.world.sweep_stale(new_epoch);
            if respawn {
                for &w in &dead {
                    self.world.elastic.request_respawn(RespawnRequest {
                        world_rank: w,
                        epoch: new_epoch,
                        comm_id,
                        members: Arc::clone(&new_members),
                    });
                }
            }
            if ddrtrace::enabled() {
                ddrtrace::instant_arg("minimpi", "epoch_bump", "epoch", new_epoch as i64);
                if fenced > 0 {
                    ddrtrace::instant_arg("minimpi", "epoch_fence", "msgs", fenced as i64);
                }
                if !dead.is_empty() {
                    ddrtrace::instant_arg("minimpi", "respawn", "ranks", dead.len() as i64);
                }
            }
        } else if !self.world.elastic.wait_for_epoch(new_epoch, timeout) {
            return Err(Error::Timeout {
                rank: self.rank,
                src: None,
                tag: RECONFIG_TAG,
                comm_id: self.comm_id,
            });
        }
        drop(span);

        let rank =
            new_members.iter().position(|&w| w == me_world).ok_or_else(|| Error::Internal {
                detail: format!(
                    "reconfigure: world rank {me_world} absent from the agreed member set"
                ),
            })?;
        Ok(Comm::derived(
            Arc::clone(&self.world),
            comm_id,
            rank,
            new_members,
            new_epoch,
            self.timeout(),
        ))
    }

    /// Entry handle for a respawned rank thread: a communicator identical
    /// (id, members, epoch, fresh sequence counters) to what every survivor
    /// got back from the reconfigure that requested this respawn.
    pub(crate) fn respawned_comm(world: Arc<WorldState>, req: &RespawnRequest) -> Comm {
        let rank = req
            .members
            .iter()
            .position(|&w| w == req.world_rank)
            .expect("respawn request names a member of its own communicator");
        let timeout = world.default_timeout;
        Comm::derived(world, req.comm_id, rank, Arc::clone(&req.members), req.epoch, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervisor_counts_down_to_all_done() {
        let e = ElasticState::new(2);
        e.rank_finished();
        e.rank_finished();
        assert!(matches!(e.next_event(), SupervisorEvent::AllDone));
    }

    #[test]
    fn respawn_request_keeps_supervisor_alive() {
        let e = ElasticState::new(1);
        e.add_respawns(1);
        e.request_respawn(RespawnRequest {
            world_rank: 0,
            epoch: 1,
            comm_id: 7,
            members: Arc::new(vec![0]),
        });
        e.rank_finished(); // the original rank exits
        match e.next_event() {
            SupervisorEvent::Spawn(req) => assert_eq!(req.world_rank, 0),
            SupervisorEvent::AllDone => panic!("respawn request lost"),
        }
        // The replacement finishes; now the universe is done.
        e.rank_finished();
        assert!(matches!(e.next_event(), SupervisorEvent::AllDone));
        assert_eq!(e.respawns(), 1);
    }

    #[test]
    fn wait_for_epoch_times_out_and_completes() {
        let e = Arc::new(ElasticState::new(1));
        assert!(!e.wait_for_epoch(1, Duration::from_millis(20)));
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || e2.wait_for_epoch(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        e.set_epoch(1);
        assert!(h.join().unwrap());
        assert_eq!(e.epoch(), 1);
    }
}
