//! Nonblocking point-to-point operations.
//!
//! Sends in minimpi are always buffered and complete immediately, so
//! `isend` is trivially nonblocking. `irecv` returns a [`RecvRequest`] that
//! can be polled ([`RecvRequest::test`]) or completed ([`RecvRequest::wait`])
//! later, letting applications overlap communication with computation —
//! e.g. an LBM rank can post halo receives, compute its interior, then wait.

use crate::comm::{Comm, Tag};
use crate::error::{Error, Result};
use crate::pod::{vec_from_bytes, Pod};

/// A pending receive posted with [`Comm::irecv`].
///
/// Holds a borrow of the communicator; complete it with
/// [`RecvRequest::wait`] or poll with [`RecvRequest::test`]. Dropping an
/// incomplete request is allowed — the message (if it ever arrives) stays
/// queued for a later matching receive.
#[must_use = "a receive request does nothing until waited on"]
pub struct RecvRequest<'a> {
    comm: &'a Comm,
    src: usize,
    tag: Tag,
    done: Option<Vec<u8>>,
}

impl<'a> RecvRequest<'a> {
    pub(crate) fn new(comm: &'a Comm, src: usize, tag: Tag) -> Self {
        RecvRequest { comm, src, tag, done: None }
    }

    /// Nonblocking completion check; returns `true` once the message has
    /// been matched (after which [`RecvRequest::wait`] returns immediately).
    pub fn test(&mut self) -> Result<bool> {
        if self.done.is_some() {
            return Ok(true);
        }
        if let Some(bytes) = self.comm.try_recv_bytes(self.src, self.tag)? {
            self.done = Some(bytes);
            return Ok(true);
        }
        Ok(false)
    }

    /// Block until the message arrives and return its payload.
    pub fn wait(mut self) -> Result<Vec<u8>> {
        match self.done.take() {
            Some(bytes) => Ok(bytes),
            None => self.comm.recv_bytes(self.src, self.tag),
        }
    }

    /// Block until the message arrives and reinterpret it as POD values.
    pub fn wait_vec<T: Pod>(self) -> Result<Vec<T>> {
        let bytes = self.wait()?;
        vec_from_bytes(&bytes)
            .ok_or(Error::SizeMismatch { expected: std::mem::size_of::<T>(), got: bytes.len() })
    }
}

impl Comm {
    /// Nonblocking send: identical to [`Comm::send`] (sends are always
    /// buffered), provided for MPI-style symmetry with [`Comm::irecv`].
    pub fn isend<T: Pod>(&self, dest: usize, tag: Tag, data: &[T]) -> Result<()> {
        self.send(dest, tag, data)
    }

    /// Post a nonblocking receive; complete it with [`RecvRequest::wait`].
    pub fn irecv(&self, src: usize, tag: Tag) -> Result<RecvRequest<'_>> {
        // Validate the source now so errors surface at post time.
        if src >= self.size() {
            return Err(Error::RankOutOfRange { rank: src, size: self.size() });
        }
        Ok(RecvRequest::new(self, src, tag))
    }

    /// Wait on several receive requests, returning payloads in post order.
    pub fn wait_all<'a>(requests: Vec<RecvRequest<'a>>) -> Result<Vec<Vec<u8>>> {
        requests.into_iter().map(|r| r.wait()).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn irecv_overlaps_with_computation() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.isend(1, 3, &[41u64, 1]).unwrap();
                0
            } else {
                let req = comm.irecv(0, 3).unwrap();
                // "Compute" before waiting.
                let local: u64 = (0..100u64).sum();
                let halo = req.wait_vec::<u64>().unwrap();
                local - 4950 + halo[0] + halo[1]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn test_polls_without_blocking() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                let mut req = comm.irecv(0, 9).unwrap();
                // Nothing sent yet — test() must return false, not block.
                assert!(!req.test().unwrap());
                comm.send(0, 8, &[1u8]).unwrap(); // tell rank 0 to go
                                                  // Poll until the payload lands.
                while !req.test().unwrap() {
                    std::hint::spin_loop();
                }
                assert_eq!(req.wait().unwrap(), vec![7u8]);
            } else {
                comm.recv_bytes(1, 8).unwrap();
                comm.send_bytes(1, 9, &[7]).unwrap();
            }
        });
    }

    #[test]
    fn wait_all_in_post_order() {
        let out = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let reqs = vec![comm.irecv(1, 0).unwrap(), comm.irecv(2, 0).unwrap()];
                minimpi_wait_all(reqs)
            } else {
                comm.send_bytes(0, 0, &[comm.rank() as u8]).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![vec![1u8], vec![2u8]]);

        fn minimpi_wait_all(reqs: Vec<crate::request::RecvRequest<'_>>) -> Vec<Vec<u8>> {
            crate::Comm::wait_all(reqs).unwrap()
        }
    }

    #[test]
    fn irecv_rejects_bad_source() {
        Universe::run(1, |comm| {
            assert!(comm.irecv(5, 0).is_err());
        });
    }

    #[test]
    fn dropped_request_leaves_message_queued() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, 4, &[9]).unwrap();
            } else {
                {
                    let _req = comm.irecv(0, 4).unwrap();
                    // Dropped without waiting.
                }
                // The message is still retrievable by a blocking receive.
                assert_eq!(comm.recv_bytes(0, 4).unwrap(), vec![9]);
            }
        });
    }
}
