//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is installed on a [`crate::Universe`] before launch and
//! replayed identically on every run: faults trigger on *operation counts*
//! (each rank's Nth communication primitive) and *message match counts*
//! (the Nth message matching a `(src, dst, tag)` pattern), never on wall
//! clock. Because minimpi sends are eager/buffered and receives are matched
//! deterministically, the same plan + same program ⇒ the same failure point,
//! the same survivors, and the same partial-delivery report every time.
//!
//! Three fault kinds are supported:
//! - **Kill** — a rank dies at its Nth communication op. The liveness
//!   registry marks it dead and interrupts every blocked receiver so peers
//!   fail fast with [`crate::Error::PeerDead`] instead of burning the full
//!   watchdog timeout.
//! - **Drop / Delay** — a matched in-flight message is silently discarded or
//!   stalled for a fixed duration (sender-side), modelling transient loss
//!   and congestion.
//! - **Corrupt** — a matched message's payload is XOR-scrambled with a
//!   seeded keystream, modelling payload corruption that length checks
//!   cannot catch.

use crate::comm::Tag;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What to do with a matched in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Discard the message; the receiver never sees it.
    Drop,
    /// Stall delivery by this long (the sending rank sleeps — minimpi sends
    /// are otherwise instantaneous).
    Delay(Duration),
    /// XOR-scramble the payload with a keystream derived from the plan seed.
    Corrupt,
}

/// Pattern selecting one in-flight message: the `nth` (0-based) message from
/// world rank `src` to world rank `dst`, optionally restricted to a user
/// `tag` (`None` matches any traffic, including collective phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMatcher {
    /// Sender, as a world rank.
    pub src: usize,
    /// Receiver, as a world rank.
    pub dst: usize,
    /// User tag to match, or `None` for any message (user or collective).
    pub tag: Option<Tag>,
    /// Which match fires the fault (0-based, counted per rule).
    pub nth: u64,
}

#[derive(Debug, Clone)]
struct MessageRule {
    matcher: MessageMatcher,
    action: FaultAction,
}

#[derive(Debug, Clone, Copy)]
struct Kill {
    /// World rank to kill.
    rank: usize,
    /// The 0-based communication-op index at which the rank dies.
    at_op: u64,
}

/// A reproducible schedule of injected failures.
///
/// Build one with the fluent constructors, install it via
/// [`crate::Universe::builder`], and every run replays the identical
/// failure sequence:
///
/// ```
/// use minimpi::{FaultPlan, Universe, Error};
/// use std::time::Duration;
///
/// // Rank 1 dies at its 3rd communication primitive — the send opening the
/// // second barrier — so rank 0 blocks on a message that never comes and
/// // fails fast with Error::PeerDead instead of waiting out the watchdog.
/// let plan = FaultPlan::new(42).kill_rank_at_op(1, 2);
/// let out = Universe::builder()
///     .timeout(Duration::from_secs(5))
///     .fault_plan(plan)
///     .run(2, |comm| comm.barrier().and_then(|_| comm.barrier()));
/// assert_eq!(out[0], Err(Error::PeerDead { rank: 1 })); // survivor
/// assert_eq!(out[1], Err(Error::PeerDead { rank: 1 })); // the casualty itself
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    kills: Vec<Kill>,
    rules: Vec<MessageRule>,
}

impl FaultPlan {
    /// Empty plan carrying `seed` (used to derive corruption keystreams and
    /// by [`FaultPlan::seeded`] to place faults).
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, kills: Vec::new(), rules: Vec::new() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Kill world rank `rank` at its `at_op`-th (0-based) communication
    /// primitive (send, receive, or collective phase).
    pub fn kill_rank_at_op(mut self, rank: usize, at_op: u64) -> Self {
        self.kills.push(Kill { rank, at_op });
        self
    }

    /// Drop the `nth` message from `src` to `dst` (world ranks), optionally
    /// restricted to user `tag`.
    pub fn drop_message(mut self, src: usize, dst: usize, tag: Option<Tag>, nth: u64) -> Self {
        self.rules.push(MessageRule {
            matcher: MessageMatcher { src, dst, tag, nth },
            action: FaultAction::Drop,
        });
        self
    }

    /// Delay the `nth` message from `src` to `dst` by `delay`.
    pub fn delay_message(
        mut self,
        src: usize,
        dst: usize,
        tag: Option<Tag>,
        nth: u64,
        delay: Duration,
    ) -> Self {
        self.rules.push(MessageRule {
            matcher: MessageMatcher { src, dst, tag, nth },
            action: FaultAction::Delay(delay),
        });
        self
    }

    /// XOR-corrupt the payload of the `nth` message from `src` to `dst`.
    pub fn corrupt_message(mut self, src: usize, dst: usize, tag: Option<Tag>, nth: u64) -> Self {
        self.rules.push(MessageRule {
            matcher: MessageMatcher { src, dst, tag, nth },
            action: FaultAction::Corrupt,
        });
        self
    }

    /// Derive a single-kill plan from `seed` alone: some rank in
    /// `0..nprocs` dies at some op in `0..max_op`. Used by seed-sweep tests
    /// to scatter one failure per seed across the execution.
    pub fn seeded(seed: u64, nprocs: usize, max_op: u64) -> Self {
        assert!(nprocs > 0 && max_op > 0);
        let h = mix64(seed);
        let rank = (h % nprocs as u64) as usize;
        let at_op = mix64(h) % max_op;
        FaultPlan::new(seed).kill_rank_at_op(rank, at_op)
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.rules.is_empty()
    }

    /// True if any rule corrupts payloads.
    pub(crate) fn has_corrupt_rules(&self) -> bool {
        self.rules.iter().any(|r| r.action == FaultAction::Corrupt)
    }

    /// True if the plan needs every message staged through the mailbox:
    /// kills and drop/delay rules act on the in-flight copy, which a
    /// zero-copy loan doesn't have. Corrupt-only plans return `false` —
    /// corruption is injected at claim time on the loan path, so the fastest
    /// path stays exercised under corrupt faults.
    pub(crate) fn forces_staging(&self) -> bool {
        !self.kills.is_empty() || self.rules.iter().any(|r| r.action != FaultAction::Corrupt)
    }
}

/// Seeded byte keystream used to scramble payloads. Every byte has its low
/// bit forced on, so XOR-ing it is never a no-op — a zero keystream byte
/// would be a phantom "corruption" that no checksum could (or should)
/// detect, making detection tests flaky at unlucky seeds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Keystream(u64);

impl Keystream {
    pub fn new(init: u64) -> Self {
        Keystream(init)
    }

    pub fn next_byte(&mut self) -> u8 {
        self.0 = mix64(self.0);
        (self.0 & 0xff) as u8 | 1
    }

    /// Scramble `bytes` in place.
    pub fn scramble(&mut self, bytes: &mut [u8]) {
        for b in bytes.iter_mut() {
            *b ^= self.next_byte();
        }
    }
}

/// Verdict for one in-flight message after rule matching.
pub(crate) enum MessageVerdict {
    Deliver,
    Drop,
    DeliverAfter(Duration),
}

/// Shared runtime state evaluating a [`FaultPlan`]: per-rule match counters
/// (atomic so rank threads evaluate lock-free). Per-rank op counters live in
/// the world state — they are maintained whether or not a plan is installed.
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Messages matched so far, per rule.
    matches: Vec<AtomicU64>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        let matches = plan.rules.iter().map(|_| AtomicU64::new(0)).collect();
        FaultState { plan, matches }
    }

    /// Does a kill fault fire for world rank `rank` on its 0-based op `op`?
    pub fn should_kill(&self, rank: usize, op: u64) -> bool {
        self.plan.kills.iter().any(|k| k.rank == rank && k.at_op == op)
    }

    /// Apply message rules to a message from world rank `src` to world rank
    /// `dst`. `key_tag` is the internal key tag (user tag or collective
    /// encoding); rules with `tag: Some(t)` match only user messages with
    /// that tag. Corruption mutates `payload` in place.
    pub fn on_message(
        &self,
        src: usize,
        dst: usize,
        key_tag: u64,
        payload: &mut [u8],
    ) -> MessageVerdict {
        let mut verdict = MessageVerdict::Deliver;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            let m = &rule.matcher;
            if m.src != src || m.dst != dst {
                continue;
            }
            if let Some(t) = m.tag {
                if key_tag != t as u64 {
                    continue;
                }
            }
            let count = self.matches[i].fetch_add(1, Ordering::Relaxed);
            if count != m.nth {
                continue;
            }
            match rule.action {
                FaultAction::Drop => return MessageVerdict::Drop,
                FaultAction::Delay(d) => verdict = MessageVerdict::DeliverAfter(d),
                FaultAction::Corrupt => {
                    Keystream::new(self.keystream_init(i)).scramble(payload);
                }
            }
        }
        verdict
    }

    /// Apply message rules to a zero-copy loan from `src` to `dst`. There is
    /// no staged payload to mutate at lend time, so instead of scrambling
    /// bytes this returns the keystream inits of every corrupt rule that
    /// fired; the *receiver* applies them to its copy at claim time. Match
    /// counters advance for every matching rule — corrupt or not — so a
    /// plan's rule indices line up identically whether a message rode the
    /// staged or the loan path. Drop/delay rules never fire here because
    /// such plans force staging (see [`FaultPlan::forces_staging`]).
    pub fn on_message_zc(&self, src: usize, dst: usize, key_tag: u64) -> Vec<u64> {
        let mut taints = Vec::new();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            let m = &rule.matcher;
            if m.src != src || m.dst != dst {
                continue;
            }
            if let Some(t) = m.tag {
                if key_tag != t as u64 {
                    continue;
                }
            }
            let count = self.matches[i].fetch_add(1, Ordering::Relaxed);
            if count != m.nth {
                continue;
            }
            if rule.action == FaultAction::Corrupt {
                taints.push(self.keystream_init(i));
            }
        }
        taints
    }

    /// Keystream init for corrupt rule `i` — shared by the staged scramble
    /// and the claim-time loan taint so both paths corrupt identically.
    fn keystream_init(&self, i: usize) -> u64 {
        self.plan.seed ^ mix64(i as u64 + 1)
    }

    pub fn has_corrupt_rules(&self) -> bool {
        self.plan.has_corrupt_rules()
    }

    pub fn forces_staging(&self) -> bool {
        self.plan.forces_staging()
    }
}

/// splitmix64 finalizer — the crate's standard deterministic mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_fires_on_exact_op() {
        let st = FaultState::new(FaultPlan::new(0).kill_rank_at_op(1, 2));
        assert!(!st.should_kill(1, 0));
        assert!(!st.should_kill(1, 1));
        assert!(st.should_kill(1, 2));
        assert!(!st.should_kill(0, 2));
    }

    #[test]
    fn drop_matches_nth_only() {
        let st = FaultState::new(FaultPlan::new(0).drop_message(0, 1, Some(7), 1));
        let mut p = vec![0u8; 4];
        assert!(matches!(st.on_message(0, 1, 7, &mut p), MessageVerdict::Deliver));
        assert!(matches!(st.on_message(0, 1, 7, &mut p), MessageVerdict::Drop));
        assert!(matches!(st.on_message(0, 1, 7, &mut p), MessageVerdict::Deliver));
    }

    #[test]
    fn tag_filter_ignores_other_traffic() {
        let st = FaultState::new(FaultPlan::new(0).drop_message(0, 1, Some(7), 0));
        let mut p = vec![];
        // Collective key-tags (high bit set) never equal a user tag.
        assert!(matches!(st.on_message(0, 1, 1 << 63, &mut p), MessageVerdict::Deliver));
        assert!(matches!(st.on_message(0, 1, 7, &mut p), MessageVerdict::Drop));
    }

    #[test]
    fn corrupt_changes_payload_deterministically() {
        let plan = FaultPlan::new(99).corrupt_message(0, 1, None, 0);
        let st1 = FaultState::new(plan.clone());
        let st2 = FaultState::new(plan);
        let mut a = vec![5u8; 16];
        let mut b = vec![5u8; 16];
        st1.on_message(0, 1, 3, &mut a);
        st2.on_message(0, 1, 3, &mut b);
        assert_eq!(a, b);
        assert_ne!(a, vec![5u8; 16]);
    }

    #[test]
    fn keystream_bytes_are_never_zero() {
        // Regression: a zero keystream byte is a no-op "corruption" — the
        // rule claims to have fired but the payload is untouched, so a
        // detection test at that seed passes vacuously. Every byte must
        // change under XOR.
        for seed in 0..256u64 {
            let mut ks = Keystream::new(seed);
            for pos in 0..4096 {
                assert_ne!(ks.next_byte(), 0, "seed {seed} pos {pos}");
            }
        }
        // End to end: an all-zero payload must come out with every byte
        // nonzero (XOR with zero exposes the keystream directly).
        for seed in [0u64, 1, 42, 0xdead_beef] {
            for len in [1usize, 7, 8, 65, 4096] {
                let st = FaultState::new(FaultPlan::new(seed).corrupt_message(0, 1, None, 0));
                let mut p = vec![0u8; len];
                st.on_message(0, 1, 3, &mut p);
                assert!(
                    p.iter().all(|&b| b != 0),
                    "seed {seed} len {len}: zero byte survived corruption"
                );
            }
        }
    }

    #[test]
    fn zc_taint_matches_staged_scramble() {
        // The loan path must corrupt byte-for-byte identically to the staged
        // path: same plan, same rule, same nth ⇒ same keystream.
        let plan = FaultPlan::new(7).corrupt_message(0, 1, None, 1);
        let staged = FaultState::new(plan.clone());
        let zc = FaultState::new(plan);
        let mut a = vec![0xABu8; 32];
        staged.on_message(0, 1, 5, &mut a); // nth 0: no fire
        staged.on_message(0, 1, 5, &mut a); // nth 1: fires
        assert!(zc.on_message_zc(0, 1, 5).is_empty());
        let taints = zc.on_message_zc(0, 1, 5);
        assert_eq!(taints.len(), 1);
        let mut b = vec![0xABu8; 32];
        Keystream::new(taints[0]).scramble(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn staging_forced_only_by_kills_drops_and_delays() {
        assert!(!FaultPlan::new(0).forces_staging());
        assert!(!FaultPlan::new(0).corrupt_message(0, 1, None, 0).forces_staging());
        assert!(FaultPlan::new(0).kill_rank_at_op(0, 1).forces_staging());
        assert!(FaultPlan::new(0).drop_message(0, 1, None, 0).forces_staging());
        assert!(FaultPlan::new(0)
            .delay_message(0, 1, None, 0, Duration::from_millis(1))
            .forces_staging());
        assert!(FaultPlan::new(0).corrupt_message(0, 1, None, 0).has_corrupt_rules());
        assert!(!FaultPlan::new(0).drop_message(0, 1, None, 0).has_corrupt_rules());
    }

    #[test]
    fn seeded_plan_is_reproducible_and_in_range() {
        for seed in 0..50 {
            let p1 = FaultPlan::seeded(seed, 6, 40);
            let p2 = FaultPlan::seeded(seed, 6, 40);
            assert_eq!(p1.kills[0].rank, p2.kills[0].rank);
            assert_eq!(p1.kills[0].at_op, p2.kills[0].at_op);
            assert!(p1.kills[0].rank < 6);
            assert!(p1.kills[0].at_op < 40);
        }
    }
}
