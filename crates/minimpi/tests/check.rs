//! Integration tests for the correctness-checking subsystem: collective
//! matching and wait-for-graph deadlock detection.
//!
//! The key property throughout: failures are reported *fast* (milliseconds)
//! and *structurally* (naming ranks, ops, call sites, cycles), while the
//! watchdog timeout is set far higher — proving the checker, not the
//! watchdog, caught the bug.

use minimpi::{CollectiveKind, Error, Universe};
use std::time::{Duration, Instant};

/// Watchdog high enough that any test passing under it proves the checker
/// fired first.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Checked runs should fail well under this bound — orders of magnitude
/// below the watchdog.
const FAST: Duration = Duration::from_secs(5);

#[test]
fn divergent_collective_kinds_fail_fast_with_report() {
    let start = Instant::now();
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(2, |comm| {
        if comm.rank() == 0 {
            comm.barrier()
        } else {
            comm.broadcast_bytes(1, &[1, 2, 3]).map(|_| ())
        }
    });
    assert!(start.elapsed() < FAST, "checker must beat the watchdog");
    // One rank arrives second and gets the divergence; depending on timing
    // the other either also diverges against the surviving entry or dies
    // with its peer. At least one structured report must exist.
    let report = out
        .iter()
        .find_map(|r| match r {
            Err(Error::CollectiveDiverged(report)) => Some(report.clone()),
            _ => None,
        })
        .expect("at least one rank must receive CollectiveDiverged");
    assert_eq!(report.index, 0, "divergence is at the first collective");
    let kinds = [report.fp_a.kind, report.fp_b.kind];
    assert!(kinds.contains(&CollectiveKind::Barrier));
    assert!(kinds.contains(&CollectiveKind::Broadcast));
    // Call sites point at this test file, not at minimpi internals.
    assert!(report.fp_a.file.ends_with("check.rs"), "got {}", report.fp_a.file);
    assert!(report.fp_b.file.ends_with("check.rs"), "got {}", report.fp_b.file);
}

#[test]
fn divergent_broadcast_roots_fail_fast() {
    let start = Instant::now();
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(3, |comm| {
        // Ranks disagree on the root: a classic silent-deadlock bug.
        let root = if comm.rank() == 2 { 1 } else { 0 };
        comm.broadcast_bytes(root, &[9]).map(|_| ())
    });
    assert!(start.elapsed() < FAST);
    let diverged = out.iter().filter(|r| matches!(r, Err(Error::CollectiveDiverged(_)))).count();
    assert!(diverged >= 1, "root mismatch must be reported, got {out:?}");
}

#[test]
fn send_recv_cycle_detected_as_deadlock() {
    // Two ranks each wait for a message the other never sends. Without
    // checking this burns the full watchdog; with checking the wait-for
    // graph detector convicts the cycle in milliseconds.
    let start = Instant::now();
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(2, |comm| {
        let peer = 1 - comm.rank();
        comm.recv_bytes(peer, 7).map(|_| ())
    });
    assert!(start.elapsed() < FAST, "detector must beat the watchdog");
    for (rank, r) in out.iter().enumerate() {
        let report = match r {
            Err(Error::Deadlock(report)) => report,
            other => panic!("rank {rank}: expected Deadlock, got {other:?}"),
        };
        assert_eq!(report.cycle.len(), 2);
        // The cycle is a chain: each member waits on the next (wrapping).
        for (i, p) in report.cycle.iter().enumerate() {
            let next = report.cycle[(i + 1) % report.cycle.len()];
            assert_eq!(p.awaited, next.rank);
            assert_eq!(p.tag, 7);
        }
    }
}

#[test]
fn three_rank_cycle_detected() {
    // 0 waits on 1, 1 waits on 2, 2 waits on 0.
    let start = Instant::now();
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(3, |comm| {
        let src = (comm.rank() + 1) % 3;
        comm.recv_bytes(src, 11).map(|_| ())
    });
    assert!(start.elapsed() < FAST);
    for (rank, r) in out.iter().enumerate() {
        match r {
            Err(Error::Deadlock(report)) => assert_eq!(report.cycle.len(), 3),
            other => panic!("rank {rank}: expected Deadlock, got {other:?}"),
        }
    }
}

#[test]
fn deadlock_detection_spares_innocent_bystanders() {
    // Ranks 0 and 1 deadlock on each other; rank 2 does legitimate work
    // against rank 3 and must complete untouched.
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(4, |comm| match comm.rank() {
        0 => comm.recv_bytes(1, 5).map(|_| 0),
        1 => comm.recv_bytes(0, 5).map(|_| 0),
        2 => {
            std::thread::sleep(Duration::from_millis(50));
            comm.send_bytes(3, 6, &[42]).map(|_| 1)
        }
        _ => comm.recv_bytes(2, 6).map(|v| v[0] as usize),
    });
    assert!(matches!(out[0], Err(Error::Deadlock(_))));
    assert!(matches!(out[1], Err(Error::Deadlock(_))));
    assert_eq!(out[2], Ok(1));
    assert_eq!(out[3], Ok(42));
}

#[test]
fn checking_off_still_times_out() {
    // With checking disabled the same cycle falls back to the watchdog.
    let out = Universe::builder().check(false).timeout(Duration::from_millis(100)).run(2, |comm| {
        let peer = 1 - comm.rank();
        comm.recv_bytes(peer, 3).map(|_| ())
    });
    // The first rank to give up reports Timeout and is marked dead; its
    // peer may then fail fast with PeerDead instead of timing out itself.
    assert!(out.iter().any(|r| matches!(r, Err(Error::Timeout { .. }))), "got {out:?}");
    for r in &out {
        assert!(matches!(r, Err(Error::Timeout { .. }) | Err(Error::PeerDead { .. })), "got {r:?}");
    }
}

#[test]
fn matched_program_runs_clean_under_checking() {
    // A full workout of the collective surface with checking on: nothing
    // may be flagged, results must be identical to an unchecked run.
    let body = |comm: &minimpi::Comm| -> minimpi::Result<u64> {
        comm.barrier()?;
        let b = comm.broadcast(0, &[comm.size() as u64])?;
        let g = comm.allgather(&[comm.rank() as u64])?;
        let sum = comm.try_allreduce(&[comm.rank() as u64 + 1], |a, b| a + b)?[0];
        let scanned = comm.scan(&[1u64], |a, b| a + b)?[0];
        let swapped = comm.alltoallv(&vec![vec![comm.rank() as u64]; comm.size()])?;
        Ok(b[0] + g.len() as u64 + sum + scanned + swapped.len() as u64)
    };
    let checked = Universe::builder().check(true).timeout(WATCHDOG).run(4, |c| body(c).unwrap());
    let plain = Universe::builder().check(false).timeout(WATCHDOG).run(4, |c| body(c).unwrap());
    assert_eq!(checked, plain);
}

#[test]
fn split_communicators_check_independently() {
    // Divergence inside one child communicator must not implicate the other.
    let out = Universe::builder().check(true).timeout(WATCHDOG).run(4, |comm| {
        let child = comm.split(comm.rank() as u64 % 2).unwrap();
        if comm.rank() % 2 == 0 {
            // Even child: ranks disagree on the op.
            if child.rank() == 0 {
                child.barrier().err()
            } else {
                child.broadcast_bytes(0, &[]).err().map(|e| match e {
                    // Whichever side loses the race, it is a structured error.
                    Error::CollectiveDiverged(_) | Error::PeerDead { .. } => e,
                    other => panic!("unexpected: {other:?}"),
                })
            }
        } else {
            // Odd child: perfectly matched collectives succeed.
            child.barrier().unwrap();
            assert_eq!(child.broadcast(1, &[7u8]).unwrap(), vec![7]);
            None
        }
    });
    assert!(out[1].is_none() && out[3].is_none());
    assert!(out.iter().any(|r| matches!(r, Some(Error::CollectiveDiverged(_)))));
}
