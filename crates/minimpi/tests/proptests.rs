//! Property-based tests of minimpi collectives with randomized payloads,
//! sizes, and rank counts.

use minimpi::{Datatype, Error, FaultPlan, Universe, VectorClock};
use proptest::prelude::*;
use std::time::Duration;

/// Build a clock with the given per-rank components through the public API
/// (ticking each component up to its target value).
fn clock_from(components: &[u64]) -> VectorClock {
    let mut c = VectorClock::new(components.len());
    for (rank, &v) in components.iter().enumerate() {
        for _ in 0..v {
            c.tick(rank);
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ticking strictly advances the clock: the old snapshot happens-before
    /// the new one and never the other way around. This is what makes every
    /// recorded access comparable to later accesses by the same rank.
    #[test]
    fn vclock_tick_is_strictly_monotonic(
        n in 1usize..6,
        raw in prop::collection::vec(0u64..12, 6),
        rank_pick in any::<u8>(),
    ) {
        let a = &raw[..n];
        let before = clock_from(a);
        let mut after = before.clone();
        let rank = rank_pick as usize % a.len();
        after.tick(rank);
        prop_assert!(before.leq(&after));
        prop_assert!(!after.leq(&before));
        prop_assert_eq!(after.get(rank), before.get(rank) + 1);
    }

    /// Join is the least upper bound: both inputs happen-before the join,
    /// and any other upper bound dominates it. The checker relies on this
    /// when a receive folds the sender's snapshot into the receiver's clock.
    #[test]
    fn vclock_join_is_least_upper_bound(
        n in 1usize..6,
        ra in prop::collection::vec(0u64..12, 6),
        rb in prop::collection::vec(0u64..12, 6),
        rc in prop::collection::vec(0u64..12, 6),
    ) {
        let (a, b, c) = (&ra[..n], &rb[..n], &rc[..n]);
        let (ca, cb, cc) = (clock_from(a), clock_from(b), clock_from(c));
        let mut joined = ca.clone();
        joined.join(&cb);
        prop_assert!(ca.leq(&joined));
        prop_assert!(cb.leq(&joined));
        if ca.leq(&cc) && cb.leq(&cc) {
            prop_assert!(joined.leq(&cc));
        }
    }

    /// Join is commutative, idempotent, and associative — so the clock a
    /// rank ends up with is independent of the order its deliveries were
    /// folded in, which is what lets the race verdict be schedule-stable.
    #[test]
    fn vclock_join_laws(
        n in 1usize..6,
        ra in prop::collection::vec(0u64..12, 6),
        rb in prop::collection::vec(0u64..12, 6),
        rc in prop::collection::vec(0u64..12, 6),
    ) {
        let (a, b, c) = (&ra[..n], &rb[..n], &rc[..n]);
        let (ca, cb, cc) = (clock_from(a), clock_from(b), clock_from(c));
        let mut ab = ca.clone();
        ab.join(&cb);
        let mut ba = cb.clone();
        ba.join(&ca);
        prop_assert_eq!(&ab, &ba);
        let mut aa = ca.clone();
        aa.join(&ca);
        prop_assert_eq!(&aa, &ca);
        let mut ab_c = ab.clone();
        ab_c.join(&cc);
        let mut bc = cb.clone();
        bc.join(&cc);
        let mut a_bc = ca.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    /// `leq` is a partial order (reflexive, antisymmetric, transitive) and
    /// `concurrent` is exactly its incomparability relation — symmetric,
    /// irreflexive, and matching a componentwise model.
    #[test]
    fn vclock_leq_is_a_partial_order_and_concurrent_its_complement(
        n in 1usize..6,
        ra in prop::collection::vec(0u64..12, 6),
        rb in prop::collection::vec(0u64..12, 6),
        rc in prop::collection::vec(0u64..12, 6),
    ) {
        let (a, b, c) = (&ra[..n], &rb[..n], &rc[..n]);
        let (ca, cb, cc) = (clock_from(a), clock_from(b), clock_from(c));
        prop_assert!(ca.leq(&ca));
        prop_assert!(!ca.concurrent(&ca));
        if ca.leq(&cb) && cb.leq(&ca) {
            prop_assert_eq!(&ca, &cb);
        }
        if ca.leq(&cb) && cb.leq(&cc) {
            prop_assert!(ca.leq(&cc));
        }
        prop_assert_eq!(ca.concurrent(&cb), cb.concurrent(&ca));
        let model_leq = a.iter().zip(b.iter()).all(|(x, y)| x <= y);
        prop_assert_eq!(ca.leq(&cb), model_leq);
    }
}

/// Regression corpus for the clock laws: fixed component vectors that pin
/// the boundary cases the random sweep only sometimes lands on.
mod vclock_regressions {
    use super::clock_from;
    use minimpi::VectorClock;

    #[test]
    fn equal_clocks_are_ordered_both_ways_and_not_concurrent() {
        let a = clock_from(&[3, 1, 4]);
        let b = clock_from(&[3, 1, 4]);
        assert!(a.leq(&b) && b.leq(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn classic_crossing_pair_is_concurrent() {
        // Each side is ahead on its own component: neither orders the other.
        let a = clock_from(&[2, 0]);
        let b = clock_from(&[0, 2]);
        assert!(a.concurrent(&b));
        let mut join = a.clone();
        join.join(&b);
        assert_eq!(join, clock_from(&[2, 2]));
    }

    #[test]
    fn zero_clock_precedes_everything() {
        let zero = VectorClock::new(3);
        let any = clock_from(&[0, 7, 1]);
        assert!(zero.leq(&any));
        assert!(!zero.concurrent(&any));
    }

    #[test]
    fn single_rank_world_is_totally_ordered() {
        // With one component, concurrency is impossible by construction.
        let a = clock_from(&[5]);
        let b = clock_from(&[9]);
        assert!(a.leq(&b));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn empty_world_clock_is_leq_itself() {
        let a = VectorClock::new(0);
        assert!(a.is_empty());
        assert!(a.leq(&a));
        assert!(!a.concurrent(&a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alltoallv_random_payloads(
        nprocs in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Deterministic per-pair lengths derived from the seed.
        let len = |s: usize, d: usize| -> usize {
            ((seed >> ((s * 5 + d) % 48)) % 40) as usize
        };
        let outs = Universe::run(nprocs, |comm| {
            let me = comm.rank();
            let msgs: Vec<Vec<u64>> = (0..nprocs)
                .map(|d| (0..len(me, d)).map(|i| (me * 1000 + d * 10 + i) as u64).collect())
                .collect();
            comm.alltoallv(&msgs).unwrap()
        });
        for (d, recvd) in outs.into_iter().enumerate() {
            for (s, msg) in recvd.into_iter().enumerate() {
                let expect: Vec<u64> =
                    (0..len(s, d)).map(|i| (s * 1000 + d * 10 + i) as u64).collect();
                prop_assert_eq!(msg, expect);
            }
        }
    }

    #[test]
    fn allgather_bytes_arbitrary_content(
        nprocs in 1usize..6,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 6),
    ) {
        let payloads_ref = &payloads;
        let outs = Universe::run(nprocs, move |comm| {
            comm.allgather_bytes(&payloads_ref[comm.rank()]).unwrap()
        });
        for all in outs {
            prop_assert_eq!(all.len(), nprocs);
            for (r, part) in all.iter().enumerate() {
                prop_assert_eq!(part, &payloads[r]);
            }
        }
    }

    #[test]
    fn scatter_gather_inverse(
        nprocs in 1usize..6,
        chunk in 1usize..20,
        root_pick in any::<u8>(),
    ) {
        let root = root_pick as usize % nprocs;
        let data: Vec<u32> = (0..nprocs * chunk).map(|i| i as u32 * 3).collect();
        let data_ref = &data;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = comm
                .scatter(root, (comm.rank() == root).then_some(data_ref.as_slice()))
                .unwrap();
            comm.gather(root, &mine).unwrap()
        });
        let gathered = outs[root].as_ref().unwrap();
        let flat: Vec<u32> = gathered.iter().flatten().copied().collect();
        prop_assert_eq!(flat, data);
    }

    #[test]
    fn allreduce_max_and_min(
        nprocs in 1usize..7,
        values in prop::collection::vec(any::<i64>(), 7),
    ) {
        let values_ref = &values;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = [values_ref[comm.rank()]];
            let mx = comm.allreduce(&mine, i64::max)[0];
            let mn = comm.allreduce(&mine, i64::min)[0];
            (mx, mn)
        });
        let expect_max = values[..nprocs].iter().copied().max().unwrap();
        let expect_min = values[..nprocs].iter().copied().min().unwrap();
        for (mx, mn) in outs {
            prop_assert_eq!(mx, expect_max);
            prop_assert_eq!(mn, expect_min);
        }
    }

    #[test]
    fn interleaved_collectives_never_cross_talk(
        nprocs in 2usize..6,
        rounds in 1usize..5,
    ) {
        // Alternate different collectives; sequence numbers must keep every
        // round's traffic separate.
        Universe::run(nprocs, |comm| {
            for round in 0..rounds {
                let tag = (round * nprocs + comm.rank()) as u64;
                let all = comm.allgather(&[tag]).unwrap();
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(v[0], (round * nprocs + r) as u64);
                }
                comm.barrier().unwrap();
                let sum = comm.allreduce(&[1u64], |a, b| a + b)[0];
                assert_eq!(sum, nprocs as u64);
                let bc = comm.broadcast(round % nprocs, &[round as u32]).unwrap();
                assert_eq!(bc, vec![round as u32]);
            }
        });
    }
}

/// Bidirectional 2-rank alltoallw of `len` seeded bytes; returns what the
/// calling rank received.
fn paired_exchange(comm: &minimpi::Comm, seed: u64, len: usize) -> minimpi::Result<Vec<u8>> {
    let me = comm.rank();
    let other = 1 - me;
    let gen = |r: usize| -> Vec<u8> {
        (0..len).map(|i| (seed as u8) ^ (r as u8) ^ (i as u8).wrapping_mul(13)).collect()
    };
    let send = gen(me);
    let mut recv = vec![0u8; len];
    let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
    let mut send_types = [Datatype::Empty, Datatype::Empty];
    let mut recv_types = [Datatype::Empty, Datatype::Empty];
    send_types[other] = contig;
    recv_types[other] = contig;
    comm.alltoallw(&send, &send_types, &mut recv, &recv_types)?;
    Ok(recv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: a corrupt alltoallw payload of any size — below, at, and
    /// above the zero-copy loan threshold — is detected and recovered by
    /// retransmission, restoring byte-identical output.
    #[test]
    fn corruption_recovers_across_zc_threshold(
        seed in any::<u64>(),
        size_class in 0usize..4,
        len_seed in any::<u64>(),
    ) {
        // Explicit threshold 1024: `len` lands on the staged path, the
        // boundary, and the loan path across cases.
        let len = match size_class {
            0 => 1 + (len_seed as usize % 63),       // well below threshold
            1 => 1000 + (len_seed as usize % 48),    // straddling the boundary
            2 => 1024,                               // exactly at threshold
            _ => 1025,                               // first loan-path size
        };
        let out = Universe::builder()
            .timeout(Duration::from_secs(20))
            .zerocopy(true)
            .zerocopy_threshold(1024)
            .fault_plan(FaultPlan::new(seed).corrupt_message(0, 1, None, 0))
            .run(2, move |comm| {
                let got = paired_exchange(comm, seed, len)?;
                Ok::<_, Error>((got, comm.integrity_counters()))
            });
        let expect = |r: usize| -> Vec<u8> {
            (0..len).map(|i| (seed as u8) ^ (r as u8) ^ (i as u8).wrapping_mul(13)).collect()
        };
        let (got1, c1) = out[1].as_ref().expect("corrupt transfer must recover");
        prop_assert_eq!(got1, &expect(0));
        prop_assert!(c1.detected >= 1);
        prop_assert_eq!(c1.exhausted, 0);
        let (got0, _) = out[0].as_ref().expect("clean direction must succeed");
        prop_assert_eq!(got0, &expect(1));
    }

    /// Exhaustion at any seed and size is a structured error carrying the
    /// full failure coordinates — source, destination, tag, and the number
    /// of retransmit attempts consumed — never a hang.
    #[test]
    fn exhaustion_error_carries_full_coordinates(
        seed in any::<u64>(),
        len in 1usize..512,
    ) {
        let max = 1u32;
        let plan = FaultPlan::new(seed)
            .corrupt_message(0, 1, None, 0)
            .corrupt_message(0, 1, None, 1);
        let out = Universe::builder()
            .timeout(Duration::from_secs(20))
            .retransmit_max(max)
            .retransmit_backoff(Duration::from_micros(50))
            .fault_plan(plan)
            .run(2, move |comm| paired_exchange(comm, seed, len));
        match &out[1] {
            Err(Error::IntegrityFailure { src, dst, tag, attempt }) => {
                prop_assert_eq!(*src, 0);
                prop_assert_eq!(*dst, 1);
                prop_assert!(*tag >= 1 << 32, "collective tags live above the user range");
                prop_assert_eq!(*attempt, max);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected IntegrityFailure, got {other:?}"
            ))),
        }
    }
}

#[test]
fn scatterv_variable_parts() {
    let outs = Universe::run(4, |comm| {
        let parts: Option<Vec<Vec<u8>>> =
            (comm.rank() == 2).then(|| (0..4).map(|i| vec![i as u8; i + 1]).collect());
        comm.scatterv_bytes(2, parts.as_deref()).unwrap()
    });
    for (r, got) in outs.into_iter().enumerate() {
        assert_eq!(got, vec![r as u8; r + 1]);
    }
}

#[test]
fn scatter_rejects_uneven_division() {
    let outs = Universe::run(3, |comm| {
        // Root fails fast; other ranks would block for data that never
        // comes, so keep their watchdog short.
        comm.set_timeout(std::time::Duration::from_millis(50));
        let data: Vec<u16> = (0..7).collect();
        comm.scatter(0, (comm.rank() == 0).then_some(data.as_slice()))
    });
    // Every rank reports an error (mismatch at root, timeout elsewhere).
    assert!(outs.iter().all(|o| o.is_err()));
}
