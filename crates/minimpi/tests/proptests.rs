//! Property-based tests of minimpi collectives with randomized payloads,
//! sizes, and rank counts.

use minimpi::Universe;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alltoallv_random_payloads(
        nprocs in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Deterministic per-pair lengths derived from the seed.
        let len = |s: usize, d: usize| -> usize {
            ((seed >> ((s * 5 + d) % 48)) % 40) as usize
        };
        let outs = Universe::run(nprocs, |comm| {
            let me = comm.rank();
            let msgs: Vec<Vec<u64>> = (0..nprocs)
                .map(|d| (0..len(me, d)).map(|i| (me * 1000 + d * 10 + i) as u64).collect())
                .collect();
            comm.alltoallv(&msgs).unwrap()
        });
        for (d, recvd) in outs.into_iter().enumerate() {
            for (s, msg) in recvd.into_iter().enumerate() {
                let expect: Vec<u64> =
                    (0..len(s, d)).map(|i| (s * 1000 + d * 10 + i) as u64).collect();
                prop_assert_eq!(msg, expect);
            }
        }
    }

    #[test]
    fn allgather_bytes_arbitrary_content(
        nprocs in 1usize..6,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 6),
    ) {
        let payloads_ref = &payloads;
        let outs = Universe::run(nprocs, move |comm| {
            comm.allgather_bytes(&payloads_ref[comm.rank()]).unwrap()
        });
        for all in outs {
            prop_assert_eq!(all.len(), nprocs);
            for (r, part) in all.iter().enumerate() {
                prop_assert_eq!(part, &payloads[r]);
            }
        }
    }

    #[test]
    fn scatter_gather_inverse(
        nprocs in 1usize..6,
        chunk in 1usize..20,
        root_pick in any::<u8>(),
    ) {
        let root = root_pick as usize % nprocs;
        let data: Vec<u32> = (0..nprocs * chunk).map(|i| i as u32 * 3).collect();
        let data_ref = &data;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = comm
                .scatter(root, (comm.rank() == root).then_some(data_ref.as_slice()))
                .unwrap();
            comm.gather(root, &mine).unwrap()
        });
        let gathered = outs[root].as_ref().unwrap();
        let flat: Vec<u32> = gathered.iter().flatten().copied().collect();
        prop_assert_eq!(flat, data);
    }

    #[test]
    fn allreduce_max_and_min(
        nprocs in 1usize..7,
        values in prop::collection::vec(any::<i64>(), 7),
    ) {
        let values_ref = &values;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = [values_ref[comm.rank()]];
            let mx = comm.allreduce(&mine, i64::max)[0];
            let mn = comm.allreduce(&mine, i64::min)[0];
            (mx, mn)
        });
        let expect_max = values[..nprocs].iter().copied().max().unwrap();
        let expect_min = values[..nprocs].iter().copied().min().unwrap();
        for (mx, mn) in outs {
            prop_assert_eq!(mx, expect_max);
            prop_assert_eq!(mn, expect_min);
        }
    }

    #[test]
    fn interleaved_collectives_never_cross_talk(
        nprocs in 2usize..6,
        rounds in 1usize..5,
    ) {
        // Alternate different collectives; sequence numbers must keep every
        // round's traffic separate.
        Universe::run(nprocs, |comm| {
            for round in 0..rounds {
                let tag = (round * nprocs + comm.rank()) as u64;
                let all = comm.allgather(&[tag]).unwrap();
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(v[0], (round * nprocs + r) as u64);
                }
                comm.barrier().unwrap();
                let sum = comm.allreduce(&[1u64], |a, b| a + b)[0];
                assert_eq!(sum, nprocs as u64);
                let bc = comm.broadcast(round % nprocs, &[round as u32]).unwrap();
                assert_eq!(bc, vec![round as u32]);
            }
        });
    }
}

#[test]
fn scatterv_variable_parts() {
    let outs = Universe::run(4, |comm| {
        let parts: Option<Vec<Vec<u8>>> =
            (comm.rank() == 2).then(|| (0..4).map(|i| vec![i as u8; i + 1]).collect());
        comm.scatterv_bytes(2, parts.as_deref()).unwrap()
    });
    for (r, got) in outs.into_iter().enumerate() {
        assert_eq!(got, vec![r as u8; r + 1]);
    }
}

#[test]
fn scatter_rejects_uneven_division() {
    let outs = Universe::run(3, |comm| {
        // Root fails fast; other ranks would block for data that never
        // comes, so keep their watchdog short.
        comm.set_timeout(std::time::Duration::from_millis(50));
        let data: Vec<u16> = (0..7).collect();
        comm.scatter(0, (comm.rank() == 0).then_some(data.as_slice()))
    });
    // Every rank reports an error (mismatch at root, timeout elsewhere).
    assert!(outs.iter().all(|o| o.is_err()));
}
