//! Property-based tests of minimpi collectives with randomized payloads,
//! sizes, and rank counts.

use minimpi::{Datatype, Error, FaultPlan, Universe};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn alltoallv_random_payloads(
        nprocs in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Deterministic per-pair lengths derived from the seed.
        let len = |s: usize, d: usize| -> usize {
            ((seed >> ((s * 5 + d) % 48)) % 40) as usize
        };
        let outs = Universe::run(nprocs, |comm| {
            let me = comm.rank();
            let msgs: Vec<Vec<u64>> = (0..nprocs)
                .map(|d| (0..len(me, d)).map(|i| (me * 1000 + d * 10 + i) as u64).collect())
                .collect();
            comm.alltoallv(&msgs).unwrap()
        });
        for (d, recvd) in outs.into_iter().enumerate() {
            for (s, msg) in recvd.into_iter().enumerate() {
                let expect: Vec<u64> =
                    (0..len(s, d)).map(|i| (s * 1000 + d * 10 + i) as u64).collect();
                prop_assert_eq!(msg, expect);
            }
        }
    }

    #[test]
    fn allgather_bytes_arbitrary_content(
        nprocs in 1usize..6,
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 6),
    ) {
        let payloads_ref = &payloads;
        let outs = Universe::run(nprocs, move |comm| {
            comm.allgather_bytes(&payloads_ref[comm.rank()]).unwrap()
        });
        for all in outs {
            prop_assert_eq!(all.len(), nprocs);
            for (r, part) in all.iter().enumerate() {
                prop_assert_eq!(part, &payloads[r]);
            }
        }
    }

    #[test]
    fn scatter_gather_inverse(
        nprocs in 1usize..6,
        chunk in 1usize..20,
        root_pick in any::<u8>(),
    ) {
        let root = root_pick as usize % nprocs;
        let data: Vec<u32> = (0..nprocs * chunk).map(|i| i as u32 * 3).collect();
        let data_ref = &data;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = comm
                .scatter(root, (comm.rank() == root).then_some(data_ref.as_slice()))
                .unwrap();
            comm.gather(root, &mine).unwrap()
        });
        let gathered = outs[root].as_ref().unwrap();
        let flat: Vec<u32> = gathered.iter().flatten().copied().collect();
        prop_assert_eq!(flat, data);
    }

    #[test]
    fn allreduce_max_and_min(
        nprocs in 1usize..7,
        values in prop::collection::vec(any::<i64>(), 7),
    ) {
        let values_ref = &values;
        let outs = Universe::run(nprocs, move |comm| {
            let mine = [values_ref[comm.rank()]];
            let mx = comm.allreduce(&mine, i64::max)[0];
            let mn = comm.allreduce(&mine, i64::min)[0];
            (mx, mn)
        });
        let expect_max = values[..nprocs].iter().copied().max().unwrap();
        let expect_min = values[..nprocs].iter().copied().min().unwrap();
        for (mx, mn) in outs {
            prop_assert_eq!(mx, expect_max);
            prop_assert_eq!(mn, expect_min);
        }
    }

    #[test]
    fn interleaved_collectives_never_cross_talk(
        nprocs in 2usize..6,
        rounds in 1usize..5,
    ) {
        // Alternate different collectives; sequence numbers must keep every
        // round's traffic separate.
        Universe::run(nprocs, |comm| {
            for round in 0..rounds {
                let tag = (round * nprocs + comm.rank()) as u64;
                let all = comm.allgather(&[tag]).unwrap();
                for (r, v) in all.iter().enumerate() {
                    assert_eq!(v[0], (round * nprocs + r) as u64);
                }
                comm.barrier().unwrap();
                let sum = comm.allreduce(&[1u64], |a, b| a + b)[0];
                assert_eq!(sum, nprocs as u64);
                let bc = comm.broadcast(round % nprocs, &[round as u32]).unwrap();
                assert_eq!(bc, vec![round as u32]);
            }
        });
    }
}

/// Bidirectional 2-rank alltoallw of `len` seeded bytes; returns what the
/// calling rank received.
fn paired_exchange(comm: &minimpi::Comm, seed: u64, len: usize) -> minimpi::Result<Vec<u8>> {
    let me = comm.rank();
    let other = 1 - me;
    let gen = |r: usize| -> Vec<u8> {
        (0..len).map(|i| (seed as u8) ^ (r as u8) ^ (i as u8).wrapping_mul(13)).collect()
    };
    let send = gen(me);
    let mut recv = vec![0u8; len];
    let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
    let mut send_types = [Datatype::Empty, Datatype::Empty];
    let mut recv_types = [Datatype::Empty, Datatype::Empty];
    send_types[other] = contig;
    recv_types[other] = contig;
    comm.alltoallw(&send, &send_types, &mut recv, &recv_types)?;
    Ok(recv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: a corrupt alltoallw payload of any size — below, at, and
    /// above the zero-copy loan threshold — is detected and recovered by
    /// retransmission, restoring byte-identical output.
    #[test]
    fn corruption_recovers_across_zc_threshold(
        seed in any::<u64>(),
        size_class in 0usize..4,
        len_seed in any::<u64>(),
    ) {
        // Explicit threshold 1024: `len` lands on the staged path, the
        // boundary, and the loan path across cases.
        let len = match size_class {
            0 => 1 + (len_seed as usize % 63),       // well below threshold
            1 => 1000 + (len_seed as usize % 48),    // straddling the boundary
            2 => 1024,                               // exactly at threshold
            _ => 1025,                               // first loan-path size
        };
        let out = Universe::builder()
            .timeout(Duration::from_secs(20))
            .zerocopy(true)
            .zerocopy_threshold(1024)
            .fault_plan(FaultPlan::new(seed).corrupt_message(0, 1, None, 0))
            .run(2, move |comm| {
                let got = paired_exchange(comm, seed, len)?;
                Ok::<_, Error>((got, comm.integrity_counters()))
            });
        let expect = |r: usize| -> Vec<u8> {
            (0..len).map(|i| (seed as u8) ^ (r as u8) ^ (i as u8).wrapping_mul(13)).collect()
        };
        let (got1, c1) = out[1].as_ref().expect("corrupt transfer must recover");
        prop_assert_eq!(got1, &expect(0));
        prop_assert!(c1.detected >= 1);
        prop_assert_eq!(c1.exhausted, 0);
        let (got0, _) = out[0].as_ref().expect("clean direction must succeed");
        prop_assert_eq!(got0, &expect(1));
    }

    /// Exhaustion at any seed and size is a structured error carrying the
    /// full failure coordinates — source, destination, tag, and the number
    /// of retransmit attempts consumed — never a hang.
    #[test]
    fn exhaustion_error_carries_full_coordinates(
        seed in any::<u64>(),
        len in 1usize..512,
    ) {
        let max = 1u32;
        let plan = FaultPlan::new(seed)
            .corrupt_message(0, 1, None, 0)
            .corrupt_message(0, 1, None, 1);
        let out = Universe::builder()
            .timeout(Duration::from_secs(20))
            .retransmit_max(max)
            .retransmit_backoff(Duration::from_micros(50))
            .fault_plan(plan)
            .run(2, move |comm| paired_exchange(comm, seed, len));
        match &out[1] {
            Err(Error::IntegrityFailure { src, dst, tag, attempt }) => {
                prop_assert_eq!(*src, 0);
                prop_assert_eq!(*dst, 1);
                prop_assert!(*tag >= 1 << 32, "collective tags live above the user range");
                prop_assert_eq!(*attempt, max);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected IntegrityFailure, got {other:?}"
            ))),
        }
    }
}

#[test]
fn scatterv_variable_parts() {
    let outs = Universe::run(4, |comm| {
        let parts: Option<Vec<Vec<u8>>> =
            (comm.rank() == 2).then(|| (0..4).map(|i| vec![i as u8; i + 1]).collect());
        comm.scatterv_bytes(2, parts.as_deref()).unwrap()
    });
    for (r, got) in outs.into_iter().enumerate() {
        assert_eq!(got, vec![r as u8; r + 1]);
    }
}

#[test]
fn scatter_rejects_uneven_division() {
    let outs = Universe::run(3, |comm| {
        // Root fails fast; other ranks would block for data that never
        // comes, so keep their watchdog short.
        comm.set_timeout(std::time::Duration::from_millis(50));
        let data: Vec<u16> = (0..7).collect();
        comm.scatter(0, (comm.rank() == 0).then_some(data.as_slice()))
    });
    // Every rank reports an error (mismatch at root, timeout elsewhere).
    assert!(outs.iter().all(|o| o.is_err()));
}
