//! Property tests of the [`Subarray`] datatype engine: `pack` / `unpack` /
//! `pack_into` / `copy_to` round-trips over random dims, strides and
//! offsets, including the zero-extent and full-extent edge rectangles the
//! zero-copy exchange depends on.

use minimpi::Subarray;
use proptest::prelude::*;

/// Cheap deterministic generator used to derive geometry from one seed.
fn mix(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 17
}

/// Derive a valid random subarray from `seed`. `edge` forces one of the
/// edge shapes: `1` = full-extent (the selection is the whole array),
/// `2` = zero-extent in one dimension (an empty selection, possibly sitting
/// on the far edge of the array), `3` = single-element inner stride (a
/// one-element-wide column: every packed run is `elem_size` bytes, the
/// pack kernels' worst case).
fn subarray_from_seed(seed: u64, edge: u64) -> Subarray {
    let mut s = seed | 1;
    let ndims = 1 + (mix(&mut s) % 3) as usize;
    let elem_size = [1usize, 2, 3, 4, 8][(mix(&mut s) % 5) as usize];
    let mut sizes = [1usize; 3];
    let mut subsizes = [1usize; 3];
    let mut starts = [0usize; 3];
    for d in 0..ndims {
        sizes[d] = 1 + (mix(&mut s) % 9) as usize;
        subsizes[d] = 1 + (mix(&mut s) % sizes[d] as u64) as usize;
        starts[d] = (mix(&mut s) % (sizes[d] - subsizes[d] + 1) as u64) as usize;
    }
    match edge {
        1 => {
            subsizes = sizes;
            starts = [0; 3];
        }
        2 => {
            let d = (mix(&mut s) % ndims as u64) as usize;
            subsizes[d] = 0;
            // A zero-extent rectangle may start anywhere up to the far edge.
            starts[d] = (mix(&mut s) % (sizes[d] + 1) as u64) as usize;
        }
        3 => {
            // Inner dimension strided at one element: run never merges with
            // its neighbor, so the gather walks elem_size-byte runs.
            sizes[0] = sizes[0].max(2);
            subsizes[0] = 1;
            starts[0] = (mix(&mut s) % sizes[0] as u64) as usize;
        }
        _ => {}
    }
    Subarray::new(ndims, sizes, subsizes, starts, elem_size).unwrap()
}

/// Distinct nonzero filler for each byte position.
fn filled(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i % 251 + 1) as u8).collect()
}

/// Scalar reference pack, derived from nothing but element-coordinate
/// arithmetic — no `byte_runs`, no kernel layer. The element at subarray
/// coordinate `(x, y, z)` lives at array index
/// `(starts.0 + x) + sizes.0 * ((starts.1 + y) + sizes.1 * (starts.2 + z))`,
/// and packed order walks `x` fastest. This is the ground truth the fused /
/// vectorized / pooled kernels must reproduce byte for byte.
fn reference_pack(sa: &Subarray, src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(sa.packed_len());
    for z in 0..sa.subsizes[2] {
        for y in 0..sa.subsizes[1] {
            for x in 0..sa.subsizes[0] {
                let e = (sa.starts[0] + x)
                    + sa.sizes[0] * ((sa.starts[1] + y) + sa.sizes[1] * (sa.starts[2] + z));
                let off = e * sa.elem_size;
                out.extend_from_slice(&src[off..off + sa.elem_size]);
            }
        }
    }
    out
}

/// The kernel-vs-scalar-reference property, shared with the committed
/// regression corpus below: `pack`, `pack_into`, `unpack`, and `copy_to`
/// must all agree with [`reference_pack`]'s coordinate walk whichever
/// kernel tier (fused memcpy, lane gather, scalar fallback) dispatch picks.
fn check_against_reference(seed: u64, edge: u64) -> Result<(), TestCaseError> {
    let sa = subarray_from_seed(seed, edge);
    let src = filled(sa.full_len());
    let expect = reference_pack(&sa, &src);

    prop_assert_eq!(sa.pack(&src).unwrap(), expect.clone());

    let mut appended = vec![0xAAu8; 5];
    sa.pack_into(&src, &mut appended).unwrap();
    prop_assert_eq!(&appended[..5], &[0xAA; 5]);
    prop_assert_eq!(&appended[5..], expect.as_slice());

    // unpack must be the exact inverse scatter of the reference walk.
    let mut dst = vec![0u8; sa.full_len()];
    sa.unpack(&expect, &mut dst).unwrap();
    let mut expect_dst = vec![0u8; sa.full_len()];
    let mut cursor = 0;
    for z in 0..sa.subsizes[2] {
        for y in 0..sa.subsizes[1] {
            for x in 0..sa.subsizes[0] {
                let e = (sa.starts[0] + x)
                    + sa.sizes[0] * ((sa.starts[1] + y) + sa.sizes[1] * (sa.starts[2] + z));
                let off = e * sa.elem_size;
                expect_dst[off..off + sa.elem_size]
                    .copy_from_slice(&expect[cursor..cursor + sa.elem_size]);
                cursor += sa.elem_size;
            }
        }
    }
    prop_assert_eq!(dst, expect_dst);

    // copy_to into a flat destination is pack without the intermediate.
    if sa.count() > 0 {
        let flat = Subarray::d1(sa.count(), sa.count(), 0, sa.elem_size).unwrap();
        let mut direct = vec![0u8; flat.full_len()];
        sa.copy_to(&src, &flat, &mut direct).unwrap();
        prop_assert_eq!(direct, expect);
    }
    Ok(())
}

/// The core round-trip property, shared with the committed regression
/// corpus below.
fn check_roundtrip(seed: u64, edge: u64) -> Result<(), TestCaseError> {
    let sa = subarray_from_seed(seed, edge);
    let src = filled(sa.full_len());

    // pack: length and content sanity.
    let packed = sa.pack(&src).unwrap();
    prop_assert_eq!(packed.len(), sa.packed_len());

    // pack_into appends exactly the packed bytes after existing content.
    let mut appended = vec![0xEEu8; 3];
    sa.pack_into(&src, &mut appended).unwrap();
    prop_assert_eq!(&appended[..3], &[0xEE; 3]);
    prop_assert_eq!(&appended[3..], packed.as_slice());

    // byte_runs: in-bounds, ascending, disjoint, and they cover exactly the
    // packed length.
    let runs: Vec<(usize, usize)> = sa.byte_runs().collect();
    let total: usize = runs.iter().map(|&(_, l)| l).sum();
    prop_assert_eq!(total, sa.packed_len());
    for w in runs.windows(2) {
        prop_assert!(w[0].0 + w[0].1 <= w[1].0, "runs overlap or regress: {:?}", w);
    }
    if let Some(&(off, len)) = runs.last() {
        prop_assert!(off + len <= sa.full_len());
    }

    // unpack into a zeroed array restores exactly the selection.
    let mut dst = vec![0u8; sa.full_len()];
    sa.unpack(&packed, &mut dst).unwrap();
    let mut selected = vec![false; sa.full_len()];
    for (off, len) in sa.byte_runs() {
        for sel in &mut selected[off..off + len] {
            *sel = true;
        }
    }
    for (i, (&got, &sel)) in dst.iter().zip(&selected).enumerate() {
        let want = if sel { src[i] } else { 0 };
        prop_assert_eq!(got, want, "byte {} (selected: {})", i, sel);
    }

    // Re-packing the unpacked array is the identity on the selection.
    prop_assert_eq!(sa.pack(&dst).unwrap(), packed.clone());

    // copy_to into a contiguous destination of the same element count must
    // equal pack (the degenerate zero-copy case).
    if sa.count() > 0 {
        let flat = Subarray::d1(sa.count(), sa.count(), 0, sa.elem_size).unwrap();
        let mut direct = vec![0u8; flat.full_len()];
        sa.copy_to(&src, &flat, &mut direct).unwrap();
        prop_assert_eq!(direct, packed);
    }
    Ok(())
}

proptest! {
    #[test]
    fn pack_unpack_roundtrip_random_rects(seed in any::<u64>()) {
        check_roundtrip(seed, 0)?;
    }

    #[test]
    fn pack_unpack_roundtrip_full_extent(seed in any::<u64>()) {
        check_roundtrip(seed, 1)?;
    }

    #[test]
    fn pack_unpack_roundtrip_zero_extent(seed in any::<u64>()) {
        check_roundtrip(seed, 2)?;
    }

    #[test]
    fn kernels_match_scalar_reference_random(seed in any::<u64>()) {
        check_against_reference(seed, 0)?;
    }

    #[test]
    fn kernels_match_scalar_reference_full_extent(seed in any::<u64>()) {
        check_against_reference(seed, 1)?;
    }

    #[test]
    fn kernels_match_scalar_reference_zero_extent(seed in any::<u64>()) {
        check_against_reference(seed, 2)?;
    }

    #[test]
    fn kernels_match_scalar_reference_single_elem_stride(seed in any::<u64>()) {
        check_against_reference(seed, 3)?;
    }

    #[test]
    fn single_elem_stride_roundtrips(seed in any::<u64>()) {
        check_roundtrip(seed, 3)?;
    }

    #[test]
    fn copy_to_reshapes_losslessly(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        // Two independent geometries with the same element count and size:
        // shipping a into b's shape and re-flattening is the identity.
        let a = subarray_from_seed(seed_a, 0);
        let mut b = subarray_from_seed(seed_b, 0);
        let mut tries = seed_b;
        while b.count() != a.count() || b.elem_size != a.elem_size {
            tries = tries.wrapping_add(0x9e3779b97f4a7c15);
            b = subarray_from_seed(tries, 0);
            if b.count() != a.count() || b.elem_size != a.elem_size {
                // Equal-count random pairs are rare; fall back to a flat
                // destination, which is always constructible.
                b = Subarray::d1(a.count(), a.count(), 0, a.elem_size).unwrap();
            }
        }
        let src = filled(a.full_len());
        let mut mid = vec![0u8; b.full_len()];
        a.copy_to(&src, &b, &mut mid).unwrap();
        let mut back = vec![0u8; a.count() * a.elem_size];
        let flat = Subarray::d1(a.count(), a.count(), 0, a.elem_size).unwrap();
        b.copy_to(&mid, &flat, &mut back).unwrap();
        prop_assert_eq!(back, a.pack(&src).unwrap());
    }

    #[test]
    fn full_extent_is_single_run(seed in any::<u64>()) {
        let sa = subarray_from_seed(seed, 1);
        let runs: Vec<_> = sa.byte_runs().collect();
        prop_assert_eq!(runs, vec![(0usize, sa.full_len())]);
    }

    #[test]
    fn zero_extent_packs_nothing_and_unpack_is_noop(seed in any::<u64>()) {
        let sa = subarray_from_seed(seed, 2);
        prop_assert_eq!(sa.packed_len(), 0);
        let src = filled(sa.full_len());
        prop_assert_eq!(sa.pack(&src).unwrap(), Vec::<u8>::new());
        let mut dst = src.clone();
        sa.unpack(&[], &mut dst).unwrap();
        prop_assert_eq!(dst, src);
    }
}

/// Seeds that once exposed bugs (or probe known-delicate geometry). The
/// vendored proptest shim has no failure-persistence files, so the corpus is
/// committed here and replayed on every run; append `(seed, edge)` pairs
/// from any future failure report.
const REGRESSION_CORPUS: &[(u64, u64)] = &[
    (0, 0),                     // degenerate all-zero seed
    (1, 2),                     // zero-extent on the smallest geometry
    (0xffff_ffff_ffff_ffff, 0), // all-ones seed
    (0x9e37_79b9_7f4a_7c15, 1), // golden-ratio seed, full extent
    (42, 2),                    // zero-extent rectangle at the far edge
    (7_777_777, 0),             // 3-D multi-byte-elem interior rectangle
    (3, 3),                     // 1-byte elements at single-element stride
    (0xdead_beef, 3),           // single-element stride, multi-byte elems
    (0x1234_5678_9abc_def0, 3), // 3-D single-element inner column
];

#[test]
fn regression_corpus_replays_clean() {
    for &(seed, edge) in REGRESSION_CORPUS {
        if let Err(e) = check_roundtrip(seed, edge) {
            panic!("regression corpus case (seed {seed:#x}, edge {edge}) failed: {e}");
        }
        if let Err(e) = check_against_reference(seed, edge) {
            panic!(
                "regression corpus case (seed {seed:#x}, edge {edge}) \
                 diverged from the scalar reference: {e}"
            );
        }
    }
}
