//! The per-message zero-copy threshold: small messages must take the staged
//! path even with zero-copy enabled, large ones must still loan.

use minimpi::{Datatype, Subarray, Universe};

/// Run one contiguous alltoallw of `elems` u64 elements per pair under
/// zero-copy with the given loan threshold; return rank 0's counters.
fn exchange(n: usize, elems: usize, threshold: usize) -> minimpi::TransportCounters {
    let out =
        Universe::builder().zerocopy(true).zerocopy_threshold(threshold).run(n, move |comm| {
            let n = comm.size();
            let send: Vec<u64> = (0..elems * n).map(|i| i as u64).collect();
            let mut recv = vec![0u64; elems * n];
            let types: Vec<Datatype> = (0..n)
                .map(|p| {
                    Datatype::Subarray(
                        Subarray::d1(elems * n, elems, p * elems, 8).expect("valid subarray"),
                    )
                })
                .collect();
            comm.alltoallw(
                minimpi::bytes_of(&send),
                &types,
                minimpi::bytes_of_mut(&mut recv),
                &types,
            )
            .expect("exchange succeeds");
            // Every rank holds the same pattern and sends its block at offset
            // `me*elems` to us, so each received chunk equals our own block.
            let me = comm.rank();
            let mine = &send[me * elems..(me + 1) * elems];
            for chunk in recv.chunks(elems) {
                assert_eq!(chunk, mine);
            }
            comm.transport_counters()
        });
    out[0]
}

#[test]
fn small_messages_stage_under_default_style_threshold() {
    // 128 u64 = 1 KiB per pair, well under a 64 KiB threshold.
    let c = exchange(4, 128, 64 << 10);
    assert_eq!(c.zerocopy_msgs, 0, "sub-threshold messages must not loan: {c:?}");
    assert!(c.staged_msgs > 0, "sub-threshold messages must stage: {c:?}");
}

#[test]
fn large_messages_still_loan() {
    // 16 Ki u64 = 128 KiB per pair, over a 64 KiB threshold.
    let c = exchange(4, 16 << 10, 64 << 10);
    assert!(c.zerocopy_msgs > 0, "above-threshold messages must loan: {c:?}");
    assert_eq!(c.staged_msgs, 0, "above-threshold messages must not stage: {c:?}");
}

#[test]
fn zero_threshold_loans_everything() {
    let c = exchange(4, 8, 0);
    assert!(c.zerocopy_msgs > 0, "threshold 0 must loan even tiny messages: {c:?}");
    assert_eq!(c.staged_msgs, 0, "{c:?}");
}

#[test]
fn threshold_boundary_stages() {
    // Exactly at the threshold: 8 Ki u64 = 64 KiB. The rendezvous handshake
    // only pays for itself strictly above the threshold (measured breakeven
    // at the boundary), so at-threshold messages take the staged path.
    let c = exchange(2, 8 << 10, 64 << 10);
    assert_eq!(c.zerocopy_msgs, 0, "messages exactly at the threshold must stage: {c:?}");
    assert!(c.staged_msgs > 0, "{c:?}");
}

#[test]
fn just_above_threshold_loans() {
    // One element over the boundary: (8 Ki + 1) u64 = 64 KiB + 8 bytes.
    let c = exchange(2, (8 << 10) + 1, 64 << 10);
    assert!(c.zerocopy_msgs > 0, "messages above the threshold must loan: {c:?}");
    assert_eq!(c.staged_msgs, 0, "{c:?}");
}
