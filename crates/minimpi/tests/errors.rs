//! Every [`minimpi::Error`] variant: its `Display` rendering and, where the
//! runtime can be driven into it, the failure path that produces it.

use minimpi::{
    CollFingerprint, CollectiveKind, Datatype, DeadlockReport, DivergenceReport, Error, LeakedLoan,
    LoanLeakReport, PendingRecv, RaceReport, TypeSig, Universe,
};
use std::time::{Duration, Instant};

fn fingerprint(kind: CollectiveKind, root: usize, line: u32) -> CollFingerprint {
    CollFingerprint { kind, root, sig: 0, file: "app.rs", line }
}

/// One representative value per variant — a match here fails to compile when
/// a variant is added without extending this coverage.
fn all_variants() -> Vec<Error> {
    let variants = vec![
        Error::RankOutOfRange { rank: 9, size: 4 },
        Error::Timeout { rank: 1, src: Some(2), tag: 77, comm_id: 5 },
        Error::Timeout { rank: 1, src: None, tag: 77, comm_id: 5 },
        Error::PeerDead { rank: 3 },
        Error::SizeMismatch { expected: 16, got: 12 },
        Error::DatatypeMismatch { detail: "subarray exceeds buffer".into() },
        Error::CollectiveMismatch { detail: "counts differ".into() },
        Error::CollectiveDiverged(Box::new(DivergenceReport {
            comm_id: 5,
            index: 3,
            rank_a: 0,
            fp_a: fingerprint(CollectiveKind::Barrier, usize::MAX, 10),
            rank_b: 2,
            fp_b: fingerprint(CollectiveKind::Broadcast, 0, 20),
        })),
        Error::Deadlock(Box::new(DeadlockReport {
            cycle: vec![
                PendingRecv { rank: 0, awaited: 1, comm_id: 0, tag: 7 },
                PendingRecv { rank: 1, awaited: 0, comm_id: 0, tag: 7 },
            ],
        })),
        Error::DataRace(Box::new(RaceReport {
            resource: "zero-copy loan from rank 0 to rank 1".into(),
            ranks: (1, 0),
            ops: ("reads the loan from rank 0".into(), "writes the buffer".into()),
            call_sites: ("app.rs:30".into(), "app.rs:40".into()),
        })),
        Error::LoanLeak(Box::new(LoanLeakReport {
            loans: vec![LeakedLoan { src: 0, dst: 2, bytes: 4096, site: "app.rs:50".into() }],
        })),
        Error::TypeMismatch {
            src: 0,
            dst: 1,
            tag: 7,
            expected: TypeSig { extent: 16, elem: 2, shape: 0 },
            got: TypeSig { extent: 16, elem: 4, shape: 0 },
        },
        Error::StaleEpoch { comm_epoch: 0, world_epoch: 2 },
        Error::IntegrityFailure { src: 2, dst: 0, tag: 9, attempt: 0 },
        Error::IntegrityFailure { src: 2, dst: 0, tag: 9, attempt: 3 },
        Error::MemoryPressure { requested: 4096, budget: 1024, used: 900 },
        Error::Internal { detail: "split: world rank 2 missing from its own color group".into() },
    ];
    for v in &variants {
        match v {
            Error::RankOutOfRange { .. }
            | Error::Timeout { .. }
            | Error::PeerDead { .. }
            | Error::SizeMismatch { .. }
            | Error::DatatypeMismatch { .. }
            | Error::CollectiveMismatch { .. }
            | Error::CollectiveDiverged(_)
            | Error::Deadlock(_)
            | Error::DataRace(_)
            | Error::LoanLeak(_)
            | Error::TypeMismatch { .. }
            | Error::StaleEpoch { .. }
            | Error::IntegrityFailure { .. }
            | Error::MemoryPressure { .. }
            | Error::Internal { .. } => {}
        }
    }
    variants
}

#[test]
fn display_is_informative_for_every_variant() {
    let expected = [
        "rank 9 out of range for communicator of size 4",
        "rank 1: receive from rank 2 (user tag 77 on comm 0x5) timed out — likely deadlock",
        "rank 1: any-source receive (user tag 77 on comm 0x5) timed out — likely deadlock",
        "rank 3 is dead (fault-killed, panicked, or exited) — failing fast",
        "message size mismatch: expected 16 bytes, got 12",
        "datatype mismatch: subarray exceeds buffer",
        "collective mismatch: counts differ",
        "collective divergence: collective #3 on comm 0x5: rank 0 called barrier at app.rs:10 \
         but rank 2 called broadcast(root 0) at app.rs:20",
        "deadlock cycle of 2 ranks: rank 0 waits on rank 1 (user tag 7 on comm 0x0); \
         rank 1 waits on rank 0 (user tag 7 on comm 0x0)",
        "data race: on zero-copy loan from rank 0 to rank 1: rank 1 (reads the loan from \
         rank 0 at app.rs:30) is causally unordered with rank 0 (writes the buffer at app.rs:40)",
        "loan leak: 1 zero-copy loan(s) still live at finalize: \
         4096B from rank 0 to rank 2 (lent at app.rs:50)",
        "datatype signature mismatch: rank 0 sent (extent 16B, elem 4B) but rank 1 \
         expected (extent 16B, elem 2B) (user tag 7)",
        "communicator from epoch 0 used after reconfiguration to epoch 2 — \
         rebuild it via reconfigure()",
        "integrity failure: payload from rank 2 to rank 0 (user tag 9) \
         failed checksum verification (no retransmit path)",
        "integrity failure: payload from rank 2 to rank 0 (user tag 9) \
         still corrupt after 3 retransmit attempt(s)",
        "memory budget exhausted: 4096-byte staging reservation denied \
         (budget 1024 bytes, 900 in use)",
        "internal runtime invariant violated: split: world rank 2 missing from its own color group",
    ];
    for (e, want) in all_variants().iter().zip(expected) {
        assert_eq!(e.to_string(), want);
    }
}

#[test]
fn variants_implement_std_error() {
    for e in all_variants() {
        let dyn_err: &dyn std::error::Error = &e;
        assert!(!dyn_err.to_string().is_empty());
    }
}

#[test]
fn rank_out_of_range_from_send_and_recv() {
    let out = Universe::run(2, |comm| {
        (comm.send(5, 1, &[0u8]).unwrap_err(), comm.recv_bytes(5, 1).unwrap_err())
    });
    assert_eq!(out[0].0, Error::RankOutOfRange { rank: 5, size: 2 });
    assert_eq!(out[0].1, Error::RankOutOfRange { rank: 5, size: 2 });
}

#[test]
fn timeout_from_never_sent_message() {
    let out = Universe::run(1, |comm| {
        comm.set_timeout(Duration::from_millis(50));
        comm.recv_bytes(0, 42).unwrap_err()
    });
    assert_eq!(out[0], Error::Timeout { rank: 0, src: Some(0), tag: 42, comm_id: 0 });
}

#[test]
fn peer_dead_from_departed_rank() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 1 {
            return None; // leave without sending
        }
        Some(comm.recv_bytes(1, 9).unwrap_err())
    });
    assert_eq!(out[0], Some(Error::PeerDead { rank: 1 }));
}

#[test]
fn size_mismatch_from_typed_receive() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, &[1u8, 2, 3]).unwrap();
            None
        } else {
            Some(comm.recv_vec::<u32>(0, 5).unwrap_err())
        }
    });
    assert_eq!(out[1], Some(Error::SizeMismatch { expected: 4, got: 3 }));
}

#[test]
fn typed_send_recv_matches_under_check() {
    // Same element type and count on both sides: checking must not get in
    // the way of a correct program.
    let out = Universe::builder().check(true).run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, &[1u32, 2, 3]).unwrap();
            vec![]
        } else {
            comm.recv_vec::<u32>(0, 5).unwrap()
        }
    });
    assert_eq!(out[1], vec![1u32, 2, 3]);
}

#[test]
fn type_mismatch_from_wrong_element_type_under_check() {
    // u32s received as u16s: the byte count happens to divide evenly, so
    // without checking this silently reinterprets — with checking it fails
    // with the stamped signature in hand.
    let out = Universe::builder().check(true).run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, &[1u32, 2]).unwrap();
            None
        } else {
            Some(comm.recv_vec::<u16>(0, 5).unwrap_err())
        }
    });
    match out[1].clone().unwrap() {
        Error::TypeMismatch { src: 0, dst: 1, expected, got, .. } => {
            assert_eq!(expected.elem, 2);
            assert_eq!(got.elem, 4);
            assert_eq!(got.extent, 8);
        }
        other => panic!("expected TypeMismatch, got {other}"),
    }
}

#[test]
fn type_mismatch_from_truncating_receive_under_check() {
    // The receiver's buffer declares a 4-byte extent but the sender shipped
    // 8: caught as a signature mismatch before any bytes are copied (without
    // checking, this surfaces later as SizeMismatch).
    let out = Universe::builder().check(true).run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, &[1u32, 2]).unwrap();
            None
        } else {
            let mut buf = [0u32; 1];
            Some(comm.recv_into::<u32>(0, 5, &mut buf).unwrap_err())
        }
    });
    match out[1].clone().unwrap() {
        Error::TypeMismatch { expected, got, .. } => {
            assert_eq!(expected.extent, 4);
            assert_eq!(got.extent, 8);
        }
        other => panic!("expected TypeMismatch, got {other}"),
    }
}

#[test]
fn untyped_send_passes_typed_receive_under_check() {
    // Raw-byte sends carry an untyped-bytes signature (elem 1); a typed
    // receive accepts it — the wildcard exists so byte-level framing and
    // typed consumption can legally mix.
    let out = Universe::builder().check(true).run(2, |comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 5, &7u64.to_le_bytes()).unwrap();
            0
        } else {
            comm.recv_vec::<u64>(0, 5).unwrap()[0]
        }
    });
    assert_eq!(out[1], 7);
}

/// The error path of the nonblocking API: an `ialltoallw` request posted
/// with a zero-copy loan outstanding is dropped without `wait` — the shape
/// of any `?` between post and completion. Drop must drain the loan on the
/// way out: the never-claimed loan is revoked immediately (not stranded
/// until the watchdog fires), and the checker's finalize must not panic
/// with a LoanLeak — this test running under `check(true)` without
/// `#[should_panic]` is that assertion.
#[test]
fn dropped_request_without_wait_drains_loans() {
    let len = 4096usize;
    let watchdog = Duration::from_secs(30);
    let start = Instant::now();
    let out =
        Universe::builder().check(true).zerocopy(true).zerocopy_threshold(0).timeout(watchdog).run(
            2,
            move |comm| {
                if comm.rank() == 1 {
                    // Never touches the exchange: the loan stays unclaimed, so
                    // only rank 0's drop path can release it.
                    return None;
                }
                let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
                let send_types = [Datatype::Empty, contig];
                let recv_types = [Datatype::Empty, contig];
                let buf: &'static [u8] = Box::leak(vec![9u8; len].into_boxed_slice());
                let req = comm.ialltoallw(buf, &send_types, &recv_types).unwrap();
                let loans_posted = comm.transport_counters().zerocopy_msgs;
                // The planted error between post and wait; `req` unwinds with
                // the exchange still in flight.
                comm.set_timeout(Duration::from_millis(100));
                let err = comm.recv_bytes(1, 4242).unwrap_err();
                drop(req);
                Some((err, loans_posted))
            },
        );
    // Teardown reached without a LoanLeak panic and without burning the
    // watchdog: the drop really drained the loan.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "request drop must not block on the unclaimed loan"
    );
    let (err, loans_posted) = out[0].clone().unwrap();
    assert!(loans_posted >= 1, "the post must actually have minted a zero-copy loan");
    assert!(
        matches!(err, Error::Timeout { .. } | Error::PeerDead { .. }),
        "planted error path took an unexpected shape: {err}"
    );
}

#[test]
fn collective_mismatch_from_wrong_message_count() {
    // Rank 0 hands alltoall one message on a 2-rank communicator; it is
    // rejected locally, and rank 1 — left without a partner — fails fast
    // with PeerDead rather than timing out.
    let out = Universe::run(2, |comm| {
        let msgs = if comm.rank() == 0 { vec![vec![1u8]] } else { vec![vec![1u8], vec![1u8]] };
        comm.alltoall_bytes(msgs).map(|_| ())
    });
    assert_eq!(
        out[0],
        Err(Error::CollectiveMismatch { detail: "alltoall: expected 2 messages, got 1".into() })
    );
    assert_eq!(out[1], Err(Error::PeerDead { rank: 0 }));
}
