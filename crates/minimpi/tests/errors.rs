//! Every [`minimpi::Error`] variant: its `Display` rendering and, where the
//! runtime can be driven into it, the failure path that produces it.

use minimpi::{
    CollFingerprint, CollectiveKind, DeadlockReport, DivergenceReport, Error, PendingRecv, Universe,
};
use std::time::Duration;

fn fingerprint(kind: CollectiveKind, root: usize, line: u32) -> CollFingerprint {
    CollFingerprint { kind, root, sig: 0, file: "app.rs", line }
}

/// One representative value per variant — a match here fails to compile when
/// a variant is added without extending this coverage.
fn all_variants() -> Vec<Error> {
    let variants = vec![
        Error::RankOutOfRange { rank: 9, size: 4 },
        Error::Timeout { rank: 1, src: Some(2), tag: 77, comm_id: 5 },
        Error::Timeout { rank: 1, src: None, tag: 77, comm_id: 5 },
        Error::PeerDead { rank: 3 },
        Error::SizeMismatch { expected: 16, got: 12 },
        Error::DatatypeMismatch { detail: "subarray exceeds buffer".into() },
        Error::CollectiveMismatch { detail: "counts differ".into() },
        Error::CollectiveDiverged(Box::new(DivergenceReport {
            comm_id: 5,
            index: 3,
            rank_a: 0,
            fp_a: fingerprint(CollectiveKind::Barrier, usize::MAX, 10),
            rank_b: 2,
            fp_b: fingerprint(CollectiveKind::Broadcast, 0, 20),
        })),
        Error::Deadlock(Box::new(DeadlockReport {
            cycle: vec![
                PendingRecv { rank: 0, awaited: 1, comm_id: 0, tag: 7 },
                PendingRecv { rank: 1, awaited: 0, comm_id: 0, tag: 7 },
            ],
        })),
        Error::StaleEpoch { comm_epoch: 0, world_epoch: 2 },
        Error::IntegrityFailure { src: 2, dst: 0, tag: 9, attempt: 0 },
        Error::IntegrityFailure { src: 2, dst: 0, tag: 9, attempt: 3 },
        Error::Internal { detail: "split: world rank 2 missing from its own color group".into() },
    ];
    for v in &variants {
        match v {
            Error::RankOutOfRange { .. }
            | Error::Timeout { .. }
            | Error::PeerDead { .. }
            | Error::SizeMismatch { .. }
            | Error::DatatypeMismatch { .. }
            | Error::CollectiveMismatch { .. }
            | Error::CollectiveDiverged(_)
            | Error::Deadlock(_)
            | Error::StaleEpoch { .. }
            | Error::IntegrityFailure { .. }
            | Error::Internal { .. } => {}
        }
    }
    variants
}

#[test]
fn display_is_informative_for_every_variant() {
    let expected = [
        "rank 9 out of range for communicator of size 4",
        "rank 1: receive from rank 2 (user tag 77 on comm 0x5) timed out — likely deadlock",
        "rank 1: any-source receive (user tag 77 on comm 0x5) timed out — likely deadlock",
        "rank 3 is dead (fault-killed, panicked, or exited) — failing fast",
        "message size mismatch: expected 16 bytes, got 12",
        "datatype mismatch: subarray exceeds buffer",
        "collective mismatch: counts differ",
        "collective divergence: collective #3 on comm 0x5: rank 0 called barrier at app.rs:10 \
         but rank 2 called broadcast(root 0) at app.rs:20",
        "deadlock cycle of 2 ranks: rank 0 waits on rank 1 (user tag 7 on comm 0x0); \
         rank 1 waits on rank 0 (user tag 7 on comm 0x0)",
        "communicator from epoch 0 used after reconfiguration to epoch 2 — \
         rebuild it via reconfigure()",
        "integrity failure: payload from rank 2 to rank 0 (user tag 9) \
         failed checksum verification (no retransmit path)",
        "integrity failure: payload from rank 2 to rank 0 (user tag 9) \
         still corrupt after 3 retransmit attempt(s)",
        "internal runtime invariant violated: split: world rank 2 missing from its own color group",
    ];
    for (e, want) in all_variants().iter().zip(expected) {
        assert_eq!(e.to_string(), want);
    }
}

#[test]
fn variants_implement_std_error() {
    for e in all_variants() {
        let dyn_err: &dyn std::error::Error = &e;
        assert!(!dyn_err.to_string().is_empty());
    }
}

#[test]
fn rank_out_of_range_from_send_and_recv() {
    let out = Universe::run(2, |comm| {
        (comm.send(5, 1, &[0u8]).unwrap_err(), comm.recv_bytes(5, 1).unwrap_err())
    });
    assert_eq!(out[0].0, Error::RankOutOfRange { rank: 5, size: 2 });
    assert_eq!(out[0].1, Error::RankOutOfRange { rank: 5, size: 2 });
}

#[test]
fn timeout_from_never_sent_message() {
    let out = Universe::run(1, |comm| {
        comm.set_timeout(Duration::from_millis(50));
        comm.recv_bytes(0, 42).unwrap_err()
    });
    assert_eq!(out[0], Error::Timeout { rank: 0, src: Some(0), tag: 42, comm_id: 0 });
}

#[test]
fn peer_dead_from_departed_rank() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 1 {
            return None; // leave without sending
        }
        Some(comm.recv_bytes(1, 9).unwrap_err())
    });
    assert_eq!(out[0], Some(Error::PeerDead { rank: 1 }));
}

#[test]
fn size_mismatch_from_typed_receive() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(1, 5, &[1u8, 2, 3]).unwrap();
            None
        } else {
            Some(comm.recv_vec::<u32>(0, 5).unwrap_err())
        }
    });
    assert_eq!(out[1], Some(Error::SizeMismatch { expected: 4, got: 3 }));
}

#[test]
fn collective_mismatch_from_wrong_message_count() {
    // Rank 0 hands alltoall one message on a 2-rank communicator; it is
    // rejected locally, and rank 1 — left without a partner — fails fast
    // with PeerDead rather than timing out.
    let out = Universe::run(2, |comm| {
        let msgs = if comm.rank() == 0 { vec![vec![1u8]] } else { vec![vec![1u8], vec![1u8]] };
        comm.alltoall_bytes(msgs).map(|_| ())
    });
    assert_eq!(
        out[0],
        Err(Error::CollectiveMismatch { detail: "alltoall: expected 2 messages, got 1".into() })
    );
    assert_eq!(out[1], Err(Error::PeerDead { rank: 0 }));
}
