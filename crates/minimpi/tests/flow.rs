//! Integration tests for credit-based flow control and the memory governor:
//! bounded mailboxes backpressure senders without tripping the watchdog or
//! deadlock detector, budgets degrade gracefully through the documented
//! ladder, and reconfiguration resets credit windows exactly.

use minimpi::{Error, FlowConfig, Universe};
use std::time::{Duration, Instant};

/// Regression test for the watchdog false positive: a rank parked on the
/// credit gate must register as "making progress" to its peers. Rank 0
/// fills a 1-message window toward a deliberately slow rank 1 and parks;
/// rank 2 meanwhile waits on a message rank 0 will only send after
/// unparking. Rank 2's receive outlives several watchdog periods — each one
/// must be deferred (rank 0 is credit-parked, not hung), never surfaced as
/// a false `Timeout`.
#[test]
fn credit_parked_sender_defers_peer_watchdogs() {
    let out = Universe::builder().flow_control(1, 1 << 20).timeout(Duration::from_millis(200)).run(
        3,
        |comm| {
            match comm.rank() {
                0 => {
                    for i in 0..4u8 {
                        comm.send(1, 7, &[i; 64]).unwrap();
                    }
                    comm.send(2, 8, &[42u8]).unwrap();
                    (Vec::new(), comm.flow_counters())
                }
                1 => {
                    // Drain slowly: each gap is under the watchdog period
                    // (every grant resets the parked sender's deadline), but
                    // the total park spans several of rank 2's watchdog
                    // fires.
                    for _ in 0..4 {
                        std::thread::sleep(Duration::from_millis(120));
                        comm.recv_bytes(0, 7).unwrap();
                    }
                    (Vec::new(), comm.flow_counters())
                }
                _ => (comm.recv_bytes(0, 8).unwrap(), comm.flow_counters()),
            }
        },
    );
    assert_eq!(out[2].0, vec![42u8], "the post-park message must arrive intact");
    let counters = out[2].1;
    assert!(counters.credit_waits >= 1, "rank 0 never parked: {counters:?}");
    assert!(
        counters.watchdog_defers >= 1,
        "rank 2's watchdog should have deferred to the credit gate: {counters:?}"
    );
}

/// A sender whose window fills against a live but unresponsive peer must
/// fail with a *structured* error after bounded waiting — not hang until
/// the harness gives up, and not report the peer dead.
#[test]
fn full_window_with_no_progress_times_out_structurally() {
    let out = Universe::builder().flow_control(1, 1 << 20).timeout(Duration::from_millis(200)).run(
        2,
        |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, &[1u8; 32]).unwrap(); // fills the window
                let start = Instant::now();
                let err = comm.send(1, 9, &[2u8; 32]).unwrap_err();
                Some((err, start.elapsed()))
            } else {
                // Alive the whole time, never receiving.
                std::thread::sleep(Duration::from_secs(3));
                None
            }
        },
    );
    let (err, elapsed) = out[0].clone().unwrap();
    assert!(
        matches!(err, Error::Timeout { rank: 0, src: Some(1), tag: 9, .. }),
        "credit starvation must surface as a structured timeout, got: {err}"
    );
    // One sliding deadline with no progress: well under the 4x hard cap.
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
}

/// A single staging reservation larger than the whole budget is the
/// terminal ladder stage: immediate [`Error::MemoryPressure`], no waiting.
#[test]
fn oversize_reservation_fails_fast_with_memory_pressure() {
    let out = Universe::builder().mem_budget(1024).run(2, |comm| {
        if comm.rank() == 0 {
            let start = Instant::now();
            let err = comm.send(1, 5, &[0u8; 4096]).unwrap_err();
            Some((err, start.elapsed()))
        } else {
            None
        }
    });
    let (err, elapsed) = out[0].clone().unwrap();
    match err {
        Error::MemoryPressure { requested, budget, .. } => {
            assert_eq!(requested, 4096);
            assert_eq!(budget, 1024);
        }
        other => panic!("expected MemoryPressure, got: {other}"),
    }
    assert!(elapsed < Duration::from_millis(500), "must fail fast, took {elapsed:?}");
}

/// First rung of the degradation ladder: once staging usage crosses half
/// the budget, `zerocopy_active()` sheds the zero-copy fast path (staged
/// delivery is evictable; loans pin application buffers). Usage returning
/// under the threshold restores it.
#[test]
fn governor_pressure_sheds_zerocopy_and_recovers() {
    let out = Universe::builder().zerocopy(true).mem_budget(4096).run(2, |comm| {
        if comm.rank() == 0 {
            assert!(comm.zerocopy_active(), "unpressured universe must keep zerocopy");
            assert_eq!(comm.mem_usage(), 0);
            comm.send(1, 7, &[0u8; 3000]).unwrap(); // crosses budget/2
            assert!(comm.mem_usage() >= 3000);
            assert!(!comm.zerocopy_active(), "pressure must shed the zero-copy path");
            comm.send(1, 8, &[1u8]).unwrap(); // release the consumer
            comm.recv_bytes(1, 9).unwrap(); // consumer drained everything
            assert!(comm.mem_usage() < 3000, "drained payloads must release the governor");
            assert!(comm.zerocopy_active(), "shedding must lift once pressure clears");
            assert!(comm.mem_high_water() >= 3000);
            comm.flow_counters()
        } else {
            comm.recv_bytes(0, 8).unwrap(); // wait for rank 0's asserts
            let big = comm.recv_bytes(0, 7).unwrap();
            assert_eq!(big.len(), 3000);
            comm.send(0, 9, &[1u8]).unwrap();
            comm.flow_counters()
        }
    });
    assert!(out[0].zerocopy_sheds >= 1, "the shed must be counted: {:?}", out[0]);
}

/// Reconfiguration must be an exact credit reset: messages fenced by the
/// epoch sweep hand their credits back, so a window filled on the old
/// epoch is empty on the new one — no leaked credits (which would shrink
/// the window forever), no duplicates.
#[test]
fn reconfigure_sweep_returns_fenced_credits() {
    let out = Universe::builder().flow_control(2, 1 << 20).timeout(Duration::from_millis(500)).run(
        2,
        |comm| {
            if comm.rank() == 0 {
                // Fill the whole window with messages rank 1 never takes.
                comm.send(1, 7, &[1u8; 128]).unwrap();
                comm.send(1, 7, &[2u8; 128]).unwrap();
                let c2 = comm.reconfigure().unwrap();
                // The sweep returned both credits: two more sends must go
                // through without parking out the watchdog.
                let start = Instant::now();
                c2.send(1, 8, &[3u8; 128]).unwrap();
                c2.send(1, 8, &[4u8; 128]).unwrap();
                assert!(start.elapsed() < Duration::from_millis(400));
                Vec::new()
            } else {
                let c2 = comm.reconfigure().unwrap();
                let a = c2.recv_bytes(0, 8).unwrap();
                let b = c2.recv_bytes(0, 8).unwrap();
                vec![a[0], b[0]]
            }
        },
    );
    assert_eq!(out[1], vec![3, 4], "only new-epoch messages may be delivered");
}

/// Builder knobs land in the runtime config, and the accessors expose the
/// governor's live state.
#[test]
fn builder_knobs_reach_flow_config() {
    let cfgs = Universe::builder()
        .flow_control(7, 12345)
        .mem_budget(1 << 20)
        .run(2, |comm| (comm.flow_config(), comm.mem_budget()));
    for (cfg, budget) in &cfgs {
        assert_eq!(*cfg, FlowConfig { msg_credits: 7, byte_credits: 12345, mem_budget: 1 << 20 });
        assert_eq!(*budget, 1 << 20);
    }
}

/// Byte credits are a window too: a pair saturated by bytes (not message
/// count) parks and resumes exactly like the message window.
#[test]
fn byte_window_backpressures_independently_of_message_window() {
    let out = Universe::builder()
        .flow_control(1024, 256) // generous messages, tight bytes
        .timeout(Duration::from_secs(5))
        .run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..6u8 {
                    comm.send(1, 3, &[i; 200]).unwrap(); // 200 of 256 bytes
                }
                comm.flow_counters().credit_waits
            } else {
                std::thread::sleep(Duration::from_millis(100));
                for i in 0..6u8 {
                    let m = comm.recv_bytes(0, 3).unwrap();
                    assert_eq!(m, vec![i; 200]);
                }
                0
            }
        });
    assert!(out[0] >= 1, "200-byte sends through a 256-byte window must park");
}
