//! End-to-end data integrity: envelope checksums, NACK/retransmit recovery,
//! and graceful exhaustion — driven through the public fault-injection API.

use minimpi::{Error, FaultPlan, Universe};
use std::time::{Duration, Instant};

/// Bidirectional 2-rank alltoallw: each rank ships `len` bytes of
/// rank-seeded data to the other and returns what it received.
fn exchange(comm: &minimpi::Comm, len: usize) -> minimpi::Result<Vec<u8>> {
    use minimpi::Datatype;
    let me = comm.rank();
    let other = 1 - me;
    let send: Vec<u8> = (0..len).map(|i| (me as u8) ^ (i as u8).wrapping_mul(31)).collect();
    let mut recv = vec![0u8; len];
    let contig = Datatype::Contiguous { len_bytes: len, offset: 0 };
    let mut send_types = [Datatype::Empty, Datatype::Empty];
    let mut recv_types = [Datatype::Empty, Datatype::Empty];
    send_types[other] = contig;
    recv_types[other] = contig;
    comm.alltoallw(&send, &send_types, &mut recv, &recv_types)?;
    Ok(recv)
}

fn expected_from(src: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| (src as u8) ^ (i as u8).wrapping_mul(31)).collect()
}

/// A single corrupt message is detected, NACKed, and retransmitted from the
/// sender's still-owned buffer — the exchange completes byte-identical to a
/// clean run, on both wire paths (staged and zero-copy loans).
#[test]
fn corrupt_alltoallw_recovers_via_retransmit() {
    for zerocopy in [false, true] {
        let len = 2048usize;
        let out = Universe::builder()
            .timeout(Duration::from_secs(20))
            .zerocopy(zerocopy)
            .zerocopy_threshold(0) // loans on the zc pass, staged otherwise
            .fault_plan(FaultPlan::new(7).corrupt_message(0, 1, None, 0))
            .run(2, move |comm| {
                let got = exchange(comm, len)?;
                Ok::<_, Error>((got, comm.integrity_counters()))
            });
        let (got1, c1) = out[1].as_ref().expect("receiver must recover");
        assert_eq!(got1, &expected_from(0, len), "zerocopy={zerocopy}");
        assert!(c1.detected >= 1, "corruption must be detected: {c1:?}");
        assert_eq!(c1.exhausted, 0, "one retransmit suffices: {c1:?}");
        let (got0, c0) = out[0].as_ref().expect("sender side is clean");
        assert_eq!(got0, &expected_from(1, len));
        assert!(c0.retransmits >= 1, "sender must have retransmitted: {c0:?}");
    }
}

/// Both directions corrupt at once: each rank is simultaneously recovering
/// as a receiver and answering NACKs as a sender. The polling recovery
/// waits must interleave the two roles — mutual recovery, not deadlock.
#[test]
fn mutual_corruption_recovers_without_deadlock() {
    let len = 512usize;
    let start = Instant::now();
    let out = Universe::builder()
        .timeout(Duration::from_secs(20))
        .fault_plan(
            FaultPlan::new(11).corrupt_message(0, 1, None, 0).corrupt_message(1, 0, None, 0),
        )
        .run(2, move |comm| exchange(comm, len));
    assert_eq!(out[0].as_ref().unwrap(), &expected_from(1, len));
    assert_eq!(out[1].as_ref().unwrap(), &expected_from(0, len));
    assert!(start.elapsed() < Duration::from_secs(15), "mutual recovery must not hang");
}

/// Corrupting the original *and* every retransmit exhausts the budget: the
/// receiver gets a structured [`Error::IntegrityFailure`] carrying the full
/// failure coordinates — never a hang — while the sender settles cleanly.
#[test]
fn retransmit_exhaustion_is_a_structured_error() {
    let len = 256usize;
    let max = 2u32;
    // One corrupt rule per delivery: the original (nth 0) plus both
    // retransmits (nth 1, 2) all arrive scrambled.
    let mut plan = FaultPlan::new(13);
    for nth in 0..=max as u64 {
        plan = plan.corrupt_message(0, 1, None, nth);
    }
    let start = Instant::now();
    let out = Universe::builder()
        .timeout(Duration::from_secs(20))
        .retransmit_max(max)
        .retransmit_backoff(Duration::from_micros(100))
        .fault_plan(plan)
        .run(2, move |comm| {
            let res = exchange(comm, len);
            (res, comm.integrity_counters())
        });
    assert!(start.elapsed() < Duration::from_secs(15), "exhaustion must not hang");
    let (res1, c1) = &out[1];
    match res1 {
        Err(Error::IntegrityFailure { src, dst, tag: _, attempt }) => {
            assert_eq!(*src, 0);
            assert_eq!(*dst, 1);
            assert_eq!(*attempt, max, "all {max} retransmits consumed");
        }
        other => panic!("expected IntegrityFailure, got {other:?}"),
    }
    assert_eq!(c1.exhausted, 1, "{c1:?}");
    assert_eq!(c1.detected as u32, max + 1, "every delivery was detected: {c1:?}");
    // The sender's own receive (1 → 0) is clean, and the FAIL verdict lets
    // it leave settlement without error.
    let (res0, c0) = &out[0];
    assert_eq!(res0.as_ref().unwrap(), &expected_from(1, len));
    assert_eq!(c0.retransmits as u32, max);
}

/// `retransmit_max(0)` makes detection immediately fatal — no NACK is ever
/// sent, matching the documented knob semantics.
#[test]
fn retransmit_max_zero_fails_on_first_detection() {
    let out = Universe::builder()
        .timeout(Duration::from_secs(20))
        .retransmit_max(0)
        .fault_plan(FaultPlan::new(17).corrupt_message(0, 1, None, 0))
        .run(2, move |comm| {
            let res = exchange(comm, 128);
            (res, comm.integrity_counters())
        });
    match &out[1].0 {
        Err(Error::IntegrityFailure { src: 0, dst: 1, attempt: 0, .. }) => {}
        other => panic!("expected immediate IntegrityFailure, got {other:?}"),
    }
    assert_eq!(out[0].1.retransmits, 0, "no retransmit may be attempted");
}

/// Point-to-point receives are detect-only: corruption surfaces as
/// `IntegrityFailure` with `attempt: 0` (no retransmit path), and the error
/// carries the user tag.
#[test]
fn p2p_receive_is_detect_only() {
    let out = Universe::builder()
        .timeout(Duration::from_secs(20))
        .fault_plan(FaultPlan::new(19).corrupt_message(0, 1, Some(42), 0))
        .run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 42, &[0xABu8; 64])?;
                Ok(None)
            } else {
                Ok::<_, Error>(Some(comm.recv_bytes(0, 42).unwrap_err()))
            }
        });
    assert_eq!(
        out[1].as_ref().unwrap().as_ref(),
        Some(&Error::IntegrityFailure { src: 0, dst: 1, tag: 42, attempt: 0 })
    );
}

/// `checksum(false)` restores the pre-integrity wire format: corruption
/// passes through undetected (the documented trade-off of turning the knob
/// off) and no integrity counters move.
#[test]
fn checksum_off_delivers_corrupt_bytes_silently() {
    let payload = [0x5Au8; 64];
    let out = Universe::builder()
        .timeout(Duration::from_secs(20))
        .checksum(false)
        .fault_plan(FaultPlan::new(23).corrupt_message(0, 1, Some(7), 0))
        .run(2, move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &payload)?;
                Ok((None, comm.integrity_counters()))
            } else {
                Ok::<_, Error>((Some(comm.recv_bytes(0, 7)?), comm.integrity_counters()))
            }
        });
    let (got, counters) = out[1].as_ref().unwrap();
    let got = got.as_ref().unwrap();
    assert_eq!(got.len(), payload.len());
    assert_ne!(got.as_slice(), &payload[..], "corruption must have landed");
    assert_eq!(counters.checked, 0, "no verification may run with DDR_CHECKSUM off");
}

/// Clean exchanges under checksumming verify every envelope and detect
/// nothing — the integrity plane is pure bookkeeping on the happy path.
#[test]
fn clean_run_checks_everything_and_detects_nothing() {
    let out = Universe::builder().timeout(Duration::from_secs(20)).run(2, |comm| {
        let got = exchange(comm, 1024)?;
        Ok::<_, Error>((got, comm.integrity_counters(), comm.checksum_active()))
    });
    for (r, res) in out.iter().enumerate() {
        let (got, c, active) = res.as_ref().unwrap();
        assert!(active, "checksumming is on by default");
        assert_eq!(got, &expected_from(1 - r, 1024));
        assert!(c.checked >= 1, "envelopes must be verified: {c:?}");
        assert_eq!(c.detected, 0);
        assert_eq!(c.retransmits, 0);
        assert_eq!(c.exhausted, 0);
    }
}
