//! Integration tests for minimpi collectives across real rank threads.

use minimpi::{Datatype, Subarray, Universe};

#[test]
fn barrier_many_times() {
    Universe::run(7, |comm| {
        for _ in 0..50 {
            comm.barrier().unwrap();
        }
    });
}

#[test]
fn barrier_orders_side_effects() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static BEFORE: AtomicUsize = AtomicUsize::new(0);
    let seen = Universe::run(6, |comm| {
        BEFORE.fetch_add(1, Ordering::SeqCst);
        comm.barrier().unwrap();
        BEFORE.load(Ordering::SeqCst)
    });
    // After the barrier, every rank must observe all 6 increments.
    assert!(seen.into_iter().all(|s| s == 6));
}

#[test]
fn broadcast_from_each_root() {
    for root in 0..5 {
        let out = Universe::run(5, |comm| {
            let data: Vec<u32> =
                if comm.rank() == root { vec![root as u32, 99, 7] } else { vec![] };
            comm.broadcast(root, &data).unwrap()
        });
        for got in out {
            assert_eq!(got, vec![root as u32, 99, 7]);
        }
    }
}

#[test]
fn broadcast_large_payload() {
    let out = Universe::run(9, |comm| {
        let data: Vec<u64> = if comm.rank() == 3 { (0..100_000).collect() } else { vec![] };
        let got = comm.broadcast(3, &data).unwrap();
        (got.len(), got[12_345])
    });
    for (len, v) in out {
        assert_eq!(len, 100_000);
        assert_eq!(v, 12_345);
    }
}

#[test]
fn gather_collects_in_rank_order() {
    let out = Universe::run(6, |comm| {
        let mine = vec![comm.rank() as i64; comm.rank() + 1];
        comm.gather(2, &mine).unwrap()
    });
    for (rank, res) in out.into_iter().enumerate() {
        if rank == 2 {
            let parts = res.unwrap();
            for (r, p) in parts.iter().enumerate() {
                assert_eq!(p, &vec![r as i64; r + 1]);
            }
        } else {
            assert!(res.is_none());
        }
    }
}

#[test]
fn allgather_variable_lengths() {
    let out = Universe::run(5, |comm| {
        let mine: Vec<u16> = (0..comm.rank() as u16 * 2).collect();
        comm.allgather(&mine).unwrap()
    });
    for parts in out {
        assert_eq!(parts.len(), 5);
        for (r, p) in parts.iter().enumerate() {
            assert_eq!(p, &(0..r as u16 * 2).collect::<Vec<_>>());
        }
    }
}

#[test]
fn reduce_and_allreduce_sum() {
    let out = Universe::run(8, |comm| {
        let mine = vec![comm.rank() as u64, 1];
        comm.allreduce(&mine, |a, b| a + b)
    });
    for got in out {
        assert_eq!(got, vec![28, 8]); // 0+..+7 = 28
    }
}

#[test]
fn reduce_is_rank_ordered_for_nonassociative_ops() {
    // Subtraction is order-sensitive: ((0 - 1) - 2) - 3 = -6.
    let out = Universe::run(4, |comm| {
        let mine = vec![comm.rank() as i64];
        comm.reduce(0, &mine, |a, b| a - b).unwrap()
    });
    assert_eq!(out[0].as_ref().unwrap(), &vec![-6]);
}

#[test]
fn scan_prefix_sums() {
    let out = Universe::run(6, |comm| {
        let mine = vec![comm.rank() as u32 + 1];
        comm.scan(&mine, |a, b| a + b).unwrap()[0]
    });
    assert_eq!(out, vec![1, 3, 6, 10, 15, 21]);
}

#[test]
fn alltoallv_exchanges_personalized_payloads() {
    let n = 6;
    let out = Universe::run(n, |comm| {
        let me = comm.rank();
        // Rank s sends to rank d a payload [s, d] repeated (s + d) times.
        let msgs: Vec<Vec<u32>> = (0..n)
            .map(|d| std::iter::repeat_n([me as u32, d as u32], me + d).flatten().collect())
            .collect();
        comm.alltoallv(&msgs).unwrap()
    });
    for (d, received) in out.into_iter().enumerate() {
        for (s, msg) in received.into_iter().enumerate() {
            let expect: Vec<u32> =
                std::iter::repeat_n([s as u32, d as u32], s + d).flatten().collect();
            assert_eq!(msg, expect, "payload from {s} to {d}");
        }
    }
}

#[test]
fn alltoallw_transposes_a_block_distributed_matrix() {
    // An 8x8 u32 matrix distributed as 2 rows per rank (4 ranks) is
    // redistributed to 2 columns per rank using subarray datatypes.
    let n = 4;
    let out = Universe::run(n, |comm| {
        let me = comm.rank();
        // Global element (x, y) has value y * 8 + x. I own rows 2*me..2*me+2,
        // stored as an 8x2 local array.
        let own: Vec<u32> = (0..16).map(|i| ((2 * me + i / 8) * 8 + i % 8) as u32).collect();
        // I need columns 2*me..2*me+2, stored as a 2x8 local array.
        let mut need = vec![0u32; 16];

        let send_types: Vec<Datatype> = (0..n)
            .map(|d| {
                // To rank d: the 2-wide column band [2d..2d+2) of my 8x2 rows.
                Datatype::Subarray(Subarray::d2([8, 2], [2, 2], [2 * d, 0], 4).unwrap())
            })
            .collect();
        let recv_types: Vec<Datatype> = (0..n)
            .map(|s| {
                // From rank s: its 2 rows of my 2-wide column band, placed at
                // row offset 2*s of my 2x8 local array.
                Datatype::Subarray(Subarray::d2([2, 8], [2, 2], [0, 2 * s], 4).unwrap())
            })
            .collect();

        comm.alltoallw(
            minimpi::bytes_of(&own),
            &send_types,
            minimpi::bytes_of_mut(&mut need),
            &recv_types,
        )
        .unwrap();
        need
    });

    for (me, need) in out.into_iter().enumerate() {
        for (i, v) in need.into_iter().enumerate() {
            let x = 2 * me + i % 2;
            let y = i / 2;
            assert_eq!(v as usize, y * 8 + x, "rank {me} element {i}");
        }
    }
}

#[test]
fn split_into_two_groups_with_independent_collectives() {
    let out = Universe::run(10, |comm| {
        let color = if comm.rank() < 6 { 0u64 } else { 1u64 };
        let sub = comm.split(color).unwrap();
        let sum = sub.allreduce(&[comm.rank() as u64], |a, b| a + b)[0];
        (color, sub.rank(), sub.size(), sum)
    });
    for (rank, (color, sub_rank, sub_size, sum)) in out.into_iter().enumerate() {
        if rank < 6 {
            assert_eq!((color, sub_rank, sub_size, sum), (0, rank, 6, 15));
        } else {
            assert_eq!((color, sub_rank, sub_size, sum), (1, rank - 6, 4, 30)); // 6+7+8+9
        }
    }
}

#[test]
fn split_then_cross_group_p2p_on_parent() {
    // Groups do internal collectives while cross-group messages flow on the
    // parent communicator — the in-transit streaming pattern.
    let out = Universe::run(6, |comm| {
        let color = (comm.rank() % 2) as u64;
        let sub = comm.split(color).unwrap();
        sub.barrier().unwrap();
        if color == 0 {
            comm.send(comm.rank() + 1, 9, &[comm.rank() as u32]).unwrap();
            0
        } else {
            comm.recv_vec::<u32>(comm.rank() - 1, 9).unwrap()[0]
        }
    });
    assert_eq!(out, vec![0, 0, 0, 2, 0, 4]);
}

#[test]
fn duplicate_gives_isolated_namespace() {
    Universe::run(4, |comm| {
        let dup = comm.duplicate().unwrap();
        // Send on parent, then a collective on the duplicate, then receive on
        // parent: traffic must not cross namespaces.
        let peer = (comm.rank() + 1) % 4;
        let from = (comm.rank() + 3) % 4;
        comm.send(peer, 1, &[comm.rank() as u32]).unwrap();
        let s = dup.allreduce(&[1u64], |a, b| a + b)[0];
        assert_eq!(s, 4);
        let got = comm.recv_vec::<u32>(from, 1).unwrap();
        assert_eq!(got, vec![from as u32]);
    });
}

#[test]
fn sendrecv_ring_rotation() {
    let n = 5;
    let out = Universe::run(n, |comm| {
        let right = (comm.rank() + 1) % n;
        let left = (comm.rank() + n - 1) % n;
        comm.sendrecv(right, &[comm.rank() as u64], left, 3).unwrap()[0]
    });
    assert_eq!(out, vec![4, 0, 1, 2, 3]);
}

#[test]
fn any_source_receive_collects_all() {
    let out = Universe::run(5, |comm| {
        if comm.rank() == 0 {
            let mut got = Vec::new();
            for _ in 0..4 {
                let (status, bytes) = comm.recv_bytes_any(7).unwrap();
                assert_eq!(bytes, vec![status.src as u8]);
                got.push(status.src);
            }
            got.sort_unstable();
            got
        } else {
            comm.send_bytes(0, 7, &[comm.rank() as u8]).unwrap();
            vec![]
        }
    });
    assert_eq!(out[0], vec![1, 2, 3, 4]);
}

#[test]
fn message_order_preserved_per_sender_and_tag() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 0 {
            for i in 0..100u32 {
                comm.send(1, 5, &[i]).unwrap();
            }
            vec![]
        } else {
            (0..100).map(|_| comm.recv_vec::<u32>(0, 5).unwrap()[0]).collect()
        }
    });
    assert_eq!(out[1], (0..100).collect::<Vec<u32>>());
}

#[test]
fn recv_timeout_reports_deadlock() {
    use std::time::Duration;
    let out = Universe::run(2, |comm| {
        if comm.rank() == 1 {
            comm.set_timeout(Duration::from_millis(50));
            let err = comm.recv_bytes(0, 42).err();
            // Release rank 0, which stays alive (blocked) during our wait so
            // the watchdog — not the fail-fast liveness path — fires.
            comm.send_bytes(0, 43, &[]).unwrap();
            err
        } else {
            comm.recv_bytes(1, 43).unwrap();
            None
        }
    });
    assert!(matches!(out[1], Some(minimpi::Error::Timeout { rank: 1, src: Some(0), tag: 42, .. })));
}

#[test]
fn recv_from_departed_rank_fails_fast_with_peer_dead() {
    use std::time::Duration;
    let out = Universe::run(2, |comm| {
        if comm.rank() == 1 {
            comm.set_timeout(Duration::from_secs(60));
            comm.recv_bytes(0, 42).err()
        } else {
            None // departs immediately → marked dead
        }
    });
    assert!(matches!(out[1], Some(minimpi::Error::PeerDead { rank: 0 })));
}

#[test]
fn typed_recv_rejects_misaligned_length() {
    let out = Universe::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send_bytes(1, 0, &[1, 2, 3]).unwrap(); // 3 bytes, not a u32 multiple
            None
        } else {
            comm.recv_vec::<u32>(0, 0).err()
        }
    });
    assert!(matches!(out[1], Some(minimpi::Error::SizeMismatch { .. })));
}

#[test]
fn collectives_compose_in_sequence() {
    // A realistic mixed workload: allgather layouts, alltoallw exchange,
    // allreduce a checksum — repeated, on the same communicator.
    let n = 4;
    Universe::run(n, |comm| {
        for iter in 0..10u64 {
            let layouts = comm.allgather(&[comm.rank() as u64 * 100 + iter]).unwrap();
            assert_eq!(layouts.len(), n);
            for (r, l) in layouts.iter().enumerate() {
                assert_eq!(l[0], r as u64 * 100 + iter);
            }
            let sum = comm.allreduce(&[iter], |a, b| a + b)[0];
            assert_eq!(sum, iter * n as u64);
            comm.barrier().unwrap();
        }
    });
}
